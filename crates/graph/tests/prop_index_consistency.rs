//! Property-index consistency under random mutation scripts.
//!
//! The invariant: after **every** step — plain mutations, `begin`,
//! `commit`, `rollback`, and mid-transaction `rollback_to` — every index
//! lookup must agree with a brute-force scan over the whole graph using
//! Cypher equality ([`Value::eq3`]). This is the graph-level half of the
//! guarantee the trigger engine relies on when a statement (or a whole
//! trigger cascade) aborts; the engine-level half (RecursionLimit aborts)
//! lives in `pg-triggers`' integration tests.

use pg_graph::{Graph, GraphView, NodeId, PropertyMap, StatementMark, Value};
use proptest::prelude::*;
use std::collections::BTreeSet;

/// A random script step. Node references are dense indexes into the current
/// id list so scripts stay valid regardless of prior steps; transaction
/// steps are no-ops when they do not apply (e.g. `Commit` outside a tx).
#[derive(Debug, Clone)]
enum Step {
    CreateNode { label: u8, prop: u8, val: i64 },
    DetachDelete { pick: usize },
    SetProp { pick: usize, prop: u8, val: i64 },
    SetFloatProp { pick: usize, prop: u8, val: i64 },
    RemoveProp { pick: usize, prop: u8 },
    SetNullProp { pick: usize, prop: u8 },
    SetLabel { pick: usize, label: u8 },
    RemoveLabel { pick: usize, label: u8 },
    CreateIndex { label: u8, prop: u8 },
    DropIndex { label: u8, prop: u8 },
    Begin,
    Mark,
    RollbackTo,
    Rollback,
    Commit,
}

fn step_strategy() -> impl Strategy<Value = Step> {
    prop_oneof![
        (0u8..3, 0u8..3, -4i64..4).prop_map(|(label, prop, val)| Step::CreateNode {
            label,
            prop,
            val
        }),
        (0usize..16).prop_map(|pick| Step::DetachDelete { pick }),
        (0usize..16, 0u8..3, -4i64..4).prop_map(|(pick, prop, val)| Step::SetProp {
            pick,
            prop,
            val
        }),
        (0usize..16, 0u8..3, -4i64..4).prop_map(|(pick, prop, val)| Step::SetFloatProp {
            pick,
            prop,
            val
        }),
        (0usize..16, 0u8..3).prop_map(|(pick, prop)| Step::RemoveProp { pick, prop }),
        (0usize..16, 0u8..3).prop_map(|(pick, prop)| Step::SetNullProp { pick, prop }),
        (0usize..16, 0u8..3).prop_map(|(pick, label)| Step::SetLabel { pick, label }),
        (0usize..16, 0u8..3).prop_map(|(pick, label)| Step::RemoveLabel { pick, label }),
        (0u8..3, 0u8..3).prop_map(|(label, prop)| Step::CreateIndex { label, prop }),
        (0u8..3, 0u8..3).prop_map(|(label, prop)| Step::DropIndex { label, prop }),
        Just(Step::Begin),
        Just(Step::Mark),
        Just(Step::RollbackTo),
        Just(Step::Rollback),
        Just(Step::Commit),
    ]
}

fn label_name(i: u8) -> String {
    format!("L{i}")
}
fn prop_name(i: u8) -> String {
    format!("p{i}")
}

/// Transaction bookkeeping threaded through the script.
#[derive(Default)]
struct Driver {
    marks: Vec<StatementMark>,
}

impl Driver {
    fn apply(&mut self, g: &mut Graph, step: &Step) {
        let nodes = g.all_node_ids();
        match step {
            Step::CreateNode { label, prop, val } => {
                let props: PropertyMap =
                    [(prop_name(*prop), Value::Int(*val))].into_iter().collect();
                g.create_node([label_name(*label)], props).unwrap();
            }
            Step::DetachDelete { pick } => {
                if !nodes.is_empty() {
                    g.detach_delete_node(nodes[pick % nodes.len()]).unwrap();
                }
            }
            Step::SetProp { pick, prop, val } => {
                if !nodes.is_empty() {
                    g.set_node_prop(
                        nodes[pick % nodes.len()],
                        prop_name(*prop),
                        Value::Int(*val),
                    )
                    .unwrap();
                }
            }
            Step::SetFloatProp { pick, prop, val } => {
                // integral floats exercise the Int/Float key normalization
                if !nodes.is_empty() {
                    g.set_node_prop(
                        nodes[pick % nodes.len()],
                        prop_name(*prop),
                        Value::Float(*val as f64),
                    )
                    .unwrap();
                }
            }
            Step::RemoveProp { pick, prop } => {
                if !nodes.is_empty() {
                    g.remove_node_prop(nodes[pick % nodes.len()], &prop_name(*prop))
                        .unwrap();
                }
            }
            Step::SetNullProp { pick, prop } => {
                if !nodes.is_empty() {
                    g.set_node_prop(nodes[pick % nodes.len()], prop_name(*prop), Value::Null)
                        .unwrap();
                }
            }
            Step::SetLabel { pick, label } => {
                if !nodes.is_empty() {
                    g.set_label(nodes[pick % nodes.len()], label_name(*label))
                        .unwrap();
                }
            }
            Step::RemoveLabel { pick, label } => {
                if !nodes.is_empty() {
                    g.remove_label(nodes[pick % nodes.len()], &label_name(*label))
                        .unwrap();
                }
            }
            Step::CreateIndex { label, prop } => {
                g.create_index(&label_name(*label), &prop_name(*prop));
            }
            Step::DropIndex { label, prop } => {
                g.drop_index(&label_name(*label), &prop_name(*prop));
            }
            Step::Begin => {
                if !g.in_tx() {
                    g.begin().unwrap();
                    self.marks.clear();
                }
            }
            Step::Mark => {
                if g.in_tx() {
                    self.marks.push(g.mark());
                }
            }
            Step::RollbackTo => {
                if g.in_tx() {
                    if let Some(m) = self.marks.pop() {
                        g.rollback_to(m).unwrap();
                    }
                }
            }
            Step::Rollback => {
                if g.in_tx() {
                    g.rollback().unwrap();
                    self.marks.clear();
                }
            }
            Step::Commit => {
                if g.in_tx() {
                    g.commit().unwrap();
                    self.marks.clear();
                }
            }
        }
    }
}

/// Index lookups == brute-force scan, for every index definition and every
/// value in (a superset of) the script's value universe.
fn check_index_vs_scan(g: &Graph) {
    let all = g.all_node_ids();
    let mut universe: Vec<Value> = (-5i64..6).map(Value::Int).collect();
    universe.extend((-5i64..6).map(|v| Value::Float(v as f64)));
    universe.push(Value::Float(0.5));
    for (label, key) in g.indexes() {
        for value in &universe {
            let via_index: BTreeSet<NodeId> = g
                .nodes_with_prop(&label, &key, value)
                .unwrap_or_else(|| panic!("index on ({label},{key}) must answer"))
                .into_iter()
                .collect();
            let via_scan: BTreeSet<NodeId> = all
                .iter()
                .copied()
                .filter(|&id| {
                    g.node_has_label(id, &label)
                        && g.node_prop(id, &key)
                            .is_some_and(|have| have.eq3(value) == Some(true))
                })
                .collect();
            assert_eq!(
                via_index, via_scan,
                "index ({label},{key}) diverged from scan for {value}"
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn index_equals_scan_after_every_step(script in prop::collection::vec(step_strategy(), 0..60)) {
        let mut g = Graph::new();
        let mut d = Driver::default();
        for step in &script {
            d.apply(&mut g, step);
            check_index_vs_scan(&g);
        }
        // wind down: abort any open transaction and re-check
        if g.in_tx() {
            g.rollback().unwrap();
            check_index_vs_scan(&g);
        }
    }

    #[test]
    fn index_equals_scan_after_full_rollback(pre in prop::collection::vec(step_strategy(), 0..25),
                                             tx in prop::collection::vec(step_strategy(), 0..25)) {
        // Indexes created up front so the whole script is index-maintained.
        let mut g = Graph::new();
        for l in 0..3u8 {
            for p in 0..3u8 {
                g.create_index(&label_name(l), &prop_name(p));
            }
        }
        let mut d = Driver::default();
        for step in &pre {
            d.apply(&mut g, step);
        }
        if g.in_tx() {
            g.commit().unwrap();
        }
        g.begin().unwrap();
        for step in &tx {
            // nested tx control inside: skip tx steps, keep mutations
            if matches!(step, Step::Begin | Step::Rollback | Step::Commit) {
                continue;
            }
            d.apply(&mut g, step);
        }
        g.rollback().unwrap();
        check_index_vs_scan(&g);
    }
}
