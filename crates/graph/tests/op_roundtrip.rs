//! Property tests for the op codec and inversion algebra — the foundation
//! the WAL frame format builds on (`pg-wal` persists exactly these bytes).
//!
//! Invariants checked under random mutation scripts:
//! * **codec round-trip**: `decode(encode(ops)) == ops`, with full input
//!   consumption;
//! * **replay equivalence**: serialize → deserialize → apply on a fresh
//!   graph reproduces the directly-mutated graph, record for record,
//!   including id-allocator watermarks;
//! * **inversion identity**: applying the inverted op sequence in reverse
//!   order restores the pre-transaction state (apply → invert == identity);
//! * **double inversion**: `op.invert().invert() == op`.

use pg_graph::codec::{decode_ops, encode_ops, Reader};
use pg_graph::{Graph, GraphView, Op, PropertyMap, Value};
use proptest::prelude::*;

/// A random mutation step, referencing nodes/rels by dense index so scripts
/// stay valid regardless of prior steps (same scheme as `prop_store.rs`).
#[derive(Debug, Clone)]
enum Step {
    CreateNode { label: u8, prop: u8, val: i64 },
    DetachDelete { pick: usize },
    CreateRel { src: usize, dst: usize, ty: u8 },
    DeleteRel { pick: usize },
    SetProp { pick: usize, prop: u8, val: i64 },
    SetStrProp { pick: usize, prop: u8, val: u8 },
    RemoveProp { pick: usize, prop: u8 },
    SetLabel { pick: usize, label: u8 },
    RemoveLabel { pick: usize, label: u8 },
    SetRelProp { pick: usize, prop: u8, val: i64 },
}

fn step_strategy() -> impl Strategy<Value = Step> {
    prop_oneof![
        (0u8..4, 0u8..3, -5i64..5).prop_map(|(label, prop, val)| Step::CreateNode {
            label,
            prop,
            val
        }),
        (0usize..16).prop_map(|pick| Step::DetachDelete { pick }),
        (0usize..16, 0usize..16, 0u8..3).prop_map(|(src, dst, ty)| Step::CreateRel {
            src,
            dst,
            ty
        }),
        (0usize..16).prop_map(|pick| Step::DeleteRel { pick }),
        (0usize..16, 0u8..3, -5i64..5).prop_map(|(pick, prop, val)| Step::SetProp {
            pick,
            prop,
            val
        }),
        (0usize..16, 0u8..3, 0u8..4).prop_map(|(pick, prop, val)| Step::SetStrProp {
            pick,
            prop,
            val
        }),
        (0usize..16, 0u8..3).prop_map(|(pick, prop)| Step::RemoveProp { pick, prop }),
        (0usize..16, 0u8..4).prop_map(|(pick, label)| Step::SetLabel { pick, label }),
        (0usize..16, 0u8..4).prop_map(|(pick, label)| Step::RemoveLabel { pick, label }),
        (0usize..16, 0u8..3, -5i64..5).prop_map(|(pick, prop, val)| Step::SetRelProp {
            pick,
            prop,
            val
        }),
    ]
}

fn apply(g: &mut Graph, step: &Step) {
    let nodes = g.all_node_ids();
    let rels = g.all_rel_ids();
    match step {
        Step::CreateNode { label, prop, val } => {
            let props: PropertyMap = [(format!("p{prop}"), Value::Int(*val))]
                .into_iter()
                .collect();
            g.create_node([format!("L{label}")], props).unwrap();
        }
        Step::DetachDelete { pick } => {
            if !nodes.is_empty() {
                g.detach_delete_node(nodes[pick % nodes.len()]).unwrap();
            }
        }
        Step::CreateRel { src, dst, ty } => {
            if !nodes.is_empty() {
                let s = nodes[src % nodes.len()];
                let d = nodes[dst % nodes.len()];
                g.create_rel(s, d, format!("T{ty}"), PropertyMap::new())
                    .unwrap();
            }
        }
        Step::DeleteRel { pick } => {
            if !rels.is_empty() {
                g.delete_rel(rels[pick % rels.len()]).unwrap();
            }
        }
        Step::SetProp { pick, prop, val } => {
            if !nodes.is_empty() {
                let id = nodes[pick % nodes.len()];
                g.set_node_prop(id, format!("p{prop}"), Value::Int(*val))
                    .unwrap();
            }
        }
        Step::SetStrProp { pick, prop, val } => {
            if !nodes.is_empty() {
                let id = nodes[pick % nodes.len()];
                g.set_node_prop(id, format!("p{prop}"), Value::str(format!("s{val}")))
                    .unwrap();
            }
        }
        Step::RemoveProp { pick, prop } => {
            if !nodes.is_empty() {
                let id = nodes[pick % nodes.len()];
                g.remove_node_prop(id, &format!("p{prop}")).unwrap();
            }
        }
        Step::SetLabel { pick, label } => {
            if !nodes.is_empty() {
                let id = nodes[pick % nodes.len()];
                g.set_label(id, format!("L{label}")).unwrap();
            }
        }
        Step::RemoveLabel { pick, label } => {
            if !nodes.is_empty() {
                let id = nodes[pick % nodes.len()];
                g.remove_label(id, &format!("L{label}")).unwrap();
            }
        }
        Step::SetRelProp { pick, prop, val } => {
            if !rels.is_empty() {
                let id = rels[pick % rels.len()];
                g.set_rel_prop(id, format!("p{prop}"), Value::Int(*val))
                    .unwrap();
            }
        }
    }
}

/// A comparable dump of full graph state: every record plus the id
/// watermarks (record equality alone would miss allocator divergence).
fn dump(g: &Graph) -> Vec<String> {
    let mut out = vec![format!("watermarks {:?}", g.id_watermarks())];
    out.extend(g.nodes().map(|n| format!("{n:?}")));
    out.extend(g.rels().map(|r| format!("{r:?}")));
    out
}

/// Run `steps` inside one transaction from an empty graph; return the
/// graph and its committed op log.
fn run_script(steps: &[Step]) -> (Graph, Vec<Op>) {
    let mut g = Graph::new();
    g.begin().unwrap();
    for s in steps {
        apply(&mut g, s);
    }
    let ops = g.commit().unwrap();
    (g, ops)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn serialize_deserialize_apply_matches_apply(
        steps in prop::collection::vec(step_strategy(), 0..40),
    ) {
        let (original, ops) = run_script(&steps);

        // Codec round-trip: identical ops, full consumption.
        let mut buf = Vec::new();
        encode_ops(&ops, &mut buf);
        let mut r = Reader::new(&buf);
        let decoded = decode_ops(&mut r).unwrap();
        prop_assert!(r.is_empty(), "codec left {} undecoded bytes", r.remaining());
        prop_assert_eq!(&decoded, &ops);

        // Replaying the decoded stream on a fresh graph reproduces the
        // directly-mutated graph — the WAL recovery path in miniature.
        let mut replayed = Graph::new();
        replayed.apply_committed_ops(&decoded).unwrap();
        prop_assert_eq!(dump(&replayed), dump(&original));
    }

    #[test]
    fn apply_then_invert_is_identity(
        pre in prop::collection::vec(step_strategy(), 0..20),
        tx in prop::collection::vec(step_strategy(), 0..20),
    ) {
        let mut g = Graph::new();
        for s in &pre {
            apply(&mut g, s);
        }
        let before = dump(&g);

        g.begin().unwrap();
        for s in &tx {
            apply(&mut g, s);
        }
        let ops = g.commit().unwrap();

        // Double inversion is the identity on every committed op.
        for op in &ops {
            prop_assert_eq!(&op.invert().invert(), op);
        }

        // Forward-applying the inverted ops in reverse order restores the
        // pre-transaction records exactly. The id allocators never move
        // backwards (by design), so compare records, not watermarks.
        let inverse: Vec<Op> = ops.iter().rev().map(Op::invert).collect();
        g.apply_committed_ops(&inverse).unwrap();
        let mut after = dump(&g);
        after[0] = before[0].clone();
        prop_assert_eq!(after, before);
    }
}
