//! MVCC-lite battery: snapshot isolation, epoch lifecycle, version
//! reclamation, per-snapshot probe counters, and a threaded smoke test.

use pg_graph::{Graph, GraphView, PropertyMap, Value};

fn props(pairs: &[(&str, Value)]) -> PropertyMap {
    pairs
        .iter()
        .map(|(k, v)| (k.to_string(), v.clone()))
        .collect()
}

/// One committed "account" graph step: a node per call, tagged with the
/// commit counter.
fn commit_tagged_node(g: &mut Graph, tag: i64) {
    g.begin().unwrap();
    g.create_node(["A"], props(&[("v", Value::Int(tag))]))
        .unwrap();
    g.commit().unwrap();
}

#[test]
fn snapshots_pin_committed_epochs() {
    let mut g = Graph::new();
    g.create_node(["A"], props(&[("v", Value::Int(0))]))
        .unwrap();

    let s0 = g.snapshot();
    assert_eq!(s0.node_count(), 1);

    commit_tagged_node(&mut g, 1);
    let s1 = g.snapshot();
    commit_tagged_node(&mut g, 2);
    let s2 = g.snapshot();

    // Each snapshot still answers from its own version.
    assert_eq!(s0.node_count(), 1);
    assert_eq!(s1.node_count(), 2);
    assert_eq!(s2.node_count(), 3);
    assert_eq!(g.node_count(), 3);

    // Epochs are strictly increasing across commits.
    assert!(s0.epoch() < s1.epoch());
    assert!(s1.epoch() < s2.epoch());

    // Full GraphView answers come from the pinned version, not the live one.
    assert_eq!(s1.nodes_with_label("A").len(), 2);
    assert_eq!(s1.all_node_ids().len(), 2);
}

#[test]
fn unchanged_commit_boundaries_do_not_advance_the_epoch() {
    let mut g = Graph::new();
    commit_tagged_node(&mut g, 1);
    let e1 = g.snapshot().epoch();
    let e2 = g.snapshot().epoch();
    assert_eq!(e1, e2);
    g.begin().unwrap();
    g.commit().unwrap();
    assert_eq!(g.snapshot().epoch(), e1);
    commit_tagged_node(&mut g, 2);
    assert_eq!(g.snapshot().epoch(), e1 + 1);
}

#[test]
fn mid_transaction_snapshot_sees_previous_commit_only() {
    let mut g = Graph::new();
    let handle = g.reader_handle();
    commit_tagged_node(&mut g, 1);

    g.begin().unwrap();
    g.create_node(["A"], props(&[("v", Value::Int(99))]))
        .unwrap();
    g.create_node(["A"], props(&[("v", Value::Int(100))]))
        .unwrap();

    // Pinned mid-transaction: exposes the state as of the last commit.
    let mid = handle.snapshot();
    assert_eq!(mid.node_count(), 1);
    let mid2 = g.snapshot();
    assert_eq!(mid2.node_count(), 1);
    assert_eq!(mid.epoch(), mid2.epoch());

    g.commit().unwrap();
    assert_eq!(handle.snapshot().node_count(), 3);
    assert!(handle.snapshot().epoch() > mid.epoch());
}

#[test]
fn rollback_restores_and_republishes_consistent_state() {
    let mut g = Graph::new();
    g.create_index("A", "v");
    commit_tagged_node(&mut g, 7);
    let before = g.snapshot();

    g.begin().unwrap();
    let n = g
        .create_node(["A"], props(&[("v", Value::Int(8))]))
        .unwrap();
    g.set_node_prop(n, "w", Value::Int(1)).unwrap();
    g.rollback().unwrap();

    let after = g.snapshot();
    assert_eq!(after.node_count(), before.node_count());
    assert_eq!(
        after.nodes_with_prop("A", "v", &Value::Int(7)),
        before.nodes_with_prop("A", "v", &Value::Int(7))
    );
    assert_eq!(
        after.nodes_with_prop("A", "v", &Value::Int(8)),
        Some(Vec::new())
    );
}

#[test]
fn snapshots_serve_index_probes_and_ordered_walks() {
    let mut g = Graph::new();
    g.create_index("A", "v");
    g.create_composite_index("A", &["v".to_string(), "w".to_string()]);
    for i in 0..20 {
        g.create_node(
            ["A"],
            props(&[("v", Value::Int(i % 5)), ("w", Value::Int(i))]),
        )
        .unwrap();
    }
    let snap = g.snapshot();

    // Equality probe against the pinned property index.
    assert_eq!(
        snap.nodes_with_prop("A", "v", &Value::Int(3))
            .unwrap()
            .len(),
        4
    );

    // Ordered walk (top-k path) against the pinned index.
    let walk: Vec<_> = snap
        .nodes_in_prop_order("A", "v", true)
        .unwrap()
        .take(4)
        .collect();
    assert_eq!(walk.len(), 4);
    for id in &walk {
        assert_eq!(snap.node_prop(*id, "v"), Some(Value::Int(4)));
    }

    // Composite probe against the pinned composite index.
    let both = snap
        .nodes_with_composite(
            "A",
            &["v".to_string(), "w".to_string()],
            &[Value::Int(2)],
            pg_graph::CompositeTrailing::None,
        )
        .unwrap();
    assert_eq!(both.len(), 4);

    // The snapshot keeps answering identically after further commits.
    commit_tagged_node(&mut g, 999);
    assert_eq!(
        snap.nodes_with_prop("A", "v", &Value::Int(3))
            .unwrap()
            .len(),
        4
    );
}

#[test]
fn probe_counters_are_per_snapshot() {
    let mut g = Graph::new();
    g.create_index("A", "v");
    g.create_node(["A"], props(&[("v", Value::Int(1))]))
        .unwrap();

    let s1 = g.snapshot();
    let s2 = g.snapshot();
    g.reset_index_probes();

    s1.nodes_with_prop("A", "v", &Value::Int(1));
    s1.nodes_with_prop("A", "v", &Value::Int(1));
    s2.count_nodes_with_prop("A", "v", &Value::Int(1));

    assert_eq!(s1.index_probes().materializing, 2);
    assert_eq!(s1.index_probes().counting, 0);
    assert_eq!(s2.index_probes().materializing, 0);
    assert_eq!(s2.index_probes().counting, 1);
    // Reader activity never pollutes the writer's counters.
    assert_eq!(g.index_probes(), pg_graph::IndexProbes::default());

    s1.reset_index_probes();
    assert_eq!(s1.index_probes().materializing, 0);
    assert_eq!(s2.index_probes().counting, 1);
}

#[test]
fn exclusive_mode_pays_no_sharing() {
    let mut g = Graph::new();
    for _ in 0..50 {
        commit_tagged_node(&mut g, 1);
    }
    // No publisher was ever created: the state root stays unshared.
    assert_eq!(g.state_refcount(), 1);
}

#[test]
fn old_versions_stay_readable_and_are_reclaimed_on_drop() {
    let mut g = Graph::new();
    let handle = g.reader_handle();
    commit_tagged_node(&mut g, 0);

    let old = handle.snapshot();
    let old_count = old.node_count();

    for tag in 1..=25 {
        commit_tagged_node(&mut g, tag);
    }

    // The old version survived 25 commits untouched...
    assert_eq!(old.node_count(), old_count);
    // ...and this snapshot is its last holder: the writer and the
    // publisher slot have both moved on.
    assert_eq!(old.state_refcount(), 1);

    // The current version is held by exactly the graph and the slot.
    assert_eq!(g.state_refcount(), 2);

    // Pinning the current epoch bumps the live root; dropping returns it.
    let cur1 = handle.snapshot();
    let cur2 = handle.snapshot();
    assert_eq!(g.state_refcount(), 4);
    assert_eq!(cur1.epoch(), cur2.epoch());
    drop(cur1);
    drop(cur2);
    assert_eq!(g.state_refcount(), 2);

    // Dropping the last holder of the old version reclaims it; the live
    // root is unaffected.
    drop(old);
    assert_eq!(g.state_refcount(), 2);
}

#[test]
fn lapsed_publication_skips_slot_and_catches_up() {
    let mut g = Graph::new();
    let handle = g.reader_handle();
    commit_tagged_node(&mut g, 0);
    let published_epoch = handle.snapshot().epoch();
    drop(handle);

    // With every handle dropped, commit boundaries skip the slot: the
    // writer stays the sole owner of its state root (exclusive-mode
    // cost), while the slot keeps pinning the last version it saw.
    for tag in 1..=10 {
        commit_tagged_node(&mut g, tag);
    }
    assert_eq!(g.state_refcount(), 1);

    // A fresh handle catches the slot up to the present before serving.
    let handle = g.reader_handle();
    let snap = handle.snapshot();
    assert_eq!(snap.node_count(), 11);
    assert!(snap.epoch() > published_epoch);
    assert_eq!(snap.epoch(), g.epoch());
}

#[test]
fn mid_tx_handle_after_lapse_serves_boundary_state_if_clean() {
    let mut g = Graph::new();
    drop(g.reader_handle());
    for tag in 0..5 {
        commit_tagged_node(&mut g, tag);
    }

    // The transaction has not mutated anything yet, so the writer's
    // state is still exactly the last commit boundary: minting a handle
    // here publishes it and serves it.
    g.begin().unwrap();
    let snap = g.snapshot();
    assert_eq!(snap.node_count(), 5);
    g.create_node(["A"], props(&[("v", Value::Int(99))]))
        .unwrap();
    assert_eq!(snap.node_count(), 5);
    g.commit().unwrap();
}

#[test]
#[should_panic(expected = "publication lapsed")]
fn mid_tx_handle_after_lapse_panics_once_dirty() {
    let mut g = Graph::new();
    drop(g.reader_handle());
    commit_tagged_node(&mut g, 0);

    g.begin().unwrap();
    g.create_node(["A"], props(&[("v", Value::Int(1))]))
        .unwrap();
    // The skipped boundary's version has been overwritten in place; no
    // snapshot can be served any more.
    let _ = g.reader_handle();
}

#[test]
#[should_panic(expected = "outside a transaction")]
fn first_reader_handle_inside_a_transaction_panics() {
    let mut g = Graph::new();
    g.begin().unwrap();
    g.create_node(["A"], PropertyMap::new()).unwrap();
    let _ = g.reader_handle();
}

/// Threaded smoke: a writer committing invariant-preserving transactions
/// (one :A and one :B node per commit) while readers hammer snapshots.
/// Every snapshot must satisfy the invariant |A| == |B|.
#[test]
fn concurrent_readers_only_see_invariant_states() {
    let mut g = Graph::new();
    g.create_index("A", "v");
    let handle = g.reader_handle();

    let commits = 300usize;
    let readers = 4usize;

    std::thread::scope(|scope| {
        let mut joins = Vec::new();
        for _ in 0..readers {
            let h = handle.clone();
            joins.push(scope.spawn(move || {
                let mut checked = 0usize;
                let mut last_epoch = 0u64;
                while checked < 400 {
                    let snap = h.snapshot();
                    assert!(snap.epoch() >= last_epoch, "epochs must be monotonic");
                    last_epoch = snap.epoch();
                    let a = snap.nodes_with_label("A").len();
                    let b = snap.nodes_with_label("B").len();
                    assert_eq!(a, b, "snapshot exposed a half-applied commit");
                    // Index answers agree with the extent on the same pin.
                    if a > 0 {
                        let hits = snap
                            .nodes_with_prop("A", "v", &Value::Int((a - 1) as i64))
                            .unwrap();
                        assert_eq!(hits.len(), 1);
                    }
                    checked += 1;
                }
            }));
        }

        for i in 0..commits {
            g.begin().unwrap();
            g.create_node(["A"], props(&[("v", Value::Int(i as i64))]))
                .unwrap();
            g.create_node(["B"], props(&[("v", Value::Int(i as i64))]))
                .unwrap();
            g.commit().unwrap();
        }

        for j in joins {
            j.join().unwrap();
        }
    });

    assert_eq!(g.node_count(), 2 * commits);
}
