//! Relationship-property-index consistency under random mutation scripts.
//!
//! Mirror of `prop_index_consistency` for the `(type, key, value)` →
//! relationship indexes: after every step — rel creation/deletion (incl.
//! detach-deleting an endpoint), property set/remove, index DDL, `begin`,
//! `commit`, `rollback`, and mid-transaction `rollback_to` — every
//! equality and range lookup must agree with a brute-force scan over all
//! relationships.

use pg_graph::{Graph, GraphView, PropertyMap, RelId, StatementMark, Value};
use proptest::prelude::*;
use std::cmp::Ordering;
use std::collections::BTreeSet;
use std::ops::Bound;

#[derive(Debug, Clone)]
enum Step {
    CreateNode,
    CreateRel {
        src: usize,
        dst: usize,
        ty: u8,
        prop: u8,
        val: i64,
    },
    DeleteRel {
        pick: usize,
    },
    DetachDeleteNode {
        pick: usize,
    },
    SetRelProp {
        pick: usize,
        prop: u8,
        val: i64,
    },
    SetRelFloatProp {
        pick: usize,
        prop: u8,
        val: i64,
    },
    SetRelHugeProp {
        pick: usize,
        prop: u8,
        sel: u8,
    },
    RemoveRelProp {
        pick: usize,
        prop: u8,
    },
    SetRelNullProp {
        pick: usize,
        prop: u8,
    },
    CreateIndex {
        ty: u8,
        prop: u8,
    },
    DropIndex {
        ty: u8,
        prop: u8,
    },
    Begin,
    Mark,
    RollbackTo,
    Rollback,
    Commit,
}

fn step_strategy() -> impl Strategy<Value = Step> {
    prop_oneof![
        Just(Step::CreateNode),
        (0usize..16, 0usize..16, 0u8..2, 0u8..3, -4i64..4).prop_map(|(src, dst, ty, prop, val)| {
            Step::CreateRel {
                src,
                dst,
                ty,
                prop,
                val,
            }
        }),
        (0usize..16).prop_map(|pick| Step::DeleteRel { pick }),
        (0usize..16).prop_map(|pick| Step::DetachDeleteNode { pick }),
        (0usize..16, 0u8..3, -4i64..4).prop_map(|(pick, prop, val)| Step::SetRelProp {
            pick,
            prop,
            val
        }),
        (0usize..16, 0u8..3, -4i64..4).prop_map(|(pick, prop, val)| Step::SetRelFloatProp {
            pick,
            prop,
            val
        }),
        (0usize..16, 0u8..3, 0u8..4).prop_map(|(pick, prop, sel)| Step::SetRelHugeProp {
            pick,
            prop,
            sel
        }),
        (0usize..16, 0u8..3).prop_map(|(pick, prop)| Step::RemoveRelProp { pick, prop }),
        (0usize..16, 0u8..3).prop_map(|(pick, prop)| Step::SetRelNullProp { pick, prop }),
        (0u8..2, 0u8..3).prop_map(|(ty, prop)| Step::CreateIndex { ty, prop }),
        (0u8..2, 0u8..3).prop_map(|(ty, prop)| Step::DropIndex { ty, prop }),
        Just(Step::Begin),
        Just(Step::Mark),
        Just(Step::RollbackTo),
        Just(Step::Rollback),
        Just(Step::Commit),
    ]
}

fn type_name(i: u8) -> String {
    format!("T{i}")
}
fn prop_name(i: u8) -> String {
    format!("p{i}")
}

#[derive(Default)]
struct Driver {
    marks: Vec<StatementMark>,
}

impl Driver {
    fn apply(&mut self, g: &mut Graph, step: &Step) {
        let nodes = g.all_node_ids();
        let rels = g.all_rel_ids();
        match step {
            Step::CreateNode => {
                g.create_node(["N"], PropertyMap::new()).unwrap();
            }
            Step::CreateRel {
                src,
                dst,
                ty,
                prop,
                val,
            } => {
                if !nodes.is_empty() {
                    let s = nodes[src % nodes.len()];
                    let d = nodes[dst % nodes.len()];
                    let props: PropertyMap =
                        [(prop_name(*prop), Value::Int(*val))].into_iter().collect();
                    g.create_rel(s, d, type_name(*ty), props).unwrap();
                }
            }
            Step::DeleteRel { pick } => {
                if !rels.is_empty() {
                    g.delete_rel(rels[pick % rels.len()]).unwrap();
                }
            }
            Step::DetachDeleteNode { pick } => {
                if !nodes.is_empty() {
                    g.detach_delete_node(nodes[pick % nodes.len()]).unwrap();
                }
            }
            Step::SetRelProp { pick, prop, val } => {
                if !rels.is_empty() {
                    g.set_rel_prop(rels[pick % rels.len()], prop_name(*prop), Value::Int(*val))
                        .unwrap();
                }
            }
            Step::SetRelFloatProp { pick, prop, val } => {
                if !rels.is_empty() {
                    g.set_rel_prop(
                        rels[pick % rels.len()],
                        prop_name(*prop),
                        Value::Float(*val as f64),
                    )
                    .unwrap();
                }
            }
            Step::SetRelHugeProp { pick, prop, sel } => {
                if !rels.is_empty() {
                    let bound = 1i64 << 53;
                    let v = match sel {
                        0 => Value::Int(bound),
                        1 => Value::Int(bound + 1),
                        2 => Value::Float(bound as f64),
                        _ => Value::Int(bound - 1),
                    };
                    g.set_rel_prop(rels[pick % rels.len()], prop_name(*prop), v)
                        .unwrap();
                }
            }
            Step::RemoveRelProp { pick, prop } => {
                if !rels.is_empty() {
                    g.remove_rel_prop(rels[pick % rels.len()], &prop_name(*prop))
                        .unwrap();
                }
            }
            Step::SetRelNullProp { pick, prop } => {
                if !rels.is_empty() {
                    g.set_rel_prop(rels[pick % rels.len()], prop_name(*prop), Value::Null)
                        .unwrap();
                }
            }
            Step::CreateIndex { ty, prop } => {
                g.create_rel_index(&type_name(*ty), &prop_name(*prop));
            }
            Step::DropIndex { ty, prop } => {
                g.drop_rel_index(&type_name(*ty), &prop_name(*prop));
            }
            Step::Begin => {
                if !g.in_tx() {
                    g.begin().unwrap();
                    self.marks.clear();
                }
            }
            Step::Mark => {
                if g.in_tx() {
                    self.marks.push(g.mark());
                }
            }
            Step::RollbackTo => {
                if g.in_tx() {
                    if let Some(m) = self.marks.pop() {
                        g.rollback_to(m).unwrap();
                    }
                }
            }
            Step::Rollback => {
                if g.in_tx() {
                    g.rollback().unwrap();
                    self.marks.clear();
                }
            }
            Step::Commit => {
                if g.in_tx() {
                    g.commit().unwrap();
                    self.marks.clear();
                }
            }
        }
    }
}

fn in_range3(v: &Value, lower: &Bound<&Value>, upper: &Bound<&Value>) -> bool {
    let lo_ok = match lower {
        Bound::Unbounded => true,
        Bound::Included(b) => matches!(v.cmp3(b), Some(Ordering::Greater | Ordering::Equal)),
        Bound::Excluded(b) => matches!(v.cmp3(b), Some(Ordering::Greater)),
    };
    let hi_ok = match upper {
        Bound::Unbounded => true,
        Bound::Included(b) => matches!(v.cmp3(b), Some(Ordering::Less | Ordering::Equal)),
        Bound::Excluded(b) => matches!(v.cmp3(b), Some(Ordering::Less)),
    };
    lo_ok && hi_ok
}

/// Rel-index lookups == brute-force scans over all relationships.
fn check_rel_index_vs_scan(g: &Graph) {
    let all = g.all_rel_ids();
    let mut universe: Vec<Value> = (-5i64..6).map(Value::Int).collect();
    universe.extend([-1i64, 0, 1].map(|v| Value::Float(v as f64)));
    universe.push(Value::Int((1i64 << 53) - 1));
    for (ty, key) in g.rel_indexes() {
        for value in &universe {
            let via_index: BTreeSet<RelId> = g
                .rels_with_prop(&ty, &key, value)
                .unwrap_or_else(|| panic!("rel index on ({ty},{key}) must answer"))
                .into_iter()
                .collect();
            let via_scan: BTreeSet<RelId> = all
                .iter()
                .copied()
                .filter(|&id| {
                    g.rel_type(id).as_deref() == Some(ty.as_str())
                        && g.rel_prop(id, &key)
                            .is_some_and(|have| have.eq3(value) == Some(true))
                })
                .collect();
            assert_eq!(
                via_index, via_scan,
                "rel index ({ty},{key}) diverged from scan for {value}"
            );
        }
        for (lo, hi) in [
            (Bound::Included(&universe[3]), Bound::Unbounded),
            (Bound::Unbounded, Bound::Excluded(&universe[7])),
            (Bound::Excluded(&universe[2]), Bound::Included(&universe[8])),
        ] {
            if let Some(ids) = g.rels_in_prop_range(&ty, &key, lo, hi) {
                let via_index: BTreeSet<RelId> = ids.into_iter().collect();
                let via_scan: BTreeSet<RelId> = all
                    .iter()
                    .copied()
                    .filter(|&id| {
                        g.rel_type(id).as_deref() == Some(ty.as_str())
                            && g.rel_prop(id, &key)
                                .is_some_and(|have| in_range3(&have, &lo, &hi))
                    })
                    .collect();
                assert_eq!(
                    via_index, via_scan,
                    "rel range on ({ty},{key}) diverged for ({lo:?}, {hi:?})"
                );
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn rel_index_equals_scan_after_every_step(script in prop::collection::vec(step_strategy(), 0..60)) {
        let mut g = Graph::new();
        let mut d = Driver::default();
        for step in &script {
            d.apply(&mut g, step);
            check_rel_index_vs_scan(&g);
        }
        if g.in_tx() {
            g.rollback().unwrap();
            check_rel_index_vs_scan(&g);
        }
    }

    #[test]
    fn rel_index_equals_scan_after_full_rollback(pre in prop::collection::vec(step_strategy(), 0..25),
                                                 tx in prop::collection::vec(step_strategy(), 0..25)) {
        let mut g = Graph::new();
        for t in 0..2u8 {
            for p in 0..3u8 {
                g.create_rel_index(&type_name(t), &prop_name(p));
            }
        }
        let mut d = Driver::default();
        for step in &pre {
            d.apply(&mut g, step);
        }
        if g.in_tx() {
            g.commit().unwrap();
        }
        g.begin().unwrap();
        for step in &tx {
            if matches!(step, Step::Begin | Step::Rollback | Step::Commit) {
                continue;
            }
            d.apply(&mut g, step);
        }
        g.rollback().unwrap();
        check_rel_index_vs_scan(&g);
    }
}
