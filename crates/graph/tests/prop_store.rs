//! Property-based tests for the graph store.
//!
//! Invariants checked under random operation sequences:
//! * rollback restores the exact pre-transaction state;
//! * the label index always equals a full scan;
//! * adjacency is consistent with relationship endpoints;
//! * the pre-state view of a statement equals the actual pre-state;
//! * delta normalization is sound (created ∩ deleted = ∅, events never
//!   reference items created later in the same slice).

use pg_graph::{Direction, Graph, GraphView, NodeId, PreStateView, PropertyMap, Value};
use proptest::prelude::*;
use std::collections::BTreeSet;

/// A random mutation script step, referencing nodes/rels by dense index so
/// scripts stay valid regardless of prior steps.
#[derive(Debug, Clone)]
enum Step {
    CreateNode { label: u8, prop: u8, val: i64 },
    DetachDelete { pick: usize },
    CreateRel { src: usize, dst: usize, ty: u8 },
    DeleteRel { pick: usize },
    SetProp { pick: usize, prop: u8, val: i64 },
    RemoveProp { pick: usize, prop: u8 },
    SetLabel { pick: usize, label: u8 },
    RemoveLabel { pick: usize, label: u8 },
}

fn step_strategy() -> impl Strategy<Value = Step> {
    prop_oneof![
        (0u8..4, 0u8..3, -5i64..5).prop_map(|(label, prop, val)| Step::CreateNode {
            label,
            prop,
            val
        }),
        (0usize..16).prop_map(|pick| Step::DetachDelete { pick }),
        (0usize..16, 0usize..16, 0u8..3).prop_map(|(src, dst, ty)| Step::CreateRel {
            src,
            dst,
            ty
        }),
        (0usize..16).prop_map(|pick| Step::DeleteRel { pick }),
        (0usize..16, 0u8..3, -5i64..5).prop_map(|(pick, prop, val)| Step::SetProp {
            pick,
            prop,
            val
        }),
        (0usize..16, 0u8..3).prop_map(|(pick, prop)| Step::RemoveProp { pick, prop }),
        (0usize..16, 0u8..4).prop_map(|(pick, label)| Step::SetLabel { pick, label }),
        (0usize..16, 0u8..4).prop_map(|(pick, label)| Step::RemoveLabel { pick, label }),
    ]
}

fn label_name(i: u8) -> String {
    format!("L{i}")
}
fn prop_name(i: u8) -> String {
    format!("p{i}")
}

fn apply(g: &mut Graph, step: &Step) {
    let nodes = g.all_node_ids();
    let rels = g.all_rel_ids();
    match step {
        Step::CreateNode { label, prop, val } => {
            let props: PropertyMap = [(prop_name(*prop), Value::Int(*val))].into_iter().collect();
            g.create_node([label_name(*label)], props).unwrap();
        }
        Step::DetachDelete { pick } => {
            if !nodes.is_empty() {
                let id = nodes[pick % nodes.len()];
                g.detach_delete_node(id).unwrap();
            }
        }
        Step::CreateRel { src, dst, ty } => {
            if !nodes.is_empty() {
                let s = nodes[src % nodes.len()];
                let d = nodes[dst % nodes.len()];
                g.create_rel(s, d, format!("T{ty}"), PropertyMap::new())
                    .unwrap();
            }
        }
        Step::DeleteRel { pick } => {
            if !rels.is_empty() {
                g.delete_rel(rels[pick % rels.len()]).unwrap();
            }
        }
        Step::SetProp { pick, prop, val } => {
            if !nodes.is_empty() {
                let id = nodes[pick % nodes.len()];
                g.set_node_prop(id, prop_name(*prop), Value::Int(*val))
                    .unwrap();
            }
        }
        Step::RemoveProp { pick, prop } => {
            if !nodes.is_empty() {
                let id = nodes[pick % nodes.len()];
                g.remove_node_prop(id, &prop_name(*prop)).unwrap();
            }
        }
        Step::SetLabel { pick, label } => {
            if !nodes.is_empty() {
                let id = nodes[pick % nodes.len()];
                g.set_label(id, label_name(*label)).unwrap();
            }
        }
        Step::RemoveLabel { pick, label } => {
            if !nodes.is_empty() {
                let id = nodes[pick % nodes.len()];
                g.remove_label(id, &label_name(*label)).unwrap();
            }
        }
    }
}

/// A comparable snapshot of full graph state.
fn snapshot(g: &Graph) -> Vec<String> {
    let mut out = Vec::new();
    for id in g.all_node_ids() {
        let n = g.node(id).unwrap();
        out.push(format!("{:?}", n));
    }
    for id in g.all_rel_ids() {
        let r = g.rel(id).unwrap();
        out.push(format!("{:?}", r));
    }
    out
}

fn check_indexes(g: &Graph) {
    // label index == scan
    for label in g.labels() {
        let via_index: BTreeSet<NodeId> = g.nodes_with_label(&label).into_iter().collect();
        let via_scan: BTreeSet<NodeId> = g
            .all_node_ids()
            .into_iter()
            .filter(|&id| g.node_has_label(id, &label))
            .collect();
        assert_eq!(via_index, via_scan, "label index diverged for {label}");
    }
    // adjacency consistent with endpoints
    for rid in g.all_rel_ids() {
        let (s, d) = g.rel_endpoints(rid).unwrap();
        assert!(g.rels_of(s, Direction::Out).contains(&rid));
        assert!(g.rels_of(d, Direction::In).contains(&rid));
    }
    for nid in g.all_node_ids() {
        for rid in g.rels_of(nid, Direction::Both) {
            let (s, d) = g.rel_endpoints(rid).unwrap();
            assert!(s == nid || d == nid, "adjacency lists phantom rel");
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn rollback_restores_state(pre in prop::collection::vec(step_strategy(), 0..20),
                               tx in prop::collection::vec(step_strategy(), 0..20)) {
        let mut g = Graph::new();
        for s in &pre { apply(&mut g, s); }
        let before = snapshot(&g);
        g.begin().unwrap();
        for s in &tx { apply(&mut g, s); }
        g.rollback().unwrap();
        prop_assert_eq!(snapshot(&g), before);
        check_indexes(&g);
    }

    #[test]
    fn indexes_consistent_after_commit(pre in prop::collection::vec(step_strategy(), 0..20),
                                       tx in prop::collection::vec(step_strategy(), 0..20)) {
        let mut g = Graph::new();
        for s in &pre { apply(&mut g, s); }
        g.begin().unwrap();
        for s in &tx { apply(&mut g, s); }
        g.commit().unwrap();
        check_indexes(&g);
    }

    #[test]
    fn pre_state_view_matches_actual_pre_state(pre in prop::collection::vec(step_strategy(), 0..15),
                                               stmt in prop::collection::vec(step_strategy(), 0..15)) {
        // Build the pre-state twice: once as a live graph (reference), once
        // via PreStateView over the post-state.
        let mut reference = Graph::new();
        for s in &pre { apply(&mut reference, s); }

        let mut g = Graph::new();
        for s in &pre { apply(&mut g, s); }
        g.begin().unwrap();
        let mark = g.mark();
        for s in &stmt { apply(&mut g, s); }
        let ops = g.ops_since(mark).to_vec();
        let view = PreStateView::new(&g, &ops);

        prop_assert_eq!(view.all_node_ids(), reference.all_node_ids());
        prop_assert_eq!(view.all_rel_ids(), reference.all_rel_ids());
        for id in reference.all_node_ids() {
            let mut want = reference.node_labels(id);
            want.sort();
            let mut got = view.node_labels(id);
            got.sort();
            prop_assert_eq!(got, want);
            for key in reference.node_prop_keys(id) {
                prop_assert_eq!(view.node_prop(id, &key), reference.node_prop(id, &key));
            }
            prop_assert_eq!(view.node_prop_keys(id), reference.node_prop_keys(id));
            let mut want_r = reference.rels_of(id, Direction::Both);
            want_r.sort();
            let mut got_r = view.rels_of(id, Direction::Both);
            got_r.sort();
            prop_assert_eq!(got_r, want_r);
        }
        for id in reference.all_rel_ids() {
            prop_assert_eq!(view.rel_type(id), reference.rel_type(id));
            prop_assert_eq!(view.rel_endpoints(id), reference.rel_endpoints(id));
        }
    }

    #[test]
    fn delta_is_sound(pre in prop::collection::vec(step_strategy(), 0..15),
                      stmt in prop::collection::vec(step_strategy(), 0..15)) {
        let mut g = Graph::new();
        for s in &pre { apply(&mut g, s); }
        g.begin().unwrap();
        let mark = g.mark();
        for s in &stmt { apply(&mut g, s); }
        let delta = g.delta_since(mark);

        let created: BTreeSet<_> = delta.created_nodes.iter().map(|n| n.id).collect();
        let deleted: BTreeSet<_> = delta.deleted_nodes.iter().map(|n| n.id).collect();
        prop_assert!(created.is_disjoint(&deleted), "node created and deleted in same delta");

        // Created nodes exist with exactly the recorded final state.
        for rec in &delta.created_nodes {
            prop_assert!(g.node_exists(rec.id));
            prop_assert_eq!(g.node(rec.id).unwrap(), rec);
        }
        // Deleted nodes are gone.
        for rec in &delta.deleted_nodes {
            prop_assert!(!g.node_exists(rec.id));
        }
        // Net label assignments hold in the post-state, on pre-existing nodes.
        for ev in &delta.assigned_labels {
            prop_assert!(!created.contains(&ev.node));
            prop_assert!(g.node_has_label(ev.node, &ev.label));
        }
        for ev in &delta.removed_labels {
            prop_assert!(!g.node_has_label(ev.node, &ev.label));
        }
        // Assigned props carry the true old (pre-state) and new (post-state) values.
        let ops = g.ops_since(mark).to_vec();
        let pre_view = PreStateView::new(&g, &ops);
        for pa in &delta.assigned_node_props {
            prop_assert_eq!(g.node_prop(pa.target, &pa.key).unwrap_or(Value::Null), pa.new.clone());
            prop_assert_eq!(pre_view.node_prop(pa.target, &pa.key).unwrap_or(Value::Null), pa.old.clone());
        }
        for pr in &delta.removed_node_props {
            prop_assert_eq!(g.node_prop(pr.target, &pr.key), None);
            prop_assert_eq!(pre_view.node_prop(pr.target, &pr.key), Some(pr.old.clone()));
        }
    }
}
