//! Degree-statistics consistency under random mutation/rollback scripts.
//!
//! The planner v4 join-output estimator divides the per-(label, rel-type,
//! direction) **edge count** by the label cardinality to get the average
//! join fanout. That numerator must therefore be *exact* after every
//! step — plain mutations, label churn, `begin`, `commit`, `rollback`,
//! and mid-transaction `rollback_to` — or estimates drift permanently as
//! scripts interleave mutations with undos. The [`DegreeHistogram`] is
//! held to its weaker documented contract: per-bucket node counts within
//! `drift` of exact, and exact (drift 0) right after
//! [`Graph::rebuild_stats`].

use pg_graph::{
    degree_bucket, DegreeHistogram, Direction, Graph, GraphView, PropertyMap, StatementMark,
};
use proptest::prelude::*;

const LABELS: [&str; 3] = ["L0", "L1", "L2"];
const TYPES: [&str; 2] = ["T0", "T1"];

#[derive(Debug, Clone)]
enum Step {
    CreateNode { labels: u8 },
    CreateRel { src: usize, dst: usize, ty: u8 },
    DeleteRel { pick: usize },
    DetachDelete { pick: usize },
    SetLabel { pick: usize, label: u8 },
    RemoveLabel { pick: usize, label: u8 },
    RebuildStats,
    Begin,
    Mark,
    RollbackTo,
    Rollback,
    Commit,
}

fn step_strategy() -> impl Strategy<Value = Step> {
    prop_oneof![
        (0u8..8).prop_map(|labels| Step::CreateNode { labels }),
        (0usize..16, 0usize..16, 0u8..2).prop_map(|(src, dst, ty)| Step::CreateRel {
            src,
            dst,
            ty
        }),
        (0usize..16).prop_map(|pick| Step::DeleteRel { pick }),
        (0usize..16).prop_map(|pick| Step::DetachDelete { pick }),
        (0usize..16, 0u8..3).prop_map(|(pick, label)| Step::SetLabel { pick, label }),
        (0usize..16, 0u8..3).prop_map(|(pick, label)| Step::RemoveLabel { pick, label }),
        Just(Step::RebuildStats),
        Just(Step::Begin),
        Just(Step::Mark),
        Just(Step::RollbackTo),
        Just(Step::Rollback),
        Just(Step::Commit),
    ]
}

#[derive(Default)]
struct Driver {
    marks: Vec<StatementMark>,
}

impl Driver {
    fn apply(&mut self, g: &mut Graph, step: &Step) {
        let nodes = g.all_node_ids();
        let rels = g.all_rel_ids();
        match step {
            Step::CreateNode { labels } => {
                // 3-bit mask over LABELS, so nodes carry 0..=3 labels
                let ls: Vec<&str> = LABELS
                    .iter()
                    .enumerate()
                    .filter(|(i, _)| labels & (1 << i) != 0)
                    .map(|(_, l)| *l)
                    .collect();
                g.create_node(ls, PropertyMap::new()).unwrap();
            }
            Step::CreateRel { src, dst, ty } => {
                if !nodes.is_empty() {
                    let s = nodes[src % nodes.len()];
                    let d = nodes[dst % nodes.len()]; // self-loops included
                    g.create_rel(s, d, TYPES[*ty as usize], PropertyMap::new())
                        .unwrap();
                }
            }
            Step::DeleteRel { pick } => {
                if !rels.is_empty() {
                    g.delete_rel(rels[pick % rels.len()]).unwrap();
                }
            }
            Step::DetachDelete { pick } => {
                if !nodes.is_empty() {
                    g.detach_delete_node(nodes[pick % nodes.len()]).unwrap();
                }
            }
            Step::SetLabel { pick, label } => {
                if !nodes.is_empty() {
                    g.set_label(nodes[pick % nodes.len()], LABELS[*label as usize])
                        .unwrap();
                }
            }
            Step::RemoveLabel { pick, label } => {
                if !nodes.is_empty() {
                    g.remove_label(nodes[pick % nodes.len()], LABELS[*label as usize])
                        .unwrap();
                }
            }
            Step::RebuildStats => g.rebuild_stats(),
            Step::Begin => {
                if !g.in_tx() {
                    g.begin().unwrap();
                    self.marks.clear();
                }
            }
            Step::Mark => {
                if g.in_tx() {
                    self.marks.push(g.mark());
                }
            }
            Step::RollbackTo => {
                if g.in_tx() {
                    if let Some(m) = self.marks.pop() {
                        g.rollback_to(m).unwrap();
                    }
                }
            }
            Step::Rollback => {
                if g.in_tx() {
                    g.rollback().unwrap();
                    self.marks.clear();
                }
            }
            Step::Commit => {
                if g.in_tx() {
                    g.commit().unwrap();
                    self.marks.clear();
                }
            }
        }
    }
}

/// Brute-force per-node degrees of `label` nodes for `(ty, dir)`:
/// the exact edge total and the exact histogram.
fn brute_force(g: &Graph, label: &str, ty: &str, dir: Direction) -> (usize, DegreeHistogram) {
    let mut edges = 0usize;
    let mut hist = DegreeHistogram::default();
    for id in g.nodes_with_label(label) {
        let d = g
            .rels_of(id, dir)
            .into_iter()
            .filter(|r| g.rel_type(*r).as_deref() == Some(ty))
            .count();
        edges += d;
        if d > 0 {
            hist.buckets[degree_bucket(d)] += 1;
        }
    }
    (edges, hist)
}

/// Degree statistics vs brute force, for every (label, type, direction).
fn check_degree_stats(g: &Graph, require_fresh: bool) {
    for label in LABELS {
        for ty in TYPES {
            let (out_exact, out_hist) = brute_force(g, label, ty, Direction::Out);
            let (in_exact, in_hist) = brute_force(g, label, ty, Direction::In);
            // Edge counts are exact, always.
            assert_eq!(
                g.degree_edge_count(label, ty, Direction::Out),
                Some(out_exact),
                "out-edge count for ({label},{ty})"
            );
            assert_eq!(
                g.degree_edge_count(label, ty, Direction::In),
                Some(in_exact),
                "in-edge count for ({label},{ty})"
            );
            assert_eq!(
                g.degree_edge_count(label, ty, Direction::Both),
                Some(out_exact + in_exact),
                "both-edge count for ({label},{ty})"
            );
            // Histograms are within `drift` of exact; exact when fresh.
            for (dir, exact_hist) in [(Direction::Out, out_hist), (Direction::In, in_hist)] {
                let Some(h) = g.degree_histogram(label, ty, dir) else {
                    // no entry yet: the combination never carried an edge
                    assert_eq!(exact_hist.total_nodes(), 0, "missing hist ({label},{ty})");
                    continue;
                };
                if require_fresh {
                    assert_eq!(h.drift, 0, "fresh hist must have zero drift");
                    assert_eq!(
                        h.buckets, exact_hist.buckets,
                        "fresh hist for ({label},{ty},{dir:?})"
                    );
                } else {
                    assert!(
                        h.total_nodes().abs_diff(exact_hist.total_nodes()) <= h.drift,
                        "hist total {} vs exact {} exceeds drift {} for ({label},{ty},{dir:?})",
                        h.total_nodes(),
                        exact_hist.total_nodes(),
                        h.drift
                    );
                }
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    #[test]
    fn degree_stats_exact_after_every_step(script in prop::collection::vec(step_strategy(), 0..70)) {
        let mut g = Graph::new();
        let mut d = Driver::default();
        for step in &script {
            d.apply(&mut g, step);
            check_degree_stats(&g, false);
        }
        if g.in_tx() {
            g.rollback().unwrap();
            check_degree_stats(&g, false);
        }
        // A rebuild zeroes drift and makes the histograms exact too.
        g.rebuild_stats();
        check_degree_stats(&g, true);
    }

    #[test]
    fn full_rollback_restores_degree_stats(pre in prop::collection::vec(step_strategy(), 0..30),
                                           tx in prop::collection::vec(step_strategy(), 0..30)) {
        let mut g = Graph::new();
        let mut d = Driver::default();
        for step in &pre {
            d.apply(&mut g, step);
        }
        if g.in_tx() {
            g.commit().unwrap();
        }
        let before: Vec<Option<usize>> = combos(&g);
        g.begin().unwrap();
        let mut d2 = Driver::default();
        for step in &tx {
            // nested tx control steps are no-ops inside the forced tx
            if matches!(step, Step::Begin | Step::Commit | Step::Rollback) {
                continue;
            }
            d2.apply(&mut g, step);
        }
        g.rollback().unwrap();
        assert_eq!(combos(&g), before, "edge counts must survive rollback");
        check_degree_stats(&g, false);
    }
}

/// Every (label, type, dir) edge count, in a fixed order.
fn combos(g: &Graph) -> Vec<Option<usize>> {
    let mut out = Vec::new();
    for label in LABELS {
        for ty in TYPES {
            for dir in [Direction::Out, Direction::In, Direction::Both] {
                out.push(g.degree_edge_count(label, ty, dir));
            }
        }
    }
    out
}

/// Snapshots serve the same degree statistics as the live graph.
#[test]
fn snapshots_serve_degree_stats() {
    let mut g = Graph::new();
    let hub = g.create_node(["L0"], PropertyMap::new()).unwrap();
    for _ in 0..5 {
        let n = g.create_node(["L1"], PropertyMap::new()).unwrap();
        g.create_rel(hub, n, "T0", PropertyMap::new()).unwrap();
    }
    let snap = g.snapshot();
    assert_eq!(snap.degree_edge_count("L0", "T0", Direction::Out), Some(5));
    assert_eq!(snap.degree_edge_count("L1", "T0", Direction::In), Some(5));
    // later mutations are invisible to the pinned snapshot
    g.begin().unwrap();
    let n = g.create_node(["L1"], PropertyMap::new()).unwrap();
    g.create_rel(hub, n, "T0", PropertyMap::new()).unwrap();
    g.commit().unwrap();
    assert_eq!(snap.degree_edge_count("L0", "T0", Direction::Out), Some(5));
    assert_eq!(g.degree_edge_count("L0", "T0", Direction::Out), Some(6));
}

/// Expanding a full label extent along (type, dir) yields exactly
/// `degree_edge_count` rows — the join-output estimate for whole-extent
/// sources is exact, not just within a bound.
#[test]
fn whole_extent_expansion_matches_edge_count() {
    let mut g = Graph::new();
    // skewed fanout: node i gets i out-edges
    let targets: Vec<_> = (0..8)
        .map(|_| g.create_node(["B"], PropertyMap::new()).unwrap())
        .collect();
    for i in 0..8usize {
        let s = g.create_node(["A"], PropertyMap::new()).unwrap();
        for t in targets.iter().take(i) {
            g.create_rel(s, *t, "R", PropertyMap::new()).unwrap();
        }
    }
    let expected: usize = (0..8).sum();
    assert_eq!(
        g.degree_edge_count("A", "R", Direction::Out),
        Some(expected)
    );
    let actual: usize = g
        .nodes_with_label("A")
        .into_iter()
        .map(|n| {
            g.rels_of(n, Direction::Out)
                .into_iter()
                .filter(|r| g.rel_type(*r).as_deref() == Some("R"))
                .count()
        })
        .sum();
    assert_eq!(actual, expected);
}
