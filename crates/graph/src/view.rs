//! Read views over graph state.
//!
//! [`GraphView`] is the read interface consumed by the query layer; it is
//! implemented by the live [`crate::Graph`] and by [`PreStateView`], which
//! reconstructs the state *preceding* an op-log slice. The PG-Trigger engine
//! evaluates `BEFORE` trigger conditions against a `PreStateView` so they
//! observe the database as it was before the activating statement (paper
//! §4.2 "Action Time").

use crate::composite::CompositeTrailing;
use crate::ids::{NodeId, RelId};
use crate::op::Op;
use crate::props::PropertyMap;
use crate::record::{NodeRecord, RelRecord};
use crate::stats::DegreeHistogram;
use crate::store::Graph;
use crate::value::{Direction, Value};
use std::collections::HashMap;
use std::ops::Bound;

/// Read-only access to a graph state.
pub trait GraphView {
    fn node_exists(&self, id: NodeId) -> bool;
    fn rel_exists(&self, id: RelId) -> bool;
    fn node_labels(&self, id: NodeId) -> Vec<String>;
    fn node_has_label(&self, id: NodeId, label: &str) -> bool;
    /// A property value (cloned); `None` when the node or key is absent.
    fn node_prop(&self, id: NodeId, key: &str) -> Option<Value>;
    fn node_prop_keys(&self, id: NodeId) -> Vec<String>;
    fn rel_type(&self, id: RelId) -> Option<String>;
    fn rel_prop(&self, id: RelId, key: &str) -> Option<Value>;
    fn rel_prop_keys(&self, id: RelId) -> Vec<String>;
    fn rel_endpoints(&self, id: RelId) -> Option<(NodeId, NodeId)>;
    /// Nodes currently carrying `label` (index-backed on the live graph).
    fn nodes_with_label(&self, label: &str) -> Vec<NodeId>;
    fn all_node_ids(&self) -> Vec<NodeId>;
    fn all_rel_ids(&self) -> Vec<RelId>;
    /// Relationships incident to `node` in the given direction.
    fn rels_of(&self, node: NodeId, dir: Direction) -> Vec<RelId>;

    /// Index-backed equality lookup: nodes with `label` whose property
    /// `key` equals `value`. `Some(ids)` when a property index on
    /// `(label, key)` exists *and* can answer for `value`; `None` when the
    /// caller must fall back to a filtered scan. The default (used by
    /// overlay/pre-state views) has no indexes.
    fn nodes_with_prop(&self, _label: &str, _key: &str, _value: &Value) -> Option<Vec<NodeId>> {
        None
    }

    /// Index-backed ordered range lookup: nodes with `label` whose
    /// property `key` lies within the given bounds under [`Value::cmp3`]
    /// semantics. `None` = no index can answer faithfully (fall back to a
    /// filtered scan); see `PropIndex::range_lookup` for the exact
    /// contract, including the ±2⁵³ lossy-numeric opt-out.
    fn nodes_in_prop_range(
        &self,
        _label: &str,
        _key: &str,
        _lower: Bound<&Value>,
        _upper: Bound<&Value>,
    ) -> Option<Vec<NodeId>> {
        None
    }

    /// Index-backed `STARTS WITH` prefix scan over string values of `key`.
    fn nodes_with_prop_prefix(
        &self,
        _label: &str,
        _key: &str,
        _prefix: &str,
    ) -> Option<Vec<NodeId>> {
        None
    }

    /// Index-backed equality lookup over relationships of `rel_type`.
    fn rels_with_prop(&self, _rel_type: &str, _key: &str, _value: &Value) -> Option<Vec<RelId>> {
        None
    }

    /// Index-backed ordered range lookup over relationships of `rel_type`.
    fn rels_in_prop_range(
        &self,
        _rel_type: &str,
        _key: &str,
        _lower: Bound<&Value>,
        _upper: Bound<&Value>,
    ) -> Option<Vec<RelId>> {
        None
    }

    /// Relationships of the given type. The default filters the full
    /// relationship extent; the live graph answers from the type index.
    fn rels_with_type(&self, rel_type: &str) -> Vec<RelId> {
        self.all_rel_ids()
            .into_iter()
            .filter(|r| self.rel_type(*r).as_deref() == Some(rel_type))
            .collect()
    }

    /// Cardinality of a label extent — a planning estimate; must be exact
    /// enough that `0` means the extent is empty. The default materializes
    /// the extent; the live graph answers in O(1) and the overlay views in
    /// O(touched items).
    fn label_cardinality(&self, label: &str) -> usize {
        self.nodes_with_label(label).len()
    }

    /// Cardinality of a relationship-type extent (planning estimate, same
    /// contract as [`GraphView::label_cardinality`]).
    fn rel_type_cardinality(&self, rel_type: &str) -> usize {
        self.rels_with_type(rel_type).len()
    }

    /// Total node count (planning estimate for full-scan costs).
    fn node_count_estimate(&self) -> usize {
        self.all_node_ids().len()
    }

    /// Total relationship count (planning estimate, symmetric with
    /// [`GraphView::node_count_estimate`]).
    fn rel_count_estimate(&self) -> usize {
        self.all_rel_ids().len()
    }

    // ------------------------------------------------------------------
    // Count-only probes (planner v3): answer "how many would the index
    // return" without materializing the id vector. Defaults delegate to
    // the materializing lookups so every view stays correct; the live
    // graph overrides them with O(log n) / histogram answers.
    // ------------------------------------------------------------------

    /// Count of [`GraphView::nodes_with_prop`] results — exact when
    /// answered; `None` = the index cannot answer, fall back to a scan.
    fn count_nodes_with_prop(&self, label: &str, key: &str, value: &Value) -> Option<usize> {
        self.nodes_with_prop(label, key, value).map(|ids| ids.len())
    }

    /// Count **estimate** of [`GraphView::nodes_in_prop_range`] results
    /// (histogram-based on the live graph; planning only — do not use for
    /// correctness).
    fn count_nodes_in_prop_range(
        &self,
        label: &str,
        key: &str,
        lower: Bound<&Value>,
        upper: Bound<&Value>,
    ) -> Option<usize> {
        self.nodes_in_prop_range(label, key, lower, upper)
            .map(|ids| ids.len())
    }

    /// Count of [`GraphView::nodes_with_prop_prefix`] results.
    fn count_nodes_with_prop_prefix(&self, label: &str, key: &str, prefix: &str) -> Option<usize> {
        self.nodes_with_prop_prefix(label, key, prefix)
            .map(|ids| ids.len())
    }

    /// Count of [`GraphView::rels_with_prop`] results.
    fn count_rels_with_prop(&self, rel_type: &str, key: &str, value: &Value) -> Option<usize> {
        self.rels_with_prop(rel_type, key, value)
            .map(|ids| ids.len())
    }

    /// Count **estimate** of [`GraphView::rels_in_prop_range`] results.
    fn count_rels_in_prop_range(
        &self,
        rel_type: &str,
        key: &str,
        lower: Bound<&Value>,
        upper: Bound<&Value>,
    ) -> Option<usize> {
        self.rels_in_prop_range(rel_type, key, lower, upper)
            .map(|ids| ids.len())
    }

    /// `(total keyable entries, distinct values)` for an indexed
    /// `(label, key)` — the planner derives `total / distinct` as the
    /// average equality selectivity when the operand is not evaluable yet
    /// (e.g. it references a variable bound by an earlier join path).
    /// `None` = no statistics (not indexed, or an overlay view).
    fn node_prop_stats(&self, _label: &str, _key: &str) -> Option<(usize, usize)> {
        None
    }

    /// `(total, distinct)` statistics for an indexed `(rel_type, key)`.
    fn rel_prop_stats(&self, _rel_type: &str, _key: &str) -> Option<(usize, usize)> {
        None
    }

    /// Walk nodes of `label` in `ORDER BY node.key` order (ascending
    /// [`Value::cmp_order`], or reversed). `Some` only when an index on
    /// `(label, key)` exists and covers every currently stored value (no
    /// lossy numerics / NaN / lists / maps present), so the walk is a
    /// complete ordering of all nodes that *have* the property; nodes
    /// without it (whose key is `NULL`, ordering last) are not walked —
    /// compare [`GraphView::node_prop_stats`] totals against
    /// [`GraphView::label_cardinality`] to account for them. Default:
    /// `None` (overlay/pre-state views fall back to sorting).
    fn nodes_in_prop_order(
        &self,
        _label: &str,
        _key: &str,
        _descending: bool,
    ) -> Option<Box<dyn Iterator<Item = NodeId> + '_>> {
        None
    }

    /// Walk relationships of `rel_type` in `ORDER BY rel.key` order; same
    /// contract as [`GraphView::nodes_in_prop_order`].
    fn rels_in_prop_order(
        &self,
        _rel_type: &str,
        _key: &str,
        _descending: bool,
    ) -> Option<Box<dyn Iterator<Item = RelId> + '_>> {
        None
    }

    // ------------------------------------------------------------------
    // Composite (multi-key) indexes. A probe is an equality prefix over
    // the definition's column list plus at most one trailing range or
    // `STARTS WITH` bound on the next column; `None` = no composite index
    // can answer faithfully (fall back to single-key paths or a scan).
    // See `pg_graph::composite` for the exact refusal rules.
    // ------------------------------------------------------------------

    /// The composite column lists declared under `label` (planner
    /// discovery; DDL is not transactional, so overlay views delegate to
    /// their base graph).
    fn node_composite_defs(&self, _label: &str) -> Vec<Vec<String>> {
        Vec::new()
    }

    /// The composite column lists declared under `rel_type`.
    fn rel_composite_defs(&self, _rel_type: &str) -> Vec<Vec<String>> {
        Vec::new()
    }

    /// Composite lookup: nodes with `label` whose first `eq.len()` columns
    /// of `columns` equal `eq` and whose next column satisfies `trailing`.
    fn nodes_with_composite(
        &self,
        _label: &str,
        _columns: &[String],
        _eq: &[Value],
        _trailing: CompositeTrailing<'_>,
    ) -> Option<Vec<NodeId>> {
        None
    }

    /// Count of [`GraphView::nodes_with_composite`] results — exact except
    /// for leading-column ranges, which the live graph estimates from the
    /// leading-column histogram (planning only).
    fn count_nodes_with_composite(
        &self,
        label: &str,
        columns: &[String],
        eq: &[Value],
        trailing: CompositeTrailing<'_>,
    ) -> Option<usize> {
        self.nodes_with_composite(label, columns, eq, trailing)
            .map(|ids| ids.len())
    }

    /// Composite lookup over relationships of `rel_type`.
    fn rels_with_composite(
        &self,
        _rel_type: &str,
        _columns: &[String],
        _eq: &[Value],
        _trailing: CompositeTrailing<'_>,
    ) -> Option<Vec<RelId>> {
        None
    }

    /// Count of [`GraphView::rels_with_composite`] results.
    fn count_rels_with_composite(
        &self,
        rel_type: &str,
        columns: &[String],
        eq: &[Value],
        trailing: CompositeTrailing<'_>,
    ) -> Option<usize> {
        self.rels_with_composite(rel_type, columns, eq, trailing)
            .map(|ids| ids.len())
    }

    /// Walk nodes of `label` in `ORDER BY` order over the composite
    /// columns after the pinned equality prefix `eq` (ascending
    /// [`Value::cmp_order`] with NULL/missing last, or fully reversed —
    /// missing-first, matching NULL-first descending order). Unlike
    /// [`GraphView::nodes_in_prop_order`], the walk covers property-less
    /// items too (they key on an explicit missing marker), so no NULL tail
    /// needs appending. `None` when no composite index covers every
    /// record (unkeyable values present) — fall back to sorting.
    fn nodes_in_composite_order(
        &self,
        _label: &str,
        _columns: &[String],
        _eq: &[Value],
        _descending: bool,
    ) -> Option<Box<dyn Iterator<Item = NodeId> + '_>> {
        None
    }

    /// Walk relationships of `rel_type` in composite `ORDER BY` order;
    /// same contract as [`GraphView::nodes_in_composite_order`].
    fn rels_in_composite_order(
        &self,
        _rel_type: &str,
        _columns: &[String],
        _eq: &[Value],
        _descending: bool,
    ) -> Option<Box<dyn Iterator<Item = RelId> + '_>> {
        None
    }

    /// `(total indexed records, distinct key vectors)` of a composite
    /// definition; `None` = no statistics.
    fn node_composite_stats(&self, _label: &str, _columns: &[String]) -> Option<(usize, usize)> {
        None
    }

    /// `(total, distinct)` statistics of a composite relationship index.
    fn rel_composite_stats(&self, _rel_type: &str, _columns: &[String]) -> Option<(usize, usize)> {
        None
    }

    // ------------------------------------------------------------------
    // Degree statistics (planner v4): join-*output* cardinality. The live
    // graph and snapshots answer from per-(label, rel-type, direction)
    // entries maintained through every mutation and undo path; overlay
    // views keep the defaults (`None` = unknown, fall back to
    // access-path-only costing).
    // ------------------------------------------------------------------

    /// **Exact** count of (node, incident relationship) pairs where the
    /// node carries `label` and the relationship has `rel_type` leaving
    /// (`Out`) or entering (`In`) it; `Both` sums the two (a self-loop
    /// counts twice). Dividing by [`GraphView::label_cardinality`] gives
    /// the average degree — the expected join fanout of expanding a
    /// `label`-typed variable along a `rel_type` hop. `None` = this view
    /// maintains no degree statistics.
    fn degree_edge_count(&self, _label: &str, _rel_type: &str, _dir: Direction) -> Option<usize> {
        None
    }

    /// Log2-bucketed distribution of per-node degrees for the
    /// `(label, rel_type, dir)` population (see [`DegreeHistogram`] for
    /// the drift-bounded maintenance contract). `None` for `Both` and on
    /// views without statistics.
    fn degree_histogram(
        &self,
        _label: &str,
        _rel_type: &str,
        _dir: Direction,
    ) -> Option<DegreeHistogram> {
        None
    }

    // ------------------------------------------------------------------
    // Intra-query parallelism (morsel-driven execution). The live graph
    // and snapshots can pin an immutable `Send + Sync` view of their
    // current state for worker threads; overlay views (pre-state
    // reconstruction, trigger condition evaluation) keep the defaults
    // and thereby *decline* parallel execution.
    // ------------------------------------------------------------------

    /// Pin an immutable, shareable view of exactly the state this view
    /// reads, with a fresh (zeroed) probe-counter set. `None` = this
    /// view cannot be pinned (overlay views) and queries over it must
    /// run serially. Mid-transaction on the live graph this pins the
    /// *current* in-flight state — unlike [`crate::Graph::snapshot`],
    /// which serves the last commit boundary — because workers must see
    /// the same rows the serial executor would.
    fn parallel_snapshot(&self) -> Option<crate::snapshot::Snapshot> {
        None
    }

    /// Fold probe totals observed by a worker (on a
    /// [`GraphView::parallel_snapshot`] view) back into this view's own
    /// counters, keeping probe accounting identical between serial and
    /// morselized execution. Views that cannot be pinned ignore this.
    fn absorb_probes(&self, _probes: crate::store::IndexProbes) {}
}

/// Whether a property map satisfies a composite probe: equality on the
/// first `eq.len()` columns, the trailing bound (if any) on the next.
/// Unconstrained columns are free — a missing property only fails the
/// probe when it is constrained. Used by overlay views to correct
/// base-graph composite answers for touched items.
pub(crate) fn props_match_composite(
    props: &PropertyMap,
    columns: &[String],
    eq: &[Value],
    trailing: CompositeTrailing<'_>,
) -> bool {
    if eq.len() > columns.len() {
        return false;
    }
    for (col, want) in columns.iter().zip(eq.iter()) {
        if props.get(col).is_none_or(|w| w.eq3(want) != Some(true)) {
            return false;
        }
    }
    match trailing {
        CompositeTrailing::None => true,
        CompositeTrailing::Range(lo, hi) => columns
            .get(eq.len())
            .is_some_and(|col| props.get(col).is_some_and(|w| value_in_range(w, lo, hi))),
        CompositeTrailing::Prefix(p) => columns.get(eq.len()).is_some_and(|col| {
            props
                .get(col)
                .is_some_and(|w| matches!(w, Value::Str(s) if s.starts_with(p)))
        }),
    }
}

/// Whether `v` satisfies `lower ⋚ v ⋚ upper` under [`Value::cmp3`]
/// semantics (cross-family comparisons are NULL, hence never match). Used
/// by overlay views to correct base-graph range counts for touched items.
pub(crate) fn value_in_range(v: &Value, lower: Bound<&Value>, upper: Bound<&Value>) -> bool {
    use std::cmp::Ordering;
    let lo_ok = match lower {
        Bound::Unbounded => true,
        Bound::Included(l) => matches!(v.cmp3(l), Some(Ordering::Greater | Ordering::Equal)),
        Bound::Excluded(l) => matches!(v.cmp3(l), Some(Ordering::Greater)),
    };
    let hi_ok = match upper {
        Bound::Unbounded => true,
        Bound::Included(h) => matches!(v.cmp3(h), Some(Ordering::Less | Ordering::Equal)),
        Bound::Excluded(h) => matches!(v.cmp3(h), Some(Ordering::Less)),
    };
    // a both-unbounded probe is not a range predicate; mirrors range_lookup
    lo_ok && hi_ok && !(matches!(lower, Bound::Unbounded) && matches!(upper, Bound::Unbounded))
}

/// The state of the graph **before** a slice of operations was applied.
///
/// Constructed from the live graph and the op slice; overlays are
/// materialized eagerly (the number of touched items is bounded by the slice
/// length, not the graph size).
pub struct PreStateView<'g> {
    base: &'g Graph,
    /// Pre-state of touched nodes: `None` = did not exist before the slice.
    nodes: HashMap<NodeId, Option<NodeRecord>>,
    /// Pre-state of touched relationships.
    rels: HashMap<RelId, Option<RelRecord>>,
}

impl<'g> PreStateView<'g> {
    /// Build the pre-state of `base` with respect to `ops` (which must be
    /// the exact op sequence that produced the current state of `base` from
    /// the desired pre-state).
    pub fn new(base: &'g Graph, ops: &[Op]) -> Self {
        let mut nodes: HashMap<NodeId, Option<NodeRecord>> = HashMap::new();
        let mut rels: HashMap<RelId, Option<RelRecord>> = HashMap::new();
        // Seed with the *current* state of every touched item, then unwind.
        for op in ops {
            if let Some(nid) = op.node_id() {
                nodes.entry(nid).or_insert_with(|| base.node(nid).cloned());
            }
            if let Some(rid) = op.rel_id() {
                rels.entry(rid).or_insert_with(|| base.rel(rid).cloned());
            }
        }
        for op in ops.iter().rev() {
            match op {
                Op::CreateNode { record } => {
                    nodes.insert(record.id, None);
                }
                Op::DeleteNode { record } => {
                    nodes.insert(record.id, Some(record.clone()));
                }
                Op::CreateRel { record } => {
                    rels.insert(record.id, None);
                }
                Op::DeleteRel { record } => {
                    rels.insert(record.id, Some(record.clone()));
                }
                Op::SetLabel { node, label } => {
                    if let Some(Some(n)) = nodes.get_mut(node) {
                        n.labels.remove(label);
                    }
                }
                Op::RemoveLabel { node, label } => {
                    if let Some(Some(n)) = nodes.get_mut(node) {
                        n.labels.insert(label.clone());
                    }
                }
                Op::SetNodeProp { node, key, old, .. } => {
                    if let Some(Some(n)) = nodes.get_mut(node) {
                        match old {
                            Some(v) => {
                                n.props.set(key.clone(), v.clone());
                            }
                            None => {
                                n.props.remove(key);
                            }
                        }
                    }
                }
                Op::RemoveNodeProp { node, key, old } => {
                    if let Some(Some(n)) = nodes.get_mut(node) {
                        n.props.set(key.clone(), old.clone());
                    }
                }
                Op::SetRelProp { rel, key, old, .. } => {
                    if let Some(Some(r)) = rels.get_mut(rel) {
                        match old {
                            Some(v) => {
                                r.props.set(key.clone(), v.clone());
                            }
                            None => {
                                r.props.remove(key);
                            }
                        }
                    }
                }
                Op::RemoveRelProp { rel, key, old } => {
                    if let Some(Some(r)) = rels.get_mut(rel) {
                        r.props.set(key.clone(), old.clone());
                    }
                }
            }
        }
        PreStateView { base, nodes, rels }
    }

    fn node_rec(&self, id: NodeId) -> Option<NodeRecord> {
        match self.nodes.get(&id) {
            Some(overlay) => overlay.clone(),
            None => self.base.node(id).cloned(),
        }
    }

    fn rel_rec(&self, id: RelId) -> Option<RelRecord> {
        match self.rels.get(&id) {
            Some(overlay) => overlay.clone(),
            None => self.base.rel(id).cloned(),
        }
    }
}

impl GraphView for PreStateView<'_> {
    fn node_exists(&self, id: NodeId) -> bool {
        match self.nodes.get(&id) {
            Some(overlay) => overlay.is_some(),
            None => self.base.node_exists(id),
        }
    }

    fn rel_exists(&self, id: RelId) -> bool {
        match self.rels.get(&id) {
            Some(overlay) => overlay.is_some(),
            None => self.base.rel_exists(id),
        }
    }

    fn node_labels(&self, id: NodeId) -> Vec<String> {
        self.node_rec(id)
            .map(|n| n.labels.into_iter().collect())
            .unwrap_or_default()
    }

    fn node_has_label(&self, id: NodeId, label: &str) -> bool {
        self.node_rec(id)
            .map(|n| n.has_label(label))
            .unwrap_or(false)
    }

    fn node_prop(&self, id: NodeId, key: &str) -> Option<Value> {
        self.node_rec(id).and_then(|n| n.props.get(key).cloned())
    }

    fn node_prop_keys(&self, id: NodeId) -> Vec<String> {
        self.node_rec(id)
            .map(|n| n.props.keys().cloned().collect())
            .unwrap_or_default()
    }

    fn rel_type(&self, id: RelId) -> Option<String> {
        self.rel_rec(id).map(|r| r.rel_type)
    }

    fn rel_prop(&self, id: RelId, key: &str) -> Option<Value> {
        self.rel_rec(id).and_then(|r| r.props.get(key).cloned())
    }

    fn rel_prop_keys(&self, id: RelId) -> Vec<String> {
        self.rel_rec(id)
            .map(|r| r.props.keys().cloned().collect())
            .unwrap_or_default()
    }

    fn rel_endpoints(&self, id: RelId) -> Option<(NodeId, NodeId)> {
        self.rel_rec(id).map(|r| (r.src, r.dst))
    }

    fn nodes_with_label(&self, label: &str) -> Vec<NodeId> {
        let mut out: Vec<NodeId> = self
            .base
            .nodes_with_label(label)
            .into_iter()
            .filter(|id| !self.nodes.contains_key(id))
            .collect();
        for (id, overlay) in &self.nodes {
            if let Some(rec) = overlay {
                if rec.has_label(label) {
                    out.push(*id);
                }
            }
        }
        out.sort();
        out
    }

    fn label_cardinality(&self, label: &str) -> usize {
        // Candidate planning probes every label of a pattern; answer in
        // O(touched) by correcting the base count instead of materializing
        // and sorting the whole extent.
        let mut n = self.base.label_cardinality(label);
        for (id, overlay) in &self.nodes {
            let base_has = self.base.node_has_label(*id, label);
            let pre_has = overlay
                .as_ref()
                .map(|r| r.has_label(label))
                .unwrap_or(false);
            match (base_has, pre_has) {
                (true, false) => n -= 1,
                (false, true) => n += 1,
                _ => {}
            }
        }
        n
    }

    fn rels_with_type(&self, rel_type: &str) -> Vec<RelId> {
        // Base type extent minus rels that did not exist before the slice,
        // plus restored (deleted-in-slice) rels of the type.
        let mut out: Vec<RelId> = self
            .base
            .rels_with_type(rel_type)
            .into_iter()
            .filter(|id| match self.rels.get(id) {
                Some(overlay) => overlay.is_some(),
                None => true,
            })
            .collect();
        for (id, overlay) in &self.rels {
            if let Some(rec) = overlay {
                if rec.rel_type == rel_type && !self.base.rel_exists(*id) {
                    out.push(*id);
                }
            }
        }
        out.sort();
        out.dedup();
        out
    }

    fn rel_type_cardinality(&self, rel_type: &str) -> usize {
        // O(touched) correction of the base count (planning hot path).
        let mut n = self.base.rel_type_cardinality(rel_type);
        for (id, overlay) in &self.rels {
            let base_has = self
                .base
                .rel(*id)
                .map(|r| r.rel_type == rel_type)
                .unwrap_or(false);
            let pre_has = overlay
                .as_ref()
                .map(|r| r.rel_type == rel_type)
                .unwrap_or(false);
            match (base_has, pre_has) {
                (true, false) => n -= 1,
                (false, true) => n += 1,
                _ => {}
            }
        }
        n
    }

    fn node_count_estimate(&self) -> usize {
        let mut n = self.base.node_count_estimate();
        for (id, overlay) in &self.nodes {
            match (self.base.node_exists(*id), overlay.is_some()) {
                (true, false) => n -= 1,
                (false, true) => n += 1,
                _ => {}
            }
        }
        n
    }

    fn rel_count_estimate(&self) -> usize {
        // O(touched) correction of the base count (planning hot path).
        let mut n = self.base.rel_count_estimate();
        for (id, overlay) in &self.rels {
            match (self.base.rel_exists(*id), overlay.is_some()) {
                (true, false) => n -= 1,
                (false, true) => n += 1,
                _ => {}
            }
        }
        n
    }

    // Index-backed lookups and count-only probes: answer from the base
    // index corrected by the touched overlay, in O(base answer + touched)
    // — pre-state trigger conditions get the same access paths the live
    // graph has, and the planner's count estimates always agree with what
    // execution can materialize. When the base index refuses (`None`), so
    // does the pre-state (both sides fall back to a scan together).

    fn nodes_with_prop(&self, label: &str, key: &str, value: &Value) -> Option<Vec<NodeId>> {
        let matches = |rec: Option<&NodeRecord>| -> bool {
            rec.is_some_and(|r| {
                r.has_label(label) && r.props.get(key).is_some_and(|w| w.eq3(value) == Some(true))
            })
        };
        let mut ids: Vec<NodeId> = self
            .base
            .nodes_with_prop(label, key, value)?
            .into_iter()
            .filter(|id| !self.nodes.contains_key(id))
            .collect();
        for (id, overlay) in &self.nodes {
            if matches(overlay.as_ref()) {
                ids.push(*id);
            }
        }
        ids.sort();
        ids.dedup();
        Some(ids)
    }

    fn nodes_in_prop_range(
        &self,
        label: &str,
        key: &str,
        lower: Bound<&Value>,
        upper: Bound<&Value>,
    ) -> Option<Vec<NodeId>> {
        let matches = |rec: Option<&NodeRecord>| -> bool {
            rec.is_some_and(|r| {
                r.has_label(label)
                    && r.props
                        .get(key)
                        .is_some_and(|w| value_in_range(w, lower, upper))
            })
        };
        let mut ids: Vec<NodeId> = self
            .base
            .nodes_in_prop_range(label, key, lower, upper)?
            .into_iter()
            .filter(|id| !self.nodes.contains_key(id))
            .collect();
        for (id, overlay) in &self.nodes {
            if matches(overlay.as_ref()) {
                ids.push(*id);
            }
        }
        ids.sort();
        ids.dedup();
        Some(ids)
    }

    fn nodes_with_prop_prefix(&self, label: &str, key: &str, prefix: &str) -> Option<Vec<NodeId>> {
        let matches = |rec: Option<&NodeRecord>| -> bool {
            rec.is_some_and(|r| {
                r.has_label(label)
                    && r.props
                        .get(key)
                        .is_some_and(|w| matches!(w, Value::Str(s) if s.starts_with(prefix)))
            })
        };
        let mut ids: Vec<NodeId> = self
            .base
            .nodes_with_prop_prefix(label, key, prefix)?
            .into_iter()
            .filter(|id| !self.nodes.contains_key(id))
            .collect();
        for (id, overlay) in &self.nodes {
            if matches(overlay.as_ref()) {
                ids.push(*id);
            }
        }
        ids.sort();
        ids.dedup();
        Some(ids)
    }

    fn rels_with_prop(&self, rel_type: &str, key: &str, value: &Value) -> Option<Vec<RelId>> {
        let matches = |rec: Option<&RelRecord>| -> bool {
            rec.is_some_and(|r| {
                r.rel_type == rel_type
                    && r.props.get(key).is_some_and(|w| w.eq3(value) == Some(true))
            })
        };
        let mut ids: Vec<RelId> = self
            .base
            .rels_with_prop(rel_type, key, value)?
            .into_iter()
            .filter(|id| !self.rels.contains_key(id))
            .collect();
        for (id, overlay) in &self.rels {
            if matches(overlay.as_ref()) {
                ids.push(*id);
            }
        }
        ids.sort();
        ids.dedup();
        Some(ids)
    }

    fn rels_in_prop_range(
        &self,
        rel_type: &str,
        key: &str,
        lower: Bound<&Value>,
        upper: Bound<&Value>,
    ) -> Option<Vec<RelId>> {
        let matches = |rec: Option<&RelRecord>| -> bool {
            rec.is_some_and(|r| {
                r.rel_type == rel_type
                    && r.props
                        .get(key)
                        .is_some_and(|w| value_in_range(w, lower, upper))
            })
        };
        let mut ids: Vec<RelId> = self
            .base
            .rels_in_prop_range(rel_type, key, lower, upper)?
            .into_iter()
            .filter(|id| !self.rels.contains_key(id))
            .collect();
        for (id, overlay) in &self.rels {
            if matches(overlay.as_ref()) {
                ids.push(*id);
            }
        }
        ids.sort();
        ids.dedup();
        Some(ids)
    }

    fn count_nodes_with_prop(&self, label: &str, key: &str, value: &Value) -> Option<usize> {
        let mut n = self.base.count_nodes_with_prop(label, key, value)? as isize;
        for (id, overlay) in &self.nodes {
            let matches = |rec: Option<&NodeRecord>| -> bool {
                rec.is_some_and(|r| {
                    r.has_label(label)
                        && r.props.get(key).is_some_and(|w| w.eq3(value) == Some(true))
                })
            };
            let base_m = matches(self.base.node(*id));
            let pre_m = matches(overlay.as_ref());
            n += pre_m as isize - base_m as isize;
        }
        Some(n.max(0) as usize)
    }

    fn count_nodes_in_prop_range(
        &self,
        label: &str,
        key: &str,
        lower: Bound<&Value>,
        upper: Bound<&Value>,
    ) -> Option<usize> {
        // The base answers with an estimate; the overlay correction is
        // exact per touched item, so the result stays an estimate with the
        // same error bound.
        let mut n = self
            .base
            .count_nodes_in_prop_range(label, key, lower, upper)? as isize;
        for (id, overlay) in &self.nodes {
            let matches = |rec: Option<&NodeRecord>| -> bool {
                rec.is_some_and(|r| {
                    r.has_label(label)
                        && r.props
                            .get(key)
                            .is_some_and(|w| value_in_range(w, lower, upper))
                })
            };
            let base_m = matches(self.base.node(*id));
            let pre_m = matches(overlay.as_ref());
            n += pre_m as isize - base_m as isize;
        }
        Some(n.max(0) as usize)
    }

    fn count_nodes_with_prop_prefix(&self, label: &str, key: &str, prefix: &str) -> Option<usize> {
        let mut n = self.base.count_nodes_with_prop_prefix(label, key, prefix)? as isize;
        for (id, overlay) in &self.nodes {
            let matches = |rec: Option<&NodeRecord>| -> bool {
                rec.is_some_and(|r| {
                    r.has_label(label)
                        && r.props
                            .get(key)
                            .is_some_and(|w| matches!(w, Value::Str(s) if s.starts_with(prefix)))
                })
            };
            let base_m = matches(self.base.node(*id));
            let pre_m = matches(overlay.as_ref());
            n += pre_m as isize - base_m as isize;
        }
        Some(n.max(0) as usize)
    }

    fn count_rels_with_prop(&self, rel_type: &str, key: &str, value: &Value) -> Option<usize> {
        let mut n = self.base.count_rels_with_prop(rel_type, key, value)? as isize;
        for (id, overlay) in &self.rels {
            let matches = |rec: Option<&RelRecord>| -> bool {
                rec.is_some_and(|r| {
                    r.rel_type == rel_type
                        && r.props.get(key).is_some_and(|w| w.eq3(value) == Some(true))
                })
            };
            let base_m = matches(self.base.rel(*id));
            let pre_m = matches(overlay.as_ref());
            n += pre_m as isize - base_m as isize;
        }
        Some(n.max(0) as usize)
    }

    fn count_rels_in_prop_range(
        &self,
        rel_type: &str,
        key: &str,
        lower: Bound<&Value>,
        upper: Bound<&Value>,
    ) -> Option<usize> {
        let mut n = self
            .base
            .count_rels_in_prop_range(rel_type, key, lower, upper)? as isize;
        for (id, overlay) in &self.rels {
            let matches = |rec: Option<&RelRecord>| -> bool {
                rec.is_some_and(|r| {
                    r.rel_type == rel_type
                        && r.props
                            .get(key)
                            .is_some_and(|w| value_in_range(w, lower, upper))
                })
            };
            let base_m = matches(self.base.rel(*id));
            let pre_m = matches(overlay.as_ref());
            n += pre_m as isize - base_m as isize;
        }
        Some(n.max(0) as usize)
    }

    // Composite lookups: same overlay-correction pattern as the
    // single-key paths — base index answer, touched items re-evaluated
    // against the probe. Ordered composite walks stay at the trait
    // default (`None`, sort fallback): an overlay cannot be merged into a
    // walk in O(touched).

    fn node_composite_defs(&self, label: &str) -> Vec<Vec<String>> {
        self.base.node_composite_defs(label)
    }

    fn rel_composite_defs(&self, rel_type: &str) -> Vec<Vec<String>> {
        self.base.rel_composite_defs(rel_type)
    }

    fn nodes_with_composite(
        &self,
        label: &str,
        columns: &[String],
        eq: &[Value],
        trailing: CompositeTrailing<'_>,
    ) -> Option<Vec<NodeId>> {
        let matches = |rec: Option<&NodeRecord>| -> bool {
            rec.is_some_and(|r| {
                r.has_label(label) && props_match_composite(&r.props, columns, eq, trailing)
            })
        };
        let mut ids: Vec<NodeId> = self
            .base
            .nodes_with_composite(label, columns, eq, trailing)?
            .into_iter()
            .filter(|id| !self.nodes.contains_key(id))
            .collect();
        for (id, overlay) in &self.nodes {
            if matches(overlay.as_ref()) {
                ids.push(*id);
            }
        }
        ids.sort();
        ids.dedup();
        Some(ids)
    }

    fn count_nodes_with_composite(
        &self,
        label: &str,
        columns: &[String],
        eq: &[Value],
        trailing: CompositeTrailing<'_>,
    ) -> Option<usize> {
        let mut n = self
            .base
            .count_nodes_with_composite(label, columns, eq, trailing)? as isize;
        for (id, overlay) in &self.nodes {
            let matches = |rec: Option<&NodeRecord>| -> bool {
                rec.is_some_and(|r| {
                    r.has_label(label) && props_match_composite(&r.props, columns, eq, trailing)
                })
            };
            let base_m = matches(self.base.node(*id));
            let pre_m = matches(overlay.as_ref());
            n += pre_m as isize - base_m as isize;
        }
        Some(n.max(0) as usize)
    }

    fn rels_with_composite(
        &self,
        rel_type: &str,
        columns: &[String],
        eq: &[Value],
        trailing: CompositeTrailing<'_>,
    ) -> Option<Vec<RelId>> {
        let matches = |rec: Option<&RelRecord>| -> bool {
            rec.is_some_and(|r| {
                r.rel_type == rel_type && props_match_composite(&r.props, columns, eq, trailing)
            })
        };
        let mut ids: Vec<RelId> = self
            .base
            .rels_with_composite(rel_type, columns, eq, trailing)?
            .into_iter()
            .filter(|id| !self.rels.contains_key(id))
            .collect();
        for (id, overlay) in &self.rels {
            if matches(overlay.as_ref()) {
                ids.push(*id);
            }
        }
        ids.sort();
        ids.dedup();
        Some(ids)
    }

    fn count_rels_with_composite(
        &self,
        rel_type: &str,
        columns: &[String],
        eq: &[Value],
        trailing: CompositeTrailing<'_>,
    ) -> Option<usize> {
        let mut n =
            self.base
                .count_rels_with_composite(rel_type, columns, eq, trailing)? as isize;
        for (id, overlay) in &self.rels {
            let matches = |rec: Option<&RelRecord>| -> bool {
                rec.is_some_and(|r| {
                    r.rel_type == rel_type && props_match_composite(&r.props, columns, eq, trailing)
                })
            };
            let base_m = matches(self.base.rel(*id));
            let pre_m = matches(overlay.as_ref());
            n += pre_m as isize - base_m as isize;
        }
        Some(n.max(0) as usize)
    }

    fn all_node_ids(&self) -> Vec<NodeId> {
        let mut out: Vec<NodeId> = self
            .base
            .all_node_ids()
            .into_iter()
            .filter(|id| match self.nodes.get(id) {
                Some(overlay) => overlay.is_some(),
                None => true,
            })
            .collect();
        for (id, overlay) in &self.nodes {
            if overlay.is_some() && !self.base.node_exists(*id) {
                out.push(*id);
            }
        }
        out.sort();
        out.dedup();
        out
    }

    fn all_rel_ids(&self) -> Vec<RelId> {
        let mut out: Vec<RelId> = self
            .base
            .all_rel_ids()
            .into_iter()
            .filter(|id| match self.rels.get(id) {
                Some(overlay) => overlay.is_some(),
                None => true,
            })
            .collect();
        for (id, overlay) in &self.rels {
            if overlay.is_some() && !self.base.rel_exists(*id) {
                out.push(*id);
            }
        }
        out.sort();
        out.dedup();
        out
    }

    fn rels_of(&self, node: NodeId, dir: Direction) -> Vec<RelId> {
        // Base adjacency minus rels that did not exist before, plus restored
        // (deleted-in-slice) rels incident to `node`.
        let mut out: Vec<RelId> = self
            .base
            .rels_of(node, dir)
            .into_iter()
            .filter(|id| match self.rels.get(id) {
                Some(overlay) => overlay.is_some(),
                None => true,
            })
            .collect();
        for (id, overlay) in &self.rels {
            if let Some(rec) = overlay {
                if self.base.rel_exists(*id) {
                    continue; // already covered by base adjacency
                }
                let incident = match dir {
                    Direction::Out => rec.src == node,
                    Direction::In => rec.dst == node,
                    Direction::Both => rec.src == node || rec.dst == node,
                };
                if incident {
                    out.push(*id);
                }
            }
        }
        out.sort();
        out.dedup();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::props::PropertyMap;

    fn props(entries: &[(&str, Value)]) -> PropertyMap {
        entries
            .iter()
            .map(|(k, v)| (k.to_string(), v.clone()))
            .collect()
    }

    /// Build a graph, run mutations in a tx, return graph + ops since mark.
    /// `setup` returns a value (usually ids) that is handed to `stmt`.
    fn run<T>(
        setup: impl FnOnce(&mut Graph) -> T,
        stmt: impl FnOnce(&mut Graph, &T),
    ) -> (Graph, Vec<Op>, T) {
        let mut g = Graph::new();
        let t = setup(&mut g);
        g.begin().unwrap();
        let mark = g.mark();
        stmt(&mut g, &t);
        let ops = g.ops_since(mark).to_vec();
        (g, ops, t)
    }

    #[test]
    fn created_node_absent_in_pre_state() {
        let (g, ops, _) = run(
            |_| (),
            |g, _| {
                g.create_node(["A"], PropertyMap::new()).unwrap();
            },
        );
        let pre = PreStateView::new(&g, &ops);
        assert!(pre.all_node_ids().is_empty());
        assert!(pre.nodes_with_label("A").is_empty());
    }

    #[test]
    fn deleted_node_present_in_pre_state() {
        let (g, ops, n) = run(
            |g| {
                g.create_node(["A"], props(&[("x", Value::Int(1))]))
                    .unwrap()
            },
            |g, n| {
                g.detach_delete_node(*n).unwrap();
            },
        );
        assert!(!g.node_exists(n));
        let pre = PreStateView::new(&g, &ops);
        assert!(pre.node_exists(n));
        assert_eq!(pre.node_prop(n, "x"), Some(Value::Int(1)));
        assert_eq!(pre.nodes_with_label("A"), vec![n]);
    }

    #[test]
    fn prop_changes_unwound() {
        let (g, ops, n) = run(
            |g| {
                g.create_node(["A"], props(&[("x", Value::Int(1))]))
                    .unwrap()
            },
            |g, n| {
                g.set_node_prop(*n, "x", Value::Int(2)).unwrap();
                g.set_node_prop(*n, "y", Value::Int(9)).unwrap();
                g.remove_node_prop(*n, "x").unwrap();
            },
        );
        assert_eq!(g.node_prop(n, "x"), None);
        assert_eq!(g.node_prop(n, "y"), Some(Value::Int(9)));
        let pre = PreStateView::new(&g, &ops);
        assert_eq!(pre.node_prop(n, "x"), Some(Value::Int(1)));
        assert_eq!(pre.node_prop(n, "y"), None);
        assert_eq!(pre.node_prop_keys(n), vec!["x".to_string()]);
    }

    #[test]
    fn label_changes_unwound() {
        let (g, ops, n) = run(
            |g| g.create_node(["A"], PropertyMap::new()).unwrap(),
            |g, n| {
                g.set_label(*n, "B").unwrap();
                g.remove_label(*n, "A").unwrap();
            },
        );
        assert!(g.node_has_label(n, "B") && !g.node_has_label(n, "A"));
        let pre = PreStateView::new(&g, &ops);
        assert!(pre.node_has_label(n, "A"));
        assert!(!pre.node_has_label(n, "B"));
        assert_eq!(pre.nodes_with_label("A"), vec![n]);
        assert!(pre.nodes_with_label("B").is_empty());
    }

    #[test]
    fn label_cardinality_matches_extent_through_overlays() {
        let (g, ops, n) = run(
            |g| {
                let keep = g.create_node(["A"], PropertyMap::new()).unwrap();
                g.create_node(["A"], PropertyMap::new()).unwrap();
                keep
            },
            |g, keep| {
                // touch existing nodes both ways and create a fresh one
                g.remove_label(*keep, "A").unwrap();
                g.set_label(*keep, "B").unwrap();
                g.create_node(["A"], PropertyMap::new()).unwrap();
            },
        );
        let pre = PreStateView::new(&g, &ops);
        for label in ["A", "B", "Absent"] {
            assert_eq!(
                pre.label_cardinality(label),
                pre.nodes_with_label(label).len(),
                "pre-state cardinality for {label}"
            );
        }
        assert_eq!(pre.label_cardinality("A"), 2);
        assert_eq!(pre.label_cardinality("B"), 0);
        let _ = n;
    }

    #[test]
    fn count_probes_correct_for_overlays() {
        let (g, ops, kept) = run(
            |g| {
                let mut last = NodeId(0);
                for i in 0..5 {
                    last = g
                        .create_node(["P"], props(&[("v", Value::Int(i))]))
                        .unwrap();
                }
                g.create_index("P", "v");
                last
            },
            |g, kept| {
                // statement: delete v=4, add v=1 (duplicate), retag one
                g.detach_delete_node(*kept).unwrap();
                g.create_node(["P"], props(&[("v", Value::Int(1))]))
                    .unwrap();
            },
        );
        let pre = PreStateView::new(&g, &ops);
        // pre-state: v ∈ {0,1,2,3,4}, one node each
        assert_eq!(pre.count_nodes_with_prop("P", "v", &Value::Int(4)), Some(1));
        assert_eq!(pre.count_nodes_with_prop("P", "v", &Value::Int(1)), Some(1));
        let in_range = pre
            .count_nodes_in_prop_range("P", "v", Bound::Included(&Value::Int(0)), Bound::Unbounded)
            .unwrap();
        assert_eq!(in_range, 5);
        assert_eq!(pre.rel_count_estimate(), 0);
        let _ = kept;
    }

    #[test]
    fn index_lookups_correct_for_overlays() {
        // Planning estimates (counts) and execution access paths
        // (materializing lookups) must agree on a pre-state view: both
        // answer from the base index corrected by the overlay.
        let (g, ops, deleted) = run(
            |g| {
                let mut last = NodeId(0);
                for i in 0..6 {
                    last = g
                        .create_node(["P"], props(&[("v", Value::Int(i))]))
                        .unwrap();
                }
                g.create_index("P", "v");
                last
            },
            |g, deleted| {
                g.detach_delete_node(*deleted).unwrap(); // v=5 restored in pre
                g.create_node(["P"], props(&[("v", Value::Int(2))]))
                    .unwrap(); // absent in pre
            },
        );
        let pre = PreStateView::new(&g, &ops);
        assert_eq!(
            pre.nodes_with_prop("P", "v", &Value::Int(5)),
            Some(vec![deleted])
        );
        assert_eq!(
            pre.nodes_with_prop("P", "v", &Value::Int(2))
                .map(|v| v.len()),
            Some(1)
        );
        let in_range = pre
            .nodes_in_prop_range("P", "v", Bound::Included(&Value::Int(3)), Bound::Unbounded)
            .unwrap();
        assert_eq!(in_range.len(), 3); // v ∈ {3, 4, 5}
                                       // counts agree with materialization
        assert_eq!(
            pre.count_nodes_in_prop_range(
                "P",
                "v",
                Bound::Included(&Value::Int(3)),
                Bound::Unbounded
            ),
            Some(3)
        );
        // unindexed key: both sides refuse together
        assert_eq!(pre.nodes_with_prop("P", "w", &Value::Int(1)), None);
        assert_eq!(pre.count_nodes_with_prop("P", "w", &Value::Int(1)), None);
    }

    #[test]
    fn adjacency_reflects_pre_state() {
        let (g, ops, (a, b, old_r)) = run(
            |g| {
                let a = g.create_node(["A"], PropertyMap::new()).unwrap();
                let b = g.create_node(["B"], PropertyMap::new()).unwrap();
                let r = g.create_rel(a, b, "R", PropertyMap::new()).unwrap();
                (a, b, r)
            },
            |g, (a, b, r)| {
                g.delete_rel(*r).unwrap();
                g.create_rel(*b, *a, "R2", PropertyMap::new()).unwrap();
            },
        );
        let pre = PreStateView::new(&g, &ops);
        assert_eq!(pre.rels_of(a, Direction::Out), vec![old_r]);
        assert_eq!(pre.rels_of(a, Direction::In), Vec::<RelId>::new());
        assert_eq!(pre.rels_of(b, Direction::In), vec![old_r]);
        assert_eq!(pre.rel_endpoints(old_r), Some((a, b)));
        assert_eq!(pre.rel_type(old_r), Some("R".to_string()));
        assert_eq!(pre.all_rel_ids(), vec![old_r]);
    }

    #[test]
    fn rel_prop_changes_unwound() {
        let (g, ops, r) = run(
            |g| {
                let a = g.create_node(["A"], PropertyMap::new()).unwrap();
                let b = g.create_node(["B"], PropertyMap::new()).unwrap();
                g.create_rel(a, b, "R", props(&[("w", Value::Int(1))]))
                    .unwrap()
            },
            |g, r| {
                g.set_rel_prop(*r, "w", Value::Int(5)).unwrap();
            },
        );
        assert_eq!(g.rel_prop(r, "w"), Some(Value::Int(5)));
        let pre = PreStateView::new(&g, &ops);
        assert_eq!(pre.rel_prop(r, "w"), Some(Value::Int(1)));
    }

    #[test]
    fn untouched_items_read_through() {
        let (g, ops, a) = run(
            |g| {
                g.create_node(["Stable"], props(&[("p", Value::Int(7))]))
                    .unwrap()
            },
            |g, _| {
                g.create_node(["Other"], PropertyMap::new()).unwrap();
            },
        );
        let pre = PreStateView::new(&g, &ops);
        assert!(pre.node_exists(a));
        assert_eq!(pre.node_prop(a, "p"), Some(Value::Int(7)));
        assert_eq!(pre.nodes_with_label("Stable"), vec![a]);
        assert_eq!(pre.all_node_ids(), vec![a]);
    }
}
