//! Read views over graph state.
//!
//! [`GraphView`] is the read interface consumed by the query layer; it is
//! implemented by the live [`crate::Graph`] and by [`PreStateView`], which
//! reconstructs the state *preceding* an op-log slice. The PG-Trigger engine
//! evaluates `BEFORE` trigger conditions against a `PreStateView` so they
//! observe the database as it was before the activating statement (paper
//! §4.2 "Action Time").

use crate::ids::{NodeId, RelId};
use crate::op::Op;
use crate::record::{NodeRecord, RelRecord};
use crate::store::Graph;
use crate::value::{Direction, Value};
use std::collections::HashMap;
use std::ops::Bound;

/// Read-only access to a graph state.
pub trait GraphView {
    fn node_exists(&self, id: NodeId) -> bool;
    fn rel_exists(&self, id: RelId) -> bool;
    fn node_labels(&self, id: NodeId) -> Vec<String>;
    fn node_has_label(&self, id: NodeId, label: &str) -> bool;
    /// A property value (cloned); `None` when the node or key is absent.
    fn node_prop(&self, id: NodeId, key: &str) -> Option<Value>;
    fn node_prop_keys(&self, id: NodeId) -> Vec<String>;
    fn rel_type(&self, id: RelId) -> Option<String>;
    fn rel_prop(&self, id: RelId, key: &str) -> Option<Value>;
    fn rel_prop_keys(&self, id: RelId) -> Vec<String>;
    fn rel_endpoints(&self, id: RelId) -> Option<(NodeId, NodeId)>;
    /// Nodes currently carrying `label` (index-backed on the live graph).
    fn nodes_with_label(&self, label: &str) -> Vec<NodeId>;
    fn all_node_ids(&self) -> Vec<NodeId>;
    fn all_rel_ids(&self) -> Vec<RelId>;
    /// Relationships incident to `node` in the given direction.
    fn rels_of(&self, node: NodeId, dir: Direction) -> Vec<RelId>;

    /// Index-backed equality lookup: nodes with `label` whose property
    /// `key` equals `value`. `Some(ids)` when a property index on
    /// `(label, key)` exists *and* can answer for `value`; `None` when the
    /// caller must fall back to a filtered scan. The default (used by
    /// overlay/pre-state views) has no indexes.
    fn nodes_with_prop(&self, _label: &str, _key: &str, _value: &Value) -> Option<Vec<NodeId>> {
        None
    }

    /// Index-backed ordered range lookup: nodes with `label` whose
    /// property `key` lies within the given bounds under [`Value::cmp3`]
    /// semantics. `None` = no index can answer faithfully (fall back to a
    /// filtered scan); see `PropIndex::range_lookup` for the exact
    /// contract, including the ±2⁵³ lossy-numeric opt-out.
    fn nodes_in_prop_range(
        &self,
        _label: &str,
        _key: &str,
        _lower: Bound<&Value>,
        _upper: Bound<&Value>,
    ) -> Option<Vec<NodeId>> {
        None
    }

    /// Index-backed `STARTS WITH` prefix scan over string values of `key`.
    fn nodes_with_prop_prefix(
        &self,
        _label: &str,
        _key: &str,
        _prefix: &str,
    ) -> Option<Vec<NodeId>> {
        None
    }

    /// Index-backed equality lookup over relationships of `rel_type`.
    fn rels_with_prop(&self, _rel_type: &str, _key: &str, _value: &Value) -> Option<Vec<RelId>> {
        None
    }

    /// Index-backed ordered range lookup over relationships of `rel_type`.
    fn rels_in_prop_range(
        &self,
        _rel_type: &str,
        _key: &str,
        _lower: Bound<&Value>,
        _upper: Bound<&Value>,
    ) -> Option<Vec<RelId>> {
        None
    }

    /// Relationships of the given type. The default filters the full
    /// relationship extent; the live graph answers from the type index.
    fn rels_with_type(&self, rel_type: &str) -> Vec<RelId> {
        self.all_rel_ids()
            .into_iter()
            .filter(|r| self.rel_type(*r).as_deref() == Some(rel_type))
            .collect()
    }

    /// Cardinality of a label extent — a planning estimate; must be exact
    /// enough that `0` means the extent is empty. The default materializes
    /// the extent; the live graph answers in O(1) and the overlay views in
    /// O(touched items).
    fn label_cardinality(&self, label: &str) -> usize {
        self.nodes_with_label(label).len()
    }

    /// Cardinality of a relationship-type extent (planning estimate, same
    /// contract as [`GraphView::label_cardinality`]).
    fn rel_type_cardinality(&self, rel_type: &str) -> usize {
        self.rels_with_type(rel_type).len()
    }

    /// Total node count (planning estimate for full-scan costs).
    fn node_count_estimate(&self) -> usize {
        self.all_node_ids().len()
    }
}

/// The state of the graph **before** a slice of operations was applied.
///
/// Constructed from the live graph and the op slice; overlays are
/// materialized eagerly (the number of touched items is bounded by the slice
/// length, not the graph size).
pub struct PreStateView<'g> {
    base: &'g Graph,
    /// Pre-state of touched nodes: `None` = did not exist before the slice.
    nodes: HashMap<NodeId, Option<NodeRecord>>,
    /// Pre-state of touched relationships.
    rels: HashMap<RelId, Option<RelRecord>>,
}

impl<'g> PreStateView<'g> {
    /// Build the pre-state of `base` with respect to `ops` (which must be
    /// the exact op sequence that produced the current state of `base` from
    /// the desired pre-state).
    pub fn new(base: &'g Graph, ops: &[Op]) -> Self {
        let mut nodes: HashMap<NodeId, Option<NodeRecord>> = HashMap::new();
        let mut rels: HashMap<RelId, Option<RelRecord>> = HashMap::new();
        // Seed with the *current* state of every touched item, then unwind.
        for op in ops {
            if let Some(nid) = op.node_id() {
                nodes.entry(nid).or_insert_with(|| base.node(nid).cloned());
            }
            if let Some(rid) = op.rel_id() {
                rels.entry(rid).or_insert_with(|| base.rel(rid).cloned());
            }
        }
        for op in ops.iter().rev() {
            match op {
                Op::CreateNode { record } => {
                    nodes.insert(record.id, None);
                }
                Op::DeleteNode { record } => {
                    nodes.insert(record.id, Some(record.clone()));
                }
                Op::CreateRel { record } => {
                    rels.insert(record.id, None);
                }
                Op::DeleteRel { record } => {
                    rels.insert(record.id, Some(record.clone()));
                }
                Op::SetLabel { node, label } => {
                    if let Some(Some(n)) = nodes.get_mut(node) {
                        n.labels.remove(label);
                    }
                }
                Op::RemoveLabel { node, label } => {
                    if let Some(Some(n)) = nodes.get_mut(node) {
                        n.labels.insert(label.clone());
                    }
                }
                Op::SetNodeProp { node, key, old, .. } => {
                    if let Some(Some(n)) = nodes.get_mut(node) {
                        match old {
                            Some(v) => {
                                n.props.set(key.clone(), v.clone());
                            }
                            None => {
                                n.props.remove(key);
                            }
                        }
                    }
                }
                Op::RemoveNodeProp { node, key, old } => {
                    if let Some(Some(n)) = nodes.get_mut(node) {
                        n.props.set(key.clone(), old.clone());
                    }
                }
                Op::SetRelProp { rel, key, old, .. } => {
                    if let Some(Some(r)) = rels.get_mut(rel) {
                        match old {
                            Some(v) => {
                                r.props.set(key.clone(), v.clone());
                            }
                            None => {
                                r.props.remove(key);
                            }
                        }
                    }
                }
                Op::RemoveRelProp { rel, key, old } => {
                    if let Some(Some(r)) = rels.get_mut(rel) {
                        r.props.set(key.clone(), old.clone());
                    }
                }
            }
        }
        PreStateView { base, nodes, rels }
    }

    fn node_rec(&self, id: NodeId) -> Option<NodeRecord> {
        match self.nodes.get(&id) {
            Some(overlay) => overlay.clone(),
            None => self.base.node(id).cloned(),
        }
    }

    fn rel_rec(&self, id: RelId) -> Option<RelRecord> {
        match self.rels.get(&id) {
            Some(overlay) => overlay.clone(),
            None => self.base.rel(id).cloned(),
        }
    }
}

impl GraphView for PreStateView<'_> {
    fn node_exists(&self, id: NodeId) -> bool {
        match self.nodes.get(&id) {
            Some(overlay) => overlay.is_some(),
            None => self.base.node_exists(id),
        }
    }

    fn rel_exists(&self, id: RelId) -> bool {
        match self.rels.get(&id) {
            Some(overlay) => overlay.is_some(),
            None => self.base.rel_exists(id),
        }
    }

    fn node_labels(&self, id: NodeId) -> Vec<String> {
        self.node_rec(id)
            .map(|n| n.labels.into_iter().collect())
            .unwrap_or_default()
    }

    fn node_has_label(&self, id: NodeId, label: &str) -> bool {
        self.node_rec(id)
            .map(|n| n.has_label(label))
            .unwrap_or(false)
    }

    fn node_prop(&self, id: NodeId, key: &str) -> Option<Value> {
        self.node_rec(id).and_then(|n| n.props.get(key).cloned())
    }

    fn node_prop_keys(&self, id: NodeId) -> Vec<String> {
        self.node_rec(id)
            .map(|n| n.props.keys().cloned().collect())
            .unwrap_or_default()
    }

    fn rel_type(&self, id: RelId) -> Option<String> {
        self.rel_rec(id).map(|r| r.rel_type)
    }

    fn rel_prop(&self, id: RelId, key: &str) -> Option<Value> {
        self.rel_rec(id).and_then(|r| r.props.get(key).cloned())
    }

    fn rel_prop_keys(&self, id: RelId) -> Vec<String> {
        self.rel_rec(id)
            .map(|r| r.props.keys().cloned().collect())
            .unwrap_or_default()
    }

    fn rel_endpoints(&self, id: RelId) -> Option<(NodeId, NodeId)> {
        self.rel_rec(id).map(|r| (r.src, r.dst))
    }

    fn nodes_with_label(&self, label: &str) -> Vec<NodeId> {
        let mut out: Vec<NodeId> = self
            .base
            .nodes_with_label(label)
            .into_iter()
            .filter(|id| !self.nodes.contains_key(id))
            .collect();
        for (id, overlay) in &self.nodes {
            if let Some(rec) = overlay {
                if rec.has_label(label) {
                    out.push(*id);
                }
            }
        }
        out.sort();
        out
    }

    fn label_cardinality(&self, label: &str) -> usize {
        // Candidate planning probes every label of a pattern; answer in
        // O(touched) by correcting the base count instead of materializing
        // and sorting the whole extent.
        let mut n = self.base.label_cardinality(label);
        for (id, overlay) in &self.nodes {
            let base_has = self.base.node_has_label(*id, label);
            let pre_has = overlay
                .as_ref()
                .map(|r| r.has_label(label))
                .unwrap_or(false);
            match (base_has, pre_has) {
                (true, false) => n -= 1,
                (false, true) => n += 1,
                _ => {}
            }
        }
        n
    }

    fn rels_with_type(&self, rel_type: &str) -> Vec<RelId> {
        // Base type extent minus rels that did not exist before the slice,
        // plus restored (deleted-in-slice) rels of the type.
        let mut out: Vec<RelId> = self
            .base
            .rels_with_type(rel_type)
            .into_iter()
            .filter(|id| match self.rels.get(id) {
                Some(overlay) => overlay.is_some(),
                None => true,
            })
            .collect();
        for (id, overlay) in &self.rels {
            if let Some(rec) = overlay {
                if rec.rel_type == rel_type && !self.base.rel_exists(*id) {
                    out.push(*id);
                }
            }
        }
        out.sort();
        out.dedup();
        out
    }

    fn rel_type_cardinality(&self, rel_type: &str) -> usize {
        // O(touched) correction of the base count (planning hot path).
        let mut n = self.base.rel_type_cardinality(rel_type);
        for (id, overlay) in &self.rels {
            let base_has = self
                .base
                .rel(*id)
                .map(|r| r.rel_type == rel_type)
                .unwrap_or(false);
            let pre_has = overlay
                .as_ref()
                .map(|r| r.rel_type == rel_type)
                .unwrap_or(false);
            match (base_has, pre_has) {
                (true, false) => n -= 1,
                (false, true) => n += 1,
                _ => {}
            }
        }
        n
    }

    fn node_count_estimate(&self) -> usize {
        let mut n = self.base.node_count_estimate();
        for (id, overlay) in &self.nodes {
            match (self.base.node_exists(*id), overlay.is_some()) {
                (true, false) => n -= 1,
                (false, true) => n += 1,
                _ => {}
            }
        }
        n
    }

    fn all_node_ids(&self) -> Vec<NodeId> {
        let mut out: Vec<NodeId> = self
            .base
            .all_node_ids()
            .into_iter()
            .filter(|id| match self.nodes.get(id) {
                Some(overlay) => overlay.is_some(),
                None => true,
            })
            .collect();
        for (id, overlay) in &self.nodes {
            if overlay.is_some() && !self.base.node_exists(*id) {
                out.push(*id);
            }
        }
        out.sort();
        out.dedup();
        out
    }

    fn all_rel_ids(&self) -> Vec<RelId> {
        let mut out: Vec<RelId> = self
            .base
            .all_rel_ids()
            .into_iter()
            .filter(|id| match self.rels.get(id) {
                Some(overlay) => overlay.is_some(),
                None => true,
            })
            .collect();
        for (id, overlay) in &self.rels {
            if overlay.is_some() && !self.base.rel_exists(*id) {
                out.push(*id);
            }
        }
        out.sort();
        out.dedup();
        out
    }

    fn rels_of(&self, node: NodeId, dir: Direction) -> Vec<RelId> {
        // Base adjacency minus rels that did not exist before, plus restored
        // (deleted-in-slice) rels incident to `node`.
        let mut out: Vec<RelId> = self
            .base
            .rels_of(node, dir)
            .into_iter()
            .filter(|id| match self.rels.get(id) {
                Some(overlay) => overlay.is_some(),
                None => true,
            })
            .collect();
        for (id, overlay) in &self.rels {
            if let Some(rec) = overlay {
                if self.base.rel_exists(*id) {
                    continue; // already covered by base adjacency
                }
                let incident = match dir {
                    Direction::Out => rec.src == node,
                    Direction::In => rec.dst == node,
                    Direction::Both => rec.src == node || rec.dst == node,
                };
                if incident {
                    out.push(*id);
                }
            }
        }
        out.sort();
        out.dedup();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::props::PropertyMap;

    fn props(entries: &[(&str, Value)]) -> PropertyMap {
        entries
            .iter()
            .map(|(k, v)| (k.to_string(), v.clone()))
            .collect()
    }

    /// Build a graph, run mutations in a tx, return graph + ops since mark.
    /// `setup` returns a value (usually ids) that is handed to `stmt`.
    fn run<T>(
        setup: impl FnOnce(&mut Graph) -> T,
        stmt: impl FnOnce(&mut Graph, &T),
    ) -> (Graph, Vec<Op>, T) {
        let mut g = Graph::new();
        let t = setup(&mut g);
        g.begin().unwrap();
        let mark = g.mark();
        stmt(&mut g, &t);
        let ops = g.ops_since(mark).to_vec();
        (g, ops, t)
    }

    #[test]
    fn created_node_absent_in_pre_state() {
        let (g, ops, _) = run(
            |_| (),
            |g, _| {
                g.create_node(["A"], PropertyMap::new()).unwrap();
            },
        );
        let pre = PreStateView::new(&g, &ops);
        assert!(pre.all_node_ids().is_empty());
        assert!(pre.nodes_with_label("A").is_empty());
    }

    #[test]
    fn deleted_node_present_in_pre_state() {
        let (g, ops, n) = run(
            |g| {
                g.create_node(["A"], props(&[("x", Value::Int(1))]))
                    .unwrap()
            },
            |g, n| {
                g.detach_delete_node(*n).unwrap();
            },
        );
        assert!(!g.node_exists(n));
        let pre = PreStateView::new(&g, &ops);
        assert!(pre.node_exists(n));
        assert_eq!(pre.node_prop(n, "x"), Some(Value::Int(1)));
        assert_eq!(pre.nodes_with_label("A"), vec![n]);
    }

    #[test]
    fn prop_changes_unwound() {
        let (g, ops, n) = run(
            |g| {
                g.create_node(["A"], props(&[("x", Value::Int(1))]))
                    .unwrap()
            },
            |g, n| {
                g.set_node_prop(*n, "x", Value::Int(2)).unwrap();
                g.set_node_prop(*n, "y", Value::Int(9)).unwrap();
                g.remove_node_prop(*n, "x").unwrap();
            },
        );
        assert_eq!(g.node_prop(n, "x"), None);
        assert_eq!(g.node_prop(n, "y"), Some(Value::Int(9)));
        let pre = PreStateView::new(&g, &ops);
        assert_eq!(pre.node_prop(n, "x"), Some(Value::Int(1)));
        assert_eq!(pre.node_prop(n, "y"), None);
        assert_eq!(pre.node_prop_keys(n), vec!["x".to_string()]);
    }

    #[test]
    fn label_changes_unwound() {
        let (g, ops, n) = run(
            |g| g.create_node(["A"], PropertyMap::new()).unwrap(),
            |g, n| {
                g.set_label(*n, "B").unwrap();
                g.remove_label(*n, "A").unwrap();
            },
        );
        assert!(g.node_has_label(n, "B") && !g.node_has_label(n, "A"));
        let pre = PreStateView::new(&g, &ops);
        assert!(pre.node_has_label(n, "A"));
        assert!(!pre.node_has_label(n, "B"));
        assert_eq!(pre.nodes_with_label("A"), vec![n]);
        assert!(pre.nodes_with_label("B").is_empty());
    }

    #[test]
    fn label_cardinality_matches_extent_through_overlays() {
        let (g, ops, n) = run(
            |g| {
                let keep = g.create_node(["A"], PropertyMap::new()).unwrap();
                g.create_node(["A"], PropertyMap::new()).unwrap();
                keep
            },
            |g, keep| {
                // touch existing nodes both ways and create a fresh one
                g.remove_label(*keep, "A").unwrap();
                g.set_label(*keep, "B").unwrap();
                g.create_node(["A"], PropertyMap::new()).unwrap();
            },
        );
        let pre = PreStateView::new(&g, &ops);
        for label in ["A", "B", "Absent"] {
            assert_eq!(
                pre.label_cardinality(label),
                pre.nodes_with_label(label).len(),
                "pre-state cardinality for {label}"
            );
        }
        assert_eq!(pre.label_cardinality("A"), 2);
        assert_eq!(pre.label_cardinality("B"), 0);
        let _ = n;
    }

    #[test]
    fn adjacency_reflects_pre_state() {
        let (g, ops, (a, b, old_r)) = run(
            |g| {
                let a = g.create_node(["A"], PropertyMap::new()).unwrap();
                let b = g.create_node(["B"], PropertyMap::new()).unwrap();
                let r = g.create_rel(a, b, "R", PropertyMap::new()).unwrap();
                (a, b, r)
            },
            |g, (a, b, r)| {
                g.delete_rel(*r).unwrap();
                g.create_rel(*b, *a, "R2", PropertyMap::new()).unwrap();
            },
        );
        let pre = PreStateView::new(&g, &ops);
        assert_eq!(pre.rels_of(a, Direction::Out), vec![old_r]);
        assert_eq!(pre.rels_of(a, Direction::In), Vec::<RelId>::new());
        assert_eq!(pre.rels_of(b, Direction::In), vec![old_r]);
        assert_eq!(pre.rel_endpoints(old_r), Some((a, b)));
        assert_eq!(pre.rel_type(old_r), Some("R".to_string()));
        assert_eq!(pre.all_rel_ids(), vec![old_r]);
    }

    #[test]
    fn rel_prop_changes_unwound() {
        let (g, ops, r) = run(
            |g| {
                let a = g.create_node(["A"], PropertyMap::new()).unwrap();
                let b = g.create_node(["B"], PropertyMap::new()).unwrap();
                g.create_rel(a, b, "R", props(&[("w", Value::Int(1))]))
                    .unwrap()
            },
            |g, r| {
                g.set_rel_prop(*r, "w", Value::Int(5)).unwrap();
            },
        );
        assert_eq!(g.rel_prop(r, "w"), Some(Value::Int(5)));
        let pre = PreStateView::new(&g, &ops);
        assert_eq!(pre.rel_prop(r, "w"), Some(Value::Int(1)));
    }

    #[test]
    fn untouched_items_read_through() {
        let (g, ops, a) = run(
            |g| {
                g.create_node(["Stable"], props(&[("p", Value::Int(7))]))
                    .unwrap()
            },
            |g, _| {
                g.create_node(["Other"], PropertyMap::new()).unwrap();
            },
        );
        let pre = PreStateView::new(&g, &ops);
        assert!(pre.node_exists(a));
        assert_eq!(pre.node_prop(a, "p"), Some(Value::Int(7)));
        assert_eq!(pre.nodes_with_label("Stable"), vec![a]);
        assert_eq!(pre.all_node_ids(), vec![a]);
    }
}
