//! Typed identifiers for graph items.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of a node. Ids are assigned monotonically by the store and are
/// never reused, so an id also acts as a creation-time stamp.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct NodeId(pub u64);

/// Identifier of a relationship (edge). Same monotonicity guarantee as
/// [`NodeId`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct RelId(pub u64);

/// A reference to either kind of graph item. Used where an operation applies
/// uniformly to nodes and relationships (e.g. the `BEFORE`-trigger write
/// policy, which restricts writes to the *new* items of a statement).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum ItemRef {
    Node(NodeId),
    Rel(RelId),
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl fmt::Display for RelId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

impl fmt::Display for ItemRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ItemRef::Node(n) => write!(f, "{n}"),
            ItemRef::Rel(r) => write!(f, "{r}"),
        }
    }
}

impl From<NodeId> for ItemRef {
    fn from(n: NodeId) -> Self {
        ItemRef::Node(n)
    }
}

impl From<RelId> for ItemRef {
    fn from(r: RelId) -> Self {
        ItemRef::Rel(r)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_forms() {
        assert_eq!(NodeId(7).to_string(), "n7");
        assert_eq!(RelId(3).to_string(), "r3");
        assert_eq!(ItemRef::Node(NodeId(7)).to_string(), "n7");
        assert_eq!(ItemRef::Rel(RelId(3)).to_string(), "r3");
    }

    #[test]
    fn ids_order_by_value() {
        assert!(NodeId(1) < NodeId(2));
        assert!(RelId(10) > RelId(9));
    }

    #[test]
    fn item_ref_from_ids() {
        assert_eq!(ItemRef::from(NodeId(1)), ItemRef::Node(NodeId(1)));
        assert_eq!(ItemRef::from(RelId(2)), ItemRef::Rel(RelId(2)));
    }
}
