//! Error types for store operations.

use crate::ids::{ItemRef, NodeId, RelId};
use std::fmt;

/// Errors raised by [`crate::Graph`] mutations and transaction control.
#[derive(Debug, Clone, PartialEq)]
pub enum GraphError {
    /// The referenced node does not exist (or was deleted in this transaction).
    NodeNotFound(NodeId),
    /// The referenced relationship does not exist.
    RelNotFound(RelId),
    /// `DELETE` on a node that still has relationships (use detach-delete).
    HasRelationships(NodeId),
    /// Transaction control misuse: `commit`/`rollback` without `begin`.
    NoActiveTransaction,
    /// `begin` while a transaction is already active.
    TransactionActive,
    /// A mutation was rejected by the active write policy (e.g. a `BEFORE`
    /// trigger statement attempting anything other than conditioning the NEW
    /// items, paper §4.2 "Action Time").
    WritePolicy {
        op: &'static str,
        item: Option<ItemRef>,
    },
    /// Attempt to store a non-storable value (a node/relationship reference)
    /// as a property.
    NotStorable {
        key: String,
        type_name: &'static str,
    },
    /// The attached [`crate::store::CommitSink`] refused the commit (e.g.
    /// a WAL append or fsync failed). The transaction has been undone: the
    /// in-memory state never diverges from the durable log.
    Durability(String),
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::NodeNotFound(n) => write!(f, "node {n} not found"),
            GraphError::RelNotFound(r) => write!(f, "relationship {r} not found"),
            GraphError::HasRelationships(n) => {
                write!(f, "node {n} still has relationships; use DETACH DELETE")
            }
            GraphError::NoActiveTransaction => write!(f, "no active transaction"),
            GraphError::TransactionActive => write!(f, "a transaction is already active"),
            GraphError::WritePolicy { op, item } => match item {
                Some(i) => write!(f, "write policy forbids {op} on {i}"),
                None => write!(f, "write policy forbids {op}"),
            },
            GraphError::NotStorable { key, type_name } => {
                write!(
                    f,
                    "value of type {type_name} cannot be stored as property '{key}'"
                )
            }
            GraphError::Durability(reason) => {
                write!(f, "commit rejected by durability layer: {reason}")
            }
        }
    }
}

impl std::error::Error for GraphError {}

/// Result alias for store operations.
pub type Result<T> = std::result::Result<T, GraphError>;
