//! Persistent (copy-on-write) ordered collections for snapshot isolation.
//!
//! [`PMap`] is an ordered map backed by a treap whose nodes are shared
//! through [`Arc`]: cloning a map is O(1) (it clones the root pointer),
//! and a mutation copies only the O(log n) path from the root to the
//! touched node — and only the *shared* prefix of that path
//! ([`Arc::make_mut`] skips nodes with a reference count of 1, so a
//! writer that mutates repeatedly between snapshot publications pays the
//! path copy once per published version, not once per write).
//!
//! This is what makes the store's MVCC-lite cheap in both directions:
//!
//! * **publish** (`Graph::snapshot`) is an `Arc` clone of the whole store
//!   state — no per-element work at all;
//! * **write-after-publish** is a single O(log n) path copy per touched
//!   key, after which the writer owns its path again and mutates in
//!   place.
//!
//! Treap priorities are derived deterministically from an insertion
//! counter fed through a 64-bit mixer, so the tree stays balanced in
//! expectation (O(log n) depth w.h.p.) without any runtime randomness —
//! rebuilding the same store from the same op sequence yields the same
//! shape, which keeps test failures reproducible.
//!
//! The API mirrors the `BTreeMap`/`BTreeSet` subset the store and the
//! index layers actually use: `get`/`get_mut`/`insert`/`remove`, ordered
//! iteration, and bounded forward/reverse range walks ([`PMap::range`],
//! [`PMap::range_rev`]) for the ordered-index access paths.

use std::cmp::Ordering;
use std::fmt;
use std::ops::Bound;
use std::sync::Arc;

/// SplitMix64: turns the sequential insertion counter into well-mixed
/// treap priorities.
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

type Link<K, V> = Option<Arc<Node<K, V>>>;

#[derive(Debug, Clone)]
struct Node<K, V> {
    prio: u64,
    key: K,
    val: V,
    left: Link<K, V>,
    right: Link<K, V>,
}

/// A persistent ordered map (copy-on-write treap). See the module docs.
#[derive(Clone)]
pub struct PMap<K, V> {
    root: Link<K, V>,
    len: usize,
    /// Insertion counter feeding the deterministic priority mixer.
    seq: u64,
}

impl<K, V> Default for PMap<K, V> {
    fn default() -> Self {
        PMap {
            root: None,
            len: 0,
            seq: 0,
        }
    }
}

impl<K: fmt::Debug, V: fmt::Debug> fmt::Debug for PMap<K, V> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_map().entries(self.iter()).finish()
    }
}

impl<K, V> PMap<K, V> {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn len(&self) -> usize {
        self.len
    }

    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// In-order iteration over `(key, value)` pairs.
    pub fn iter(&self) -> Iter<'_, K, V> {
        let mut it = Iter { stack: Vec::new() };
        it.push_left(self.root.as_deref());
        it
    }

    /// Ordered keys.
    pub fn keys(&self) -> impl Iterator<Item = &K> {
        self.iter().map(|(k, _)| k)
    }

    /// Values in key order.
    pub fn values(&self) -> impl Iterator<Item = &V> {
        self.iter().map(|(_, v)| v)
    }
}

impl<K: Ord + Clone, V: Clone> PMap<K, V> {
    pub fn get(&self, key: &K) -> Option<&V> {
        let mut cur = self.root.as_deref();
        while let Some(n) = cur {
            match key.cmp(&n.key) {
                Ordering::Equal => return Some(&n.val),
                Ordering::Less => cur = n.left.as_deref(),
                Ordering::Greater => cur = n.right.as_deref(),
            }
        }
        None
    }

    pub fn contains_key(&self, key: &K) -> bool {
        self.get(key).is_some()
    }

    /// Mutable access to a present key, path-copying any shared nodes on
    /// the way down. Misses are detected with a read-only probe first so
    /// they never copy anything.
    pub fn get_mut(&mut self, key: &K) -> Option<&mut V> {
        if !self.contains_key(key) {
            return None;
        }
        Some(Self::get_mut_rec(&mut self.root, key))
    }

    fn get_mut_rec<'a>(link: &'a mut Link<K, V>, key: &K) -> &'a mut V {
        let rc = link.as_mut().expect("presence checked by get_mut");
        let node = Arc::make_mut(rc);
        match key.cmp(&node.key) {
            Ordering::Equal => &mut node.val,
            Ordering::Less => Self::get_mut_rec(&mut node.left, key),
            Ordering::Greater => Self::get_mut_rec(&mut node.right, key),
        }
    }

    /// Mutable access to `key`, inserting `V::default()` first when
    /// absent (the `entry(key).or_default()` idiom).
    pub fn get_or_default(&mut self, key: K) -> &mut V
    where
        V: Default,
    {
        if !self.contains_key(&key) {
            self.insert(key.clone(), V::default());
        }
        self.get_mut(&key).expect("just inserted")
    }

    /// Insert, returning the previous value of `key` (if any). An
    /// overwrite keeps the existing node's priority (the shape of the
    /// tree does not depend on overwrites).
    pub fn insert(&mut self, key: K, val: V) -> Option<V> {
        let prio = mix(self.seq);
        self.seq = self.seq.wrapping_add(1);
        let old = Self::insert_rec(&mut self.root, key, val, prio);
        if old.is_none() {
            self.len += 1;
        }
        old
    }

    fn insert_rec(link: &mut Link<K, V>, key: K, val: V, prio: u64) -> Option<V> {
        let Some(rc) = link.as_mut() else {
            *link = Some(Arc::new(Node {
                prio,
                key,
                val,
                left: None,
                right: None,
            }));
            return None;
        };
        let node = Arc::make_mut(rc);
        let (old, rot) = match key.cmp(&node.key) {
            Ordering::Equal => (Some(std::mem::replace(&mut node.val, val)), 0i8),
            Ordering::Less => {
                let old = Self::insert_rec(&mut node.left, key, val, prio);
                let lift = node.left.as_ref().is_some_and(|l| l.prio > node.prio);
                (old, if lift { 1 } else { 0 })
            }
            Ordering::Greater => {
                let old = Self::insert_rec(&mut node.right, key, val, prio);
                let lift = node.right.as_ref().is_some_and(|r| r.prio > node.prio);
                (old, if lift { -1 } else { 0 })
            }
        };
        match rot {
            1 => Self::rotate_right(link),
            -1 => Self::rotate_left(link),
            _ => {}
        }
        old
    }

    /// Rotate `link`'s left child up (heap-order repair after a left
    /// insert).
    fn rotate_right(link: &mut Link<K, V>) {
        let mut y = link.take().expect("rotate on empty link");
        let y_mut = Arc::make_mut(&mut y);
        let mut x = y_mut.left.take().expect("rotate_right without left child");
        let x_mut = Arc::make_mut(&mut x);
        y_mut.left = x_mut.right.take();
        x_mut.right = Some(y);
        *link = Some(x);
    }

    /// Rotate `link`'s right child up.
    fn rotate_left(link: &mut Link<K, V>) {
        let mut y = link.take().expect("rotate on empty link");
        let y_mut = Arc::make_mut(&mut y);
        let mut x = y_mut.right.take().expect("rotate_left without right child");
        let x_mut = Arc::make_mut(&mut x);
        y_mut.right = x_mut.left.take();
        x_mut.left = Some(y);
        *link = Some(x);
    }

    /// Remove `key`, returning its value.
    pub fn remove(&mut self, key: &K) -> Option<V> {
        if !self.contains_key(key) {
            return None;
        }
        let out = Self::remove_rec(&mut self.root, key);
        debug_assert!(out.is_some());
        self.len -= 1;
        out
    }

    fn remove_rec(link: &mut Link<K, V>, key: &K) -> Option<V> {
        let rc = link.as_mut()?;
        let node = Arc::make_mut(rc);
        match key.cmp(&node.key) {
            Ordering::Less => Self::remove_rec(&mut node.left, key),
            Ordering::Greater => Self::remove_rec(&mut node.right, key),
            Ordering::Equal => {
                let left = node.left.take();
                let right = node.right.take();
                let removed = link.take().expect("link non-empty");
                *link = Self::merge(left, right);
                Some(match Arc::try_unwrap(removed) {
                    Ok(n) => n.val,
                    Err(shared) => shared.val.clone(),
                })
            }
        }
    }

    /// Merge two treaps where every key of `a` precedes every key of `b`.
    fn merge(a: Link<K, V>, b: Link<K, V>) -> Link<K, V> {
        match (a, b) {
            (None, b) => b,
            (a, None) => a,
            (Some(mut x), Some(mut y)) => {
                if x.prio >= y.prio {
                    let xm = Arc::make_mut(&mut x);
                    let xr = xm.right.take();
                    xm.right = Self::merge(xr, Some(y));
                    Some(x)
                } else {
                    let ym = Arc::make_mut(&mut y);
                    let yl = ym.left.take();
                    ym.left = Self::merge(Some(x), yl);
                    Some(y)
                }
            }
        }
    }

    /// Forward walk of the keys within `(lo, hi)`. Bounds are owned so
    /// the iterator can outlive the caller's temporaries (ordered index
    /// walks return boxed iterators borrowing only the map). An inverted
    /// range yields nothing rather than panicking.
    pub fn range(&self, lo: Bound<K>, hi: Bound<K>) -> Range<'_, K, V> {
        let mut r = Range {
            stack: Vec::new(),
            hi,
        };
        // Descend, keeping only nodes that satisfy the lower bound.
        let mut cur = self.root.as_deref();
        while let Some(n) = cur {
            let above_lo = match &lo {
                Bound::Unbounded => true,
                Bound::Included(l) => n.key >= *l,
                Bound::Excluded(l) => n.key > *l,
            };
            if above_lo {
                r.stack.push(n);
                cur = n.left.as_deref();
            } else {
                cur = n.right.as_deref();
            }
        }
        r
    }

    /// Reverse (descending) walk of the keys within `(lo, hi)`.
    pub fn range_rev(&self, lo: Bound<K>, hi: Bound<K>) -> RangeRev<'_, K, V> {
        let mut r = RangeRev {
            stack: Vec::new(),
            lo,
        };
        let mut cur = self.root.as_deref();
        while let Some(n) = cur {
            let below_hi = match &hi {
                Bound::Unbounded => true,
                Bound::Included(h) => n.key <= *h,
                Bound::Excluded(h) => n.key < *h,
            };
            if below_hi {
                r.stack.push(n);
                cur = n.right.as_deref();
            } else {
                cur = n.left.as_deref();
            }
        }
        r
    }
}

/// In-order iterator over a [`PMap`].
pub struct Iter<'a, K, V> {
    stack: Vec<&'a Node<K, V>>,
}

impl<'a, K, V> Iter<'a, K, V> {
    fn push_left(&mut self, mut cur: Option<&'a Node<K, V>>) {
        while let Some(n) = cur {
            self.stack.push(n);
            cur = n.left.as_deref();
        }
    }
}

impl<'a, K, V> Iterator for Iter<'a, K, V> {
    type Item = (&'a K, &'a V);

    fn next(&mut self) -> Option<Self::Item> {
        let n = self.stack.pop()?;
        self.push_left(n.right.as_deref());
        Some((&n.key, &n.val))
    }
}

/// Forward bounded-range iterator over a [`PMap`].
pub struct Range<'a, K, V> {
    stack: Vec<&'a Node<K, V>>,
    hi: Bound<K>,
}

impl<'a, K: Ord, V> Iterator for Range<'a, K, V> {
    type Item = (&'a K, &'a V);

    fn next(&mut self) -> Option<Self::Item> {
        let n = self.stack.pop()?;
        let below_hi = match &self.hi {
            Bound::Unbounded => true,
            Bound::Included(h) => n.key <= *h,
            Bound::Excluded(h) => n.key < *h,
        };
        if !below_hi {
            // everything still stacked is larger — fuse
            self.stack.clear();
            return None;
        }
        // The right subtree's keys all exceed n.key ≥ lo, so no lower
        // bound check is needed past the initial descent.
        let mut cur = n.right.as_deref();
        while let Some(c) = cur {
            self.stack.push(c);
            cur = c.left.as_deref();
        }
        Some((&n.key, &n.val))
    }
}

/// Reverse bounded-range iterator over a [`PMap`].
pub struct RangeRev<'a, K, V> {
    stack: Vec<&'a Node<K, V>>,
    lo: Bound<K>,
}

impl<'a, K: Ord, V> Iterator for RangeRev<'a, K, V> {
    type Item = (&'a K, &'a V);

    fn next(&mut self) -> Option<Self::Item> {
        let n = self.stack.pop()?;
        let above_lo = match &self.lo {
            Bound::Unbounded => true,
            Bound::Included(l) => n.key >= *l,
            Bound::Excluded(l) => n.key > *l,
        };
        if !above_lo {
            self.stack.clear();
            return None;
        }
        let mut cur = n.left.as_deref();
        while let Some(c) = cur {
            self.stack.push(c);
            cur = c.right.as_deref();
        }
        Some((&n.key, &n.val))
    }
}

/// A persistent ordered set: a [`PMap`] with unit values.
#[derive(Clone)]
pub struct PSet<T> {
    map: PMap<T, ()>,
}

impl<T> Default for PSet<T> {
    fn default() -> Self {
        PSet {
            map: PMap::default(),
        }
    }
}

impl<T: fmt::Debug> fmt::Debug for PSet<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_set().entries(self.iter()).finish()
    }
}

impl<T> PSet<T> {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn len(&self) -> usize {
        self.map.len()
    }

    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Ordered iteration.
    pub fn iter(&self) -> impl Iterator<Item = &T> {
        self.map.keys()
    }
}

impl<T: Ord + Clone> PSet<T> {
    pub fn contains(&self, item: &T) -> bool {
        self.map.contains_key(item)
    }

    /// Insert; `true` when the item was new.
    pub fn insert(&mut self, item: T) -> bool {
        self.map.insert(item, ()).is_none()
    }

    /// Remove; `true` when the item was present.
    pub fn remove(&mut self, item: &T) -> bool {
        self.map.remove(item).is_some()
    }
}

impl<T: Ord + Clone> FromIterator<T> for PSet<T> {
    fn from_iter<I: IntoIterator<Item = T>>(iter: I) -> Self {
        let mut s = PSet::new();
        for item in iter {
            s.insert(item);
        }
        s
    }
}

impl<K: Ord + Clone, V: Clone> FromIterator<(K, V)> for PMap<K, V> {
    fn from_iter<I: IntoIterator<Item = (K, V)>>(iter: I) -> Self {
        let mut m = PMap::new();
        for (k, v) in iter {
            m.insert(k, v);
        }
        m
    }
}

/// Number of elements a [`TailSet`] buffers in its sorted tail before
/// flushing them into the treap base. 64 ids fit in a couple of cache
/// lines, and a flush of 64 ascending ids shares most of one spine, so
/// the amortized publication-era path-copy cost per insert approaches
/// `spine / TAIL_MAX` instead of a full spine per insert.
const TAIL_MAX: usize = 64;

/// A persistent ordered set with a small sorted insert buffer ("tail") in
/// front of the treap base.
///
/// Under commit-epoch publication every insert into a shared [`PSet`]
/// path-copies a root-to-leaf spine (O(log n) node allocations against
/// cold cache lines). Label/type extents take that hit twice per created
/// item while ids arrive in ascending order — the worst case for useful
/// work per copy. `TailSet` batches inserts in a plain sorted `Vec`
/// behind an `Arc` (copy-on-write is one small `memcpy`) and only pays
/// the treap spine when the tail spills, amortizing the publication tax
/// by ~`TAIL_MAX`.
///
/// Semantics are identical to [`PSet`]: it is a set, iteration is
/// ascending over the union of base and tail, and `clone` is O(1).
#[derive(Clone)]
pub struct TailSet<T> {
    base: PSet<T>,
    /// Sorted ascending, disjoint from `base`, never longer than
    /// [`TAIL_MAX`]. Shared clones copy-on-write the whole Vec at once.
    tail: Arc<Vec<T>>,
}

impl<T> Default for TailSet<T> {
    fn default() -> Self {
        TailSet {
            base: PSet::default(),
            tail: Arc::new(Vec::new()),
        }
    }
}

impl<T: Ord + Clone + fmt::Debug> fmt::Debug for TailSet<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_set().entries(self.iter()).finish()
    }
}

impl<T> TailSet<T> {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn len(&self) -> usize {
        self.base.len() + self.tail.len()
    }

    pub fn is_empty(&self) -> bool {
        self.base.is_empty() && self.tail.is_empty()
    }
}

impl<T: Ord + Clone> TailSet<T> {
    pub fn contains(&self, item: &T) -> bool {
        self.tail.binary_search(item).is_ok() || self.base.contains(item)
    }

    /// Insert; `true` when the item was new.
    pub fn insert(&mut self, item: T) -> bool {
        let pos = match self.tail.binary_search(&item) {
            Ok(_) => return false,
            Err(pos) => pos,
        };
        if self.base.contains(&item) {
            return false;
        }
        let tail = Arc::make_mut(&mut self.tail);
        tail.insert(pos, item);
        if tail.len() >= TAIL_MAX {
            for x in tail.drain(..) {
                self.base.insert(x);
            }
        }
        true
    }

    /// Remove; `true` when the item was present.
    pub fn remove(&mut self, item: &T) -> bool {
        // Probe the tail first without copy-on-writing it on a miss.
        if self.tail.binary_search(item).is_ok() {
            let tail = Arc::make_mut(&mut self.tail);
            let pos = tail.binary_search(item).expect("present under make_mut");
            tail.remove(pos);
            true
        } else {
            self.base.remove(item)
        }
    }

    /// Ordered (ascending) iteration over base ∪ tail.
    pub fn iter(&self) -> TailSetIter<'_, T> {
        TailSetIter {
            base: self.base.map.iter().peekable(),
            tail: self.tail.iter().peekable(),
        }
    }
}

impl<T: Ord + Clone> FromIterator<T> for TailSet<T> {
    fn from_iter<I: IntoIterator<Item = T>>(iter: I) -> Self {
        let mut s = TailSet::new();
        for item in iter {
            s.insert(item);
        }
        s
    }
}

/// Ascending merge of a [`TailSet`]'s base and tail (disjoint by
/// construction, so no equality tie-break is needed).
pub struct TailSetIter<'a, T> {
    base: std::iter::Peekable<Iter<'a, T, ()>>,
    tail: std::iter::Peekable<std::slice::Iter<'a, T>>,
}

impl<'a, T: Ord> Iterator for TailSetIter<'a, T> {
    type Item = &'a T;

    fn next(&mut self) -> Option<&'a T> {
        match (self.base.peek(), self.tail.peek()) {
            (Some((b, _)), Some(t)) => {
                if *b < *t {
                    self.base.next().map(|(k, _)| k)
                } else {
                    self.tail.next()
                }
            }
            (Some(_), None) => self.base.next().map(|(k, _)| k),
            (None, _) => self.tail.next(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;

    /// Pseudo-random but deterministic op stream.
    fn lcg(seed: &mut u64) -> u64 {
        *seed = seed
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        *seed >> 33
    }

    #[test]
    fn mirrors_btreemap_under_random_ops() {
        let mut seed = 0xfeed_u64;
        let mut p: PMap<i64, i64> = PMap::new();
        let mut b: BTreeMap<i64, i64> = BTreeMap::new();
        for step in 0..4000 {
            let k = (lcg(&mut seed) % 200) as i64 - 100;
            match lcg(&mut seed) % 3 {
                0 | 1 => {
                    let v = step as i64;
                    assert_eq!(p.insert(k, v), b.insert(k, v), "insert {k} at {step}");
                }
                _ => {
                    assert_eq!(p.remove(&k), b.remove(&k), "remove {k} at {step}");
                }
            }
            assert_eq!(p.len(), b.len());
        }
        let got: Vec<(i64, i64)> = p.iter().map(|(k, v)| (*k, *v)).collect();
        let want: Vec<(i64, i64)> = b.iter().map(|(k, v)| (*k, *v)).collect();
        assert_eq!(got, want);
        for k in -100..100 {
            assert_eq!(p.get(&k), b.get(&k));
        }
    }

    #[test]
    fn range_walks_match_btreemap() {
        let mut seed = 0xabcd_u64;
        let mut p: PMap<i64, i64> = PMap::new();
        let mut b: BTreeMap<i64, i64> = BTreeMap::new();
        for _ in 0..500 {
            let k = (lcg(&mut seed) % 1000) as i64;
            p.insert(k, k * 2);
            b.insert(k, k * 2);
        }
        let bounds = [
            (Bound::Unbounded, Bound::Unbounded),
            (Bound::Included(100), Bound::Excluded(700)),
            (Bound::Excluded(100), Bound::Included(700)),
            (Bound::Included(0), Bound::Included(0)),
            (Bound::Excluded(500), Bound::Excluded(501)),
            (Bound::Included(700), Bound::Excluded(100)), // inverted: empty
            (Bound::Unbounded, Bound::Excluded(50)),
            (Bound::Included(950), Bound::Unbounded),
        ];
        for (lo, hi) in bounds {
            let fwd: Vec<i64> = p.range(lo, hi).map(|(k, _)| *k).collect();
            let rev: Vec<i64> = p.range_rev(lo, hi).map(|(k, _)| *k).collect();
            let want: Vec<i64> = match (lo, hi) {
                // BTreeMap::range panics on inverted bounds; PMap defines
                // them as empty.
                (Bound::Included(l), Bound::Excluded(h)) if l > h => Vec::new(),
                _ => b.range((lo, hi)).map(|(k, _)| *k).collect(),
            };
            let mut want_rev = want.clone();
            want_rev.reverse();
            assert_eq!(fwd, want, "forward range {lo:?}..{hi:?}");
            assert_eq!(rev, want_rev, "reverse range {lo:?}..{hi:?}");
        }
    }

    #[test]
    fn clone_shares_then_diverges() {
        let mut a: PMap<i64, String> = PMap::new();
        for k in 0..100 {
            a.insert(k, format!("v{k}"));
        }
        let frozen = a.clone();
        for k in 0..100 {
            a.insert(k, format!("w{k}"));
        }
        a.remove(&3);
        a.insert(1000, "new".to_string());
        // the clone still sees the original contents
        assert_eq!(frozen.len(), 100);
        for k in 0..100 {
            assert_eq!(
                frozen.get(&k).map(String::as_str),
                Some(format!("v{k}").as_str())
            );
        }
        assert!(!frozen.contains_key(&1000));
        assert_eq!(a.get(&5).map(String::as_str), Some("w5"));
        assert_eq!(a.get(&3), None);
    }

    #[test]
    fn get_mut_copies_only_for_shared_paths() {
        let mut a: PMap<i64, i64> = PMap::new();
        for k in 0..50 {
            a.insert(k, 0);
        }
        let frozen = a.clone();
        *a.get_mut(&25).unwrap() = 99;
        assert_eq!(frozen.get(&25), Some(&0));
        assert_eq!(a.get(&25), Some(&99));
        // miss never copies (observable only through behavior: still None)
        assert_eq!(a.get_mut(&500), None);
    }

    #[test]
    fn balanced_depth_under_sequential_inserts() {
        // sequential keys are the worst case for a naive BST; the mixed
        // priorities must keep the expected O(log n) depth
        let mut a: PMap<u64, ()> = PMap::new();
        let n = 10_000u64;
        for k in 0..n {
            a.insert(k, ());
        }
        fn depth<K, V>(link: &Link<K, V>) -> usize {
            match link {
                None => 0,
                Some(n) => 1 + depth(&n.left).max(depth(&n.right)),
            }
        }
        let d = depth(&a.root);
        // ~1.39·log2(n) expected ≈ 19; allow generous slack
        assert!(d < 60, "treap depth {d} too large for n={n}");
    }

    #[test]
    fn pset_mirrors_btreeset() {
        let mut seed = 0x1234_u64;
        let mut p: PSet<u64> = PSet::new();
        let mut b: std::collections::BTreeSet<u64> = Default::default();
        for _ in 0..2000 {
            let k = lcg(&mut seed) % 128;
            if lcg(&mut seed).is_multiple_of(2) {
                assert_eq!(p.insert(k), b.insert(k));
            } else {
                assert_eq!(p.remove(&k), b.remove(&k));
            }
            assert_eq!(p.len(), b.len());
        }
        let got: Vec<u64> = p.iter().copied().collect();
        let want: Vec<u64> = b.iter().copied().collect();
        assert_eq!(got, want);
    }

    #[test]
    fn deterministic_shape_for_same_history() {
        let build = || {
            let mut m: PMap<i64, i64> = PMap::new();
            for k in [5, 1, 9, 3, 7, 2, 8] {
                m.insert(k, k);
            }
            m
        };
        fn shape<K: Clone, V>(link: &Link<K, V>, out: &mut Vec<(K, u64)>) {
            if let Some(n) = link {
                out.push((n.key.clone(), n.prio));
                shape(&n.left, out);
                shape(&n.right, out);
            }
        }
        let (a, b) = (build(), build());
        let (mut sa, mut sb) = (Vec::new(), Vec::new());
        shape(&a.root, &mut sa);
        shape(&b.root, &mut sb);
        assert_eq!(sa, sb);
    }

    #[test]
    fn send_sync_when_contents_are() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<PMap<u64, String>>();
        assert_send_sync::<PSet<u64>>();
        assert_send_sync::<TailSet<u64>>();
    }

    #[test]
    fn tailset_mirrors_btreeset() {
        let mut seed = 0xbeef_u64;
        let mut p: TailSet<u64> = TailSet::new();
        let mut b: std::collections::BTreeSet<u64> = Default::default();
        for _ in 0..4000 {
            let k = lcg(&mut seed) % 256;
            if !lcg(&mut seed).is_multiple_of(3) {
                assert_eq!(p.insert(k), b.insert(k));
            } else {
                assert_eq!(p.remove(&k), b.remove(&k));
            }
            assert_eq!(p.len(), b.len());
            assert_eq!(p.is_empty(), b.is_empty());
        }
        for k in 0..256u64 {
            assert_eq!(p.contains(&k), b.contains(&k));
        }
        let got: Vec<u64> = p.iter().copied().collect();
        let want: Vec<u64> = b.iter().copied().collect();
        assert_eq!(got, want);
    }

    #[test]
    fn tailset_ascending_insert_spills_and_stays_ordered() {
        // Ascending ids are the extent workload; cross several flushes.
        let mut p: TailSet<u64> = TailSet::new();
        let n = (TAIL_MAX * 3 + 17) as u64;
        for k in 0..n {
            assert!(p.insert(k));
            assert!(!p.insert(k));
        }
        assert_eq!(p.len(), n as usize);
        let got: Vec<u64> = p.iter().copied().collect();
        let want: Vec<u64> = (0..n).collect();
        assert_eq!(got, want);
        // Remove across the base/tail boundary.
        for k in (0..n).step_by(3) {
            assert!(p.remove(&k));
            assert!(!p.remove(&k));
        }
        let got: Vec<u64> = p.iter().copied().collect();
        let want: Vec<u64> = (0..n).filter(|k| k % 3 != 0).collect();
        assert_eq!(got, want);
    }

    #[test]
    fn tailset_clone_is_independent() {
        let mut a: TailSet<u64> = (0..100u64).collect();
        let snap = a.clone();
        for k in 100..150u64 {
            a.insert(k);
        }
        a.remove(&7);
        assert_eq!(snap.len(), 100);
        assert!(snap.contains(&7));
        assert!(!snap.contains(&120));
        let got: Vec<u64> = snap.iter().copied().collect();
        let want: Vec<u64> = (0..100).collect();
        assert_eq!(got, want);
    }
}
