//! Change deltas: the normalized net effect of an operation-log slice.
//!
//! A [`Delta`] is the graph-database analogue of SQL3 transition tables, and
//! is shaped after the transition metadata surfaced by Neo4j APOC triggers
//! (paper Table 2: `createdNodes`, `deletedRels`,
//! `assignedNodeProperties` as ⟨node, property, old, new⟩ quadruples, …) and
//! Memgraph triggers (paper Table 4). The PG-Trigger engine derives trigger
//! events from deltas; the APOC and Memgraph emulation layers re-expose the
//! same information under their respective variable names.
//!
//! Normalization rules (net effect over the slice):
//! * an item created then deleted within the slice disappears entirely;
//! * repeated property assignments coalesce to ⟨first old, last new⟩;
//! * a property set then removed coalesces to a removal of the original
//!   value (or to nothing when it did not previously exist);
//! * label set/remove pairs cancel out;
//! * label/property changes on items created within the slice are folded
//!   into the creation (the creation records carry final state) — except
//!   that the raw, uncoalesced views needed by the APOC emulation remain
//!   available via [`Delta::raw_assigned_labels`] etc.

use crate::ids::{NodeId, RelId};
use crate::op::Op;
use crate::record::{NodeRecord, RelRecord};
use crate::value::Value;
use std::collections::{BTreeMap, BTreeSet};

/// A label set/removed event: the affected node and the label.
#[derive(Debug, Clone, PartialEq)]
pub struct LabelEvent {
    pub node: NodeId,
    pub label: String,
}

/// A property assignment event: ⟨target, property, old, new⟩ (paper Table 2,
/// `assignedNodeProperties` / `assignedRelProperties`). `old` is
/// `Value::Null` when the property did not previously exist.
#[derive(Debug, Clone, PartialEq)]
pub struct PropAssign<Id> {
    pub target: Id,
    pub key: String,
    pub old: Value,
    pub new: Value,
}

/// A property removal event: ⟨target, property, old⟩ (paper Table 2,
/// `removedNodeProperties` / `removedRelProperties`).
#[derive(Debug, Clone, PartialEq)]
pub struct PropRemove<Id> {
    pub target: Id,
    pub key: String,
    pub old: Value,
}

/// The normalized net change of a statement or transaction.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Delta {
    /// Nodes created (and still alive at the end of the slice), with their
    /// state **at the end of the slice**.
    pub created_nodes: Vec<NodeRecord>,
    /// Nodes deleted (that existed before the slice), with their state at
    /// deletion time — the source for `OLD` transition values.
    pub deleted_nodes: Vec<NodeRecord>,
    /// Relationships created and still alive.
    pub created_rels: Vec<RelRecord>,
    /// Relationships deleted (that pre-existed).
    pub deleted_rels: Vec<RelRecord>,
    /// Labels set on **pre-existing** nodes (net).
    pub assigned_labels: Vec<LabelEvent>,
    /// Labels removed from pre-existing nodes (net).
    pub removed_labels: Vec<LabelEvent>,
    /// Properties assigned on pre-existing nodes (net, coalesced).
    pub assigned_node_props: Vec<PropAssign<NodeId>>,
    /// Properties assigned on pre-existing relationships.
    pub assigned_rel_props: Vec<PropAssign<RelId>>,
    /// Properties removed from pre-existing nodes.
    pub removed_node_props: Vec<PropRemove<NodeId>>,
    /// Properties removed from pre-existing relationships.
    pub removed_rel_props: Vec<PropRemove<RelId>>,
}

impl Delta {
    /// `true` when the slice had no net effect.
    pub fn is_empty(&self) -> bool {
        self.created_nodes.is_empty()
            && self.deleted_nodes.is_empty()
            && self.created_rels.is_empty()
            && self.deleted_rels.is_empty()
            && self.assigned_labels.is_empty()
            && self.removed_labels.is_empty()
            && self.assigned_node_props.is_empty()
            && self.assigned_rel_props.is_empty()
            && self.removed_node_props.is_empty()
            && self.removed_rel_props.is_empty()
    }

    /// Total number of events in the delta.
    pub fn event_count(&self) -> usize {
        self.created_nodes.len()
            + self.deleted_nodes.len()
            + self.created_rels.len()
            + self.deleted_rels.len()
            + self.assigned_labels.len()
            + self.removed_labels.len()
            + self.assigned_node_props.len()
            + self.assigned_rel_props.len()
            + self.removed_node_props.len()
            + self.removed_rel_props.len()
    }

    /// Label assignments **including** the labels of created nodes. This is
    /// the view Neo4j APOC exposes (`$assignedLabels` covers node creation
    /// too); the PG-Trigger engine instead uses the net `assigned_labels`.
    pub fn raw_assigned_labels(&self) -> Vec<LabelEvent> {
        let mut out = self.assigned_labels.clone();
        for n in &self.created_nodes {
            for l in &n.labels {
                out.push(LabelEvent {
                    node: n.id,
                    label: l.clone(),
                });
            }
        }
        out
    }

    /// Node property assignments including the initial properties of created
    /// nodes (APOC view; `old` is `Null` for those).
    pub fn raw_assigned_node_props(&self) -> Vec<PropAssign<NodeId>> {
        let mut out = self.assigned_node_props.clone();
        for n in &self.created_nodes {
            for (k, v) in n.props.iter() {
                out.push(PropAssign {
                    target: n.id,
                    key: k.clone(),
                    old: Value::Null,
                    new: v.clone(),
                });
            }
        }
        out
    }

    /// Relationship property assignments including initial properties of
    /// created relationships (APOC view).
    pub fn raw_assigned_rel_props(&self) -> Vec<PropAssign<RelId>> {
        let mut out = self.assigned_rel_props.clone();
        for r in &self.created_rels {
            for (k, v) in r.props.iter() {
                out.push(PropAssign {
                    target: r.id,
                    key: k.clone(),
                    old: Value::Null,
                    new: v.clone(),
                });
            }
        }
        out
    }

    /// Merge another delta into this one by simple concatenation followed by
    /// re-normalization of create/delete pairs across the two. Used to build
    /// transaction-level deltas from successive statement deltas.
    pub fn absorb(&mut self, later: Delta) {
        // A node/rel created in `self` and deleted in `later` vanishes.
        let deleted_now: BTreeSet<NodeId> = later.deleted_nodes.iter().map(|n| n.id).collect();
        let created_before: BTreeSet<NodeId> = self.created_nodes.iter().map(|n| n.id).collect();
        self.created_nodes.retain(|n| !deleted_now.contains(&n.id));
        let rdeleted_now: BTreeSet<RelId> = later.deleted_rels.iter().map(|r| r.id).collect();
        let rcreated_before: BTreeSet<RelId> = self.created_rels.iter().map(|r| r.id).collect();
        self.created_rels.retain(|r| !rdeleted_now.contains(&r.id));

        // Refresh the snapshot of nodes created earlier and modified later:
        // label/property events on them fold into the creation record.
        let mut created_map: BTreeMap<NodeId, usize> = self
            .created_nodes
            .iter()
            .enumerate()
            .map(|(i, n)| (n.id, i))
            .collect();
        for ev in &later.assigned_labels {
            if let Some(&i) = created_map.get(&ev.node) {
                self.created_nodes[i].labels.insert(ev.label.clone());
            }
        }
        for ev in &later.removed_labels {
            if let Some(&i) = created_map.get(&ev.node) {
                self.created_nodes[i].labels.remove(&ev.label);
            }
        }
        for pa in &later.assigned_node_props {
            if let Some(&i) = created_map.get(&pa.target) {
                self.created_nodes[i]
                    .props
                    .set(pa.key.clone(), pa.new.clone());
            }
        }
        for pr in &later.removed_node_props {
            if let Some(&i) = created_map.get(&pr.target) {
                self.created_nodes[i].props.remove(&pr.key);
            }
        }
        created_map.clear();
        let rcreated_map: BTreeMap<RelId, usize> = self
            .created_rels
            .iter()
            .enumerate()
            .map(|(i, r)| (r.id, i))
            .collect();
        for pa in &later.assigned_rel_props {
            if let Some(&i) = rcreated_map.get(&pa.target) {
                self.created_rels[i]
                    .props
                    .set(pa.key.clone(), pa.new.clone());
            }
        }
        for pr in &later.removed_rel_props {
            if let Some(&i) = rcreated_map.get(&pr.target) {
                self.created_rels[i].props.remove(&pr.key);
            }
        }

        self.created_nodes.extend(
            later
                .created_nodes
                .into_iter()
                .filter(|n| !created_before.contains(&n.id)),
        );
        self.created_rels.extend(
            later
                .created_rels
                .into_iter()
                .filter(|r| !rcreated_before.contains(&r.id)),
        );
        self.deleted_nodes.extend(
            later
                .deleted_nodes
                .into_iter()
                .filter(|n| !created_before.contains(&n.id)),
        );
        self.deleted_rels.extend(
            later
                .deleted_rels
                .into_iter()
                .filter(|r| !rcreated_before.contains(&r.id)),
        );
        self.assigned_labels.extend(
            later
                .assigned_labels
                .into_iter()
                .filter(|e| !created_before.contains(&e.node)),
        );
        self.removed_labels.extend(
            later
                .removed_labels
                .into_iter()
                .filter(|e| !created_before.contains(&e.node)),
        );
        self.assigned_node_props.extend(
            later
                .assigned_node_props
                .into_iter()
                .filter(|e| !created_before.contains(&e.target)),
        );
        self.removed_node_props.extend(
            later
                .removed_node_props
                .into_iter()
                .filter(|e| !created_before.contains(&e.target)),
        );
        self.assigned_rel_props.extend(
            later
                .assigned_rel_props
                .into_iter()
                .filter(|e| !rcreated_before.contains(&e.target)),
        );
        self.removed_rel_props.extend(
            later
                .removed_rel_props
                .into_iter()
                .filter(|e| !rcreated_before.contains(&e.target)),
        );
    }

    /// Normalize an op-log slice into its net delta.
    ///
    /// `final_nodes` resolves the end-of-slice state of created nodes (they
    /// may have been modified after creation); it is fed by the store.
    pub fn from_ops(
        ops: &[Op],
        final_node: impl Fn(NodeId) -> Option<NodeRecord>,
        final_rel: impl Fn(RelId) -> Option<RelRecord>,
    ) -> Delta {
        let mut created_nodes: Vec<NodeId> = Vec::new();
        let mut created_in_slice: BTreeSet<NodeId> = BTreeSet::new();
        let mut deleted_nodes: Vec<NodeRecord> = Vec::new();
        let mut created_rels: Vec<RelId> = Vec::new();
        let mut rcreated_in_slice: BTreeSet<RelId> = BTreeSet::new();
        let mut deleted_rels: Vec<RelRecord> = Vec::new();

        // (node, label) -> (was_present_initially, is_present_finally)
        let mut label_state: BTreeMap<(NodeId, String), (bool, bool)> = BTreeMap::new();
        // (item, key) -> (initial_value, final_value); None = absent
        let mut nprop: BTreeMap<(NodeId, String), (Option<Value>, Option<Value>)> = BTreeMap::new();
        let mut rprop: BTreeMap<(RelId, String), (Option<Value>, Option<Value>)> = BTreeMap::new();

        for op in ops {
            match op {
                Op::CreateNode { record } => {
                    created_nodes.push(record.id);
                    created_in_slice.insert(record.id);
                }
                Op::DeleteNode { record } => {
                    if created_in_slice.remove(&record.id) {
                        created_nodes.retain(|&n| n != record.id);
                    } else {
                        deleted_nodes.push(record.clone());
                    }
                    // Drop pending label/prop state of the deleted node.
                    label_state.retain(|(n, _), _| *n != record.id);
                    nprop.retain(|(n, _), _| *n != record.id);
                }
                Op::CreateRel { record } => {
                    created_rels.push(record.id);
                    rcreated_in_slice.insert(record.id);
                }
                Op::DeleteRel { record } => {
                    if rcreated_in_slice.remove(&record.id) {
                        created_rels.retain(|&r| r != record.id);
                    } else {
                        deleted_rels.push(record.clone());
                    }
                    rprop.retain(|(r, _), _| *r != record.id);
                }
                Op::SetLabel { node, label } => {
                    if !created_in_slice.contains(node) {
                        let e = label_state
                            .entry((*node, label.clone()))
                            .or_insert((false, false));
                        e.1 = true;
                    }
                }
                Op::RemoveLabel { node, label } => {
                    if !created_in_slice.contains(node) {
                        let e = label_state
                            .entry((*node, label.clone()))
                            .or_insert((true, true));
                        e.1 = false;
                    }
                }
                Op::SetNodeProp {
                    node,
                    key,
                    old,
                    new,
                } => {
                    if !created_in_slice.contains(node) {
                        let e = nprop
                            .entry((*node, key.clone()))
                            .or_insert((old.clone(), None));
                        e.1 = Some(new.clone());
                    }
                }
                Op::RemoveNodeProp { node, key, old } => {
                    if !created_in_slice.contains(node) {
                        let e = nprop
                            .entry((*node, key.clone()))
                            .or_insert((Some(old.clone()), None));
                        e.1 = None;
                    }
                }
                Op::SetRelProp { rel, key, old, new } => {
                    if !rcreated_in_slice.contains(rel) {
                        let e = rprop
                            .entry((*rel, key.clone()))
                            .or_insert((old.clone(), None));
                        e.1 = Some(new.clone());
                    }
                }
                Op::RemoveRelProp { rel, key, old } => {
                    if !rcreated_in_slice.contains(rel) {
                        let e = rprop
                            .entry((*rel, key.clone()))
                            .or_insert((Some(old.clone()), None));
                        e.1 = None;
                    }
                }
            }
        }

        let mut delta = Delta::default();
        for id in created_nodes {
            if let Some(rec) = final_node(id) {
                delta.created_nodes.push(rec);
            }
        }
        delta.deleted_nodes = deleted_nodes;
        for id in created_rels {
            if let Some(rec) = final_rel(id) {
                delta.created_rels.push(rec);
            }
        }
        delta.deleted_rels = deleted_rels;

        for ((node, label), (was, is)) in label_state {
            match (was, is) {
                (false, true) => delta.assigned_labels.push(LabelEvent { node, label }),
                (true, false) => delta.removed_labels.push(LabelEvent { node, label }),
                _ => {}
            }
        }
        for ((node, key), (initial, fin)) in nprop {
            match (initial, fin) {
                (init, Some(new)) => delta.assigned_node_props.push(PropAssign {
                    target: node,
                    key,
                    old: init.unwrap_or(Value::Null),
                    new,
                }),
                (Some(old), None) => delta.removed_node_props.push(PropRemove {
                    target: node,
                    key,
                    old,
                }),
                (None, None) => {}
            }
        }
        for ((rel, key), (initial, fin)) in rprop {
            match (initial, fin) {
                (init, Some(new)) => delta.assigned_rel_props.push(PropAssign {
                    target: rel,
                    key,
                    old: init.unwrap_or(Value::Null),
                    new,
                }),
                (Some(old), None) => delta.removed_rel_props.push(PropRemove {
                    target: rel,
                    key,
                    old,
                }),
                (None, None) => {}
            }
        }
        delta
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::props::PropertyMap;

    fn node_rec(id: u64, labels: &[&str]) -> NodeRecord {
        let mut n = NodeRecord::new(NodeId(id));
        for l in labels {
            n.labels.insert(l.to_string());
        }
        n
    }

    fn no_node(_: NodeId) -> Option<NodeRecord> {
        None
    }
    fn no_rel(_: RelId) -> Option<RelRecord> {
        None
    }

    #[test]
    fn create_then_delete_cancels() {
        let rec = node_rec(1, &["A"]);
        let ops = vec![
            Op::CreateNode {
                record: rec.clone(),
            },
            Op::DeleteNode { record: rec },
        ];
        let d = Delta::from_ops(&ops, no_node, no_rel);
        assert!(d.is_empty());
    }

    #[test]
    fn delete_then_recreate_is_both() {
        // Deleting a pre-existing node and creating a fresh one are separate
        // events even in the same statement.
        let old = node_rec(1, &["A"]);
        let new = node_rec(2, &["A"]);
        let ops = vec![
            Op::DeleteNode { record: old },
            Op::CreateNode {
                record: new.clone(),
            },
        ];
        let d = Delta::from_ops(&ops, |id| (id == NodeId(2)).then(|| new.clone()), no_rel);
        assert_eq!(d.deleted_nodes.len(), 1);
        assert_eq!(d.created_nodes.len(), 1);
    }

    #[test]
    fn prop_assignments_coalesce() {
        let ops = vec![
            Op::SetNodeProp {
                node: NodeId(1),
                key: "x".into(),
                old: Some(Value::Int(0)),
                new: Value::Int(1),
            },
            Op::SetNodeProp {
                node: NodeId(1),
                key: "x".into(),
                old: Some(Value::Int(1)),
                new: Value::Int(2),
            },
        ];
        let d = Delta::from_ops(&ops, no_node, no_rel);
        assert_eq!(d.assigned_node_props.len(), 1);
        let pa = &d.assigned_node_props[0];
        assert_eq!(pa.old, Value::Int(0));
        assert_eq!(pa.new, Value::Int(2));
    }

    #[test]
    fn set_then_remove_becomes_removal() {
        let ops = vec![
            Op::SetNodeProp {
                node: NodeId(1),
                key: "x".into(),
                old: Some(Value::Int(0)),
                new: Value::Int(1),
            },
            Op::RemoveNodeProp {
                node: NodeId(1),
                key: "x".into(),
                old: Value::Int(1),
            },
        ];
        let d = Delta::from_ops(&ops, no_node, no_rel);
        assert!(d.assigned_node_props.is_empty());
        assert_eq!(d.removed_node_props.len(), 1);
        assert_eq!(d.removed_node_props[0].old, Value::Int(0));
    }

    #[test]
    fn fresh_set_then_remove_vanishes() {
        let ops = vec![
            Op::SetNodeProp {
                node: NodeId(1),
                key: "x".into(),
                old: None,
                new: Value::Int(1),
            },
            Op::RemoveNodeProp {
                node: NodeId(1),
                key: "x".into(),
                old: Value::Int(1),
            },
        ];
        let d = Delta::from_ops(&ops, no_node, no_rel);
        assert!(d.is_empty());
    }

    #[test]
    fn label_set_remove_cancels() {
        let ops = vec![
            Op::SetLabel {
                node: NodeId(1),
                label: "L".into(),
            },
            Op::RemoveLabel {
                node: NodeId(1),
                label: "L".into(),
            },
        ];
        let d = Delta::from_ops(&ops, no_node, no_rel);
        assert!(d.is_empty());
    }

    #[test]
    fn events_on_created_nodes_fold_into_creation() {
        let mut final_rec = node_rec(1, &["A", "B"]);
        final_rec.props.set("x", Value::Int(2));
        let ops = vec![
            Op::CreateNode {
                record: node_rec(1, &["A"]),
            },
            Op::SetLabel {
                node: NodeId(1),
                label: "B".into(),
            },
            Op::SetNodeProp {
                node: NodeId(1),
                key: "x".into(),
                old: None,
                new: Value::Int(2),
            },
        ];
        let d = Delta::from_ops(&ops, |_| Some(final_rec.clone()), no_rel);
        assert_eq!(d.created_nodes.len(), 1);
        assert!(d.assigned_labels.is_empty());
        assert!(d.assigned_node_props.is_empty());
        assert!(d.created_nodes[0].has_label("B"));
    }

    #[test]
    fn raw_views_include_created_items() {
        let mut rec = node_rec(1, &["A"]);
        rec.props.set("x", Value::Int(1));
        let ops = vec![Op::CreateNode {
            record: rec.clone(),
        }];
        let d = Delta::from_ops(&ops, |_| Some(rec.clone()), no_rel);
        assert!(d.assigned_labels.is_empty());
        assert_eq!(d.raw_assigned_labels().len(), 1);
        assert_eq!(d.raw_assigned_node_props().len(), 1);
        assert_eq!(d.raw_assigned_node_props()[0].old, Value::Null);
    }

    #[test]
    fn absorb_cancels_cross_delta_create_delete() {
        let rec = node_rec(1, &["A"]);
        let mut d1 = Delta::default();
        d1.created_nodes.push(rec.clone());
        let mut d2 = Delta::default();
        d2.deleted_nodes.push(rec);
        d1.absorb(d2);
        assert!(d1.is_empty());
    }

    #[test]
    fn absorb_folds_later_changes_into_created() {
        let rec = node_rec(1, &["A"]);
        let mut d1 = Delta::default();
        d1.created_nodes.push(rec);
        let mut d2 = Delta::default();
        d2.assigned_labels.push(LabelEvent {
            node: NodeId(1),
            label: "B".into(),
        });
        d2.assigned_node_props.push(PropAssign {
            target: NodeId(1),
            key: "x".into(),
            old: Value::Null,
            new: Value::Int(7),
        });
        d1.absorb(d2);
        assert_eq!(d1.created_nodes.len(), 1);
        assert!(d1.created_nodes[0].has_label("B"));
        assert_eq!(d1.created_nodes[0].props.get("x"), Some(&Value::Int(7)));
        assert!(d1.assigned_labels.is_empty());
        assert!(d1.assigned_node_props.is_empty());
    }

    #[test]
    fn event_count_sums_all_categories() {
        let mut d = Delta::default();
        d.created_nodes.push(node_rec(1, &[]));
        d.assigned_labels.push(LabelEvent {
            node: NodeId(2),
            label: "L".into(),
        });
        assert_eq!(d.event_count(), 2);
        assert!(!d.is_empty());
    }

    #[test]
    fn prop_map_helper_behaves() {
        let mut pm = PropertyMap::new();
        pm.set("a", Value::Int(1));
        assert_eq!(pm.get("a"), Some(&Value::Int(1)));
    }
}
