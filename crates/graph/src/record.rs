//! Node and relationship records.

use crate::ids::{NodeId, RelId};
use crate::props::PropertyMap;
use crate::value::Value;
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;

/// A node: a set of labels plus a property map. Nodes may have zero, one, or
/// several labels (paper §4.2, "Choice of LABELS").
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NodeRecord {
    pub id: NodeId,
    pub labels: BTreeSet<String>,
    pub props: PropertyMap,
}

impl NodeRecord {
    pub fn new(id: NodeId) -> Self {
        NodeRecord {
            id,
            labels: BTreeSet::new(),
            props: PropertyMap::new(),
        }
    }

    pub fn has_label(&self, label: &str) -> bool {
        self.labels.contains(label)
    }

    /// Materialize the record as a map value (labels under the reserved
    /// `__labels` key). Used to build `OLD` transition variables for deleted
    /// nodes, whose graph identity no longer resolves.
    pub fn to_value(&self) -> Value {
        let mut m = match self.props.to_value() {
            Value::Map(m) => m,
            _ => unreachable!(),
        };
        m.insert(
            "__labels".to_string(),
            Value::List(self.labels.iter().map(|l| Value::str(l.clone())).collect()),
        );
        m.insert("__id".to_string(), Value::Int(self.id.0 as i64));
        Value::Map(m)
    }
}

/// A relationship: a single type (its label, in the paper's terminology),
/// source and destination nodes, and a property map.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RelRecord {
    pub id: RelId,
    pub rel_type: String,
    pub src: NodeId,
    pub dst: NodeId,
    pub props: PropertyMap,
}

impl RelRecord {
    /// Materialize as a map value, analogous to [`NodeRecord::to_value`].
    pub fn to_value(&self) -> Value {
        let mut m = match self.props.to_value() {
            Value::Map(m) => m,
            _ => unreachable!(),
        };
        m.insert("__type".to_string(), Value::str(self.rel_type.clone()));
        m.insert("__id".to_string(), Value::Int(self.id.0 as i64));
        m.insert("__src".to_string(), Value::Int(self.src.0 as i64));
        m.insert("__dst".to_string(), Value::Int(self.dst.0 as i64));
        Value::Map(m)
    }

    /// The endpoint opposite to `n`, if `n` is an endpoint.
    pub fn other_end(&self, n: NodeId) -> Option<NodeId> {
        if self.src == n {
            Some(self.dst)
        } else if self.dst == n {
            Some(self.src)
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_to_value_exposes_labels_and_props() {
        let mut n = NodeRecord::new(NodeId(5));
        n.labels.insert("Mutation".to_string());
        n.props.set("name", Value::str("Spike:D614G"));
        let v = n.to_value();
        if let Value::Map(m) = v {
            assert_eq!(m["name"], Value::str("Spike:D614G"));
            assert_eq!(m["__id"], Value::Int(5));
            assert_eq!(m["__labels"], Value::list([Value::str("Mutation")]));
        } else {
            panic!("expected map");
        }
    }

    #[test]
    fn rel_other_end() {
        let r = RelRecord {
            id: RelId(1),
            rel_type: "Risk".to_string(),
            src: NodeId(1),
            dst: NodeId(2),
            props: PropertyMap::new(),
        };
        assert_eq!(r.other_end(NodeId(1)), Some(NodeId(2)));
        assert_eq!(r.other_end(NodeId(2)), Some(NodeId(1)));
        assert_eq!(r.other_end(NodeId(3)), None);
    }
}
