//! The value model shared by the store and the query layer.
//!
//! Values follow Cypher/GQL conventions: `NULL` propagates through
//! arithmetic and comparisons (three-valued logic), numeric types promote
//! `Int → Float`, `+` concatenates strings and lists, and there is a *total*
//! ordering (used by `ORDER BY` and aggregation) that ranks values first by
//! type and then by content.

use crate::ids::{NodeId, RelId};
use serde::{Deserialize, Serialize};
use std::cmp::Ordering;
use std::collections::BTreeMap;
use std::fmt;

/// Direction of relationship traversal.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Direction {
    /// Outgoing relationships (`(a)-[r]->(b)` from `a`).
    Out,
    /// Incoming relationships.
    In,
    /// Both directions (`(a)-[r]-(b)`).
    Both,
}

impl Direction {
    /// The direction as seen from the opposite endpoint.
    pub fn reverse(self) -> Direction {
        match self {
            Direction::Out => Direction::In,
            Direction::In => Direction::Out,
            Direction::Both => Direction::Both,
        }
    }
}

/// A graph value.
///
/// `Node` and `Rel` variants let query bindings and transition variables
/// (`NEW`, `NEWNODES`, …) carry graph items by reference; property values
/// stored in the graph are restricted to the scalar/list/map subset (see
/// [`Value::is_storable`]).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Value {
    Null,
    Bool(bool),
    Int(i64),
    Float(f64),
    Str(String),
    /// A calendar date, stored as days since the Unix epoch.
    Date(i64),
    /// A timestamp, stored as milliseconds since the Unix epoch.
    DateTime(i64),
    List(Vec<Value>),
    Map(BTreeMap<String, Value>),
    Node(NodeId),
    Rel(RelId),
}

impl Value {
    /// Construct a string value.
    pub fn str(s: impl Into<String>) -> Value {
        Value::Str(s.into())
    }

    /// Construct a list value.
    pub fn list(items: impl IntoIterator<Item = Value>) -> Value {
        Value::List(items.into_iter().collect())
    }

    /// Construct a map value from `(key, value)` pairs.
    pub fn map(entries: impl IntoIterator<Item = (String, Value)>) -> Value {
        Value::Map(entries.into_iter().collect())
    }

    /// `true` when this is `Value::Null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Whether the value may be stored as a property. Graph items (`Node`,
    /// `Rel`) and maps containing them are query-time-only values, as in
    /// Neo4j.
    pub fn is_storable(&self) -> bool {
        match self {
            Value::Node(_) | Value::Rel(_) => false,
            Value::List(items) => items.iter().all(Value::is_storable),
            Value::Map(m) => m.values().all(Value::is_storable),
            _ => true,
        }
    }

    /// Truthiness for `WHERE`: only `Bool(true)` passes; `NULL` and
    /// everything else does not.
    pub fn is_truthy(&self) -> bool {
        matches!(self, Value::Bool(true))
    }

    /// The Cypher type name of the value (used in error messages and by the
    /// schema validator).
    pub fn type_name(&self) -> &'static str {
        match self {
            Value::Null => "NULL",
            Value::Bool(_) => "BOOLEAN",
            Value::Int(_) => "INTEGER",
            Value::Float(_) => "FLOAT",
            Value::Str(_) => "STRING",
            Value::Date(_) => "DATE",
            Value::DateTime(_) => "DATETIME",
            Value::List(_) => "LIST",
            Value::Map(_) => "MAP",
            Value::Node(_) => "NODE",
            Value::Rel(_) => "RELATIONSHIP",
        }
    }

    fn type_rank(&self) -> u8 {
        match self {
            Value::Map(_) => 0,
            Value::Node(_) => 1,
            Value::Rel(_) => 2,
            Value::List(_) => 3,
            Value::Str(_) => 4,
            Value::Bool(_) => 5,
            Value::Int(_) | Value::Float(_) => 6,
            Value::Date(_) => 7,
            Value::DateTime(_) => 8,
            Value::Null => 9,
        }
    }

    /// Total order over all values: by type rank, then content. Numbers of
    /// both kinds compare numerically; `NULL` sorts last (as in Cypher's
    /// `ORDER BY`).
    pub fn cmp_order(&self, other: &Value) -> Ordering {
        use Value::*;
        match (self, other) {
            (Int(a), Int(b)) => a.cmp(b),
            (Float(a), Float(b)) => a.partial_cmp(b).unwrap_or(Ordering::Equal),
            (Int(a), Float(b)) => (*a as f64).partial_cmp(b).unwrap_or(Ordering::Equal),
            (Float(a), Int(b)) => a.partial_cmp(&(*b as f64)).unwrap_or(Ordering::Equal),
            (Bool(a), Bool(b)) => a.cmp(b),
            (Str(a), Str(b)) => a.cmp(b),
            (Date(a), Date(b)) => a.cmp(b),
            (DateTime(a), DateTime(b)) => a.cmp(b),
            (Node(a), Node(b)) => a.cmp(b),
            (Rel(a), Rel(b)) => a.cmp(b),
            (List(a), List(b)) => {
                for (x, y) in a.iter().zip(b.iter()) {
                    match x.cmp_order(y) {
                        Ordering::Equal => continue,
                        ord => return ord,
                    }
                }
                a.len().cmp(&b.len())
            }
            (Map(a), Map(b)) => {
                let mut ka: Vec<_> = a.keys().collect();
                let mut kb: Vec<_> = b.keys().collect();
                ka.sort();
                kb.sort();
                match ka.cmp(&kb) {
                    Ordering::Equal => {}
                    ord => return ord,
                }
                for k in ka {
                    match a[k].cmp_order(&b[k]) {
                        Ordering::Equal => continue,
                        ord => return ord,
                    }
                }
                Ordering::Equal
            }
            _ => self.type_rank().cmp(&other.type_rank()),
        }
    }

    /// Three-valued equality: `None` when either side is `NULL`.
    pub fn eq3(&self, other: &Value) -> Option<bool> {
        use Value::*;
        match (self, other) {
            (Null, _) | (_, Null) => None,
            (Int(a), Float(b)) => Some((*a as f64) == *b),
            (Float(a), Int(b)) => Some(*a == (*b as f64)),
            (a, b) => Some(a == b),
        }
    }

    /// Three-valued ordering comparison; `None` when either side is `NULL`
    /// or the values are not order-comparable (mixed non-numeric types).
    pub fn cmp3(&self, other: &Value) -> Option<Ordering> {
        use Value::*;
        match (self, other) {
            (Null, _) | (_, Null) => None,
            (Int(a), Int(b)) => Some(a.cmp(b)),
            (Float(a), Float(b)) => a.partial_cmp(b),
            (Int(a), Float(b)) => (*a as f64).partial_cmp(b),
            (Float(a), Int(b)) => a.partial_cmp(&(*b as f64)),
            (Str(a), Str(b)) => Some(a.cmp(b)),
            (Bool(a), Bool(b)) => Some(a.cmp(b)),
            (Date(a), Date(b)) => Some(a.cmp(b)),
            (DateTime(a), DateTime(b)) => Some(a.cmp(b)),
            (List(_), List(_)) => Some(self.cmp_order(other)),
            _ => None,
        }
    }

    /// Cypher `+`: numeric addition, string concatenation, list
    /// concatenation, and date/datetime + integer (days / milliseconds).
    pub fn add(&self, other: &Value) -> Option<Value> {
        use Value::*;
        match (self, other) {
            (Null, _) | (_, Null) => Some(Null),
            (Int(a), Int(b)) => Some(Int(a.wrapping_add(*b))),
            (Int(a), Float(b)) => Some(Float(*a as f64 + b)),
            (Float(a), Int(b)) => Some(Float(a + *b as f64)),
            (Float(a), Float(b)) => Some(Float(a + b)),
            (Str(a), Str(b)) => Some(Str(format!("{a}{b}"))),
            (Str(a), b) => Some(Str(format!("{a}{b}"))),
            (a, Str(b)) => Some(Str(format!("{a}{b}"))),
            (List(a), List(b)) => {
                let mut out = a.clone();
                out.extend(b.iter().cloned());
                Some(List(out))
            }
            (List(a), b) => {
                let mut out = a.clone();
                out.push(b.clone());
                Some(List(out))
            }
            (Date(a), Int(b)) => Some(Date(a + b)),
            (DateTime(a), Int(b)) => Some(DateTime(a + b)),
            _ => None,
        }
    }

    /// Cypher `-` (numeric and date arithmetic).
    pub fn sub(&self, other: &Value) -> Option<Value> {
        use Value::*;
        match (self, other) {
            (Null, _) | (_, Null) => Some(Null),
            (Int(a), Int(b)) => Some(Int(a.wrapping_sub(*b))),
            (Int(a), Float(b)) => Some(Float(*a as f64 - b)),
            (Float(a), Int(b)) => Some(Float(a - *b as f64)),
            (Float(a), Float(b)) => Some(Float(a - b)),
            (Date(a), Int(b)) => Some(Date(a - b)),
            (Date(a), Date(b)) => Some(Int(a - b)),
            (DateTime(a), Int(b)) => Some(DateTime(a - b)),
            (DateTime(a), DateTime(b)) => Some(Int(a - b)),
            _ => None,
        }
    }

    /// Cypher `*`.
    pub fn mul(&self, other: &Value) -> Option<Value> {
        use Value::*;
        match (self, other) {
            (Null, _) | (_, Null) => Some(Null),
            (Int(a), Int(b)) => Some(Int(a.wrapping_mul(*b))),
            (Int(a), Float(b)) => Some(Float(*a as f64 * b)),
            (Float(a), Int(b)) => Some(Float(a * *b as f64)),
            (Float(a), Float(b)) => Some(Float(a * b)),
            _ => None,
        }
    }

    /// Cypher `/`. Integer division truncates as in Cypher; division of an
    /// integer by zero yields `None` (a runtime error at the query layer),
    /// while float division by zero follows IEEE 754.
    pub fn div(&self, other: &Value) -> Option<Value> {
        use Value::*;
        match (self, other) {
            (Null, _) | (_, Null) => Some(Null),
            (Int(_), Int(0)) => None,
            (Int(a), Int(b)) => Some(Int(a / b)),
            (Int(a), Float(b)) => Some(Float(*a as f64 / b)),
            (Float(a), Int(b)) => Some(Float(a / *b as f64)),
            (Float(a), Float(b)) => Some(Float(a / b)),
            _ => None,
        }
    }

    /// Cypher `%` (modulo).
    pub fn modulo(&self, other: &Value) -> Option<Value> {
        use Value::*;
        match (self, other) {
            (Null, _) | (_, Null) => Some(Null),
            (Int(_), Int(0)) => None,
            (Int(a), Int(b)) => Some(Int(a % b)),
            (Float(a), Float(b)) => Some(Float(a % b)),
            (Int(a), Float(b)) => Some(Float(*a as f64 % b)),
            (Float(a), Int(b)) => Some(Float(a % *b as f64)),
            _ => None,
        }
    }

    /// Unary minus.
    pub fn neg(&self) -> Option<Value> {
        match self {
            Value::Null => Some(Value::Null),
            Value::Int(a) => Some(Value::Int(-a)),
            Value::Float(a) => Some(Value::Float(-a)),
            _ => None,
        }
    }

    /// Coerce to f64 when numeric.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(*i as f64),
            Value::Float(f) => Some(*f),
            _ => None,
        }
    }

    /// Coerce to i64 when an integer.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// Borrow as a string when a string value.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Borrow as a list when a list value.
    pub fn as_list(&self) -> Option<&[Value]> {
        match self {
            Value::List(items) => Some(items),
            _ => None,
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, "null"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Float(x) => {
                if x.fract() == 0.0 && x.is_finite() {
                    write!(f, "{x:.1}")
                } else {
                    write!(f, "{x}")
                }
            }
            Value::Str(s) => write!(f, "{s}"),
            Value::Date(d) => write!(f, "date({d})"),
            Value::DateTime(t) => write!(f, "datetime({t})"),
            Value::List(items) => {
                write!(f, "[")?;
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{v}")?;
                }
                write!(f, "]")
            }
            Value::Map(m) => {
                write!(f, "{{")?;
                for (i, (k, v)) in m.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{k}: {v}")?;
                }
                write!(f, "}}")
            }
            Value::Node(n) => write!(f, "({n})"),
            Value::Rel(r) => write!(f, "[{r}]"),
        }
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Self {
        Value::Bool(b)
    }
}
impl From<i64> for Value {
    fn from(i: i64) -> Self {
        Value::Int(i)
    }
}
impl From<i32> for Value {
    fn from(i: i32) -> Self {
        Value::Int(i as i64)
    }
}
impl From<f64> for Value {
    fn from(x: f64) -> Self {
        Value::Float(x)
    }
}
impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::Str(s.to_string())
    }
}
impl From<String> for Value {
    fn from(s: String) -> Self {
        Value::Str(s)
    }
}
impl From<NodeId> for Value {
    fn from(n: NodeId) -> Self {
        Value::Node(n)
    }
}
impl From<RelId> for Value {
    fn from(r: RelId) -> Self {
        Value::Rel(r)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_propagates_through_arithmetic() {
        assert_eq!(Value::Null.add(&Value::Int(1)), Some(Value::Null));
        assert_eq!(Value::Int(1).sub(&Value::Null), Some(Value::Null));
        assert_eq!(Value::Null.mul(&Value::Null), Some(Value::Null));
        assert_eq!(Value::Float(2.0).div(&Value::Null), Some(Value::Null));
    }

    #[test]
    fn numeric_promotion() {
        assert_eq!(
            Value::Int(1).add(&Value::Float(0.5)),
            Some(Value::Float(1.5))
        );
        assert_eq!(
            Value::Float(3.0).mul(&Value::Int(2)),
            Some(Value::Float(6.0))
        );
        assert_eq!(Value::Int(7).div(&Value::Int(2)), Some(Value::Int(3)));
        assert_eq!(
            Value::Int(7).div(&Value::Float(2.0)),
            Some(Value::Float(3.5))
        );
    }

    #[test]
    fn integer_division_by_zero_is_error() {
        assert_eq!(Value::Int(1).div(&Value::Int(0)), None);
        assert_eq!(Value::Int(1).modulo(&Value::Int(0)), None);
    }

    #[test]
    fn string_concatenation() {
        assert_eq!(
            Value::str("a").add(&Value::str("b")),
            Some(Value::str("ab"))
        );
        assert_eq!(
            Value::str("n=").add(&Value::Int(3)),
            Some(Value::str("n=3"))
        );
    }

    #[test]
    fn list_concatenation_and_append() {
        let l = Value::list([Value::Int(1)]);
        assert_eq!(
            l.add(&Value::list([Value::Int(2)])),
            Some(Value::list([Value::Int(1), Value::Int(2)]))
        );
        assert_eq!(
            l.add(&Value::Int(9)),
            Some(Value::list([Value::Int(1), Value::Int(9)]))
        );
    }

    #[test]
    fn date_arithmetic() {
        assert_eq!(Value::Date(10).add(&Value::Int(5)), Some(Value::Date(15)));
        assert_eq!(Value::Date(10).sub(&Value::Date(4)), Some(Value::Int(6)));
        assert_eq!(
            Value::DateTime(1000).sub(&Value::DateTime(400)),
            Some(Value::Int(600))
        );
    }

    #[test]
    fn three_valued_equality() {
        assert_eq!(Value::Null.eq3(&Value::Int(1)), None);
        assert_eq!(Value::Int(1).eq3(&Value::Float(1.0)), Some(true));
        assert_eq!(Value::str("x").eq3(&Value::str("y")), Some(false));
    }

    #[test]
    fn three_valued_comparison() {
        assert_eq!(Value::Int(1).cmp3(&Value::Int(2)), Some(Ordering::Less));
        assert_eq!(Value::Int(1).cmp3(&Value::Null), None);
        assert_eq!(Value::str("a").cmp3(&Value::Int(1)), None);
        assert_eq!(
            Value::Float(1.5).cmp3(&Value::Int(1)),
            Some(Ordering::Greater)
        );
    }

    #[test]
    fn order_puts_null_last_and_is_total() {
        let mut vs = vec![
            Value::Null,
            Value::Int(2),
            Value::str("b"),
            Value::Float(1.5),
            Value::Bool(true),
            Value::str("a"),
        ];
        vs.sort_by(|a, b| a.cmp_order(b));
        assert_eq!(
            vs,
            vec![
                Value::str("a"),
                Value::str("b"),
                Value::Bool(true),
                Value::Float(1.5),
                Value::Int(2),
                Value::Null,
            ]
        );
    }

    #[test]
    fn storability() {
        assert!(Value::Int(1).is_storable());
        assert!(Value::list([Value::str("x")]).is_storable());
        assert!(!Value::Node(NodeId(1)).is_storable());
        assert!(!Value::list([Value::Rel(RelId(1))]).is_storable());
    }

    #[test]
    fn truthiness() {
        assert!(Value::Bool(true).is_truthy());
        assert!(!Value::Bool(false).is_truthy());
        assert!(!Value::Null.is_truthy());
        assert!(!Value::Int(1).is_truthy());
    }

    #[test]
    fn display_round_trip_shapes() {
        assert_eq!(
            Value::list([Value::Int(1), Value::str("a")]).to_string(),
            "[1, a]"
        );
        assert_eq!(
            Value::map([("k".to_string(), Value::Int(1))]).to_string(),
            "{k: 1}"
        );
        assert_eq!(Value::Float(2.0).to_string(), "2.0");
    }
}
