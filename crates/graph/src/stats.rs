//! Cardinality statistics for property indexes: equi-depth histograms.
//!
//! The candidate planner in `pg-cypher` costs access paths on the hottest
//! path of the trigger engine (every activating statement re-plans its
//! trigger conditions). Planning must therefore never pay more than
//! O(log n) per probe: equality selectivity is answered exactly from the
//! index bucket sizes, while **range and prefix selectivity** is answered
//! from the equi-depth [`Histogram`] maintained here.
//!
//! A histogram summarizes one `(label, key)` index entry: `bounds[i]` is
//! the inclusive upper [`IndexKey`] of bucket `i`, `counts[i]` the number
//! of indexed items currently attributed to it. Buckets are built with
//! (approximately) equal depth from the live key distribution and then
//! maintained **incrementally**: every insert/remove — including the ones
//! replayed by the undo paths (`rollback`, `rollback_to`, aborted
//! cascades) — adjusts the count of the bucket the key falls into. Because
//! attribution is a pure function of the key and the (fixed) bounds,
//! insert/remove pairs cancel exactly and the histogram total always
//! equals the index total, no matter how mutations and undos interleave.
//!
//! Incremental maintenance keeps totals exact but slowly erodes the
//! *equi-depth* property (a hot bucket can grow arbitrarily deep). A drift
//! counter tracks mutations since the last build; once drift exceeds
//! [`Histogram::stale`]'s threshold the index rebuilds the histogram from
//! the live key space (O(distinct), amortized over the mutations that
//! caused the drift).
//!
//! ## Estimate error bound
//!
//! [`Histogram::estimate_range`] assumes values spread uniformly inside a
//! bucket and charges half of every partially-overlapped bucket. With `B`
//! buckets of depth `d ≈ total/B` and at most `drift < max(16, total/8)`
//! un-rebuilt mutations, the estimate is within `2·d + drift` of the exact
//! count — tight enough to order access paths, and cheap enough (O(B)) to
//! probe on every planning round.

use crate::prop_index::IndexKey;
use std::collections::{BTreeMap, BTreeSet};
use std::ops::Bound;

/// Number of buckets a rebuild aims for.
const BUCKETS: usize = 32;

/// Number of log2 buckets in a [`DegreeHistogram`].
pub const DEGREE_BUCKETS: usize = 16;

/// The bucket a per-node degree `d >= 1` falls into: `floor(log2 d)`,
/// clamped to the last bucket. Bucket `i` covers degrees
/// `[2^i, 2^(i+1))` — log2 spacing because join fanout matters on a
/// multiplicative scale (a hub with 4096 neighbours and one with 6000
/// cost the same plan decision, while 1 vs 64 does not).
pub fn degree_bucket(d: usize) -> usize {
    debug_assert!(d >= 1);
    ((usize::BITS - 1 - d.max(1).leading_zeros()) as usize).min(DEGREE_BUCKETS - 1)
}

/// A log2-bucketed histogram over per-node degrees for one
/// `(label, rel-type, direction)` population: `buckets[i]` counts nodes
/// carrying the label whose degree in that type/direction lies in
/// `[2^i, 2^(i+1))` (degree-0 nodes are not counted — subtract
/// [`DegreeHistogram::total_nodes`] from the label cardinality to get
/// them).
///
/// Maintenance contract (mirrors [`Histogram`]): bucket counts are
/// adjusted **exactly** on label set/remove (the node's degree is known
/// there), and left untouched on relationship create/delete, which only
/// bump `drift` — moving a node between buckets would cost a degree
/// recount per edge mutation. The histogram is rebuilt from the live
/// adjacency once `drift` exceeds `max(16, edges/8)` (amortized O(1) per
/// mutation), so at any moment the per-bucket node counts are within
/// `drift` of exact. The companion per-entry `edges` counter (see
/// `GraphView::degree_edge_count`) is **always exact** — average-degree
/// join-output estimates carry no histogram error at all; only
/// quantile/max-degree reads see the `drift` bound.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DegreeHistogram {
    /// Nodes per log2 degree bucket (see [`degree_bucket`]).
    pub buckets: [usize; DEGREE_BUCKETS],
    /// Mutations since the last rebuild (staleness bound on the buckets).
    pub drift: usize,
}

impl DegreeHistogram {
    /// Nodes with degree >= 1 attributed to the histogram.
    pub fn total_nodes(&self) -> usize {
        self.buckets.iter().sum()
    }

    /// An upper bound on the maximum per-node degree: the exclusive
    /// ceiling of the highest non-empty bucket (0 when empty). Planning
    /// uses this as a worst-case fanout cap on skewed distributions.
    pub fn max_degree_bound(&self) -> usize {
        self.buckets
            .iter()
            .rposition(|&c| c > 0)
            .map(|i| {
                if i >= DEGREE_BUCKETS - 1 {
                    usize::MAX
                } else {
                    1usize << (i + 1)
                }
            })
            .unwrap_or(0)
    }
}

/// An equi-depth histogram over one `(label, key)` index's key space.
#[derive(Debug, Clone, Default)]
pub struct Histogram {
    /// Inclusive upper bound of each bucket, ascending. Keys above the last
    /// bound are attributed to the last bucket.
    bounds: Vec<IndexKey>,
    /// Current item count per bucket (kept exact incrementally).
    counts: Vec<usize>,
    /// Mutations since the last rebuild.
    drift: usize,
}

impl Histogram {
    /// Whether the histogram has been built at least once.
    pub fn is_built(&self) -> bool {
        !self.bounds.is_empty()
    }

    /// Mutations applied since the last rebuild.
    pub fn drift(&self) -> usize {
        self.drift
    }

    /// Whether enough drift accumulated that the owner should rebuild.
    pub fn stale(&self, total: usize) -> bool {
        self.drift > 16.max(total / 8)
    }

    /// The bucket a key is attributed to (pure in the key and bounds).
    fn bucket_of(&self, key: &IndexKey) -> Option<usize> {
        if self.bounds.is_empty() {
            return None;
        }
        let i = self.bounds.partition_point(|b| b < key);
        Some(i.min(self.bounds.len() - 1))
    }

    /// Record an insert of `key` (no-op before the first build; the
    /// eventual rebuild sees the key in the live index).
    pub fn note_insert(&mut self, key: &IndexKey) {
        if let Some(b) = self.bucket_of(key) {
            self.counts[b] += 1;
        }
        self.drift += 1;
    }

    /// Record a removal of `key` (exact inverse of [`Histogram::note_insert`]).
    pub fn note_remove(&mut self, key: &IndexKey) {
        if let Some(b) = self.bucket_of(key) {
            self.counts[b] = self.counts[b].saturating_sub(1);
        }
        self.drift += 1;
    }

    /// Rebuild equal-depth buckets from the live key space.
    pub fn rebuild<Id>(&mut self, keys: &BTreeMap<IndexKey, BTreeSet<Id>>, total: usize) {
        self.rebuild_from(keys.iter().map(|(k, set)| (k, set.len())), total)
    }

    /// Rebuild equal-depth buckets from `(key, count)` pairs that must be
    /// **ascending in [`IndexKey`] order** (composite indexes feed their
    /// leading-column counts through this; `total` is the sum of counts).
    pub fn rebuild_from<'a>(
        &mut self,
        keys: impl Iterator<Item = (&'a IndexKey, usize)>,
        total: usize,
    ) {
        self.bounds.clear();
        self.counts.clear();
        self.drift = 0;
        if total == 0 {
            return;
        }
        let depth = total.div_ceil(BUCKETS).max(1);
        let mut acc = 0usize;
        let mut last: Option<&IndexKey> = None;
        for (k, n) in keys {
            acc += n;
            last = Some(k);
            if acc >= depth {
                self.bounds.push(k.clone());
                self.counts.push(acc);
                acc = 0;
            }
        }
        if acc > 0 {
            // tail bucket for the remainder
            if let Some(k) = last {
                self.bounds.push(k.clone());
                self.counts.push(acc);
            }
        }
    }

    /// Estimated number of items whose key lies within `(lo, hi)`.
    ///
    /// Buckets fully inside the range contribute their whole count,
    /// partially-overlapped buckets half of it (uniformity assumption).
    /// Returns `None` when the histogram has not been built yet — the
    /// caller falls back to an exact (bounded) walk.
    pub fn estimate_range(&self, lo: &Bound<IndexKey>, hi: &Bound<IndexKey>) -> Option<usize> {
        if self.bounds.is_empty() {
            return None;
        }
        let mut est = 0usize;
        for (i, count) in self.counts.iter().enumerate() {
            // bucket i covers (bounds[i-1], bounds[i]]
            let b_hi = &self.bounds[i];
            let b_lo = if i == 0 {
                None
            } else {
                Some(&self.bounds[i - 1])
            };
            // bucket entirely below the range?
            let below = match lo {
                Bound::Unbounded => false,
                Bound::Included(l) => b_hi < l,
                Bound::Excluded(l) => b_hi <= l,
            };
            // bucket entirely above the range?
            let above = match (hi, b_lo) {
                (Bound::Unbounded, _) => false,
                (_, None) => false, // first bucket has no exclusive floor
                (Bound::Included(h), Some(bl)) => bl >= h,
                (Bound::Excluded(h), Some(bl)) => bl >= h,
            };
            if below || above {
                continue;
            }
            // fully contained: the bucket floor clears `lo` and the bucket
            // ceiling clears `hi`.
            let lo_ok = match (lo, b_lo) {
                (Bound::Unbounded, _) => true,
                (_, None) => false,
                (Bound::Included(l), Some(bl)) => bl >= l,
                (Bound::Excluded(l), Some(bl)) => bl >= l,
            };
            let hi_ok = match hi {
                Bound::Unbounded => true,
                Bound::Included(h) => b_hi <= h,
                Bound::Excluded(h) => b_hi < h,
            };
            if lo_ok && hi_ok {
                est += count;
            } else {
                est += count / 2;
            }
        }
        Some(est)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn keys_of(vals: &[i64]) -> BTreeMap<IndexKey, BTreeSet<u64>> {
        let mut m: BTreeMap<IndexKey, BTreeSet<u64>> = BTreeMap::new();
        for (i, v) in vals.iter().enumerate() {
            m.entry(IndexKey::Int(*v)).or_default().insert(i as u64);
        }
        m
    }

    #[test]
    fn rebuild_covers_total() {
        let vals: Vec<i64> = (0..1000).collect();
        let keys = keys_of(&vals);
        let mut h = Histogram::default();
        h.rebuild(&keys, 1000);
        assert!(h.is_built());
        assert_eq!(h.counts.iter().sum::<usize>(), 1000);
        // whole-space estimate is exact
        let est = h
            .estimate_range(&Bound::Unbounded, &Bound::Unbounded)
            .unwrap();
        assert_eq!(est, 1000);
    }

    #[test]
    fn estimate_tracks_uniform_ranges() {
        let vals: Vec<i64> = (0..1024).collect();
        let keys = keys_of(&vals);
        let mut h = Histogram::default();
        h.rebuild(&keys, 1024);
        let est = h
            .estimate_range(
                &Bound::Included(IndexKey::Int(0)),
                &Bound::Excluded(IndexKey::Int(512)),
            )
            .unwrap();
        let exact = 512usize;
        let depth = 1024usize.div_ceil(BUCKETS);
        assert!(
            est.abs_diff(exact) <= 2 * depth,
            "est {est} vs exact {exact}"
        );
    }

    #[test]
    fn incremental_updates_keep_total() {
        let vals: Vec<i64> = (0..100).collect();
        let mut keys = keys_of(&vals);
        let mut h = Histogram::default();
        h.rebuild(&keys, 100);
        // insert/remove pairs cancel exactly
        for v in [5i64, 500, -3] {
            h.note_insert(&IndexKey::Int(v));
            keys.entry(IndexKey::Int(v)).or_default().insert(9999);
        }
        h.note_remove(&IndexKey::Int(5));
        assert_eq!(h.counts.iter().sum::<usize>(), 102);
        assert_eq!(h.drift(), 4);
    }

    #[test]
    fn unbuilt_histogram_declines() {
        let h = Histogram::default();
        assert_eq!(h.estimate_range(&Bound::Unbounded, &Bound::Unbounded), None);
        assert!(!h.stale(0) || h.drift() > 16);
    }

    #[test]
    fn skewed_rebuild_still_exact_on_total() {
        // one huge bucket value plus a uniform tail
        let mut vals = vec![7i64; 900];
        for v in 0..100 {
            vals.push(1000 + v);
        }
        let mut m: BTreeMap<IndexKey, BTreeSet<u64>> = BTreeMap::new();
        for (i, v) in vals.iter().enumerate() {
            m.entry(IndexKey::Int(*v)).or_default().insert(i as u64);
        }
        // sets dedup ids, so build totals from set sizes
        let total: usize = m.values().map(|s| s.len()).sum();
        let mut h = Histogram::default();
        h.rebuild(&m, total);
        assert_eq!(h.counts.iter().sum::<usize>(), total);
    }
}
