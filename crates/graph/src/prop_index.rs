//! Property indexes: `(label, key, value)` → node set.
//!
//! The PG-Trigger engine evaluates trigger conditions as Cypher pattern
//! matches on every activating statement, so equality predicates like
//! `(:Hospital {name: 'Sacco'})` sit on the hottest path of the engine.
//! A [`PropIndex`] gives those predicates an index-backed access path; the
//! candidate planner in `pg-cypher` consults it through
//! [`crate::GraphView::nodes_with_prop`].
//!
//! ## Equality semantics
//!
//! The index must agree *exactly* with Cypher's three-valued equality
//! ([`Value::eq3`]), which compares `INTEGER` and `FLOAT` numerically
//! (`1 = 1.0` is `true`). Values are therefore normalized into an
//! [`IndexKey`] before storage and lookup: integral floats collapse onto
//! the integer key, non-integral floats key on their exact bit pattern
//! (with `-0.0` already normalized away as integral), and `NaN` — equal to
//! nothing, including itself — is never stored.
//!
//! Because `i64 ↔ f64` conversion is lossy at and beyond ±2⁵³, `eq3` is
//! not transitive out there (two distinct large integers can both "equal"
//! the same float), so no faithful equality key exists for that range. Such
//! values are simply **not indexed**, and [`PropIndex::lookup`] refuses to
//! answer for them (returns `None`), forcing the planner back to a filtered
//! scan. The same applies to `LIST`/`MAP` values. In-range lookups stay
//! complete: an in-range scalar can never `eq3`-equal an out-of-range one.

use crate::ids::NodeId;
use crate::record::NodeRecord;
use crate::value::Value;
use std::collections::{BTreeMap, BTreeSet, HashMap};

/// Exactly representable integer range of `f64`: strictly inside ±2⁵³,
/// `Int`/`Float` cross-type equality is loss-free and a canonical key
/// exists. The bound itself is excluded: `2⁵³ as f64` also equals
/// `2⁵³ + 1 as f64` under lossy conversion, so keys at the boundary would
/// not be faithful to [`Value::eq3`].
const SAFE_INT: i64 = 1 << 53;

/// The canonical, totally ordered key an indexed property value maps to.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub enum IndexKey {
    Bool(bool),
    /// Integers and integral floats in the ±2⁵³ exact range.
    Int(i64),
    /// Non-integral (or infinite) floats, keyed by exact bit pattern.
    FloatBits(u64),
    Str(String),
    Date(i64),
    DateTime(i64),
}

impl IndexKey {
    /// Normalize a value into its index key.
    ///
    /// `None` means the value has no faithful equality key and must stay
    /// out of the index: `NULL` and `NaN` (equal to nothing), graph items
    /// (not storable anyway), `LIST`/`MAP` (structural equality), and
    /// numerics beyond ±2⁵³ (lossy cross-type equality, see module docs).
    pub fn from_value(v: &Value) -> Option<IndexKey> {
        match v {
            Value::Bool(b) => Some(IndexKey::Bool(*b)),
            Value::Int(i) if (-SAFE_INT < *i && *i < SAFE_INT) => Some(IndexKey::Int(*i)),
            Value::Float(f) => {
                if f.is_nan() {
                    None
                } else if f.is_infinite() {
                    Some(IndexKey::FloatBits(f.to_bits()))
                } else if f.fract() == 0.0 {
                    if f.abs() < SAFE_INT as f64 {
                        // covers -0.0 → Int(0)
                        Some(IndexKey::Int(*f as i64))
                    } else {
                        None
                    }
                } else {
                    Some(IndexKey::FloatBits(f.to_bits()))
                }
            }
            Value::Str(s) => Some(IndexKey::Str(s.clone())),
            Value::Date(d) => Some(IndexKey::Date(*d)),
            Value::DateTime(t) => Some(IndexKey::DateTime(*t)),
            Value::Int(_)
            | Value::Null
            | Value::List(_)
            | Value::Map(_)
            | Value::Node(_)
            | Value::Rel(_) => None,
        }
    }

    /// Whether an equality lookup for an unkeyable `v` can still be
    /// answered (with the empty set) because `v` `eq3`-equals no storable
    /// value: `NULL` (never equal), `NaN` (never equal), graph items (not
    /// storable). `LIST`/`MAP`/large numerics return `false` — they can
    /// equal stored values the index does not cover.
    fn never_matches(v: &Value) -> bool {
        match v {
            Value::Null | Value::Node(_) | Value::Rel(_) => true,
            Value::Float(f) => f.is_nan(),
            _ => false,
        }
    }
}

/// The set of property indexes of a graph, maintained through every
/// mutation *and undo* path of [`crate::Graph`].
#[derive(Debug, Clone, Default)]
pub struct PropIndex {
    /// label → key → value-key → node set.
    by_label: HashMap<String, HashMap<String, BTreeMap<IndexKey, BTreeSet<NodeId>>>>,
    /// Number of `(label, key)` indexes; cheap emptiness check for the
    /// mutation fast path.
    count: usize,
}

impl PropIndex {
    /// `true` when no index exists (mutation fast path).
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Declare an index on `(label, key)`. Returns `false` when it already
    /// exists. The caller (the store) populates it from the live extent.
    pub fn create(&mut self, label: &str, key: &str) -> bool {
        let keys = self.by_label.entry(label.to_string()).or_default();
        if keys.contains_key(key) {
            return false;
        }
        keys.insert(key.to_string(), BTreeMap::new());
        self.count += 1;
        true
    }

    /// Drop the index on `(label, key)`; `false` when absent.
    pub fn drop_index(&mut self, label: &str, key: &str) -> bool {
        let Some(keys) = self.by_label.get_mut(label) else {
            return false;
        };
        if keys.remove(key).is_none() {
            return false;
        }
        if keys.is_empty() {
            self.by_label.remove(label);
        }
        self.count -= 1;
        true
    }

    /// Whether `(label, key)` is indexed.
    pub fn is_indexed(&self, label: &str, key: &str) -> bool {
        self.by_label
            .get(label)
            .is_some_and(|keys| keys.contains_key(key))
    }

    /// All `(label, key)` index definitions, sorted.
    pub fn definitions(&self) -> Vec<(String, String)> {
        let mut out: Vec<(String, String)> = self
            .by_label
            .iter()
            .flat_map(|(l, keys)| keys.keys().map(move |k| (l.clone(), k.clone())))
            .collect();
        out.sort();
        out
    }

    /// The property keys indexed under `label`.
    pub fn keys_for_label(&self, label: &str) -> Vec<String> {
        self.by_label
            .get(label)
            .map(|keys| keys.keys().cloned().collect())
            .unwrap_or_default()
    }

    /// Add one `(label, key, value) → node` entry (no-op when `(label,
    /// key)` is not indexed or `value` has no index key).
    pub fn insert(&mut self, label: &str, key: &str, value: &Value, node: NodeId) {
        if let Some(entries) = self
            .by_label
            .get_mut(label)
            .and_then(|keys| keys.get_mut(key))
        {
            if let Some(ik) = IndexKey::from_value(value) {
                entries.entry(ik).or_default().insert(node);
            }
        }
    }

    /// Remove one entry (no-op when not indexed / not keyable).
    pub fn remove(&mut self, label: &str, key: &str, value: &Value, node: NodeId) {
        if let Some(entries) = self
            .by_label
            .get_mut(label)
            .and_then(|keys| keys.get_mut(key))
        {
            if let Some(ik) = IndexKey::from_value(value) {
                if let Some(set) = entries.get_mut(&ik) {
                    set.remove(&node);
                    if set.is_empty() {
                        entries.remove(&ik);
                    }
                }
            }
        }
    }

    /// Equality lookup. `None` means the index cannot answer — either
    /// `(label, key)` is not indexed, or `value` lies outside the keyable
    /// domain — and the caller must fall back to a filtered scan.
    pub fn lookup(&self, label: &str, key: &str, value: &Value) -> Option<Vec<NodeId>> {
        let entries = self.by_label.get(label)?.get(key)?;
        match IndexKey::from_value(value) {
            Some(ik) => Some(
                entries
                    .get(&ik)
                    .map(|set| set.iter().copied().collect())
                    .unwrap_or_default(),
            ),
            None if IndexKey::never_matches(value) => Some(Vec::new()),
            None => None,
        }
    }

    /// Index every `(label, key)` pair a node record carries (node
    /// creation and undo of deletion).
    pub fn index_node(&mut self, rec: &NodeRecord) {
        if self.is_empty() {
            return;
        }
        for l in &rec.labels {
            for (k, v) in rec.props.iter() {
                self.insert(l, k, v, rec.id);
            }
        }
    }

    /// Remove every entry of a node record (deletion and undo of
    /// creation).
    pub fn deindex_node(&mut self, rec: &NodeRecord) {
        if self.is_empty() {
            return;
        }
        for l in &rec.labels {
            for (k, v) in rec.props.iter() {
                self.remove(l, k, v, rec.id);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn create_drop_and_definitions() {
        let mut ix = PropIndex::default();
        assert!(ix.is_empty());
        assert!(ix.create("A", "x"));
        assert!(!ix.create("A", "x"));
        assert!(ix.create("A", "y"));
        assert!(ix.create("B", "x"));
        assert_eq!(
            ix.definitions(),
            vec![
                ("A".to_string(), "x".to_string()),
                ("A".to_string(), "y".to_string()),
                ("B".to_string(), "x".to_string()),
            ]
        );
        assert!(ix.drop_index("A", "y"));
        assert!(!ix.drop_index("A", "y"));
        assert_eq!(ix.keys_for_label("A"), vec!["x".to_string()]);
        assert!(ix.is_indexed("B", "x"));
        assert!(!ix.is_indexed("B", "y"));
    }

    #[test]
    fn numeric_normalization_matches_eq3() {
        // 1 and 1.0 share a key, mirroring `eq3`.
        assert_eq!(
            IndexKey::from_value(&Value::Int(1)),
            IndexKey::from_value(&Value::Float(1.0))
        );
        // -0.0 and 0 share a key.
        assert_eq!(
            IndexKey::from_value(&Value::Float(-0.0)),
            IndexKey::from_value(&Value::Int(0))
        );
        // non-integral floats key on bits
        assert_eq!(
            IndexKey::from_value(&Value::Float(1.5)),
            Some(IndexKey::FloatBits(1.5f64.to_bits()))
        );
        // NaN and out-of-range integers are unkeyable
        assert_eq!(IndexKey::from_value(&Value::Float(f64::NAN)), None);
        assert_eq!(IndexKey::from_value(&Value::Int(i64::MAX)), None);
        assert_eq!(IndexKey::from_value(&Value::Float(1e300)), None);
        // the ±2^53 boundary itself is unkeyable on BOTH sides: eq3 is
        // lossy there (2^53 + 1 as f64 == 2^53 as f64), so Int(2^53) and
        // Float(2^53.0) must fall back to a scan rather than key
        // differently from the values they eq3-equal.
        let bound = 1i64 << 53;
        assert_eq!(IndexKey::from_value(&Value::Int(bound)), None);
        assert_eq!(IndexKey::from_value(&Value::Int(-bound)), None);
        assert_eq!(IndexKey::from_value(&Value::Float(bound as f64)), None);
        assert!(IndexKey::from_value(&Value::Int(bound - 1)).is_some());
        assert_eq!(
            IndexKey::from_value(&Value::Float((bound - 1) as f64)),
            IndexKey::from_value(&Value::Int(bound - 1))
        );
        // infinities are self-equal and keyable
        assert!(IndexKey::from_value(&Value::Float(f64::INFINITY)).is_some());
    }

    #[test]
    fn lookup_distinguishes_empty_from_unanswerable() {
        let mut ix = PropIndex::default();
        ix.create("A", "x");
        ix.insert("A", "x", &Value::Int(1), NodeId(0));
        // indexed, present
        assert_eq!(ix.lookup("A", "x", &Value::Int(1)), Some(vec![NodeId(0)]));
        // cross-type numeric equality answered from the same key
        assert_eq!(
            ix.lookup("A", "x", &Value::Float(1.0)),
            Some(vec![NodeId(0)])
        );
        // indexed, absent value → definitive empty
        assert_eq!(ix.lookup("A", "x", &Value::Int(2)), Some(vec![]));
        // NULL / NaN equal nothing → definitive empty
        assert_eq!(ix.lookup("A", "x", &Value::Null), Some(vec![]));
        assert_eq!(ix.lookup("A", "x", &Value::Float(f64::NAN)), Some(vec![]));
        // lists and huge numerics cannot be answered
        assert_eq!(ix.lookup("A", "x", &Value::list([Value::Int(1)])), None);
        assert_eq!(ix.lookup("A", "x", &Value::Int(i64::MAX)), None);
        // unindexed (label, key)
        assert_eq!(ix.lookup("A", "y", &Value::Int(1)), None);
        assert_eq!(ix.lookup("B", "x", &Value::Int(1)), None);
    }

    #[test]
    fn remove_prunes_empty_buckets() {
        let mut ix = PropIndex::default();
        ix.create("A", "x");
        ix.insert("A", "x", &Value::str("v"), NodeId(1));
        ix.insert("A", "x", &Value::str("v"), NodeId(2));
        ix.remove("A", "x", &Value::str("v"), NodeId(1));
        assert_eq!(ix.lookup("A", "x", &Value::str("v")), Some(vec![NodeId(2)]));
        ix.remove("A", "x", &Value::str("v"), NodeId(2));
        assert_eq!(ix.lookup("A", "x", &Value::str("v")), Some(vec![]));
    }
}
