//! Property indexes: `(label, key, value)` → item set, with ordered range
//! and prefix scans.
//!
//! The PG-Trigger engine evaluates trigger conditions as Cypher pattern
//! matches on every activating statement, so predicates like
//! `(:Hospital {name: 'Sacco'})` or `occupancy >= 0.95` (paper §6) sit on
//! the hottest path of the engine. A [`PropIndex`] gives equality *and*
//! range/prefix predicates an index-backed access path; the candidate
//! planner in `pg-cypher` consults it through
//! [`crate::GraphView::nodes_with_prop`],
//! [`crate::GraphView::nodes_in_prop_range`] and
//! [`crate::GraphView::nodes_with_prop_prefix`]. A [`RelPropIndex`] provides
//! the same for relationships keyed by type.
//!
//! ## Equality semantics
//!
//! The index must agree *exactly* with Cypher's three-valued equality
//! ([`Value::eq3`]), which compares `INTEGER` and `FLOAT` numerically
//! (`1 = 1.0` is `true`). Values are therefore normalized into an
//! [`IndexKey`] before storage and lookup: integral floats collapse onto
//! the integer key, non-integral floats key on their exact bit pattern
//! (with `-0.0` already normalized away as integral), and `NaN` — equal to
//! nothing, including itself — is never stored.
//!
//! Because `i64 ↔ f64` conversion is lossy at and beyond ±2⁵³, `eq3` is
//! not transitive out there (two distinct large integers can both "equal"
//! the same float), so no faithful equality key exists for that range. Such
//! values are simply **not indexed**, and [`PropIndex::lookup`] refuses to
//! answer for them (returns `None`), forcing the planner back to a filtered
//! scan. The same applies to `LIST`/`MAP` values. In-range lookups stay
//! complete: an in-range scalar can never `eq3`-equal an out-of-range one.
//!
//! ## Range semantics
//!
//! [`IndexKey`] carries a hand-written [`Ord`] that sorts the two numeric
//! variants **numerically interleaved** (`Int(1) < FloatBits(1.5) <
//! Int(2)`), so one `BTreeMap::range` walk answers `<`/`<=`/`>`/`>=`
//! pushdowns in O(log n + k). Non-numeric families (booleans, strings,
//! dates, datetimes) occupy disjoint, contiguous key regions matching
//! [`Value::cmp3`]'s refusal to compare across types.
//!
//! Range scans have one completeness hazard equality scans do not: a stored
//! numeric *outside* ±2⁵³ is absent from the index yet **can** satisfy a
//! range predicate (`x > 0` matches `2⁵³ + 1`). Each `(label, key)` entry
//! therefore counts its currently-present lossy numerics, and
//! [`PropIndex::range_lookup`] refuses to answer numeric ranges (returns
//! `None` → planner falls back to a scan) while that count is non-zero.
//! String/date/boolean ranges and prefix scans are unaffected: every value
//! of those families is keyable.

use crate::ids::{NodeId, RelId};
use crate::pmap::{PMap, PSet};
use crate::record::{NodeRecord, RelRecord};
use crate::stats::Histogram;
use crate::value::Value;
use std::cmp::Ordering;
use std::collections::HashMap;
use std::ops::Bound;
use std::sync::Arc;

/// Exactly representable integer range of `f64`: strictly inside ±2⁵³,
/// `Int`/`Float` cross-type equality is loss-free and a canonical key
/// exists. The bound itself is excluded: `2⁵³ as f64` also equals
/// `2⁵³ + 1 as f64` under lossy conversion, so keys at the boundary would
/// not be faithful to [`Value::eq3`].
const SAFE_INT: i64 = 1 << 53;

/// The canonical key an indexed property value maps to, totally ordered
/// consistently with [`Value::cmp3`] within each comparable family.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum IndexKey {
    Bool(bool),
    /// Integers and integral floats in the ±2⁵³ exact range.
    Int(i64),
    /// Non-integral (or infinite) floats, keyed by exact bit pattern.
    FloatBits(u64),
    Str(String),
    Date(i64),
    DateTime(i64),
}

impl IndexKey {
    /// Family rank: booleans < numerics < strings < dates < datetimes.
    /// `Int` and `FloatBits` share a rank — they interleave numerically.
    pub(crate) fn family(&self) -> u8 {
        match self {
            IndexKey::Bool(_) => 0,
            IndexKey::Int(_) | IndexKey::FloatBits(_) => 1,
            IndexKey::Str(_) => 2,
            IndexKey::Date(_) => 3,
            IndexKey::DateTime(_) => 4,
        }
    }
}

impl Ord for IndexKey {
    fn cmp(&self, other: &Self) -> Ordering {
        use IndexKey::*;
        match (self, other) {
            (Bool(a), Bool(b)) => a.cmp(b),
            (Int(a), Int(b)) => a.cmp(b),
            // Keyable ints are strictly inside ±2⁵³, so `as f64` is exact;
            // FloatBits never holds NaN, so partial_cmp is total. A
            // FloatBits value (non-integral or infinite) can never equal an
            // Int key numerically, keeping Ord consistent with Eq.
            (Int(a), FloatBits(b)) => (*a as f64)
                .partial_cmp(&f64::from_bits(*b))
                .expect("no NaN"),
            (FloatBits(a), Int(b)) => f64::from_bits(*a)
                .partial_cmp(&(*b as f64))
                .expect("no NaN"),
            (FloatBits(a), FloatBits(b)) => f64::from_bits(*a)
                .partial_cmp(&f64::from_bits(*b))
                .expect("no NaN"),
            (Str(a), Str(b)) => a.cmp(b),
            (Date(a), Date(b)) => a.cmp(b),
            (DateTime(a), DateTime(b)) => a.cmp(b),
            (a, b) => a.family().cmp(&b.family()),
        }
    }
}

impl PartialOrd for IndexKey {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl IndexKey {
    /// Normalize a value into its index key.
    ///
    /// `None` means the value has no faithful equality key and must stay
    /// out of the index: `NULL` and `NaN` (equal to nothing), graph items
    /// (not storable anyway), `LIST`/`MAP` (structural equality), and
    /// numerics beyond ±2⁵³ (lossy cross-type equality, see module docs).
    pub fn from_value(v: &Value) -> Option<IndexKey> {
        match v {
            Value::Bool(b) => Some(IndexKey::Bool(*b)),
            Value::Int(i) if (-SAFE_INT < *i && *i < SAFE_INT) => Some(IndexKey::Int(*i)),
            Value::Float(f) => {
                if f.is_nan() {
                    None
                } else if f.is_infinite() {
                    Some(IndexKey::FloatBits(f.to_bits()))
                } else if f.fract() == 0.0 {
                    if f.abs() < SAFE_INT as f64 {
                        // covers -0.0 → Int(0)
                        Some(IndexKey::Int(*f as i64))
                    } else {
                        None
                    }
                } else {
                    Some(IndexKey::FloatBits(f.to_bits()))
                }
            }
            Value::Str(s) => Some(IndexKey::Str(s.clone())),
            Value::Date(d) => Some(IndexKey::Date(*d)),
            Value::DateTime(t) => Some(IndexKey::DateTime(*t)),
            Value::Int(_)
            | Value::Null
            | Value::List(_)
            | Value::Map(_)
            | Value::Node(_)
            | Value::Rel(_) => None,
        }
    }

    /// Whether an equality lookup for an unkeyable `v` can still be
    /// answered (with the empty set) because `v` `eq3`-equals no storable
    /// value: `NULL` (never equal), `NaN` (never equal), graph items (not
    /// storable). `LIST`/`MAP`/large numerics return `false` — they can
    /// equal stored values the index does not cover.
    pub(crate) fn never_matches(v: &Value) -> bool {
        match v {
            Value::Null | Value::Node(_) | Value::Rel(_) => true,
            Value::Float(f) => f.is_nan(),
            _ => false,
        }
    }

    /// Whether a stored value is a *lossy numeric*: unkeyable, yet able to
    /// satisfy ordering predicates ([`Value::cmp3`] orders it against other
    /// numbers). While any such value is present under an indexed
    /// `(label, key)`, numeric range scans must fall back to full scans.
    pub(crate) fn is_lossy_numeric(v: &Value) -> bool {
        match v {
            Value::Int(i) => *i <= -SAFE_INT || *i >= SAFE_INT,
            // every finite f64 with |f| ≥ 2⁵³ is integral, hence unkeyable;
            // NaN is unkeyable too but satisfies no ordering predicate.
            Value::Float(f) => f.is_finite() && f.abs() >= SAFE_INT as f64,
            _ => false,
        }
    }
}

/// One `(label, key)` index: ordered value keys, the count of present
/// lossy numerics (see module docs, "Range semantics"), and cardinality
/// statistics (entry totals plus an equi-depth [`Histogram`]) maintained
/// through the same insert/remove calls — hence through every undo path.
#[derive(Debug, Clone)]
struct IndexEntries<Id> {
    keys: PMap<IndexKey, PSet<Id>>,
    lossy_numerics: usize,
    /// Items whose value is storable yet unkeyable for reasons other than
    /// lossy numerics (`NaN`, `LIST`, `MAP`). While non-zero, ordered walks
    /// over the key space would be incomplete and are refused.
    unkeyable: usize,
    /// Number of keyable entries currently indexed (`Σ bucket sizes`).
    total: usize,
    /// Equi-depth histogram over the key space (planning estimates).
    hist: Histogram,
}

impl<Id> Default for IndexEntries<Id> {
    fn default() -> Self {
        IndexEntries {
            keys: PMap::new(),
            lossy_numerics: 0,
            unkeyable: 0,
            total: 0,
            hist: Histogram::default(),
        }
    }
}

/// How a range query classifies against one index entry.
enum RangeQuery {
    /// No value can satisfy the predicate — definitively empty.
    Empty,
    /// The index cannot answer faithfully — fall back to a scan.
    Refused,
    /// Walk the key space between these bounds.
    Bounds(Bound<IndexKey>, Bound<IndexKey>),
}

impl<Id> IndexEntries<Id> {
    /// Shared classification for [`KeyedIndex::range_lookup`] and the
    /// count-only probes: resolve value bounds into key bounds, apply the
    /// family rules and the lossy-numeric opt-out.
    fn classify_range(&self, lower: Bound<&Value>, upper: Bound<&Value>) -> RangeQuery {
        // Classify each bound: Ok(key-bound) | Err(true)=definitively-empty
        // | Err(false)=unanswerable.
        let classify = |b: Bound<&Value>| -> Result<Bound<IndexKey>, bool> {
            match b {
                Bound::Unbounded => Ok(Bound::Unbounded),
                Bound::Included(v) | Bound::Excluded(v) => match IndexKey::from_value(v) {
                    Some(ik) => Ok(match b {
                        Bound::Included(_) => Bound::Included(ik),
                        _ => Bound::Excluded(ik),
                    }),
                    // NULL/NaN/graph-item bounds compare to nothing.
                    None if IndexKey::never_matches(v) => Err(true),
                    // cmp3 never orders maps against anything either.
                    None if matches!(v, Value::Map(_)) => Err(true),
                    None => Err(false),
                },
            }
        };
        let lo = match classify(lower) {
            Ok(b) => b,
            Err(true) => return RangeQuery::Empty,
            Err(false) => return RangeQuery::Refused,
        };
        let hi = match classify(upper) {
            Ok(b) => b,
            Err(true) => return RangeQuery::Empty,
            Err(false) => return RangeQuery::Refused,
        };
        // The family the predicate constrains values to (cmp3 returns NULL
        // across families). Both-unbounded is not a range predicate.
        let fam = match (&lo, &hi) {
            (Bound::Included(k) | Bound::Excluded(k), Bound::Unbounded)
            | (Bound::Unbounded, Bound::Included(k) | Bound::Excluded(k)) => k.family(),
            (Bound::Included(a) | Bound::Excluded(a), Bound::Included(b) | Bound::Excluded(b)) => {
                if a.family() != b.family() {
                    // e.g. `> 1 AND < 'z'`: no value is comparable to both.
                    return RangeQuery::Empty;
                }
                a.family()
            }
            (Bound::Unbounded, Bound::Unbounded) => return RangeQuery::Refused,
        };
        // Numeric ranges are incomplete while lossy numerics are present.
        if fam == IndexKey::Int(0).family() && self.lossy_numerics > 0 {
            return RangeQuery::Refused;
        }
        // Close unbounded sides at the family frontier so the walk never
        // leaves the predicate's type family.
        let lo = match lo {
            Bound::Unbounded => family_min(fam),
            b => b,
        };
        let hi = match hi {
            Bound::Unbounded => family_max(fam),
            b => b,
        };
        // An inverted range would make BTreeMap::range panic.
        if range_is_empty(&lo, &hi) {
            return RangeQuery::Empty;
        }
        RangeQuery::Bounds(lo, hi)
    }
}

/// The per-label map of a [`KeyedIndex`]: key → `Arc`-shared entry.
type KeyMap<Id> = HashMap<String, Arc<IndexEntries<Id>>>;

/// The generic `(label, key, value) → item set` index shared by node
/// indexes ([`PropIndex`], label = node label) and relationship indexes
/// ([`RelPropIndex`], label = relationship type).
#[derive(Debug, Clone)]
pub struct KeyedIndex<Id> {
    /// label → key → value-key → item set. Entries are `Arc`-shared so a
    /// copy-on-write clone of the whole index (every published commit
    /// boundary) bumps refcounts instead of deep-copying per-entry
    /// statistics; mutators go through [`Arc::make_mut`].
    by_label: Arc<HashMap<String, KeyMap<Id>>>,
    /// Number of `(label, key)` indexes; cheap emptiness check for the
    /// mutation fast path.
    count: usize,
}

impl<Id> Default for KeyedIndex<Id> {
    fn default() -> Self {
        KeyedIndex {
            by_label: Arc::new(HashMap::new()),
            count: 0,
        }
    }
}

impl<Id: Ord + Copy> KeyedIndex<Id> {
    /// `true` when no index exists (mutation fast path).
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Declare an index on `(label, key)`. Returns `false` when it already
    /// exists. The caller (the store) populates it from the live extent.
    pub fn create(&mut self, label: &str, key: &str) -> bool {
        let keys = Arc::make_mut(&mut self.by_label)
            .entry(label.to_string())
            .or_default();
        if keys.contains_key(key) {
            return false;
        }
        keys.insert(key.to_string(), Arc::new(IndexEntries::default()));
        self.count += 1;
        true
    }

    /// Drop the index on `(label, key)`; `false` when absent.
    pub fn drop_index(&mut self, label: &str, key: &str) -> bool {
        let by_label = Arc::make_mut(&mut self.by_label);
        let Some(keys) = by_label.get_mut(label) else {
            return false;
        };
        if keys.remove(key).is_none() {
            return false;
        }
        if keys.is_empty() {
            by_label.remove(label);
        }
        self.count -= 1;
        true
    }

    /// Whether `(label, key)` is indexed.
    pub fn is_indexed(&self, label: &str, key: &str) -> bool {
        self.by_label
            .get(label)
            .is_some_and(|keys| keys.contains_key(key))
    }

    /// All `(label, key)` index definitions, sorted.
    pub fn definitions(&self) -> Vec<(String, String)> {
        let mut out: Vec<(String, String)> = self
            .by_label
            .iter()
            .flat_map(|(l, keys)| keys.keys().map(move |k| (l.clone(), k.clone())))
            .collect();
        out.sort();
        out
    }

    /// The property keys indexed under `label`.
    pub fn keys_for_label(&self, label: &str) -> Vec<String> {
        self.by_label
            .get(label)
            .map(|keys| keys.keys().cloned().collect())
            .unwrap_or_default()
    }

    /// Add one `(label, key, value) → item` entry (no-op when `(label,
    /// key)` is not indexed; lossy numerics bump the range opt-out count).
    /// Statistics (totals, histogram) are maintained here, so every undo
    /// path that replays inserts keeps them consistent automatically.
    pub fn insert(&mut self, label: &str, key: &str, value: &Value, item: Id) {
        // Coverage check before touching the shared map: uncovered labels
        // (the common case on mixed workloads) must not force a
        // copy-on-write of the outer tables.
        if !self.is_indexed(label, key) {
            return;
        }
        if let Some(entries) = Arc::make_mut(&mut self.by_label)
            .get_mut(label)
            .and_then(|keys| keys.get_mut(key))
        {
            let entries = Arc::make_mut(entries);
            if let Some(ik) = IndexKey::from_value(value) {
                if entries.keys.get_or_default(ik.clone()).insert(item) {
                    entries.total += 1;
                    entries.hist.note_insert(&ik);
                    if entries.hist.stale(entries.total) {
                        entries.hist.rebuild_from(
                            entries.keys.iter().map(|(k, s)| (k, s.len())),
                            entries.total,
                        );
                    }
                }
            } else if IndexKey::is_lossy_numeric(value) {
                entries.lossy_numerics += 1;
            } else {
                entries.unkeyable += 1;
            }
        }
    }

    /// Remove one entry (exact inverse of [`KeyedIndex::insert`]).
    pub fn remove(&mut self, label: &str, key: &str, value: &Value, item: Id) {
        if !self.is_indexed(label, key) {
            return;
        }
        if let Some(entries) = Arc::make_mut(&mut self.by_label)
            .get_mut(label)
            .and_then(|keys| keys.get_mut(key))
        {
            let entries = Arc::make_mut(entries);
            if let Some(ik) = IndexKey::from_value(value) {
                if let Some(set) = entries.keys.get_mut(&ik) {
                    if set.remove(&item) {
                        entries.total = entries.total.saturating_sub(1);
                        entries.hist.note_remove(&ik);
                    }
                    if set.is_empty() {
                        entries.keys.remove(&ik);
                    }
                    if entries.hist.stale(entries.total) {
                        entries.hist.rebuild_from(
                            entries.keys.iter().map(|(k, s)| (k, s.len())),
                            entries.total,
                        );
                    }
                }
            } else if IndexKey::is_lossy_numeric(value) {
                entries.lossy_numerics = entries.lossy_numerics.saturating_sub(1);
            } else {
                entries.unkeyable = entries.unkeyable.saturating_sub(1);
            }
        }
    }

    /// Equality lookup. `None` means the index cannot answer — either
    /// `(label, key)` is not indexed, or `value` lies outside the keyable
    /// domain — and the caller must fall back to a filtered scan.
    pub fn lookup(&self, label: &str, key: &str, value: &Value) -> Option<Vec<Id>> {
        let entries = self.by_label.get(label)?.get(key)?;
        match IndexKey::from_value(value) {
            Some(ik) => Some(
                entries
                    .keys
                    .get(&ik)
                    .map(|set| set.iter().copied().collect())
                    .unwrap_or_default(),
            ),
            None if IndexKey::never_matches(value) => Some(Vec::new()),
            None => None,
        }
    }

    /// Ordered range lookup: all items whose value `v` satisfies
    /// `lower ⋚ v ⋚ upper` under [`Value::cmp3`] semantics (cross-family
    /// comparisons are NULL, hence never matches). At least one bound must
    /// be given. `None` means the index cannot answer faithfully:
    /// `(label, key)` is not indexed, a bound value is unkeyable (±2⁵³
    /// numerics, lists), or lossy numerics are present under a numeric
    /// range — the caller falls back to a filtered scan.
    pub fn range_lookup(
        &self,
        label: &str,
        key: &str,
        lower: Bound<&Value>,
        upper: Bound<&Value>,
    ) -> Option<Vec<Id>> {
        let entries = self.by_label.get(label)?.get(key)?;
        let (lo, hi) = match entries.classify_range(lower, upper) {
            RangeQuery::Empty => return Some(Vec::new()),
            RangeQuery::Refused => return None,
            RangeQuery::Bounds(lo, hi) => (lo, hi),
        };
        let mut out: Vec<Id> = entries
            .keys
            .range(lo, hi)
            .flat_map(|(_, set)| set.iter().copied())
            .collect();
        out.sort();
        Some(out)
    }

    // ------------------------------------------------------------------
    // Count-only probes and statistics (planning never materializes ids)
    // ------------------------------------------------------------------

    /// Exact count of items an equality [`KeyedIndex::lookup`] would
    /// return, in O(log n) and without materializing the id vector. Same
    /// refusal contract as `lookup` (`None` = fall back to a scan).
    pub fn count_eq(&self, label: &str, key: &str, value: &Value) -> Option<usize> {
        let entries = self.by_label.get(label)?.get(key)?;
        match IndexKey::from_value(value) {
            Some(ik) => Some(entries.keys.get(&ik).map(|set| set.len()).unwrap_or(0)),
            None if IndexKey::never_matches(value) => Some(0),
            None => None,
        }
    }

    /// Estimated count of items a [`KeyedIndex::range_lookup`] would
    /// return. Served from the equi-depth histogram when built (O(#buckets));
    /// before the first build (small indexes) it counts the range walk
    /// exactly — still allocation-free. Same refusal contract as
    /// `range_lookup`; when it answers, `Some(0)` is only returned for
    /// definitively-empty predicates or genuinely empty histograms/walks.
    pub fn count_range(
        &self,
        label: &str,
        key: &str,
        lower: Bound<&Value>,
        upper: Bound<&Value>,
    ) -> Option<usize> {
        let entries = self.by_label.get(label)?.get(key)?;
        let (lo, hi) = match entries.classify_range(lower, upper) {
            RangeQuery::Empty => return Some(0),
            RangeQuery::Refused => return None,
            RangeQuery::Bounds(lo, hi) => (lo, hi),
        };
        if let Some(est) = entries.hist.estimate_range(&lo, &hi) {
            return Some(est);
        }
        Some(entries.keys.range(lo, hi).map(|(_, set)| set.len()).sum())
    }

    /// Exact count of items a [`KeyedIndex::prefix_lookup`] would return
    /// (O(log n + matching keys), allocation-free).
    pub fn count_prefix(&self, label: &str, key: &str, prefix: &str) -> Option<usize> {
        let entries = self.by_label.get(label)?.get(key)?;
        let start = Bound::Included(IndexKey::Str(prefix.to_string()));
        Some(
            entries
                .keys
                .range(start, Bound::Unbounded)
                .take_while(|(k, _)| matches!(k, IndexKey::Str(s) if s.starts_with(prefix)))
                .map(|(_, set)| set.len())
                .sum(),
        )
    }

    /// `(total keyable entries, distinct keys)` for `(label, key)` —
    /// `total / distinct` is the average-bucket selectivity estimate the
    /// planner uses for equality predicates whose operand cannot be
    /// evaluated yet (intermediate join results).
    pub fn stats(&self, label: &str, key: &str) -> Option<(usize, usize)> {
        let entries = self.by_label.get(label)?.get(key)?;
        Some((entries.total, entries.keys.len()))
    }

    /// Walk all indexed items of `(label, key)` in `ORDER BY` order
    /// ([`Value::cmp_order`]): type families in `cmp_order` rank order
    /// (strings < booleans < numerics < dates < datetimes), keys ascending
    /// within each — or everything reversed when `descending`.
    ///
    /// `None` when `(label, key)` is not indexed **or** any currently
    /// stored value is unkeyable (lossy numerics, `NaN`, lists, maps): such
    /// values order among (or across) families under `cmp_order`, so the
    /// walk would be incomplete and the caller must fall back to a sort.
    /// Items whose property is absent (`NULL` keys, sorting last) are by
    /// construction not walked — callers account for them via
    /// [`KeyedIndex::stats`] against the extent cardinality.
    pub fn ordered_walk(
        &self,
        label: &str,
        key: &str,
        descending: bool,
    ) -> Option<Box<dyn Iterator<Item = Id> + '_>> {
        let entries = self.by_label.get(label)?.get(key)?;
        if entries.lossy_numerics > 0 || entries.unkeyable > 0 {
            return None;
        }
        // IndexKey families in Value::cmp_order rank order (Str < Bool <
        // numerics < Date < DateTime); see `IndexKey::family` for the ids.
        let mut fams: Vec<u8> = vec![2, 0, 1, 3, 4];
        if descending {
            fams.reverse();
        }
        let iter = fams.into_iter().flat_map(move |fam| {
            let (lo, hi) = (family_min(fam), family_max(fam));
            let walk: Box<dyn Iterator<Item = Id>> = if descending {
                Box::new(
                    entries
                        .keys
                        .range_rev(lo, hi)
                        .flat_map(|(_, set)| set.iter().copied()),
                )
            } else {
                Box::new(
                    entries
                        .keys
                        .range(lo, hi)
                        .flat_map(|(_, set)| set.iter().copied()),
                )
            };
            walk
        });
        Some(Box::new(iter))
    }

    /// Rebuild every entry's histogram from the live key space (drift →
    /// 0). Bulk loads bypass the per-mutation staleness check's amortized
    /// rebuild cadence badly enough that [`crate::Graph::rebuild_stats`]
    /// exposes this as an explicit post-load refresh.
    pub fn rebuild_stats(&mut self) {
        for keys in Arc::make_mut(&mut self.by_label).values_mut() {
            for entries in keys.values_mut() {
                let entries = Arc::make_mut(entries);
                entries.hist.rebuild_from(
                    entries.keys.iter().map(|(k, s)| (k, s.len())),
                    entries.total,
                );
            }
        }
    }

    /// Prefix scan: all items whose value is a string starting with
    /// `prefix`, matching `STARTS WITH` semantics (non-strings never
    /// match). Always answerable when `(label, key)` is indexed — every
    /// string is keyable.
    pub fn prefix_lookup(&self, label: &str, key: &str, prefix: &str) -> Option<Vec<Id>> {
        let entries = self.by_label.get(label)?.get(key)?;
        let start = Bound::Included(IndexKey::Str(prefix.to_string()));
        let mut out: Vec<Id> = entries
            .keys
            .range(start, Bound::Unbounded)
            .take_while(|(k, _)| matches!(k, IndexKey::Str(s) if s.starts_with(prefix)))
            .flat_map(|(_, set)| set.iter().copied())
            .collect();
        out.sort();
        Some(out)
    }
}

/// Smallest key of a family (inclusive frontier).
pub(crate) fn family_min(fam: u8) -> Bound<IndexKey> {
    Bound::Included(match fam {
        0 => IndexKey::Bool(false),
        1 => IndexKey::FloatBits(f64::NEG_INFINITY.to_bits()),
        2 => IndexKey::Str(String::new()),
        3 => IndexKey::Date(i64::MIN),
        _ => IndexKey::DateTime(i64::MIN),
    })
}

/// Largest key of a family. Strings have no maximum, so the Str frontier is
/// "everything below the smallest Date key".
pub(crate) fn family_max(fam: u8) -> Bound<IndexKey> {
    match fam {
        0 => Bound::Included(IndexKey::Bool(true)),
        1 => Bound::Included(IndexKey::FloatBits(f64::INFINITY.to_bits())),
        2 => Bound::Excluded(IndexKey::Date(i64::MIN)),
        3 => Bound::Included(IndexKey::Date(i64::MAX)),
        _ => Bound::Included(IndexKey::DateTime(i64::MAX)),
    }
}

/// Whether `(lo, hi)` denotes an empty interval, so classification can
/// report `Empty` (definitive) instead of walking nothing.
fn range_is_empty(lo: &Bound<IndexKey>, hi: &Bound<IndexKey>) -> bool {
    match (lo, hi) {
        (Bound::Included(a), Bound::Included(b)) => a > b,
        (Bound::Included(a), Bound::Excluded(b))
        | (Bound::Excluded(a), Bound::Included(b))
        | (Bound::Excluded(a), Bound::Excluded(b)) => a >= b,
        _ => false,
    }
}

/// The set of node property indexes of a graph, maintained through every
/// mutation *and undo* path of [`crate::Graph`].
#[derive(Debug, Clone, Default)]
pub struct PropIndex {
    inner: KeyedIndex<NodeId>,
}

impl PropIndex {
    /// `true` when no index exists (mutation fast path).
    pub fn is_empty(&self) -> bool {
        self.inner.is_empty()
    }

    /// Declare an index on `(label, key)`. Returns `false` when it already
    /// exists. The caller (the store) populates it from the live extent.
    pub fn create(&mut self, label: &str, key: &str) -> bool {
        self.inner.create(label, key)
    }

    /// Drop the index on `(label, key)`; `false` when absent.
    pub fn drop_index(&mut self, label: &str, key: &str) -> bool {
        self.inner.drop_index(label, key)
    }

    /// Whether `(label, key)` is indexed.
    pub fn is_indexed(&self, label: &str, key: &str) -> bool {
        self.inner.is_indexed(label, key)
    }

    /// All `(label, key)` index definitions, sorted.
    pub fn definitions(&self) -> Vec<(String, String)> {
        self.inner.definitions()
    }

    /// The property keys indexed under `label`.
    pub fn keys_for_label(&self, label: &str) -> Vec<String> {
        self.inner.keys_for_label(label)
    }

    /// Add one `(label, key, value) → node` entry.
    pub fn insert(&mut self, label: &str, key: &str, value: &Value, node: NodeId) {
        self.inner.insert(label, key, value, node)
    }

    /// Remove one entry.
    pub fn remove(&mut self, label: &str, key: &str, value: &Value, node: NodeId) {
        self.inner.remove(label, key, value, node)
    }

    /// Equality lookup; `None` = fall back to a filtered scan.
    pub fn lookup(&self, label: &str, key: &str, value: &Value) -> Option<Vec<NodeId>> {
        self.inner.lookup(label, key, value)
    }

    /// Ordered range lookup; see [`KeyedIndex::range_lookup`].
    pub fn range_lookup(
        &self,
        label: &str,
        key: &str,
        lower: Bound<&Value>,
        upper: Bound<&Value>,
    ) -> Option<Vec<NodeId>> {
        self.inner.range_lookup(label, key, lower, upper)
    }

    /// `STARTS WITH` prefix scan; see [`KeyedIndex::prefix_lookup`].
    pub fn prefix_lookup(&self, label: &str, key: &str, prefix: &str) -> Option<Vec<NodeId>> {
        self.inner.prefix_lookup(label, key, prefix)
    }

    /// Count-only equality probe; see [`KeyedIndex::count_eq`].
    pub fn count_eq(&self, label: &str, key: &str, value: &Value) -> Option<usize> {
        self.inner.count_eq(label, key, value)
    }

    /// Count estimate for a range probe; see [`KeyedIndex::count_range`].
    pub fn count_range(
        &self,
        label: &str,
        key: &str,
        lower: Bound<&Value>,
        upper: Bound<&Value>,
    ) -> Option<usize> {
        self.inner.count_range(label, key, lower, upper)
    }

    /// Count-only prefix probe; see [`KeyedIndex::count_prefix`].
    pub fn count_prefix(&self, label: &str, key: &str, prefix: &str) -> Option<usize> {
        self.inner.count_prefix(label, key, prefix)
    }

    /// `(total, distinct)` statistics; see [`KeyedIndex::stats`].
    pub fn stats(&self, label: &str, key: &str) -> Option<(usize, usize)> {
        self.inner.stats(label, key)
    }

    /// Ordered walk of the key space; see [`KeyedIndex::ordered_walk`].
    pub fn ordered_walk(
        &self,
        label: &str,
        key: &str,
        descending: bool,
    ) -> Option<Box<dyn Iterator<Item = NodeId> + '_>> {
        self.inner.ordered_walk(label, key, descending)
    }

    /// Rebuild every histogram from the live keys; see
    /// [`KeyedIndex::rebuild_stats`].
    pub fn rebuild_stats(&mut self) {
        self.inner.rebuild_stats()
    }

    /// Index every `(label, key)` pair a node record carries (node
    /// creation and undo of deletion).
    pub fn index_node(&mut self, rec: &NodeRecord) {
        if self.is_empty() {
            return;
        }
        for l in &rec.labels {
            for (k, v) in rec.props.iter() {
                self.insert(l, k, v, rec.id);
            }
        }
    }

    /// Remove every entry of a node record (deletion and undo of
    /// creation).
    pub fn deindex_node(&mut self, rec: &NodeRecord) {
        if self.is_empty() {
            return;
        }
        for l in &rec.labels {
            for (k, v) in rec.props.iter() {
                self.remove(l, k, v, rec.id);
            }
        }
    }
}

/// The set of relationship property indexes of a graph: `(type, key,
/// value)` → relationship set, maintained through every mutation and undo
/// path exactly like node indexes. Relationships carry exactly one
/// immutable type, so — unlike node labels — entries never migrate between
/// "labels".
#[derive(Debug, Clone, Default)]
pub struct RelPropIndex {
    inner: KeyedIndex<RelId>,
}

impl RelPropIndex {
    /// `true` when no index exists (mutation fast path).
    pub fn is_empty(&self) -> bool {
        self.inner.is_empty()
    }

    /// Declare an index on `(rel_type, key)`; `false` when it exists.
    pub fn create(&mut self, rel_type: &str, key: &str) -> bool {
        self.inner.create(rel_type, key)
    }

    /// Drop the index on `(rel_type, key)`; `false` when absent.
    pub fn drop_index(&mut self, rel_type: &str, key: &str) -> bool {
        self.inner.drop_index(rel_type, key)
    }

    /// Whether `(rel_type, key)` is indexed.
    pub fn is_indexed(&self, rel_type: &str, key: &str) -> bool {
        self.inner.is_indexed(rel_type, key)
    }

    /// All `(rel_type, key)` index definitions, sorted.
    pub fn definitions(&self) -> Vec<(String, String)> {
        self.inner.definitions()
    }

    /// Add one `(type, key, value) → rel` entry.
    pub fn insert(&mut self, rel_type: &str, key: &str, value: &Value, rel: RelId) {
        self.inner.insert(rel_type, key, value, rel)
    }

    /// Remove one entry.
    pub fn remove(&mut self, rel_type: &str, key: &str, value: &Value, rel: RelId) {
        self.inner.remove(rel_type, key, value, rel)
    }

    /// Equality lookup; `None` = fall back to a filtered scan.
    pub fn lookup(&self, rel_type: &str, key: &str, value: &Value) -> Option<Vec<RelId>> {
        self.inner.lookup(rel_type, key, value)
    }

    /// Ordered range lookup; see [`KeyedIndex::range_lookup`].
    pub fn range_lookup(
        &self,
        rel_type: &str,
        key: &str,
        lower: Bound<&Value>,
        upper: Bound<&Value>,
    ) -> Option<Vec<RelId>> {
        self.inner.range_lookup(rel_type, key, lower, upper)
    }

    /// `STARTS WITH` prefix scan; see [`KeyedIndex::prefix_lookup`].
    pub fn prefix_lookup(&self, rel_type: &str, key: &str, prefix: &str) -> Option<Vec<RelId>> {
        self.inner.prefix_lookup(rel_type, key, prefix)
    }

    /// Count-only equality probe; see [`KeyedIndex::count_eq`].
    pub fn count_eq(&self, rel_type: &str, key: &str, value: &Value) -> Option<usize> {
        self.inner.count_eq(rel_type, key, value)
    }

    /// Count estimate for a range probe; see [`KeyedIndex::count_range`].
    pub fn count_range(
        &self,
        rel_type: &str,
        key: &str,
        lower: Bound<&Value>,
        upper: Bound<&Value>,
    ) -> Option<usize> {
        self.inner.count_range(rel_type, key, lower, upper)
    }

    /// Count-only prefix probe; see [`KeyedIndex::count_prefix`].
    pub fn count_prefix(&self, rel_type: &str, key: &str, prefix: &str) -> Option<usize> {
        self.inner.count_prefix(rel_type, key, prefix)
    }

    /// `(total, distinct)` statistics; see [`KeyedIndex::stats`].
    pub fn stats(&self, rel_type: &str, key: &str) -> Option<(usize, usize)> {
        self.inner.stats(rel_type, key)
    }

    /// Ordered walk of the key space; see [`KeyedIndex::ordered_walk`].
    pub fn ordered_walk(
        &self,
        rel_type: &str,
        key: &str,
        descending: bool,
    ) -> Option<Box<dyn Iterator<Item = RelId> + '_>> {
        self.inner.ordered_walk(rel_type, key, descending)
    }

    /// Rebuild every histogram from the live keys; see
    /// [`KeyedIndex::rebuild_stats`].
    pub fn rebuild_stats(&mut self) {
        self.inner.rebuild_stats()
    }

    /// Index every key of a relationship record (creation and undo of
    /// deletion).
    pub fn index_rel(&mut self, rec: &RelRecord) {
        if self.is_empty() {
            return;
        }
        for (k, v) in rec.props.iter() {
            self.insert(&rec.rel_type, k, v, rec.id);
        }
    }

    /// Remove every entry of a relationship record (deletion and undo of
    /// creation).
    pub fn deindex_rel(&mut self, rec: &RelRecord) {
        if self.is_empty() {
            return;
        }
        for (k, v) in rec.props.iter() {
            self.remove(&rec.rel_type, k, v, rec.id);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn create_drop_and_definitions() {
        let mut ix = PropIndex::default();
        assert!(ix.is_empty());
        assert!(ix.create("A", "x"));
        assert!(!ix.create("A", "x"));
        assert!(ix.create("A", "y"));
        assert!(ix.create("B", "x"));
        assert_eq!(
            ix.definitions(),
            vec![
                ("A".to_string(), "x".to_string()),
                ("A".to_string(), "y".to_string()),
                ("B".to_string(), "x".to_string()),
            ]
        );
        assert!(ix.drop_index("A", "y"));
        assert!(!ix.drop_index("A", "y"));
        assert_eq!(ix.keys_for_label("A"), vec!["x".to_string()]);
        assert!(ix.is_indexed("B", "x"));
        assert!(!ix.is_indexed("B", "y"));
    }

    #[test]
    fn numeric_normalization_matches_eq3() {
        // 1 and 1.0 share a key, mirroring `eq3`.
        assert_eq!(
            IndexKey::from_value(&Value::Int(1)),
            IndexKey::from_value(&Value::Float(1.0))
        );
        // -0.0 and 0 share a key.
        assert_eq!(
            IndexKey::from_value(&Value::Float(-0.0)),
            IndexKey::from_value(&Value::Int(0))
        );
        // non-integral floats key on bits
        assert_eq!(
            IndexKey::from_value(&Value::Float(1.5)),
            Some(IndexKey::FloatBits(1.5f64.to_bits()))
        );
        // NaN and out-of-range integers are unkeyable
        assert_eq!(IndexKey::from_value(&Value::Float(f64::NAN)), None);
        assert_eq!(IndexKey::from_value(&Value::Int(i64::MAX)), None);
        assert_eq!(IndexKey::from_value(&Value::Float(1e300)), None);
        // the ±2^53 boundary itself is unkeyable on BOTH sides: eq3 is
        // lossy there (2^53 + 1 as f64 == 2^53 as f64), so Int(2^53) and
        // Float(2^53.0) must fall back to a scan rather than key
        // differently from the values they eq3-equal.
        let bound = 1i64 << 53;
        assert_eq!(IndexKey::from_value(&Value::Int(bound)), None);
        assert_eq!(IndexKey::from_value(&Value::Int(-bound)), None);
        assert_eq!(IndexKey::from_value(&Value::Float(bound as f64)), None);
        assert!(IndexKey::from_value(&Value::Int(bound - 1)).is_some());
        assert_eq!(
            IndexKey::from_value(&Value::Float((bound - 1) as f64)),
            IndexKey::from_value(&Value::Int(bound - 1))
        );
        // infinities are self-equal and keyable
        assert!(IndexKey::from_value(&Value::Float(f64::INFINITY)).is_some());
    }

    #[test]
    fn key_order_interleaves_numerics() {
        // The BTreeMap key order must match numeric order across the
        // Int/FloatBits split, with -inf/+inf at the family frontier.
        let keys = [
            IndexKey::Bool(true),
            IndexKey::FloatBits(f64::NEG_INFINITY.to_bits()),
            IndexKey::FloatBits((-1.5f64).to_bits()),
            IndexKey::Int(-1),
            IndexKey::Int(0),
            IndexKey::FloatBits(0.5f64.to_bits()),
            IndexKey::Int(1),
            IndexKey::FloatBits(1.5f64.to_bits()),
            IndexKey::Int(2),
            IndexKey::FloatBits(f64::INFINITY.to_bits()),
            IndexKey::Str(String::new()),
            IndexKey::Str("a".into()),
            IndexKey::Date(i64::MIN),
            IndexKey::Date(3),
            IndexKey::DateTime(i64::MIN),
        ];
        for w in keys.windows(2) {
            assert!(w[0] < w[1], "{:?} < {:?}", w[0], w[1]);
        }
    }

    #[test]
    fn lookup_distinguishes_empty_from_unanswerable() {
        let mut ix = PropIndex::default();
        ix.create("A", "x");
        ix.insert("A", "x", &Value::Int(1), NodeId(0));
        // indexed, present
        assert_eq!(ix.lookup("A", "x", &Value::Int(1)), Some(vec![NodeId(0)]));
        // cross-type numeric equality answered from the same key
        assert_eq!(
            ix.lookup("A", "x", &Value::Float(1.0)),
            Some(vec![NodeId(0)])
        );
        // indexed, absent value → definitive empty
        assert_eq!(ix.lookup("A", "x", &Value::Int(2)), Some(vec![]));
        // NULL / NaN equal nothing → definitive empty
        assert_eq!(ix.lookup("A", "x", &Value::Null), Some(vec![]));
        assert_eq!(ix.lookup("A", "x", &Value::Float(f64::NAN)), Some(vec![]));
        // lists and huge numerics cannot be answered
        assert_eq!(ix.lookup("A", "x", &Value::list([Value::Int(1)])), None);
        assert_eq!(ix.lookup("A", "x", &Value::Int(i64::MAX)), None);
        // unindexed (label, key)
        assert_eq!(ix.lookup("A", "y", &Value::Int(1)), None);
        assert_eq!(ix.lookup("B", "x", &Value::Int(1)), None);
    }

    #[test]
    fn remove_prunes_empty_buckets() {
        let mut ix = PropIndex::default();
        ix.create("A", "x");
        ix.insert("A", "x", &Value::str("v"), NodeId(1));
        ix.insert("A", "x", &Value::str("v"), NodeId(2));
        ix.remove("A", "x", &Value::str("v"), NodeId(1));
        assert_eq!(ix.lookup("A", "x", &Value::str("v")), Some(vec![NodeId(2)]));
        ix.remove("A", "x", &Value::str("v"), NodeId(2));
        assert_eq!(ix.lookup("A", "x", &Value::str("v")), Some(vec![]));
    }

    #[test]
    fn range_lookup_numeric() {
        let mut ix = PropIndex::default();
        ix.create("A", "x");
        for (i, v) in [
            Value::Int(1),
            Value::Float(1.5),
            Value::Int(2),
            Value::Float(2.5),
            Value::Int(3),
        ]
        .iter()
        .enumerate()
        {
            ix.insert("A", "x", v, NodeId(i as u64));
        }
        // closed interval crossing the Int/Float interleave
        assert_eq!(
            ix.range_lookup(
                "A",
                "x",
                Bound::Included(&Value::Float(1.5)),
                Bound::Excluded(&Value::Int(3))
            ),
            Some(vec![NodeId(1), NodeId(2), NodeId(3)])
        );
        // one-sided ranges
        assert_eq!(
            ix.range_lookup("A", "x", Bound::Excluded(&Value::Int(2)), Bound::Unbounded),
            Some(vec![NodeId(3), NodeId(4)])
        );
        assert_eq!(
            ix.range_lookup(
                "A",
                "x",
                Bound::Unbounded,
                Bound::Included(&Value::Float(1.5))
            ),
            Some(vec![NodeId(0), NodeId(1)])
        );
        // inverted and cross-family ranges are definitively empty
        assert_eq!(
            ix.range_lookup(
                "A",
                "x",
                Bound::Included(&Value::Int(5)),
                Bound::Included(&Value::Int(4))
            ),
            Some(vec![])
        );
        assert_eq!(
            ix.range_lookup(
                "A",
                "x",
                Bound::Included(&Value::Int(1)),
                Bound::Included(&Value::str("z"))
            ),
            Some(vec![])
        );
        // NULL bounds compare to nothing
        assert_eq!(
            ix.range_lookup("A", "x", Bound::Excluded(&Value::Null), Bound::Unbounded),
            Some(vec![])
        );
        // unindexed key / both-unbounded cannot answer
        assert_eq!(
            ix.range_lookup("A", "y", Bound::Excluded(&Value::Int(0)), Bound::Unbounded),
            None
        );
        assert_eq!(
            ix.range_lookup("A", "x", Bound::Unbounded, Bound::Unbounded),
            None
        );
    }

    #[test]
    fn range_lookup_respects_type_families() {
        let mut ix = PropIndex::default();
        ix.create("A", "x");
        ix.insert("A", "x", &Value::Int(5), NodeId(0));
        ix.insert("A", "x", &Value::str("m"), NodeId(1));
        ix.insert("A", "x", &Value::Bool(true), NodeId(2));
        ix.insert("A", "x", &Value::Date(10), NodeId(3));
        ix.insert("A", "x", &Value::DateTime(10), NodeId(4));
        // a string range sees only strings (cmp3 is NULL across types)
        assert_eq!(
            ix.range_lookup(
                "A",
                "x",
                Bound::Included(&Value::str("a")),
                Bound::Unbounded
            ),
            Some(vec![NodeId(1)])
        );
        // a numeric range sees only numerics, not dates
        assert_eq!(
            ix.range_lookup("A", "x", Bound::Included(&Value::Int(0)), Bound::Unbounded),
            Some(vec![NodeId(0)])
        );
        // date vs datetime stay separate
        assert_eq!(
            ix.range_lookup("A", "x", Bound::Included(&Value::Date(0)), Bound::Unbounded),
            Some(vec![NodeId(3)])
        );
        assert_eq!(
            ix.range_lookup(
                "A",
                "x",
                Bound::Unbounded,
                Bound::Included(&Value::DateTime(99))
            ),
            Some(vec![NodeId(4)])
        );
        // bool range
        assert_eq!(
            ix.range_lookup(
                "A",
                "x",
                Bound::Excluded(&Value::Bool(false)),
                Bound::Unbounded
            ),
            Some(vec![NodeId(2)])
        );
    }

    #[test]
    fn lossy_numerics_disable_numeric_ranges_only() {
        let bound = 1i64 << 53;
        let mut ix = PropIndex::default();
        ix.create("A", "x");
        ix.insert("A", "x", &Value::Int(1), NodeId(0));
        ix.insert("A", "x", &Value::str("s"), NodeId(1));
        // a stored out-of-range numeric would satisfy `> 0` but is not in
        // the index: numeric ranges must refuse, equality must still work.
        ix.insert("A", "x", &Value::Int(bound + 1), NodeId(2));
        assert_eq!(
            ix.range_lookup("A", "x", Bound::Excluded(&Value::Int(0)), Bound::Unbounded),
            None
        );
        assert_eq!(ix.lookup("A", "x", &Value::Int(1)), Some(vec![NodeId(0)]));
        // string ranges are unaffected
        assert_eq!(
            ix.range_lookup("A", "x", Bound::Included(&Value::str("")), Bound::Unbounded),
            Some(vec![NodeId(1)])
        );
        // removing the lossy value re-enables numeric ranges
        ix.remove("A", "x", &Value::Int(bound + 1), NodeId(2));
        assert_eq!(
            ix.range_lookup("A", "x", Bound::Excluded(&Value::Int(0)), Bound::Unbounded),
            Some(vec![NodeId(0)])
        );
        // an out-of-range *bound* is refused even with a clean index
        assert_eq!(
            ix.range_lookup(
                "A",
                "x",
                Bound::Included(&Value::Int(bound)),
                Bound::Unbounded
            ),
            None
        );
        // NaN bounds compare to nothing → definitively empty
        assert_eq!(
            ix.range_lookup(
                "A",
                "x",
                Bound::Included(&Value::Float(f64::NAN)),
                Bound::Unbounded
            ),
            Some(vec![])
        );
    }

    #[test]
    fn prefix_lookup_matches_starts_with() {
        let mut ix = PropIndex::default();
        ix.create("A", "x");
        ix.insert("A", "x", &Value::str("alpha"), NodeId(0));
        ix.insert("A", "x", &Value::str("alphabet"), NodeId(1));
        ix.insert("A", "x", &Value::str("beta"), NodeId(2));
        ix.insert("A", "x", &Value::Int(7), NodeId(3)); // non-string: never matches
        assert_eq!(
            ix.prefix_lookup("A", "x", "alpha"),
            Some(vec![NodeId(0), NodeId(1)])
        );
        assert_eq!(ix.prefix_lookup("A", "x", "alphabe"), Some(vec![NodeId(1)]));
        assert_eq!(ix.prefix_lookup("A", "x", "z"), Some(vec![]));
        // empty prefix matches every string (and only strings)
        assert_eq!(
            ix.prefix_lookup("A", "x", ""),
            Some(vec![NodeId(0), NodeId(1), NodeId(2)])
        );
        assert_eq!(ix.prefix_lookup("A", "y", "a"), None);
    }

    #[test]
    fn count_probes_agree_with_lookups() {
        let mut ix = PropIndex::default();
        ix.create("A", "x");
        for i in 0..50 {
            ix.insert("A", "x", &Value::Int(i % 10), NodeId(i as u64));
        }
        // equality: exact count, no materialization
        assert_eq!(ix.count_eq("A", "x", &Value::Int(3)), Some(5));
        assert_eq!(ix.count_eq("A", "x", &Value::Int(99)), Some(0));
        assert_eq!(ix.count_eq("A", "x", &Value::Null), Some(0));
        assert_eq!(ix.count_eq("A", "x", &Value::Int(i64::MAX)), None);
        assert_eq!(ix.count_eq("A", "y", &Value::Int(3)), None);
        // stats: 50 entries over 10 distinct keys
        assert_eq!(ix.stats("A", "x"), Some((50, 10)));
        // range count: an estimate within the documented error bound
        // (2·depth + drift; depth = ceil(50/32) … but the first bucket has
        // no exclusive floor, so it is charged at half weight)
        let c = ix
            .count_range(
                "A",
                "x",
                Bound::Included(&Value::Int(0)),
                Bound::Excluded(&Value::Int(5)),
            )
            .unwrap();
        let bound = 2 * 50usize.div_ceil(32) + 16;
        assert!(c.abs_diff(25) <= bound, "estimate {c} too far from 25");
        // prefix count
        ix.create("A", "s");
        ix.insert("A", "s", &Value::str("alpha"), NodeId(100));
        ix.insert("A", "s", &Value::str("alp"), NodeId(101));
        ix.insert("A", "s", &Value::str("beta"), NodeId(102));
        assert_eq!(ix.count_prefix("A", "s", "alp"), Some(2));
        assert_eq!(ix.count_prefix("A", "s", "z"), Some(0));
        assert_eq!(ix.count_prefix("B", "s", "a"), None);
        // refusal mirrors range_lookup: lossy numerics opt numeric counts out
        ix.insert("A", "x", &Value::Int((1 << 53) + 1), NodeId(999));
        assert_eq!(
            ix.count_range("A", "x", Bound::Included(&Value::Int(0)), Bound::Unbounded),
            None
        );
    }

    #[test]
    fn ordered_walk_matches_cmp_order() {
        let mut ix = PropIndex::default();
        ix.create("A", "x");
        // mixed families: cmp_order ranks Str < Bool < numerics < Date
        let items = [
            (Value::Int(2), NodeId(0)),
            (Value::Float(1.5), NodeId(1)),
            (Value::str("b"), NodeId(2)),
            (Value::str("a"), NodeId(3)),
            (Value::Bool(true), NodeId(4)),
            (Value::Date(7), NodeId(5)),
        ];
        for (v, id) in &items {
            ix.insert("A", "x", v, *id);
        }
        let asc: Vec<NodeId> = ix.ordered_walk("A", "x", false).unwrap().collect();
        assert_eq!(
            asc,
            vec![
                NodeId(3), // "a"
                NodeId(2), // "b"
                NodeId(4), // true
                NodeId(1), // 1.5
                NodeId(0), // 2
                NodeId(5), // date(7)
            ]
        );
        let desc: Vec<NodeId> = ix.ordered_walk("A", "x", true).unwrap().collect();
        let mut rev = asc.clone();
        rev.reverse();
        assert_eq!(desc, rev);
        // walks refuse while unkeyable values are present…
        ix.insert("A", "x", &Value::list([Value::Int(1)]), NodeId(9));
        assert!(ix.ordered_walk("A", "x", false).is_none());
        ix.remove("A", "x", &Value::list([Value::Int(1)]), NodeId(9));
        assert!(ix.ordered_walk("A", "x", false).is_some());
        // …and while lossy numerics are present
        ix.insert("A", "x", &Value::Int(1 << 60), NodeId(9));
        assert!(ix.ordered_walk("A", "x", false).is_none());
        ix.remove("A", "x", &Value::Int(1 << 60), NodeId(9));
        assert!(ix.ordered_walk("A", "x", false).is_some());
    }

    #[test]
    fn histogram_estimates_on_large_entry() {
        let mut ix = PropIndex::default();
        ix.create("A", "x");
        for i in 0..2000i64 {
            ix.insert("A", "x", &Value::Int(i), NodeId(i as u64));
        }
        let (total, distinct) = ix.stats("A", "x").unwrap();
        assert_eq!((total, distinct), (2000, 2000));
        let est = ix
            .count_range(
                "A",
                "x",
                Bound::Included(&Value::Int(0)),
                Bound::Excluded(&Value::Int(200)),
            )
            .unwrap();
        // estimate within the documented 2·depth + drift error bound
        let depth = 2000usize.div_ceil(32);
        let bound = 2 * depth + 2000 / 8;
        assert!(est.abs_diff(200) <= bound, "est {est} too far from 200");
        // removals keep totals exact
        for i in 0..500i64 {
            ix.remove("A", "x", &Value::Int(i), NodeId(i as u64));
        }
        assert_eq!(ix.stats("A", "x"), Some((1500, 1500)));
    }

    #[test]
    fn rel_index_basics() {
        let mut ix = RelPropIndex::default();
        assert!(ix.create("R", "w"));
        ix.insert("R", "w", &Value::Int(5), RelId(1));
        ix.insert("R", "w", &Value::Int(9), RelId(2));
        assert_eq!(ix.lookup("R", "w", &Value::Int(5)), Some(vec![RelId(1)]));
        assert_eq!(
            ix.range_lookup("R", "w", Bound::Excluded(&Value::Int(5)), Bound::Unbounded),
            Some(vec![RelId(2)])
        );
        assert_eq!(ix.lookup("S", "w", &Value::Int(5)), None);
        ix.remove("R", "w", &Value::Int(5), RelId(1));
        assert_eq!(ix.lookup("R", "w", &Value::Int(5)), Some(vec![]));
        assert_eq!(ix.definitions(), vec![("R".to_string(), "w".to_string())]);
    }
}
