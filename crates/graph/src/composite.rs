//! Composite (multi-key) property indexes: `(label, [k1, k2, …])` →
//! lexicographic key vectors → item sets.
//!
//! The paper's §6 trigger conditions are conjunctions over *several*
//! properties of one label (`(p:Patient {status: 'ICU'}) WHERE
//! p.severity >= t`); single-key indexes can only serve one conjunct and
//! post-filter (or intersect) the rest. A [`CompositeIndex`] answers the
//! whole conjunction in one O(log n + k) walk: equality on the longest
//! prefix of the column list plus one trailing range or `STARTS WITH`
//! bound on the next column, and — because the key space is ordered the
//! way `ORDER BY` orders values — multi-key top-k walks
//! (`ORDER BY a.x, a.y LIMIT k`), optionally pinned to an equality prefix.
//!
//! ## Key construction
//!
//! Every item carrying the label contributes exactly one key vector: one
//! [`CompositeSeg`] per column, either the [`IndexKey`] of its value or the
//! explicit [`CompositeSeg::Missing`] marker when the property is absent.
//! Indexing the *absence* is what keeps sub-width probes (equality on
//! fewer columns than the index has) and whole-extent ordered walks
//! complete — unlike single-key indexes, a composite entry covers the
//! label's full extent.
//!
//! Segments order by [`Value::cmp_order`]'s family rank (strings <
//! booleans < numerics < dates < datetimes), numerics interleaved, with
//! `Missing` sorting after every value — exactly `ORDER BY`'s NULL-last
//! rank. One ordered map therefore serves both the range walks (bounds stay
//! inside one family, where `cmp3` and `cmp_order` agree) and the ordered
//! walks (whole-key order *is* the `ORDER BY k1, k2, …` order, ascending
//! or — reversed, with `Missing` leading, matching NULL-first — descending).
//!
//! ## Refusals
//!
//! A record holding an **unkeyable** value in any indexed column (±2⁵³
//! lossy numerics, `NaN`, `LIST`, `MAP`) is excluded whole and counted.
//! While such exclusions exist, the index refuses (returns `None`, caller
//! falls back to a scan):
//!
//! * probes narrower than the full column width — the excluded record may
//!   satisfy the probed prefix via an unprobed column;
//! * numeric trailing ranges while **lossy numerics** are present — a
//!   stored out-of-range numeric can satisfy `x > 0` (same rule as
//!   [`crate::prop_index`]);
//! * ordered walks — the excluded record belongs somewhere in the order.
//!
//! Full-width equality probes stay answerable: a keyable probe value never
//! `eq3`-equals an excluded (unkeyable) stored value.

use crate::ids::{NodeId, RelId};
use crate::pmap::{PMap, PSet};
use crate::prop_index::IndexKey;
use crate::props::PropertyMap;
use crate::stats::Histogram;
use crate::value::Value;
use std::cmp::Ordering;
use std::collections::{BTreeMap, HashMap};
use std::ops::Bound;

/// One segment of a composite key.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CompositeSeg {
    /// A keyable property value.
    Key(IndexKey),
    /// The property is absent (`NULL`), sorting after every value — the
    /// `cmp_order` NULL-last rank.
    Missing,
    /// Bound sentinel above everything; never stored, only used to close
    /// prefix ranges (`[prefix, …] < [prefix, Hi]` for every stored key).
    Hi,
}

/// `cmp_order` family rank of an [`IndexKey`]: strings < booleans <
/// numerics < dates < datetimes (see `KeyedIndex::ordered_walk`).
fn order_rank(k: &IndexKey) -> u8 {
    match k {
        IndexKey::Str(_) => 0,
        IndexKey::Bool(_) => 1,
        IndexKey::Int(_) | IndexKey::FloatBits(_) => 2,
        IndexKey::Date(_) => 3,
        IndexKey::DateTime(_) => 4,
    }
}

/// Smallest key of a `cmp_order` family rank (inclusive frontier).
fn rank_min(rank: u8) -> IndexKey {
    match rank {
        0 => IndexKey::Str(String::new()),
        1 => IndexKey::Bool(false),
        2 => IndexKey::FloatBits(f64::NEG_INFINITY.to_bits()),
        3 => IndexKey::Date(i64::MIN),
        _ => IndexKey::DateTime(i64::MIN),
    }
}

/// The exclusive upper frontier of a family rank as a segment: the next
/// family's smallest key, or `Missing` above the last family.
fn rank_sup(rank: u8) -> CompositeSeg {
    if rank < 4 {
        CompositeSeg::Key(rank_min(rank + 1))
    } else {
        CompositeSeg::Missing
    }
}

impl Ord for CompositeSeg {
    fn cmp(&self, other: &Self) -> Ordering {
        use CompositeSeg::*;
        match (self, other) {
            (Key(a), Key(b)) => order_rank(a).cmp(&order_rank(b)).then_with(|| a.cmp(b)),
            (Key(_), _) => Ordering::Less,
            (_, Key(_)) => Ordering::Greater,
            (Missing, Missing) | (Hi, Hi) => Ordering::Equal,
            (Missing, Hi) => Ordering::Less,
            (Hi, Missing) => Ordering::Greater,
        }
    }
}

impl PartialOrd for CompositeSeg {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// The trailing bound of a composite probe: after the equality prefix,
/// the next column may carry one range or `STARTS WITH` constraint.
#[derive(Debug, Clone, Copy)]
pub enum CompositeTrailing<'a> {
    /// Equality prefix only.
    None,
    /// `lower ⋚ v ⋚ upper` on the column after the prefix ([`Value::cmp3`]
    /// semantics; at least one side must be bounded).
    Range(Bound<&'a Value>, Bound<&'a Value>),
    /// `STARTS WITH` on the column after the prefix.
    Prefix(&'a str),
}

/// Why a record is excluded from its composite entry.
enum Exclusion {
    Lossy,
    Unkeyable,
}

/// One `(label, columns)` composite index entry.
#[derive(Debug, Clone)]
struct CompositeEntries<Id> {
    /// The ordered column list of the definition.
    columns: Vec<String>,
    map: PMap<Vec<CompositeSeg>, PSet<Id>>,
    /// Records excluded because some column holds a ±2⁵³ lossy numeric.
    lossy_numerics: usize,
    /// Records excluded for other unkeyable values (`NaN`, `LIST`, `MAP`).
    unkeyable: usize,
    /// Records currently indexed (`Σ bucket sizes`).
    total: usize,
    /// Equi-depth histogram over the **leading column**'s key space
    /// (`Missing` leading segments are not attributed — range probes never
    /// match them).
    hist: Histogram,
}

/// How a probe classifies against one entry.
enum ProbeQuery {
    /// No stored key can satisfy it — definitively empty.
    Empty,
    /// The entry cannot answer faithfully — fall back to a scan.
    Refused,
    /// Walk the key space between these vector bounds; when `prefix_col`
    /// is set, additionally `take_while` that column's segment is a string
    /// with the given prefix (`STARTS WITH` has no closed upper key).
    Walk {
        lo: Bound<Vec<CompositeSeg>>,
        hi: Bound<Vec<CompositeSeg>>,
        prefix_col: Option<(usize, String)>,
    },
}

impl<Id: Ord + Copy> CompositeEntries<Id> {
    fn new(columns: Vec<String>) -> Self {
        CompositeEntries {
            columns,
            map: PMap::new(),
            lossy_numerics: 0,
            unkeyable: 0,
            total: 0,
            hist: Histogram::default(),
        }
    }

    /// The key vector of a property map, or the exclusion reason.
    fn key_of(&self, props: &PropertyMap) -> Result<Vec<CompositeSeg>, Exclusion> {
        let mut segs = Vec::with_capacity(self.columns.len());
        let mut excluded: Option<Exclusion> = None;
        for col in &self.columns {
            match props.get(col) {
                None => segs.push(CompositeSeg::Missing),
                Some(v) => match IndexKey::from_value(v) {
                    Some(ik) => segs.push(CompositeSeg::Key(ik)),
                    // lossy wins over plain-unkeyable: it is the reason
                    // numeric ranges must refuse
                    None if IndexKey::is_lossy_numeric(v) => excluded = Some(Exclusion::Lossy),
                    None => {
                        if !matches!(excluded, Some(Exclusion::Lossy)) {
                            excluded = Some(Exclusion::Unkeyable);
                        }
                    }
                },
            }
        }
        match excluded {
            Some(e) => Err(e),
            None => Ok(segs),
        }
    }

    fn insert(&mut self, props: &PropertyMap, id: Id) {
        match self.key_of(props) {
            Ok(segs) => {
                let leading = segs.first().cloned();
                if self.map.get_or_default(segs).insert(id) {
                    self.total += 1;
                    if let Some(CompositeSeg::Key(ik)) = &leading {
                        self.hist.note_insert(ik);
                    }
                    if self.hist.stale(self.total) {
                        self.rebuild_hist();
                    }
                }
            }
            Err(Exclusion::Lossy) => self.lossy_numerics += 1,
            Err(Exclusion::Unkeyable) => self.unkeyable += 1,
        }
    }

    fn remove(&mut self, props: &PropertyMap, id: Id) {
        match self.key_of(props) {
            Ok(segs) => {
                if let Some(set) = self.map.get_mut(&segs) {
                    if set.remove(&id) {
                        self.total = self.total.saturating_sub(1);
                        if let Some(CompositeSeg::Key(ik)) = segs.first() {
                            self.hist.note_remove(ik);
                        }
                    }
                    if set.is_empty() {
                        self.map.remove(&segs);
                    }
                    if self.hist.stale(self.total) {
                        self.rebuild_hist();
                    }
                }
            }
            Err(Exclusion::Lossy) => self.lossy_numerics = self.lossy_numerics.saturating_sub(1),
            Err(Exclusion::Unkeyable) => self.unkeyable = self.unkeyable.saturating_sub(1),
        }
    }

    /// Rebuild the leading-column histogram from the live key space. The
    /// map iterates by `cmp_order` rank; the histogram compares bounds in
    /// [`IndexKey`] order, so counts are regrouped first.
    fn rebuild_hist(&mut self) {
        let mut by_leading: BTreeMap<IndexKey, usize> = BTreeMap::new();
        let mut keyed_total = 0usize;
        for (segs, set) in self.map.iter() {
            if let Some(CompositeSeg::Key(ik)) = segs.first() {
                *by_leading.entry(ik.clone()).or_insert(0) += set.len();
                keyed_total += set.len();
            }
        }
        self.hist
            .rebuild_from(by_leading.iter().map(|(k, n)| (k, *n)), keyed_total);
    }

    /// Classify an equality-prefix + trailing-bound probe (see module docs
    /// for the refusal rules).
    fn classify(&self, eq: &[Value], trailing: CompositeTrailing<'_>) -> ProbeQuery {
        let width = self.columns.len();
        if eq.len() > width || (eq.len() == width && !matches!(trailing, CompositeTrailing::None)) {
            return ProbeQuery::Refused; // malformed probe
        }
        // Equality prefix → exact segments.
        let mut prefix: Vec<CompositeSeg> = Vec::with_capacity(eq.len() + 2);
        for v in eq {
            match IndexKey::from_value(v) {
                Some(ik) => prefix.push(CompositeSeg::Key(ik)),
                None if IndexKey::never_matches(v) => return ProbeQuery::Empty,
                None => return ProbeQuery::Refused,
            }
        }
        // Probes narrower than the full width can match records excluded
        // for a value in an *unprobed* column — refuse while any exist.
        let constrained = eq.len() + usize::from(!matches!(trailing, CompositeTrailing::None));
        if constrained < width && self.lossy_numerics + self.unkeyable > 0 {
            return ProbeQuery::Refused;
        }
        match trailing {
            CompositeTrailing::None => {
                let mut hi = prefix.clone();
                hi.push(CompositeSeg::Hi);
                ProbeQuery::Walk {
                    lo: Bound::Included(prefix),
                    hi: Bound::Excluded(hi),
                    prefix_col: None,
                }
            }
            CompositeTrailing::Prefix(p) => {
                let col = eq.len();
                let mut lo = prefix.clone();
                lo.push(CompositeSeg::Key(IndexKey::Str(p.to_string())));
                let mut hi = prefix;
                hi.push(rank_sup(0)); // end of the string family
                ProbeQuery::Walk {
                    lo: Bound::Included(lo),
                    hi: Bound::Excluded(hi),
                    prefix_col: Some((col, p.to_string())),
                }
            }
            CompositeTrailing::Range(lower, upper) => {
                // Resolve value bounds into trailing-column keys.
                let classify = |b: Bound<&Value>| -> Result<Bound<IndexKey>, ProbeQuery> {
                    match b {
                        Bound::Unbounded => Ok(Bound::Unbounded),
                        Bound::Included(v) | Bound::Excluded(v) => match IndexKey::from_value(v) {
                            Some(ik) => Ok(match b {
                                Bound::Included(_) => Bound::Included(ik),
                                _ => Bound::Excluded(ik),
                            }),
                            None if IndexKey::never_matches(v) => Err(ProbeQuery::Empty),
                            None if matches!(v, Value::Map(_)) => Err(ProbeQuery::Empty),
                            None => Err(ProbeQuery::Refused),
                        },
                    }
                };
                let lo_k = match classify(lower) {
                    Ok(b) => b,
                    Err(q) => return q,
                };
                let hi_k = match classify(upper) {
                    Ok(b) => b,
                    Err(q) => return q,
                };
                let fam = match (&lo_k, &hi_k) {
                    (Bound::Included(k) | Bound::Excluded(k), Bound::Unbounded)
                    | (Bound::Unbounded, Bound::Included(k) | Bound::Excluded(k)) => order_rank(k),
                    (
                        Bound::Included(a) | Bound::Excluded(a),
                        Bound::Included(b) | Bound::Excluded(b),
                    ) => {
                        if order_rank(a) != order_rank(b) {
                            return ProbeQuery::Empty;
                        }
                        order_rank(a)
                    }
                    (Bound::Unbounded, Bound::Unbounded) => return ProbeQuery::Refused,
                };
                // Numeric ranges are incomplete while lossy numerics exist.
                if fam == 2 && self.lossy_numerics > 0 {
                    return ProbeQuery::Refused;
                }
                // Inverted ranges are definitively empty, not a walk.
                if range_keys_empty(&lo_k, &hi_k) {
                    return ProbeQuery::Empty;
                }
                let lo = match lo_k {
                    Bound::Unbounded | Bound::Included(_) => {
                        let mut v = prefix.clone();
                        v.push(CompositeSeg::Key(match lo_k {
                            Bound::Included(k) => k,
                            _ => rank_min(fam),
                        }));
                        Bound::Included(v)
                    }
                    Bound::Excluded(k) => {
                        // exclude every key whose trailing column equals k,
                        // regardless of later columns
                        let mut v = prefix.clone();
                        v.push(CompositeSeg::Key(k));
                        v.push(CompositeSeg::Hi);
                        Bound::Excluded(v)
                    }
                };
                let hi = match hi_k {
                    Bound::Unbounded => {
                        let mut v = prefix;
                        v.push(rank_sup(fam));
                        Bound::Excluded(v)
                    }
                    Bound::Included(k) => {
                        let mut v = prefix;
                        v.push(CompositeSeg::Key(k));
                        v.push(CompositeSeg::Hi);
                        Bound::Excluded(v)
                    }
                    Bound::Excluded(k) => {
                        let mut v = prefix;
                        v.push(CompositeSeg::Key(k));
                        Bound::Excluded(v)
                    }
                };
                ProbeQuery::Walk {
                    lo,
                    hi,
                    prefix_col: None,
                }
            }
        }
    }

    /// Walk a classified probe, applying the optional `STARTS WITH`
    /// cut-off.
    fn walk_probe<'s>(
        &'s self,
        lo: Bound<Vec<CompositeSeg>>,
        hi: Bound<Vec<CompositeSeg>>,
        prefix_col: Option<(usize, String)>,
    ) -> impl Iterator<Item = (&'s Vec<CompositeSeg>, &'s PSet<Id>)> + 's {
        self.map
            .range(lo, hi)
            .take_while(move |(segs, _)| match &prefix_col {
                None => true,
                Some((col, p)) => {
                    matches!(&segs[*col], CompositeSeg::Key(IndexKey::Str(s)) if s.starts_with(p.as_str()))
                }
            })
    }

    fn lookup(&self, eq: &[Value], trailing: CompositeTrailing<'_>) -> Option<Vec<Id>> {
        match self.classify(eq, trailing) {
            ProbeQuery::Empty => Some(Vec::new()),
            ProbeQuery::Refused => None,
            ProbeQuery::Walk { lo, hi, prefix_col } => {
                let mut out: Vec<Id> = self
                    .walk_probe(lo, hi, prefix_col)
                    .flat_map(|(_, set)| set.iter().copied())
                    .collect();
                out.sort();
                Some(out)
            }
        }
    }

    /// Count the ids a [`CompositeEntries::lookup`] would return, without
    /// materializing them. Leading-column-only ranges are served from the
    /// histogram once built; everything else counts the walk exactly
    /// (allocation-free).
    fn count(&self, eq: &[Value], trailing: CompositeTrailing<'_>) -> Option<usize> {
        match self.classify(eq, trailing) {
            ProbeQuery::Empty => Some(0),
            ProbeQuery::Refused => None,
            ProbeQuery::Walk { lo, hi, prefix_col } => {
                // Leading-column ranges: estimate from the histogram (it
                // attributes leading IndexKeys, so only width-1 walks can
                // be served from it).
                if eq.is_empty() && prefix_col.is_none() {
                    if let CompositeTrailing::Range(lower, upper) = trailing {
                        if let Some(est) = self.hist_estimate(lower, upper) {
                            return Some(est);
                        }
                    }
                }
                Some(
                    self.walk_probe(lo, hi, prefix_col)
                        .map(|(_, set)| set.len())
                        .sum(),
                )
            }
        }
    }

    /// Histogram estimate for a leading-column range (bounds already
    /// validated by [`CompositeEntries::classify`]). The histogram orders
    /// its buckets in [`IndexKey`] order, so bounds are resolved with the
    /// same family frontiers the single-key index uses.
    fn hist_estimate(&self, lower: Bound<&Value>, upper: Bound<&Value>) -> Option<usize> {
        let key_bound = |b: Bound<&Value>| -> Option<Bound<IndexKey>> {
            Some(match b {
                Bound::Unbounded => Bound::Unbounded,
                Bound::Included(v) => Bound::Included(IndexKey::from_value(v)?),
                Bound::Excluded(v) => Bound::Excluded(IndexKey::from_value(v)?),
            })
        };
        let lo = key_bound(lower)?;
        let hi = key_bound(upper)?;
        let fam = match (&lo, &hi) {
            (Bound::Included(k) | Bound::Excluded(k), _)
            | (_, Bound::Included(k) | Bound::Excluded(k)) => k.family(),
            _ => return None,
        };
        let lo = match lo {
            Bound::Unbounded => crate::prop_index::family_min(fam),
            b => b,
        };
        let hi = match hi {
            Bound::Unbounded => crate::prop_index::family_max(fam),
            b => b,
        };
        self.hist.estimate_range(&lo, &hi)
    }

    /// Walk all indexed items in `ORDER BY c_{j+1}, c_{j+2}, …` order
    /// (ascending [`Value::cmp_order`], `Missing`/NULL last — or fully
    /// reversed), restricted to the equality prefix `eq` on the first `j`
    /// columns. `None` while any record is excluded (the walk would be
    /// incomplete).
    fn ordered_walk(
        &self,
        eq: &[Value],
        descending: bool,
    ) -> Option<Box<dyn Iterator<Item = Id> + '_>> {
        if self.lossy_numerics + self.unkeyable > 0 || eq.len() > self.columns.len() {
            return None;
        }
        let mut prefix: Vec<CompositeSeg> = Vec::with_capacity(eq.len() + 1);
        for v in eq {
            match IndexKey::from_value(v) {
                Some(ik) => prefix.push(CompositeSeg::Key(ik)),
                None if IndexKey::never_matches(v) => {
                    return Some(Box::new(std::iter::empty()));
                }
                None => return None,
            }
        }
        let mut hi = prefix.clone();
        hi.push(CompositeSeg::Hi);
        let (lo, hi) = (Bound::Included(prefix), Bound::Excluded(hi));
        if descending {
            Some(Box::new(
                self.map
                    .range_rev(lo, hi)
                    .flat_map(|(_, set)| set.iter().copied()),
            ))
        } else {
            Some(Box::new(
                self.map
                    .range(lo, hi)
                    .flat_map(|(_, set)| set.iter().copied()),
            ))
        }
    }

    /// `(total indexed records, distinct key vectors)`.
    fn stats(&self) -> (usize, usize) {
        (self.total, self.map.len())
    }
}

/// Whether trailing-column key bounds denote an empty interval.
fn range_keys_empty(lo: &Bound<IndexKey>, hi: &Bound<IndexKey>) -> bool {
    match (lo, hi) {
        (Bound::Included(a), Bound::Included(b)) => a > b,
        (Bound::Included(a), Bound::Excluded(b))
        | (Bound::Excluded(a), Bound::Included(b))
        | (Bound::Excluded(a), Bound::Excluded(b)) => a >= b,
        _ => false,
    }
}

/// The set of composite indexes of a graph, generic over the item id
/// (nodes keyed by label, relationships by type), maintained through
/// every mutation *and undo* path of [`crate::Graph`].
#[derive(Debug, Clone)]
pub struct CompositeIndex<Id> {
    by_label: HashMap<String, Vec<CompositeEntries<Id>>>,
    /// Number of definitions; cheap emptiness check for the mutation fast
    /// path.
    count: usize,
}

impl<Id> Default for CompositeIndex<Id> {
    fn default() -> Self {
        CompositeIndex {
            by_label: HashMap::new(),
            count: 0,
        }
    }
}

impl<Id: Ord + Copy> CompositeIndex<Id> {
    /// `true` when no composite index exists (mutation fast path).
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Declare a composite index on `(label, columns)`. Returns `false`
    /// when it already exists or `columns` has fewer than two entries
    /// (single keys belong to [`crate::PropIndex`]) or repeats a column.
    /// The caller (the store) populates it from the live extent.
    pub fn create(&mut self, label: &str, columns: &[String]) -> bool {
        if columns.len() < 2 {
            return false;
        }
        let mut distinct: Vec<&String> = columns.iter().collect();
        distinct.sort();
        distinct.dedup();
        if distinct.len() != columns.len() {
            return false;
        }
        let defs = self.by_label.entry(label.to_string()).or_default();
        if defs.iter().any(|e| e.columns == columns) {
            return false;
        }
        defs.push(CompositeEntries::new(columns.to_vec()));
        self.count += 1;
        true
    }

    /// Drop the composite index on `(label, columns)`; `false` when absent.
    pub fn drop_index(&mut self, label: &str, columns: &[String]) -> bool {
        let Some(defs) = self.by_label.get_mut(label) else {
            return false;
        };
        let Some(pos) = defs.iter().position(|e| e.columns == columns) else {
            return false;
        };
        defs.remove(pos);
        if defs.is_empty() {
            self.by_label.remove(label);
        }
        self.count -= 1;
        true
    }

    /// Whether `(label, columns)` is indexed.
    pub fn is_indexed(&self, label: &str, columns: &[String]) -> bool {
        self.by_label
            .get(label)
            .is_some_and(|defs| defs.iter().any(|e| e.columns == columns))
    }

    /// All `(label, columns)` definitions, sorted.
    pub fn definitions(&self) -> Vec<(String, Vec<String>)> {
        let mut out: Vec<(String, Vec<String>)> = self
            .by_label
            .iter()
            .flat_map(|(l, defs)| defs.iter().map(move |e| (l.clone(), e.columns.clone())))
            .collect();
        out.sort();
        out
    }

    /// The column lists indexed under `label` (planner discovery).
    pub fn defs_for_label(&self, label: &str) -> Vec<Vec<String>> {
        self.by_label
            .get(label)
            .map(|defs| defs.iter().map(|e| e.columns.clone()).collect())
            .unwrap_or_default()
    }

    /// Index one item under one of its labels (all of that label's
    /// definitions).
    pub fn index_item_label(&mut self, label: &str, props: &PropertyMap, id: Id) {
        if self.count == 0 {
            return;
        }
        if let Some(defs) = self.by_label.get_mut(label) {
            for e in defs {
                e.insert(props, id);
            }
        }
    }

    /// Remove one item's entries under one label.
    pub fn deindex_item_label(&mut self, label: &str, props: &PropertyMap, id: Id) {
        if self.count == 0 {
            return;
        }
        if let Some(defs) = self.by_label.get_mut(label) {
            for e in defs {
                e.remove(props, id);
            }
        }
    }

    /// Index one item under every given label.
    pub fn index_item<'l>(
        &mut self,
        labels: impl IntoIterator<Item = &'l str>,
        props: &PropertyMap,
        id: Id,
    ) {
        if self.count == 0 {
            return;
        }
        for l in labels {
            self.index_item_label(l, props, id);
        }
    }

    /// Remove one item's entries under every given label.
    pub fn deindex_item<'l>(
        &mut self,
        labels: impl IntoIterator<Item = &'l str>,
        props: &PropertyMap,
        id: Id,
    ) {
        if self.count == 0 {
            return;
        }
        for l in labels {
            self.deindex_item_label(l, props, id);
        }
    }

    /// Insert one item into one specific definition (index creation
    /// populating from the live extent).
    pub fn insert_into(&mut self, label: &str, columns: &[String], props: &PropertyMap, id: Id) {
        if let Some(defs) = self.by_label.get_mut(label) {
            if let Some(e) = defs.iter_mut().find(|e| e.columns == columns) {
                e.insert(props, id);
            }
        }
    }

    /// Composite lookup: items whose first `eq.len()` columns equal `eq`
    /// and whose next column satisfies `trailing`. `None` = the index
    /// cannot answer faithfully (not indexed, unkeyable probe values,
    /// exclusion rules — see module docs) and the caller must fall back.
    pub fn lookup(
        &self,
        label: &str,
        columns: &[String],
        eq: &[Value],
        trailing: CompositeTrailing<'_>,
    ) -> Option<Vec<Id>> {
        self.entry(label, columns)?.lookup(eq, trailing)
    }

    /// Count-only probe mirroring [`CompositeIndex::lookup`] (histogram
    /// estimate for leading-column ranges, exact walk counts otherwise).
    pub fn count(
        &self,
        label: &str,
        columns: &[String],
        eq: &[Value],
        trailing: CompositeTrailing<'_>,
    ) -> Option<usize> {
        self.entry(label, columns)?.count(eq, trailing)
    }

    /// Ordered walk in `ORDER BY` order over the columns after the
    /// equality prefix; see the module docs for ordering semantics.
    pub fn ordered_walk(
        &self,
        label: &str,
        columns: &[String],
        eq: &[Value],
        descending: bool,
    ) -> Option<Box<dyn Iterator<Item = Id> + '_>> {
        self.entry(label, columns)?.ordered_walk(eq, descending)
    }

    /// `(total indexed records, distinct key vectors)` for a definition.
    pub fn stats(&self, label: &str, columns: &[String]) -> Option<(usize, usize)> {
        Some(self.entry(label, columns)?.stats())
    }

    /// Rebuild every leading-column histogram from the live key space
    /// (post-bulk-load refresh; see [`crate::Graph::rebuild_stats`]).
    pub fn rebuild_stats(&mut self) {
        for defs in self.by_label.values_mut() {
            for e in defs {
                e.rebuild_hist();
            }
        }
    }

    fn entry(&self, label: &str, columns: &[String]) -> Option<&CompositeEntries<Id>> {
        self.by_label
            .get(label)?
            .iter()
            .find(|e| e.columns == columns)
    }
}

/// Composite node indexes (`(label, [k1, k2, …])`).
pub type NodeCompositeIndex = CompositeIndex<NodeId>;
/// Composite relationship indexes (`(rel_type, [k1, k2, …])`).
pub type RelCompositeIndex = CompositeIndex<RelId>;

#[cfg(test)]
mod tests {
    use super::*;

    fn props(entries: &[(&str, Value)]) -> PropertyMap {
        entries
            .iter()
            .map(|(k, v)| (k.to_string(), v.clone()))
            .collect()
    }

    fn cols(cs: &[&str]) -> Vec<String> {
        cs.iter().map(|c| c.to_string()).collect()
    }

    fn ids(v: Option<Vec<NodeId>>) -> Option<Vec<u64>> {
        v.map(|ids| ids.into_iter().map(|n| n.0).collect())
    }

    #[test]
    fn create_drop_and_definitions() {
        let mut ix = NodeCompositeIndex::default();
        assert!(ix.is_empty());
        assert!(ix.create("A", &cols(&["x", "y"])));
        assert!(!ix.create("A", &cols(&["x", "y"]))); // duplicate
        assert!(!ix.create("A", &cols(&["x"]))); // too narrow
        assert!(!ix.create("A", &cols(&["x", "x"]))); // repeated column
        assert!(ix.create("A", &cols(&["y", "x"]))); // order matters
        assert!(ix.create("B", &cols(&["x", "y", "z"])));
        assert_eq!(
            ix.definitions(),
            vec![
                ("A".to_string(), cols(&["x", "y"])),
                ("A".to_string(), cols(&["y", "x"])),
                ("B".to_string(), cols(&["x", "y", "z"])),
            ]
        );
        assert!(ix.drop_index("A", &cols(&["y", "x"])));
        assert!(!ix.drop_index("A", &cols(&["y", "x"])));
        assert_eq!(ix.defs_for_label("A"), vec![cols(&["x", "y"])]);
        assert!(ix.is_indexed("B", &cols(&["x", "y", "z"])));
    }

    /// A small (status, severity) fixture: the paper's §6 conjunction shape.
    fn fixture() -> NodeCompositeIndex {
        let mut ix = NodeCompositeIndex::default();
        ix.create("P", &cols(&["status", "severity"]));
        let rows: &[(&str, Option<i64>)] = &[
            ("icu", Some(9)),  // 0
            ("icu", Some(7)),  // 1
            ("icu", None),     // 2 — missing severity
            ("ward", Some(9)), // 3
            ("ward", Some(1)), // 4
            ("home", Some(0)), // 5
        ];
        for (i, (status, sev)) in rows.iter().enumerate() {
            let mut entries = vec![("status", Value::str(*status))];
            if let Some(s) = sev {
                entries.push(("severity", Value::Int(*s)));
            }
            ix.index_item_label("P", &props(&entries), NodeId(i as u64));
        }
        ix
    }

    #[test]
    fn full_width_equality_and_trailing_range() {
        let ix = fixture();
        let c = cols(&["status", "severity"]);
        // full-width equality
        assert_eq!(
            ids(ix.lookup(
                "P",
                &c,
                &[Value::str("icu"), Value::Int(9)],
                CompositeTrailing::None
            )),
            Some(vec![0])
        );
        // equality prefix + trailing range (the §6 conjunction)
        assert_eq!(
            ids(ix.lookup(
                "P",
                &c,
                &[Value::str("icu")],
                CompositeTrailing::Range(Bound::Included(&Value::Int(8)), Bound::Unbounded)
            )),
            Some(vec![0])
        );
        assert_eq!(
            ids(ix.lookup(
                "P",
                &c,
                &[Value::str("icu")],
                CompositeTrailing::Range(Bound::Excluded(&Value::Int(7)), Bound::Unbounded)
            )),
            Some(vec![0])
        );
        assert_eq!(
            ids(ix.lookup(
                "P",
                &c,
                &[Value::str("ward")],
                CompositeTrailing::Range(Bound::Unbounded, Bound::Excluded(&Value::Int(9)))
            )),
            Some(vec![4])
        );
        // a missing trailing value satisfies no range
        assert_eq!(
            ids(ix.lookup(
                "P",
                &c,
                &[Value::str("icu")],
                CompositeTrailing::Range(Bound::Included(&Value::Int(0)), Bound::Unbounded)
            )),
            Some(vec![0, 1])
        );
        // sub-width equality prefix covers missing trailing values
        assert_eq!(
            ids(ix.lookup("P", &c, &[Value::str("icu")], CompositeTrailing::None)),
            Some(vec![0, 1, 2])
        );
        // NULL probe values are definitively empty
        assert_eq!(
            ids(ix.lookup(
                "P",
                &c,
                &[Value::Null, Value::Int(1)],
                CompositeTrailing::None
            )),
            Some(vec![])
        );
        // unknown definition / unkeyable probe → refuse
        assert_eq!(
            ix.lookup("P", &cols(&["a", "b"]), &[], CompositeTrailing::None),
            None
        );
        assert_eq!(
            ix.lookup(
                "P",
                &c,
                &[Value::list([Value::Int(1)])],
                CompositeTrailing::None
            ),
            None
        );
        // counts agree with lookups
        assert_eq!(
            ix.count("P", &c, &[Value::str("icu")], CompositeTrailing::None),
            Some(3)
        );
        assert_eq!(
            ix.count(
                "P",
                &c,
                &[Value::str("icu")],
                CompositeTrailing::Range(Bound::Included(&Value::Int(8)), Bound::Unbounded)
            ),
            Some(1)
        );
        assert_eq!(ix.stats("P", &c), Some((6, 6)));
    }

    #[test]
    fn trailing_prefix_bound() {
        let mut ix = NodeCompositeIndex::default();
        let c = cols(&["k", "s"]);
        ix.create("A", &c);
        for (i, (k, s)) in [(1i64, "alpha"), (1, "alphabet"), (1, "beta"), (2, "alpha")]
            .iter()
            .enumerate()
        {
            ix.index_item_label(
                "A",
                &props(&[("k", Value::Int(*k)), ("s", Value::str(*s))]),
                NodeId(i as u64),
            );
        }
        assert_eq!(
            ids(ix.lookup(
                "A",
                &c,
                &[Value::Int(1)],
                CompositeTrailing::Prefix("alpha")
            )),
            Some(vec![0, 1])
        );
        assert_eq!(
            ids(ix.lookup("A", &c, &[Value::Int(1)], CompositeTrailing::Prefix("z"))),
            Some(vec![])
        );
        // the empty prefix matches every string (and only strings)
        ix.index_item_label("A", &props(&[("k", Value::Int(1))]), NodeId(9));
        assert_eq!(
            ids(ix.lookup("A", &c, &[Value::Int(1)], CompositeTrailing::Prefix(""))),
            Some(vec![0, 1, 2])
        );
        assert_eq!(
            ix.count("A", &c, &[Value::Int(1)], CompositeTrailing::Prefix("alp")),
            Some(2)
        );
    }

    #[test]
    fn remove_and_reindex_round_trip() {
        let mut ix = fixture();
        let c = cols(&["status", "severity"]);
        let p = props(&[("status", Value::str("icu")), ("severity", Value::Int(9))]);
        ix.deindex_item_label("P", &p, NodeId(0));
        assert_eq!(
            ids(ix.lookup(
                "P",
                &c,
                &[Value::str("icu"), Value::Int(9)],
                CompositeTrailing::None
            )),
            Some(vec![])
        );
        assert_eq!(ix.stats("P", &c), Some((5, 5)));
        ix.index_item_label("P", &p, NodeId(0));
        assert_eq!(
            ids(ix.lookup(
                "P",
                &c,
                &[Value::str("icu"), Value::Int(9)],
                CompositeTrailing::None
            )),
            Some(vec![0])
        );
    }

    #[test]
    fn exclusions_refuse_sub_width_probes_only() {
        let mut ix = NodeCompositeIndex::default();
        let c = cols(&["a", "b"]);
        ix.create("A", &c);
        ix.index_item_label(
            "A",
            &props(&[("a", Value::Int(1)), ("b", Value::Int(5))]),
            NodeId(0),
        );
        // a record with an unkeyable column value is excluded whole
        let excluded = props(&[("a", Value::Int(1)), ("b", Value::list([Value::Int(1)]))]);
        ix.index_item_label("A", &excluded, NodeId(1));
        // sub-width probes could miss it → refused
        assert_eq!(
            ix.lookup("A", &c, &[Value::Int(1)], CompositeTrailing::None),
            None
        );
        // full-width equality stays answerable (a keyable probe never
        // eq3-equals the excluded list)
        assert_eq!(
            ids(ix.lookup(
                "A",
                &c,
                &[Value::Int(1), Value::Int(5)],
                CompositeTrailing::None
            )),
            Some(vec![0])
        );
        // ordered walks refuse
        assert!(ix.ordered_walk("A", &c, &[], false).is_none());
        // removing the exclusion restores everything
        ix.deindex_item_label("A", &excluded, NodeId(1));
        assert_eq!(
            ids(ix.lookup("A", &c, &[Value::Int(1)], CompositeTrailing::None)),
            Some(vec![0])
        );
        assert!(ix.ordered_walk("A", &c, &[], false).is_some());
    }

    #[test]
    fn lossy_numerics_refuse_numeric_trailing_ranges() {
        let bound = 1i64 << 53;
        let mut ix = NodeCompositeIndex::default();
        let c = cols(&["a", "b"]);
        ix.create("A", &c);
        ix.index_item_label(
            "A",
            &props(&[("a", Value::Int(1)), ("b", Value::Int(5))]),
            NodeId(0),
        );
        let lossy = props(&[("a", Value::Int(1)), ("b", Value::Int(bound + 1))]);
        ix.index_item_label("A", &lossy, NodeId(1));
        // the lossy record would satisfy `b > 0` but is not indexed
        assert_eq!(
            ix.lookup(
                "A",
                &c,
                &[Value::Int(1)],
                CompositeTrailing::Range(Bound::Excluded(&Value::Int(0)), Bound::Unbounded)
            ),
            None
        );
        // full-width equality still answers
        assert_eq!(
            ids(ix.lookup(
                "A",
                &c,
                &[Value::Int(1), Value::Int(5)],
                CompositeTrailing::None
            )),
            Some(vec![0])
        );
        ix.deindex_item_label("A", &lossy, NodeId(1));
        assert_eq!(
            ids(ix.lookup(
                "A",
                &c,
                &[Value::Int(1)],
                CompositeTrailing::Range(Bound::Excluded(&Value::Int(0)), Bound::Unbounded)
            )),
            Some(vec![0])
        );
    }

    #[test]
    fn ordered_walk_is_order_by_order() {
        let ix = fixture();
        let c = cols(&["status", "severity"]);
        // ORDER BY status, severity ascending: home < icu < ward by
        // status; within icu 7 < 9 < missing (NULL last)
        let asc: Vec<u64> = ix
            .ordered_walk("P", &c, &[], false)
            .unwrap()
            .map(|n: NodeId| n.0)
            .collect();
        assert_eq!(asc, vec![5, 1, 0, 2, 4, 3]);
        // descending is the exact reverse (Missing leads, NULL-first)
        let desc: Vec<u64> = ix
            .ordered_walk("P", &c, &[], true)
            .unwrap()
            .map(|n: NodeId| n.0)
            .collect();
        let mut rev = asc.clone();
        rev.reverse();
        assert_eq!(desc, rev);
        // pinned to the equality prefix status='icu': ORDER BY severity
        let pinned: Vec<u64> = ix
            .ordered_walk("P", &c, &[Value::str("icu")], false)
            .unwrap()
            .map(|n: NodeId| n.0)
            .collect();
        assert_eq!(pinned, vec![1, 0, 2]);
        // a never-matching pin is an empty walk, not a refusal
        assert_eq!(
            ix.ordered_walk("P", &c, &[Value::Null], false)
                .unwrap()
                .count(),
            0
        );
    }

    #[test]
    fn mixed_family_segments_order_like_cmp_order() {
        let mut ix = NodeCompositeIndex::default();
        let c = cols(&["a", "b"]);
        ix.create("M", &c);
        let rows = [
            (Value::str("s"), Value::Int(1)),    // 0
            (Value::Bool(false), Value::Int(0)), // 1
            (Value::Int(0), Value::str("x")),    // 2
            (Value::Float(0.5), Value::Int(0)),  // 3
            (Value::Date(3), Value::Int(0)),     // 4
        ];
        for (i, (a, b)) in rows.iter().enumerate() {
            ix.index_item_label(
                "M",
                &props(&[("a", a.clone()), ("b", b.clone())]),
                NodeId(i as u64),
            );
        }
        let asc: Vec<u64> = ix
            .ordered_walk("M", &c, &[], false)
            .unwrap()
            .map(|n: NodeId| n.0)
            .collect();
        // cmp_order family rank: strings < bools < numerics < dates
        assert_eq!(asc, vec![0, 1, 2, 3, 4]);
        // a numeric trailing range on the leading column sees only numerics
        assert_eq!(
            ids(ix.lookup(
                "M",
                &c,
                &[],
                CompositeTrailing::Range(Bound::Included(&Value::Int(0)), Bound::Unbounded)
            )),
            Some(vec![2, 3])
        );
    }

    #[test]
    fn leading_column_histogram_estimates() {
        let mut ix = NodeCompositeIndex::default();
        let c = cols(&["a", "b"]);
        ix.create("A", &c);
        for i in 0..2000i64 {
            ix.index_item_label(
                "A",
                &props(&[("a", Value::Int(i)), ("b", Value::Int(i % 7))]),
                NodeId(i as u64),
            );
        }
        assert_eq!(ix.stats("A", &c), Some((2000, 2000)));
        let est = ix
            .count(
                "A",
                &c,
                &[],
                CompositeTrailing::Range(
                    Bound::Included(&Value::Int(0)),
                    Bound::Excluded(&Value::Int(200)),
                ),
            )
            .unwrap();
        let depth = 2000usize.div_ceil(32);
        let bound = 2 * depth + 2000 / 8;
        assert!(est.abs_diff(200) <= bound, "est {est} too far from 200");
    }
}
