//! The undo-capable operation log.
//!
//! Every mutation performed inside a transaction appends one [`Op`]. The log
//! serves three purposes:
//!
//! 1. **Rollback** — applying inverses in reverse order restores the
//!    pre-transaction state;
//! 2. **Deltas** — a slice of the log normalizes into a [`crate::Delta`],
//!    the statement- or transaction-level change set that drives trigger
//!    activation (paper §4.2 "Granularity");
//! 3. **Pre-state views** — [`crate::PreStateView`] reverses a slice on the
//!    fly so `BEFORE` triggers can evaluate conditions against the state
//!    preceding the activating statement.

use crate::ids::{NodeId, RelId};
use crate::record::{NodeRecord, RelRecord};
use crate::value::Value;

/// One primitive mutation. Ops carry enough old state to be inverted.
#[derive(Debug, Clone, PartialEq)]
pub enum Op {
    /// A node was created (the record snapshot includes its initial labels
    /// and properties).
    CreateNode { record: NodeRecord },
    /// A node was deleted; `record` is its state at deletion time.
    DeleteNode { record: NodeRecord },
    /// A relationship was created.
    CreateRel { record: RelRecord },
    /// A relationship was deleted; `record` is its state at deletion time.
    DeleteRel { record: RelRecord },
    /// A label was added to an existing node (recorded only when it was not
    /// already present).
    SetLabel { node: NodeId, label: String },
    /// A label was removed from a node (recorded only when present).
    RemoveLabel { node: NodeId, label: String },
    /// A node property was assigned. `old` is `None` when the property did
    /// not previously exist.
    SetNodeProp {
        node: NodeId,
        key: String,
        old: Option<Value>,
        new: Value,
    },
    /// A node property was removed; `old` is its previous value.
    RemoveNodeProp {
        node: NodeId,
        key: String,
        old: Value,
    },
    /// A relationship property was assigned.
    SetRelProp {
        rel: RelId,
        key: String,
        old: Option<Value>,
        new: Value,
    },
    /// A relationship property was removed.
    RemoveRelProp { rel: RelId, key: String, old: Value },
}

impl Op {
    /// The node this op touches, if it is a node-directed op.
    pub fn node_id(&self) -> Option<NodeId> {
        match self {
            Op::CreateNode { record } | Op::DeleteNode { record } => Some(record.id),
            Op::SetLabel { node, .. }
            | Op::RemoveLabel { node, .. }
            | Op::SetNodeProp { node, .. }
            | Op::RemoveNodeProp { node, .. } => Some(*node),
            _ => None,
        }
    }

    /// The relationship this op touches, if it is a relationship-directed op.
    pub fn rel_id(&self) -> Option<RelId> {
        match self {
            Op::CreateRel { record } | Op::DeleteRel { record } => Some(record.id),
            Op::SetRelProp { rel, .. } | Op::RemoveRelProp { rel, .. } => Some(*rel),
            _ => None,
        }
    }

    /// The inverse operation: applying `op` then `op.invert()` restores
    /// the starting state, and `op.invert().invert() == op`.
    ///
    /// This is the algebra behind every undo path (rollback,
    /// `rollback_to`, aborted cascades) and behind WAL replay: the store
    /// applies an op *forward* by undoing its inverse, so recovery and
    /// rollback exercise exactly the same index-maintenance code.
    pub fn invert(&self) -> Op {
        match self {
            Op::CreateNode { record } => Op::DeleteNode {
                record: record.clone(),
            },
            Op::DeleteNode { record } => Op::CreateNode {
                record: record.clone(),
            },
            Op::CreateRel { record } => Op::DeleteRel {
                record: record.clone(),
            },
            Op::DeleteRel { record } => Op::CreateRel {
                record: record.clone(),
            },
            Op::SetLabel { node, label } => Op::RemoveLabel {
                node: *node,
                label: label.clone(),
            },
            Op::RemoveLabel { node, label } => Op::SetLabel {
                node: *node,
                label: label.clone(),
            },
            Op::SetNodeProp {
                node,
                key,
                old,
                new,
            } => match old {
                Some(old_v) => Op::SetNodeProp {
                    node: *node,
                    key: key.clone(),
                    old: Some(new.clone()),
                    new: old_v.clone(),
                },
                None => Op::RemoveNodeProp {
                    node: *node,
                    key: key.clone(),
                    old: new.clone(),
                },
            },
            Op::RemoveNodeProp { node, key, old } => Op::SetNodeProp {
                node: *node,
                key: key.clone(),
                old: None,
                new: old.clone(),
            },
            Op::SetRelProp { rel, key, old, new } => match old {
                Some(old_v) => Op::SetRelProp {
                    rel: *rel,
                    key: key.clone(),
                    old: Some(new.clone()),
                    new: old_v.clone(),
                },
                None => Op::RemoveRelProp {
                    rel: *rel,
                    key: key.clone(),
                    old: new.clone(),
                },
            },
            Op::RemoveRelProp { rel, key, old } => Op::SetRelProp {
                rel: *rel,
                key: key.clone(),
                old: None,
                new: old.clone(),
            },
        }
    }

    /// Short human-readable tag, used in traces and error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Op::CreateNode { .. } => "CreateNode",
            Op::DeleteNode { .. } => "DeleteNode",
            Op::CreateRel { .. } => "CreateRel",
            Op::DeleteRel { .. } => "DeleteRel",
            Op::SetLabel { .. } => "SetLabel",
            Op::RemoveLabel { .. } => "RemoveLabel",
            Op::SetNodeProp { .. } => "SetNodeProp",
            Op::RemoveNodeProp { .. } => "RemoveNodeProp",
            Op::SetRelProp { .. } => "SetRelProp",
            Op::RemoveRelProp { .. } => "RemoveRelProp",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn id_accessors() {
        let n = NodeRecord::new(NodeId(1));
        assert_eq!(
            Op::CreateNode { record: n.clone() }.node_id(),
            Some(NodeId(1))
        );
        assert_eq!(Op::CreateNode { record: n }.rel_id(), None);
        let op = Op::SetRelProp {
            rel: RelId(4),
            key: "k".into(),
            old: None,
            new: Value::Int(1),
        };
        assert_eq!(op.rel_id(), Some(RelId(4)));
        assert_eq!(op.node_id(), None);
        assert_eq!(op.kind(), "SetRelProp");
    }

    #[test]
    fn invert_is_an_involution() {
        let mut rec = NodeRecord::new(NodeId(7));
        rec.labels.insert("L".to_string());
        rec.props.set("k", Value::Int(3));
        let ops = [
            Op::CreateNode {
                record: rec.clone(),
            },
            Op::DeleteNode { record: rec },
            Op::SetLabel {
                node: NodeId(7),
                label: "X".into(),
            },
            Op::SetNodeProp {
                node: NodeId(7),
                key: "k".into(),
                old: Some(Value::Int(3)),
                new: Value::Int(4),
            },
            Op::SetNodeProp {
                node: NodeId(7),
                key: "k".into(),
                old: None,
                new: Value::Int(4),
            },
            Op::RemoveNodeProp {
                node: NodeId(7),
                key: "k".into(),
                old: Value::Int(3),
            },
            Op::SetRelProp {
                rel: RelId(4),
                key: "w".into(),
                old: None,
                new: Value::Int(1),
            },
            Op::RemoveRelProp {
                rel: RelId(4),
                key: "w".into(),
                old: Value::Int(1),
            },
        ];
        for op in &ops {
            assert_eq!(&op.invert().invert(), op, "double inversion of {op:?}");
        }
    }
}
