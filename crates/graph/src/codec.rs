//! Binary wire codec for the durable twin of the op log.
//!
//! The WAL (`pg-wal`) persists the committed [`Op`] stream and compacted
//! store snapshots; this module is the byte-level encoding both build on.
//! The vendored serde shims deliberately implement no real serialization
//! (see `vendor/README.md`), so the format is hand-rolled: a small,
//! versionless, little-endian tag-length encoding with no
//! self-description — framing, checksums and versioning live one layer
//! up, in the WAL's frame format.
//!
//! Encoding rules:
//!
//! * integers are fixed-width little-endian (`u32` for collection
//!   lengths, `u64`/`i64` for ids and scalar payloads, `f64` as IEEE-754
//!   bits);
//! * strings are `u32` length + UTF-8 bytes;
//! * every enum is a one-byte tag followed by its fields in declaration
//!   order;
//! * collections are `u32` count + elements (property maps and label
//!   sets iterate in their `BTreeMap`/`BTreeSet` order, so encoding is
//!   deterministic: equal values encode to equal bytes).
//!
//! Decoding is strict: unknown tags, short input, and invalid UTF-8 all
//! surface as a typed [`CodecError`] (never a panic), because the WAL
//! reader must treat arbitrary torn or corrupt bytes as data.

use crate::ids::{NodeId, RelId};
use crate::op::Op;
use crate::props::PropertyMap;
use crate::record::{NodeRecord, RelRecord};
use crate::value::Value;
use std::fmt;

/// Decoding failure. Carries enough context to report *what* failed to
/// decode; the byte offset is tracked by the WAL frame layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodecError {
    /// Input ended before the value was complete.
    UnexpectedEof { what: &'static str },
    /// An enum tag byte was out of range.
    BadTag { what: &'static str, tag: u8 },
    /// A string field was not valid UTF-8.
    BadUtf8 { what: &'static str },
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodecError::UnexpectedEof { what } => {
                write!(f, "unexpected end of input while decoding {what}")
            }
            CodecError::BadTag { what, tag } => write!(f, "invalid tag byte {tag} for {what}"),
            CodecError::BadUtf8 { what } => write!(f, "invalid UTF-8 in {what}"),
        }
    }
}

impl std::error::Error for CodecError {}

/// A cursor over undecoded input. All decode functions consume from the
/// front; [`Reader::is_empty`] lets the caller assert full consumption.
pub struct Reader<'a> {
    buf: &'a [u8],
}

impl<'a> Reader<'a> {
    pub fn new(buf: &'a [u8]) -> Self {
        Reader { buf }
    }

    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    pub fn remaining(&self) -> usize {
        self.buf.len()
    }

    fn take(&mut self, n: usize, what: &'static str) -> Result<&'a [u8], CodecError> {
        if self.buf.len() < n {
            return Err(CodecError::UnexpectedEof { what });
        }
        let (head, rest) = self.buf.split_at(n);
        self.buf = rest;
        Ok(head)
    }

    pub fn u8(&mut self, what: &'static str) -> Result<u8, CodecError> {
        Ok(self.take(1, what)?[0])
    }

    pub fn u32(&mut self, what: &'static str) -> Result<u32, CodecError> {
        let b = self.take(4, what)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    pub fn u64(&mut self, what: &'static str) -> Result<u64, CodecError> {
        let b = self.take(8, what)?;
        Ok(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    pub fn i64(&mut self, what: &'static str) -> Result<i64, CodecError> {
        Ok(self.u64(what)? as i64)
    }

    pub fn f64(&mut self, what: &'static str) -> Result<f64, CodecError> {
        Ok(f64::from_bits(self.u64(what)?))
    }

    pub fn string(&mut self, what: &'static str) -> Result<String, CodecError> {
        let len = self.u32(what)? as usize;
        let bytes = self.take(len, what)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| CodecError::BadUtf8 { what })
    }
}

// ----------------------------------------------------------------------
// Primitive writers
// ----------------------------------------------------------------------

pub fn put_u8(out: &mut Vec<u8>, v: u8) {
    out.push(v);
}

pub fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

pub fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

pub fn put_i64(out: &mut Vec<u8>, v: i64) {
    put_u64(out, v as u64);
}

pub fn put_f64(out: &mut Vec<u8>, v: f64) {
    put_u64(out, v.to_bits());
}

pub fn put_str(out: &mut Vec<u8>, s: &str) {
    put_u32(out, s.len() as u32);
    out.extend_from_slice(s.as_bytes());
}

// ----------------------------------------------------------------------
// Value
// ----------------------------------------------------------------------

const V_NULL: u8 = 0;
const V_BOOL: u8 = 1;
const V_INT: u8 = 2;
const V_FLOAT: u8 = 3;
const V_STR: u8 = 4;
const V_DATE: u8 = 5;
const V_DATETIME: u8 = 6;
const V_LIST: u8 = 7;
const V_MAP: u8 = 8;
const V_NODE: u8 = 9;
const V_REL: u8 = 10;

pub fn encode_value(v: &Value, out: &mut Vec<u8>) {
    match v {
        Value::Null => put_u8(out, V_NULL),
        Value::Bool(b) => {
            put_u8(out, V_BOOL);
            put_u8(out, u8::from(*b));
        }
        Value::Int(i) => {
            put_u8(out, V_INT);
            put_i64(out, *i);
        }
        Value::Float(x) => {
            put_u8(out, V_FLOAT);
            put_f64(out, *x);
        }
        Value::Str(s) => {
            put_u8(out, V_STR);
            put_str(out, s);
        }
        Value::Date(d) => {
            put_u8(out, V_DATE);
            put_i64(out, *d);
        }
        Value::DateTime(t) => {
            put_u8(out, V_DATETIME);
            put_i64(out, *t);
        }
        Value::List(items) => {
            put_u8(out, V_LIST);
            put_u32(out, items.len() as u32);
            for item in items {
                encode_value(item, out);
            }
        }
        Value::Map(m) => {
            put_u8(out, V_MAP);
            put_u32(out, m.len() as u32);
            for (k, item) in m {
                put_str(out, k);
                encode_value(item, out);
            }
        }
        Value::Node(n) => {
            put_u8(out, V_NODE);
            put_u64(out, n.0);
        }
        Value::Rel(r) => {
            put_u8(out, V_REL);
            put_u64(out, r.0);
        }
    }
}

pub fn decode_value(r: &mut Reader<'_>) -> Result<Value, CodecError> {
    let tag = r.u8("value tag")?;
    Ok(match tag {
        V_NULL => Value::Null,
        V_BOOL => Value::Bool(r.u8("bool")? != 0),
        V_INT => Value::Int(r.i64("int")?),
        V_FLOAT => Value::Float(r.f64("float")?),
        V_STR => Value::Str(r.string("string")?),
        V_DATE => Value::Date(r.i64("date")?),
        V_DATETIME => Value::DateTime(r.i64("datetime")?),
        V_LIST => {
            let n = r.u32("list length")?;
            let mut items = Vec::with_capacity((n as usize).min(1 << 16));
            for _ in 0..n {
                items.push(decode_value(r)?);
            }
            Value::List(items)
        }
        V_MAP => {
            let n = r.u32("map length")?;
            let mut m = std::collections::BTreeMap::new();
            for _ in 0..n {
                let k = r.string("map key")?;
                let v = decode_value(r)?;
                m.insert(k, v);
            }
            Value::Map(m)
        }
        V_NODE => Value::Node(NodeId(r.u64("node id")?)),
        V_REL => Value::Rel(RelId(r.u64("rel id")?)),
        tag => return Err(CodecError::BadTag { what: "value", tag }),
    })
}

// ----------------------------------------------------------------------
// PropertyMap and records
// ----------------------------------------------------------------------

pub fn encode_props(props: &PropertyMap, out: &mut Vec<u8>) {
    put_u32(out, props.len() as u32);
    for (k, v) in props.iter() {
        put_str(out, k);
        encode_value(v, out);
    }
}

pub fn decode_props(r: &mut Reader<'_>) -> Result<PropertyMap, CodecError> {
    let n = r.u32("property count")?;
    let mut props = PropertyMap::new();
    for _ in 0..n {
        let k = r.string("property key")?;
        let v = decode_value(r)?;
        props.set(k, v);
    }
    Ok(props)
}

pub fn encode_node_record(rec: &NodeRecord, out: &mut Vec<u8>) {
    put_u64(out, rec.id.0);
    put_u32(out, rec.labels.len() as u32);
    for l in &rec.labels {
        put_str(out, l);
    }
    encode_props(&rec.props, out);
}

pub fn decode_node_record(r: &mut Reader<'_>) -> Result<NodeRecord, CodecError> {
    let id = NodeId(r.u64("node record id")?);
    let n_labels = r.u32("label count")?;
    let mut rec = NodeRecord::new(id);
    for _ in 0..n_labels {
        rec.labels.insert(r.string("label")?);
    }
    rec.props = decode_props(r)?;
    Ok(rec)
}

pub fn encode_rel_record(rec: &RelRecord, out: &mut Vec<u8>) {
    put_u64(out, rec.id.0);
    put_str(out, &rec.rel_type);
    put_u64(out, rec.src.0);
    put_u64(out, rec.dst.0);
    encode_props(&rec.props, out);
}

pub fn decode_rel_record(r: &mut Reader<'_>) -> Result<RelRecord, CodecError> {
    Ok(RelRecord {
        id: RelId(r.u64("rel record id")?),
        rel_type: r.string("rel type")?,
        src: NodeId(r.u64("rel src")?),
        dst: NodeId(r.u64("rel dst")?),
        props: decode_props(r)?,
    })
}

// ----------------------------------------------------------------------
// Op
// ----------------------------------------------------------------------

const OP_CREATE_NODE: u8 = 0;
const OP_DELETE_NODE: u8 = 1;
const OP_CREATE_REL: u8 = 2;
const OP_DELETE_REL: u8 = 3;
const OP_SET_LABEL: u8 = 4;
const OP_REMOVE_LABEL: u8 = 5;
const OP_SET_NODE_PROP: u8 = 6;
const OP_REMOVE_NODE_PROP: u8 = 7;
const OP_SET_REL_PROP: u8 = 8;
const OP_REMOVE_REL_PROP: u8 = 9;

fn encode_opt_value(v: &Option<Value>, out: &mut Vec<u8>) {
    match v {
        None => put_u8(out, 0),
        Some(v) => {
            put_u8(out, 1);
            encode_value(v, out);
        }
    }
}

fn decode_opt_value(r: &mut Reader<'_>) -> Result<Option<Value>, CodecError> {
    match r.u8("option tag")? {
        0 => Ok(None),
        1 => Ok(Some(decode_value(r)?)),
        tag => Err(CodecError::BadTag {
            what: "option",
            tag,
        }),
    }
}

pub fn encode_op(op: &Op, out: &mut Vec<u8>) {
    match op {
        Op::CreateNode { record } => {
            put_u8(out, OP_CREATE_NODE);
            encode_node_record(record, out);
        }
        Op::DeleteNode { record } => {
            put_u8(out, OP_DELETE_NODE);
            encode_node_record(record, out);
        }
        Op::CreateRel { record } => {
            put_u8(out, OP_CREATE_REL);
            encode_rel_record(record, out);
        }
        Op::DeleteRel { record } => {
            put_u8(out, OP_DELETE_REL);
            encode_rel_record(record, out);
        }
        Op::SetLabel { node, label } => {
            put_u8(out, OP_SET_LABEL);
            put_u64(out, node.0);
            put_str(out, label);
        }
        Op::RemoveLabel { node, label } => {
            put_u8(out, OP_REMOVE_LABEL);
            put_u64(out, node.0);
            put_str(out, label);
        }
        Op::SetNodeProp {
            node,
            key,
            old,
            new,
        } => {
            put_u8(out, OP_SET_NODE_PROP);
            put_u64(out, node.0);
            put_str(out, key);
            encode_opt_value(old, out);
            encode_value(new, out);
        }
        Op::RemoveNodeProp { node, key, old } => {
            put_u8(out, OP_REMOVE_NODE_PROP);
            put_u64(out, node.0);
            put_str(out, key);
            encode_value(old, out);
        }
        Op::SetRelProp { rel, key, old, new } => {
            put_u8(out, OP_SET_REL_PROP);
            put_u64(out, rel.0);
            put_str(out, key);
            encode_opt_value(old, out);
            encode_value(new, out);
        }
        Op::RemoveRelProp { rel, key, old } => {
            put_u8(out, OP_REMOVE_REL_PROP);
            put_u64(out, rel.0);
            put_str(out, key);
            encode_value(old, out);
        }
    }
}

pub fn decode_op(r: &mut Reader<'_>) -> Result<Op, CodecError> {
    let tag = r.u8("op tag")?;
    Ok(match tag {
        OP_CREATE_NODE => Op::CreateNode {
            record: decode_node_record(r)?,
        },
        OP_DELETE_NODE => Op::DeleteNode {
            record: decode_node_record(r)?,
        },
        OP_CREATE_REL => Op::CreateRel {
            record: decode_rel_record(r)?,
        },
        OP_DELETE_REL => Op::DeleteRel {
            record: decode_rel_record(r)?,
        },
        OP_SET_LABEL => Op::SetLabel {
            node: NodeId(r.u64("node")?),
            label: r.string("label")?,
        },
        OP_REMOVE_LABEL => Op::RemoveLabel {
            node: NodeId(r.u64("node")?),
            label: r.string("label")?,
        },
        OP_SET_NODE_PROP => Op::SetNodeProp {
            node: NodeId(r.u64("node")?),
            key: r.string("key")?,
            old: decode_opt_value(r)?,
            new: decode_value(r)?,
        },
        OP_REMOVE_NODE_PROP => Op::RemoveNodeProp {
            node: NodeId(r.u64("node")?),
            key: r.string("key")?,
            old: decode_value(r)?,
        },
        OP_SET_REL_PROP => Op::SetRelProp {
            rel: RelId(r.u64("rel")?),
            key: r.string("key")?,
            old: decode_opt_value(r)?,
            new: decode_value(r)?,
        },
        OP_REMOVE_REL_PROP => Op::RemoveRelProp {
            rel: RelId(r.u64("rel")?),
            key: r.string("key")?,
            old: decode_value(r)?,
        },
        tag => return Err(CodecError::BadTag { what: "op", tag }),
    })
}

/// Encode a slice of ops with a leading count.
pub fn encode_ops(ops: &[Op], out: &mut Vec<u8>) {
    put_u32(out, ops.len() as u32);
    for op in ops {
        encode_op(op, out);
    }
}

/// Decode a count-prefixed op slice.
pub fn decode_ops(r: &mut Reader<'_>) -> Result<Vec<Op>, CodecError> {
    let n = r.u32("op count")?;
    let mut ops = Vec::with_capacity((n as usize).min(1 << 16));
    for _ in 0..n {
        ops.push(decode_op(r)?);
    }
    Ok(ops)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip_value(v: Value) {
        let mut buf = Vec::new();
        encode_value(&v, &mut buf);
        let mut r = Reader::new(&buf);
        assert_eq!(decode_value(&mut r).unwrap(), v);
        assert!(r.is_empty());
    }

    #[test]
    fn value_roundtrips() {
        roundtrip_value(Value::Null);
        roundtrip_value(Value::Bool(true));
        roundtrip_value(Value::Int(-42));
        roundtrip_value(Value::Float(1.5));
        roundtrip_value(Value::Float(f64::NEG_INFINITY));
        roundtrip_value(Value::str("héllo"));
        roundtrip_value(Value::Date(19700));
        roundtrip_value(Value::DateTime(-1));
        roundtrip_value(Value::list([
            Value::Int(1),
            Value::list([Value::str("nested")]),
        ]));
        roundtrip_value(Value::map([
            ("a".to_string(), Value::Int(1)),
            ("b".to_string(), Value::map([])),
        ]));
        roundtrip_value(Value::Node(NodeId(9)));
        roundtrip_value(Value::Rel(RelId(3)));
    }

    #[test]
    fn float_nan_roundtrips_bitwise() {
        let v = Value::Float(f64::NAN);
        let mut buf = Vec::new();
        encode_value(&v, &mut buf);
        let mut r = Reader::new(&buf);
        match decode_value(&mut r).unwrap() {
            Value::Float(x) => assert!(x.is_nan()),
            other => panic!("expected float, got {other:?}"),
        }
    }

    #[test]
    fn op_roundtrips() {
        let mut rec = NodeRecord::new(NodeId(1));
        rec.labels.insert("Patient".into());
        rec.props.set("name", Value::str("x"));
        let rel = RelRecord {
            id: RelId(2),
            rel_type: "Risk".into(),
            src: NodeId(1),
            dst: NodeId(3),
            props: [("w".to_string(), Value::Int(5))].into_iter().collect(),
        };
        let ops = vec![
            Op::CreateNode {
                record: rec.clone(),
            },
            Op::CreateRel {
                record: rel.clone(),
            },
            Op::SetNodeProp {
                node: NodeId(1),
                key: "k".into(),
                old: None,
                new: Value::Int(1),
            },
            Op::SetNodeProp {
                node: NodeId(1),
                key: "k".into(),
                old: Some(Value::Int(1)),
                new: Value::Float(2.0),
            },
            Op::RemoveNodeProp {
                node: NodeId(1),
                key: "k".into(),
                old: Value::Float(2.0),
            },
            Op::SetLabel {
                node: NodeId(1),
                label: "ICU".into(),
            },
            Op::RemoveLabel {
                node: NodeId(1),
                label: "ICU".into(),
            },
            Op::SetRelProp {
                rel: RelId(2),
                key: "w".into(),
                old: Some(Value::Int(5)),
                new: Value::Int(6),
            },
            Op::RemoveRelProp {
                rel: RelId(2),
                key: "w".into(),
                old: Value::Int(6),
            },
            Op::DeleteRel { record: rel },
            Op::DeleteNode { record: rec },
        ];
        let mut buf = Vec::new();
        encode_ops(&ops, &mut buf);
        let mut r = Reader::new(&buf);
        assert_eq!(decode_ops(&mut r).unwrap(), ops);
        assert!(r.is_empty());
    }

    #[test]
    fn truncated_input_is_a_typed_error() {
        let mut buf = Vec::new();
        encode_op(
            &Op::SetLabel {
                node: NodeId(1),
                label: "Long".into(),
            },
            &mut buf,
        );
        for cut in 0..buf.len() {
            let mut r = Reader::new(&buf[..cut]);
            assert!(
                decode_op(&mut r).is_err(),
                "decoding a {cut}-byte prefix must fail"
            );
        }
    }

    #[test]
    fn bad_tags_are_typed_errors() {
        let mut r = Reader::new(&[200u8]);
        assert_eq!(
            decode_value(&mut r),
            Err(CodecError::BadTag {
                what: "value",
                tag: 200
            })
        );
        let mut r = Reader::new(&[99u8]);
        assert_eq!(
            decode_op(&mut r),
            Err(CodecError::BadTag {
                what: "op",
                tag: 99
            })
        );
    }

    #[test]
    fn bad_utf8_is_a_typed_error() {
        let mut buf = Vec::new();
        put_u8(&mut buf, V_STR);
        put_u32(&mut buf, 2);
        buf.extend_from_slice(&[0xff, 0xfe]);
        let mut r = Reader::new(&buf);
        assert_eq!(
            decode_value(&mut r),
            Err(CodecError::BadUtf8 { what: "string" })
        );
    }
}
