//! Snapshot-isolated reads: commit-epoch publication and pinned views.
//!
//! The store follows a **single-writer / N-reader** discipline. The writer
//! owns the [`crate::Graph`] and mutates its `StoreState` copy-on-write
//! (persistent maps share structure between versions, so a published
//! version keeps reading the nodes it saw while the writer path-copies
//! around them). At every *commit boundary* — `commit`, `rollback`,
//! `begin`, or an out-of-transaction snapshot request — the writer bumps
//! its **epoch** if anything changed and stores `(epoch, Arc<StoreState>)`
//! into the `Publisher` slot.
//!
//! Reader threads hold a [`GraphHandle`] (cheap to clone, `Send + Sync`)
//! and pin [`Snapshot`]s from it. A snapshot is an immutable
//! [`crate::GraphView`] of exactly one published epoch:
//!
//! * it never blocks the writer, and the writer never blocks it;
//! * it never observes an uncommitted transaction — in particular it never
//!   sees a partially applied trigger cascade, because cascades run inside
//!   the activating transaction and publication happens only at its end;
//! * it stays readable for as long as it is held, across any number of
//!   later commits (old versions are reclaimed when their last holder
//!   drops, observable through [`Snapshot::state_refcount`]).
//!
//! Not provided: multiple writers, and write-skew detection between a
//! snapshot read and a later write (readers are isolated, not
//! serializable).

use crate::ids::{NodeId, RelId};
use crate::record::{NodeRecord, RelRecord};
use crate::store::{IndexProbes, ProbeCounters, StoreState};
use std::sync::{Arc, Mutex};

/// The single-slot channel between the writer and its readers: the last
/// published `(epoch, state)` pair. The lock is held only for the two
/// pointer stores (writer) or clones (reader), never across a walk.
#[derive(Debug)]
pub(crate) struct Publisher {
    slot: Mutex<(u64, Arc<StoreState>)>,
}

impl Publisher {
    pub(crate) fn new(epoch: u64, state: Arc<StoreState>) -> Self {
        Publisher {
            slot: Mutex::new((epoch, state)),
        }
    }

    /// Refresh the slot when it is behind `epoch`. Writer-only.
    pub(crate) fn publish(&self, epoch: u64, state: &Arc<StoreState>) {
        let mut slot = self.slot.lock().expect("publisher lock poisoned");
        if slot.0 != epoch {
            *slot = (epoch, Arc::clone(state));
        }
    }

    fn load(&self) -> (u64, Arc<StoreState>) {
        let slot = self.slot.lock().expect("publisher lock poisoned");
        (slot.0, Arc::clone(&slot.1))
    }
}

/// A cloneable, `Send + Sync` handle reader threads use to pin fresh
/// snapshots without going through the writer. Obtained from
/// [`crate::Graph::reader_handle`]; stays valid for the life of the graph
/// and always resolves to the **last published** epoch.
#[derive(Debug, Clone)]
pub struct GraphHandle {
    publisher: Arc<Publisher>,
}

impl GraphHandle {
    pub(crate) fn new(publisher: Arc<Publisher>) -> Self {
        GraphHandle { publisher }
    }

    /// Pin a snapshot of the last published epoch.
    pub fn snapshot(&self) -> Snapshot {
        let (epoch, state) = self.publisher.load();
        Snapshot {
            epoch,
            state,
            probes: Arc::new(ProbeCounters::default()),
        }
    }

    /// The epoch a [`GraphHandle::snapshot`] call would pin right now.
    pub fn epoch(&self) -> u64 {
        self.publisher.load().0
    }
}

/// An immutable [`crate::GraphView`] pinned to one committed epoch.
///
/// Cheap to create (two `Arc` clones) and to hold; implements the full
/// read surface — extent scans, property/composite index probes, ordered
/// top-k walks, statistics — against the pinned version, so the query
/// planner and executor run unchanged against it. Each snapshot carries
/// its **own** probe counters ([`Snapshot::index_probes`]), so concurrent
/// readers never race on the writer's debug counters.
///
/// Cloning shares the pinned state *and* the counters; pin a fresh
/// snapshot from the [`GraphHandle`] for independent counters.
#[derive(Debug, Clone)]
pub struct Snapshot {
    pub(crate) epoch: u64,
    pub(crate) state: Arc<StoreState>,
    pub(crate) probes: Arc<ProbeCounters>,
}

impl Snapshot {
    /// Pin a view of `state` as it is *right now*, with fresh counters.
    /// Backs [`crate::GraphView::parallel_snapshot`]: unlike
    /// [`GraphHandle::snapshot`] this does not go through the publisher
    /// slot, so mid-transaction it exposes in-flight state — exactly
    /// what morsel workers must see to reproduce serial execution.
    pub(crate) fn pin_current(epoch: u64, state: &Arc<StoreState>) -> Snapshot {
        Snapshot {
            epoch,
            state: Arc::clone(state),
            probes: Arc::new(ProbeCounters::default()),
        }
    }

    /// The committed epoch this snapshot is pinned to.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Direct record access (same surface as [`crate::Graph::node`]).
    pub fn node(&self, id: NodeId) -> Option<&NodeRecord> {
        self.state.nodes.get(&id).map(|r| &**r)
    }

    /// Direct record access (same surface as [`crate::Graph::rel`]).
    pub fn rel(&self, id: RelId) -> Option<&RelRecord> {
        self.state.rels.get(&id).map(|r| &**r)
    }

    pub fn node_count(&self) -> usize {
        self.state.nodes.len()
    }

    pub fn rel_count(&self) -> usize {
        self.state.rels.len()
    }

    /// Strong count on this snapshot's state root: 1 when this snapshot is
    /// the last holder of its version (the writer and publisher have moved
    /// on), higher while the version is still current or shared. Dropping
    /// the last holder reclaims whatever the version does not share with
    /// newer ones — the observability hook for reclamation tests.
    pub fn state_refcount(&self) -> usize {
        Arc::strong_count(&self.state)
    }

    /// This snapshot's own index-probe counters since the last reset.
    pub fn index_probes(&self) -> IndexProbes {
        self.probes.snapshot()
    }

    /// Reset this snapshot's probe counters to zero.
    pub fn reset_index_probes(&self) {
        self.probes.reset()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshots_and_handles_are_send_sync() {
        fn check<T: Send + Sync + 'static>() {}
        check::<Snapshot>();
        check::<GraphHandle>();
    }
}
