//! # pg-graph — in-memory property graph store
//!
//! The storage substrate for the PG-Triggers reproduction. It provides:
//!
//! * a directed **property graph** (multi-labeled nodes, typed relationships,
//!   `⟨property, value⟩` pairs on both), following the data model of
//!   *PG-Triggers: Triggers for Property Graphs* (SIGMOD-Companion '24) §2;
//! * **transactions** with statement marks, commit and rollback, built on an
//!   undo-capable operation log;
//! * **change deltas** mirroring the transition metadata that Neo4j APOC
//!   (paper Table 2/3) and Memgraph (paper Table 4) expose to triggers:
//!   created/deleted nodes and relationships, assigned/removed labels, and
//!   assigned/removed properties with old and new values;
//! * read **views**: the live graph, and a [`PreStateView`] that exposes the
//!   state *before* a statement ran (needed for `BEFORE` trigger semantics);
//! * **property indexes** (`(label, key, value)` → node set and
//!   `(type, key, value)` → relationship set, [`prop_index`]) kept
//!   consistent through every mutation *and undo* path, giving the query
//!   layer index-backed access paths for equality, ordered range
//!   (`<`/`<=`/`>`/`>=`), and `STARTS WITH` prefix predicates;
//! * **composite (multi-key) indexes** ([`composite`]): lexicographic key
//!   vectors over several properties of one label / relationship type,
//!   serving conjunctions (equality prefix + one trailing range/prefix
//!   bound) and multi-key `ORDER BY` walks, maintained through the same
//!   mutation and undo paths;
//! * **snapshot-isolated reads** ([`snapshot`]): the single writer publishes
//!   commit epochs, and any number of reader threads pin cheap, immutable
//!   [`Snapshot`]s — full [`GraphView`]s over persistent (structurally
//!   shared) maps — that never block the writer and never observe
//!   uncommitted state.
//!
//! The crate is deliberately free of query-language concerns; `pg-cypher`
//! layers a Cypher subset on top of the [`GraphView`] trait and the mutation
//! API of [`Graph`].

pub mod codec;
pub mod composite;
pub mod delta;
pub mod error;
pub mod ids;
pub mod op;
pub mod pmap;
pub mod prop_index;
pub mod props;
pub mod record;
pub mod snapshot;
pub mod stats;
pub mod store;
pub mod value;
pub mod view;

pub use codec::CodecError;
pub use composite::{CompositeIndex, CompositeTrailing, NodeCompositeIndex, RelCompositeIndex};
pub use delta::{Delta, LabelEvent, PropAssign, PropRemove};
pub use error::{GraphError, Result};
pub use ids::{ItemRef, NodeId, RelId};
pub use op::Op;
pub use prop_index::{IndexKey, KeyedIndex, PropIndex, RelPropIndex};
pub use props::PropertyMap;
pub use record::{NodeRecord, RelRecord};
pub use snapshot::{GraphHandle, Snapshot};
pub use stats::{degree_bucket, DegreeHistogram, Histogram, DEGREE_BUCKETS};
pub use store::{CommitSink, Graph, IndexProbes, StatementMark, WritePolicy};
pub use value::{Direction, Value};
pub use view::{GraphView, PreStateView};
