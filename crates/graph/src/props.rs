//! Property maps attached to nodes and relationships.

use crate::value::Value;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// An ordered `⟨property, value⟩` map. `NULL` is never stored: assigning
/// `NULL` to a property removes it, following Cypher `SET` semantics.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct PropertyMap {
    entries: BTreeMap<String, Value>,
}

impl PropertyMap {
    pub fn new() -> Self {
        Self::default()
    }

    /// Get a property value (`None` when absent; callers usually map this to
    /// `Value::Null`).
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.entries.get(key)
    }

    /// Insert/overwrite a property, returning the previous value. Inserting
    /// `NULL` removes the key instead.
    pub fn set(&mut self, key: impl Into<String>, value: Value) -> Option<Value> {
        let key = key.into();
        if value.is_null() {
            self.entries.remove(&key)
        } else {
            self.entries.insert(key, value)
        }
    }

    /// Remove a property, returning its old value.
    pub fn remove(&mut self, key: &str) -> Option<Value> {
        self.entries.remove(key)
    }

    pub fn contains(&self, key: &str) -> bool {
        self.entries.contains_key(key)
    }

    pub fn keys(&self) -> impl Iterator<Item = &String> {
        self.entries.keys()
    }

    pub fn iter(&self) -> impl Iterator<Item = (&String, &Value)> {
        self.entries.iter()
    }

    pub fn len(&self) -> usize {
        self.entries.len()
    }

    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Convert into a `Value::Map` (used to materialize `OLD` transition
    /// variables for deleted items, paper §4.2 "Transition Variables").
    pub fn to_value(&self) -> Value {
        Value::Map(self.entries.clone())
    }
}

impl FromIterator<(String, Value)> for PropertyMap {
    fn from_iter<T: IntoIterator<Item = (String, Value)>>(iter: T) -> Self {
        let mut pm = PropertyMap::new();
        for (k, v) in iter {
            pm.set(k, v);
        }
        pm
    }
}

impl<'a> IntoIterator for &'a PropertyMap {
    type Item = (&'a String, &'a Value);
    type IntoIter = std::collections::btree_map::Iter<'a, String, Value>;
    fn into_iter(self) -> Self::IntoIter {
        self.entries.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_get_remove() {
        let mut pm = PropertyMap::new();
        assert_eq!(pm.set("a", Value::Int(1)), None);
        assert_eq!(pm.get("a"), Some(&Value::Int(1)));
        assert_eq!(pm.set("a", Value::Int(2)), Some(Value::Int(1)));
        assert_eq!(pm.remove("a"), Some(Value::Int(2)));
        assert!(pm.is_empty());
    }

    #[test]
    fn setting_null_removes() {
        let mut pm = PropertyMap::new();
        pm.set("a", Value::Int(1));
        assert_eq!(pm.set("a", Value::Null), Some(Value::Int(1)));
        assert!(!pm.contains("a"));
        // setting NULL on an absent key is a no-op
        assert_eq!(pm.set("b", Value::Null), None);
        assert!(pm.is_empty());
    }

    #[test]
    fn to_value_materializes_map() {
        let pm: PropertyMap = [("x".to_string(), Value::Int(1))].into_iter().collect();
        assert_eq!(
            pm.to_value(),
            Value::map([("x".to_string(), Value::Int(1))])
        );
    }

    #[test]
    fn from_iter_drops_nulls() {
        let pm: PropertyMap = [
            ("x".to_string(), Value::Int(1)),
            ("y".to_string(), Value::Null),
        ]
        .into_iter()
        .collect();
        assert_eq!(pm.len(), 1);
    }
}
