//! The graph store: storage, indexes, transactions, the mutation API, and
//! commit-epoch publication for snapshot-isolated readers.

use crate::composite::{CompositeTrailing, NodeCompositeIndex, RelCompositeIndex};
use crate::delta::Delta;
use crate::error::{GraphError, Result};
use crate::ids::{ItemRef, NodeId, RelId};
use crate::op::Op;
use crate::pmap::{PMap, TailSet};
use crate::prop_index::{PropIndex, RelPropIndex};
use crate::props::PropertyMap;
use crate::record::{NodeRecord, RelRecord};
use crate::snapshot::{GraphHandle, Publisher, Snapshot};
use crate::stats::{degree_bucket, DegreeHistogram};
use crate::value::{Direction, Value};
use crate::view::GraphView;
use std::collections::{BTreeSet, HashMap};
use std::ops::Bound;
use std::sync::atomic::{AtomicU64, Ordering as AtomicOrdering};
use std::sync::Arc;

/// Debug counters over index probes, for verifying *how* the planner pays
/// for its answers: `materializing` counts lookups that return id vectors
/// (the execution access paths), `counting` the count-only probes and
/// statistics reads (the planning access paths), `ordered` the ordered
/// top-k walks. A planning round over indexed predicates must show
/// `counting` activity and **zero** `materializing` activity — that is the
/// "no candidate-vector materialization during planning" invariant, made
/// observable for tests and benches.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IndexProbes {
    pub materializing: u64,
    pub counting: u64,
    pub ordered: u64,
    /// Materializing **composite** (multi-key) lookups — a subset of
    /// `materializing`, split out so tests can assert a lookup was
    /// served by a composite index specifically.
    pub composite: u64,
}

/// Atomic probe counters. The live [`Graph`] owns one set and each
/// [`Snapshot`] owns its own, so concurrent readers never race on (or
/// pollute) the writer's counters.
#[derive(Debug, Default)]
pub(crate) struct ProbeCounters {
    materializing: AtomicU64,
    counting: AtomicU64,
    ordered: AtomicU64,
    composite: AtomicU64,
}

impl ProbeCounters {
    pub(crate) fn snapshot(&self) -> IndexProbes {
        IndexProbes {
            materializing: self.materializing.load(AtomicOrdering::Relaxed),
            counting: self.counting.load(AtomicOrdering::Relaxed),
            ordered: self.ordered.load(AtomicOrdering::Relaxed),
            composite: self.composite.load(AtomicOrdering::Relaxed),
        }
    }

    pub(crate) fn reset(&self) {
        self.materializing.store(0, AtomicOrdering::Relaxed);
        self.counting.store(0, AtomicOrdering::Relaxed);
        self.ordered.store(0, AtomicOrdering::Relaxed);
        self.composite.store(0, AtomicOrdering::Relaxed);
    }

    /// Fold a finished worker's probe totals into these counters. Used
    /// when a parallel execution pins its own [`Snapshot`] (own counter
    /// set) and merges the work back at the end, so probe accounting is
    /// identical whether a query ran serially or morselized.
    pub(crate) fn add(&self, probes: IndexProbes) {
        self.materializing
            .fetch_add(probes.materializing, AtomicOrdering::Relaxed);
        self.counting
            .fetch_add(probes.counting, AtomicOrdering::Relaxed);
        self.ordered
            .fetch_add(probes.ordered, AtomicOrdering::Relaxed);
        self.composite
            .fetch_add(probes.composite, AtomicOrdering::Relaxed);
    }
}

/// Controls which mutations the store accepts. The PG-Trigger engine uses
/// this to enforce the paper's `BEFORE`-trigger restriction (§4.2: "BEFORE
/// statements should not produce arbitrary changes, but just condition NEW
/// states") and to make condition evaluation provably read-only.
#[derive(Debug, Clone, Default, PartialEq)]
pub enum WritePolicy {
    /// All mutations allowed.
    #[default]
    Unrestricted,
    /// No mutations allowed (condition evaluation).
    ReadOnly,
    /// Only property assignment/removal on the listed items (the NEW items
    /// of the activating statement) is allowed.
    ConditionNewOnly(BTreeSet<ItemRef>),
}

/// An opaque position in the transaction's operation log, delimiting a
/// statement. `Graph::delta_since(mark)` yields the statement-level delta.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StatementMark(usize);

#[derive(Debug, Default)]
struct TxState {
    ops: Vec<Op>,
}

/// The versioned storage of a [`Graph`]: extents, adjacency, and every
/// index, all held in persistent (structurally shared) maps so a `clone`
/// is shallow — O(#labels + #index definitions) pointer copies. This is
/// the unit of commit-epoch publication: everything a snapshot reader
/// needs lives here, while transaction state, id allocators, write policy,
/// and probe counters stay on [`Graph`].
#[derive(Debug, Clone, Default)]
pub(crate) struct StoreState {
    /// Node records, ordered by id (also serves `all_node_ids`).
    pub(crate) nodes: PMap<NodeId, Arc<NodeRecord>>,
    /// Relationship records, ordered by id (also serves `all_rel_ids`).
    pub(crate) rels: PMap<RelId, Arc<RelRecord>>,
    out_adj: PMap<NodeId, Vec<RelId>>,
    in_adj: PMap<NodeId, Vec<RelId>>,
    label_index: HashMap<Arc<str>, TailSet<NodeId>>,
    type_index: HashMap<Arc<str>, TailSet<RelId>>,
    /// Property indexes (`CREATE INDEX ON :Label(key)`), maintained
    /// through every mutation and undo path below.
    prop_index: PropIndex,
    /// Relationship-property indexes (`CREATE INDEX ON -[:TYPE(key)]-`),
    /// maintained through the same mutation and undo paths.
    rel_prop_index: RelPropIndex,
    /// Composite node indexes (`CREATE INDEX ON :Label(k1, k2, …)`),
    /// maintained record-at-a-time through every mutation and undo path:
    /// a touched record is deindexed before and reindexed after each
    /// change, so the key vector always reflects the full record.
    composite_index: NodeCompositeIndex,
    /// Composite relationship indexes (`CREATE INDEX ON -[:TYPE(k1, k2)]-`).
    rel_composite_index: RelCompositeIndex,
    /// Per-(label, rel-type, direction) degree statistics feeding join
    /// *output* cardinality estimation: `degree_stats[label][type]` holds
    /// `[out, in]` entries, each with an **exact** incidence (edge) count
    /// and a drift-bounded [`DegreeHistogram`]. Maintained through every
    /// mutation and undo path below — relationship create/delete adjusts
    /// the edge counts of both endpoints' labels, label set/remove
    /// transfers the node's per-type degrees in or out.
    degree_stats: HashMap<Arc<str>, HashMap<Arc<str>, [DegreeEntry; 2]>>,
}

/// One `(label, rel-type, direction)` degree-statistics entry.
#[derive(Debug, Clone, Default)]
struct DegreeEntry {
    /// Exact count of (node-with-label, incident-rel-of-type) pairs in
    /// this direction — the numerator of the average-degree estimate.
    edges: usize,
    /// Drift-bounded distribution of per-node degrees (see
    /// [`DegreeHistogram`] for the maintenance contract).
    hist: DegreeHistogram,
}

/// Direction index into a `[DegreeEntry; 2]` pair.
const DEG_OUT: usize = 0;
/// Direction index into a `[DegreeEntry; 2]` pair.
const DEG_IN: usize = 1;

/// Insert `id` into `map[key]`, allocating the `Arc<str>` key only on
/// first sight of a label/type — the hot path (existing key) is a plain
/// lookup, and cloning the whole map for publication bumps refcounts
/// instead of copying key strings.
fn extent_insert<Id: Ord + Copy>(map: &mut HashMap<Arc<str>, TailSet<Id>>, key: &str, id: Id) {
    if let Some(ix) = map.get_mut(key) {
        ix.insert(id);
    } else {
        let mut set = TailSet::new();
        set.insert(id);
        map.insert(Arc::from(key), set);
    }
}

/// The `[out, in]` degree-entry pair for `(label, rel_type)`, created on
/// first sight. Same `Arc<str>`-on-first-sight discipline as
/// [`extent_insert`]: the hot path (existing combo) allocates nothing.
fn degree_entry<'m>(
    map: &'m mut HashMap<Arc<str>, HashMap<Arc<str>, [DegreeEntry; 2]>>,
    label: &str,
    rel_type: &str,
) -> &'m mut [DegreeEntry; 2] {
    let by_type = if map.contains_key(label) {
        map.get_mut(label).expect("checked above")
    } else {
        map.entry(Arc::from(label)).or_default()
    };
    if by_type.contains_key(rel_type) {
        by_type.get_mut(rel_type).expect("checked above")
    } else {
        by_type.entry(Arc::from(rel_type)).or_default()
    }
}

impl StoreState {
    // ------------------------------------------------------------------
    // Raw (index-maintaining, unlogged) helpers
    // ------------------------------------------------------------------

    fn raw_insert_node(&mut self, record: NodeRecord) {
        for l in &record.labels {
            extent_insert(&mut self.label_index, l, record.id);
        }
        self.prop_index.index_node(&record);
        self.composite_index.index_item(
            record.labels.iter().map(String::as_str),
            &record.props,
            record.id,
        );
        // Adjacency entries are created on demand by `raw_insert_rel`; a
        // missing entry reads as empty everywhere, and skipping the eager
        // insert saves two treap path-copies per node under publication.
        self.nodes.insert(record.id, Arc::new(record));
    }

    fn raw_remove_node(&mut self, id: NodeId) {
        if let Some(rec) = self.nodes.remove(&id) {
            for l in &rec.labels {
                if let Some(ix) = self.label_index.get_mut(l.as_str()) {
                    ix.remove(&id);
                }
            }
            self.prop_index.deindex_node(&rec);
            self.composite_index.deindex_item(
                rec.labels.iter().map(String::as_str),
                &rec.props,
                id,
            );
        }
        self.out_adj.remove(&id);
        self.in_adj.remove(&id);
    }

    fn raw_insert_rel(&mut self, record: RelRecord) {
        extent_insert(&mut self.type_index, &record.rel_type, record.id);
        self.rel_prop_index.index_rel(&record);
        self.rel_composite_index
            .index_item_label(&record.rel_type, &record.props, record.id);
        self.out_adj.get_or_default(record.src).push(record.id);
        self.in_adj.get_or_default(record.dst).push(record.id);
        let (src, dst) = (record.src, record.dst);
        let rel_type = record.rel_type.clone();
        self.rels.insert(record.id, Arc::new(record));
        // After the insert, so a triggered histogram rebuild sees the rel.
        self.degree_note_rel(src, dst, &rel_type, true);
    }

    fn raw_remove_rel(&mut self, id: RelId) {
        if let Some(rec) = self.rels.remove(&id) {
            if let Some(ix) = self.type_index.get_mut(rec.rel_type.as_str()) {
                ix.remove(&id);
            }
            self.rel_prop_index.deindex_rel(&rec);
            self.rel_composite_index
                .deindex_item_label(&rec.rel_type, &rec.props, id);
            if let Some(adj) = self.out_adj.get_mut(&rec.src) {
                adj.retain(|&r| r != id);
            }
            if let Some(adj) = self.in_adj.get_mut(&rec.dst) {
                adj.retain(|&r| r != id);
            }
            self.degree_note_rel(rec.src, rec.dst, &rec.rel_type, false);
        }
    }

    // ------------------------------------------------------------------
    // Degree-statistics maintenance. Every path that changes a node's
    // incident-rel multiset or its label set funnels through one of the
    // two helpers below; the undo paths replay through the same raw
    // helpers, so insert/remove pairs cancel exactly and the edge counts
    // stay correct no matter how mutations and undos interleave.
    // ------------------------------------------------------------------

    /// Record a relationship appearing (`add`) or disappearing between
    /// `src` and `dst`: every label of `src` gains/loses an out-edge of
    /// `rel_type`, every label of `dst` an in-edge. Self-loops touch both
    /// directions of the same node, matching [`GraphView::rels_of`] on
    /// `Out`/`In` (a `Both` estimate sums the two and counts a self-loop
    /// twice; acceptable for a planning estimate).
    fn degree_note_rel(&mut self, src: NodeId, dst: NodeId, rel_type: &str, add: bool) {
        for (node, dir) in [(src, DEG_OUT), (dst, DEG_IN)] {
            let labels: Vec<String> = match self.nodes.get(&node) {
                Some(rec) => rec.labels.iter().cloned().collect(),
                None => continue,
            };
            for label in labels {
                let entry = degree_entry(&mut self.degree_stats, &label, rel_type);
                let e = &mut entry[dir];
                if add {
                    e.edges += 1;
                } else {
                    e.edges = e.edges.saturating_sub(1);
                }
                e.hist.drift += 1;
                let stale = e.hist.drift > 16.max(e.edges / 8);
                if stale {
                    self.rebuild_degree_hist(&label, rel_type, dir);
                }
            }
        }
    }

    /// Transfer a node's per-(type, direction) degrees into (`add`) or out
    /// of a label's entries when the label is set or removed. The node's
    /// degrees are known exactly here (one adjacency scan), so both the
    /// edge counts and the histogram buckets are adjusted exactly — label
    /// churn adds no drift.
    fn degree_note_label(&mut self, node: NodeId, label: &str, add: bool) {
        let mut per: Vec<(String, usize, usize)> = Vec::new(); // (type, dir, degree)
        for (dir, adj) in [
            (DEG_OUT, self.out_adj.get(&node)),
            (DEG_IN, self.in_adj.get(&node)),
        ] {
            let Some(rels) = adj else { continue };
            let mut counts: HashMap<String, usize> = HashMap::new();
            for rid in rels.iter() {
                if let Some(rec) = self.rels.get(rid) {
                    *counts.entry(rec.rel_type.clone()).or_default() += 1;
                }
            }
            per.extend(counts.into_iter().map(|(t, d)| (t, dir, d)));
        }
        for (rel_type, dir, degree) in per {
            let entry = degree_entry(&mut self.degree_stats, label, &rel_type);
            let e = &mut entry[dir];
            let b = degree_bucket(degree);
            if add {
                e.edges += degree;
                e.hist.buckets[b] += 1;
            } else {
                e.edges = e.edges.saturating_sub(degree);
                e.hist.buckets[b] = e.hist.buckets[b].saturating_sub(1);
            }
        }
    }

    /// Rebuild one `(label, rel-type, direction)` histogram from the live
    /// adjacency (drift → 0). O(Σ degree over the label extent), amortized
    /// over the `max(16, edges/8)` mutations that triggered it.
    fn rebuild_degree_hist(&mut self, label: &str, rel_type: &str, dir: usize) {
        let mut hist = DegreeHistogram::default();
        if let Some(extent) = self.label_index.get(label) {
            for id in extent.iter() {
                let adj = match dir {
                    DEG_OUT => self.out_adj.get(id),
                    _ => self.in_adj.get(id),
                };
                let d = adj
                    .map(|rels| {
                        rels.iter()
                            .filter(|r| {
                                self.rels.get(r).is_some_and(|rec| rec.rel_type == rel_type)
                            })
                            .count()
                    })
                    .unwrap_or(0);
                if d > 0 {
                    hist.buckets[degree_bucket(d)] += 1;
                }
            }
        }
        if let Some(entry) = self
            .degree_stats
            .get_mut(label)
            .and_then(|m| m.get_mut(rel_type))
        {
            entry[dir].hist = hist;
        }
    }

    fn undo_ops(&mut self, ops: &[Op]) {
        for op in ops.iter().rev() {
            match op {
                Op::CreateNode { record } => {
                    self.raw_remove_node(record.id);
                }
                Op::DeleteNode { record } => {
                    self.raw_insert_node(record.clone());
                }
                Op::CreateRel { record } => {
                    self.raw_remove_rel(record.id);
                }
                Op::DeleteRel { record } => {
                    self.raw_insert_rel(record.clone());
                }
                Op::SetLabel { node, label } => {
                    if let Some(n) = self.nodes.get_mut(node) {
                        let n = Arc::make_mut(n);
                        n.labels.remove(label);
                        for (k, v) in n.props.iter() {
                            self.prop_index.remove(label, k, v, *node);
                        }
                        self.composite_index
                            .deindex_item_label(label, &n.props, *node);
                    }
                    if let Some(ix) = self.label_index.get_mut(label.as_str()) {
                        ix.remove(node);
                    }
                    self.degree_note_label(*node, label, false);
                }
                Op::RemoveLabel { node, label } => {
                    if let Some(n) = self.nodes.get_mut(node) {
                        let n = Arc::make_mut(n);
                        n.labels.insert(label.clone());
                        for (k, v) in n.props.iter() {
                            self.prop_index.insert(label, k, v, *node);
                        }
                        self.composite_index
                            .index_item_label(label, &n.props, *node);
                    }
                    extent_insert(&mut self.label_index, label, *node);
                    self.degree_note_label(*node, label, true);
                }
                Op::SetNodeProp {
                    node,
                    key,
                    old,
                    new,
                } => {
                    if let Some(n) = self.nodes.get_mut(node) {
                        let n = Arc::make_mut(n);
                        self.composite_index.deindex_item(
                            n.labels.iter().map(String::as_str),
                            &n.props,
                            *node,
                        );
                        for l in n.labels.iter() {
                            self.prop_index.remove(l, key, new, *node);
                        }
                        match old {
                            Some(v) => {
                                n.props.set(key.clone(), v.clone());
                                for l in n.labels.iter() {
                                    self.prop_index.insert(l, key, v, *node);
                                }
                            }
                            None => {
                                n.props.remove(key);
                            }
                        }
                        self.composite_index.index_item(
                            n.labels.iter().map(String::as_str),
                            &n.props,
                            *node,
                        );
                    }
                }
                Op::RemoveNodeProp { node, key, old } => {
                    if let Some(n) = self.nodes.get_mut(node) {
                        let n = Arc::make_mut(n);
                        self.composite_index.deindex_item(
                            n.labels.iter().map(String::as_str),
                            &n.props,
                            *node,
                        );
                        n.props.set(key.clone(), old.clone());
                        for l in n.labels.iter() {
                            self.prop_index.insert(l, key, old, *node);
                        }
                        self.composite_index.index_item(
                            n.labels.iter().map(String::as_str),
                            &n.props,
                            *node,
                        );
                    }
                }
                Op::SetRelProp { rel, key, old, new } => {
                    if let Some(r) = self.rels.get_mut(rel) {
                        let r = Arc::make_mut(r);
                        self.rel_composite_index
                            .deindex_item_label(&r.rel_type, &r.props, *rel);
                        self.rel_prop_index.remove(&r.rel_type, key, new, *rel);
                        match old {
                            Some(v) => {
                                r.props.set(key.clone(), v.clone());
                                self.rel_prop_index.insert(&r.rel_type, key, v, *rel);
                            }
                            None => {
                                r.props.remove(key);
                            }
                        }
                        self.rel_composite_index
                            .index_item_label(&r.rel_type, &r.props, *rel);
                    }
                }
                Op::RemoveRelProp { rel, key, old } => {
                    if let Some(r) = self.rels.get_mut(rel) {
                        let r = Arc::make_mut(r);
                        self.rel_composite_index
                            .deindex_item_label(&r.rel_type, &r.props, *rel);
                        r.props.set(key.clone(), old.clone());
                        self.rel_prop_index.insert(&r.rel_type, key, old, *rel);
                        self.rel_composite_index
                            .index_item_label(&r.rel_type, &r.props, *rel);
                    }
                }
            }
        }
    }
}

/// A durability hook invoked at every non-empty commit, *before* the new
/// state is published to snapshot readers.
///
/// The WAL layer (`pg-wal`) implements this to append the committed op
/// stream to disk; the graph itself stays storage-agnostic. The contract:
///
/// * `ops` is the **post-cascade** committed op log — trigger effects are
///   already materialized as plain ops, so replaying them verbatim at
///   recovery reconstructs cascade effects without re-entering trigger
///   dispatch;
/// * `next_node` / `next_rel` are the id-allocator watermarks *after* the
///   transaction (rolled-back work advances them too, so recovery must
///   restore the watermarks from the log, not from surviving records);
/// * returning `Err` vetoes the commit: the graph undoes the
///   transaction's ops and surfaces [`GraphError::Durability`], so a
///   commit either becomes durable or never happened.
pub trait CommitSink: std::fmt::Debug + Send {
    fn on_commit(
        &mut self,
        ops: &[Op],
        next_node: u64,
        next_rel: u64,
    ) -> std::result::Result<(), String>;
}

/// The in-memory property graph.
///
/// Mutations performed while a transaction is active are recorded in an
/// undo-capable operation log; outside a transaction they apply immediately
/// without logging (bulk-load mode, used by data generators).
///
/// The graph is a **single-writer** structure; concurrent readers go
/// through [`Graph::reader_handle`] / [`Graph::snapshot`], which publish
/// immutable, epoch-pinned versions of the storage state (see the
/// [`crate::snapshot`] module). A graph that never publishes pays no
/// copy-on-write cost: the state `Arc` stays unshared and mutations edit
/// in place.
#[derive(Debug, Default)]
pub struct Graph {
    /// The live storage state, possibly shared with published snapshots.
    /// All mutations funnel through [`Graph::state_mut`], which
    /// copy-on-writes whatever is still shared.
    state: Arc<StoreState>,
    next_node: u64,
    next_rel: u64,
    /// The last published commit epoch (0 = the initial empty state).
    epoch: u64,
    /// Whether `state` has diverged from what epoch `epoch` published.
    dirty: bool,
    /// The epoch the publisher slot currently holds; lets clean commit
    /// boundaries (`begin` after a published commit, empty transactions)
    /// skip the slot lock entirely.
    last_published: u64,
    /// Created lazily on first [`Graph::reader_handle`] /
    /// [`Graph::snapshot`]; `None` means exclusive mode.
    publisher: Option<Arc<Publisher>>,
    tx: Option<TxState>,
    policy: WritePolicy,
    /// Debug counters over index probes (see [`IndexProbes`]).
    probes: ProbeCounters,
    /// Durability hook called at every non-empty commit (see [`CommitSink`]).
    sink: Option<Box<dyn CommitSink>>,
}

impl Graph {
    pub fn new() -> Self {
        Graph::default()
    }

    // ------------------------------------------------------------------
    // Transactions
    // ------------------------------------------------------------------

    /// Begin a transaction. Fails if one is already active.
    ///
    /// A transaction start is a commit boundary: any unpublished bulk-load
    /// changes are published first, so snapshots pinned during the
    /// transaction expose the state it started from.
    pub fn begin(&mut self) -> Result<()> {
        if self.tx.is_some() {
            return Err(GraphError::TransactionActive);
        }
        self.maybe_publish();
        self.tx = Some(TxState::default());
        Ok(())
    }

    /// Whether a transaction is active.
    pub fn in_tx(&self) -> bool {
        self.tx.is_some()
    }

    /// Commit the active transaction, returning its full operation log.
    /// Advances the commit epoch and publishes the new state to snapshot
    /// readers.
    ///
    /// When a [`CommitSink`] is attached, a non-empty commit is offered to
    /// it **before** publication; a sink failure undoes the transaction
    /// (as if rolled back) and surfaces [`GraphError::Durability`], so no
    /// state a reader can observe ever lacks its durable record.
    pub fn commit(&mut self) -> Result<Vec<Op>> {
        match self.tx.take() {
            Some(tx) => {
                if !tx.ops.is_empty() {
                    if let Some(mut sink) = self.sink.take() {
                        let res = sink.on_commit(&tx.ops, self.next_node, self.next_rel);
                        self.sink = Some(sink);
                        if let Err(reason) = res {
                            self.state_mut().undo_ops(&tx.ops);
                            self.maybe_publish();
                            return Err(GraphError::Durability(reason));
                        }
                    }
                }
                self.maybe_publish();
                Ok(tx.ops)
            }
            None => Err(GraphError::NoActiveTransaction),
        }
    }

    /// Attach (or with `None`, detach) the durability hook, returning the
    /// previous one. The sink only observes transactional commits: bulk
    /// loads outside a transaction bypass the op log entirely and must be
    /// made durable by a snapshot/checkpoint instead.
    pub fn set_commit_sink(
        &mut self,
        sink: Option<Box<dyn CommitSink>>,
    ) -> Option<Box<dyn CommitSink>> {
        std::mem::replace(&mut self.sink, sink)
    }

    /// Whether a durability hook is attached.
    pub fn has_commit_sink(&self) -> bool {
        self.sink.is_some()
    }

    /// Roll back the active transaction, restoring the pre-transaction state.
    pub fn rollback(&mut self) -> Result<()> {
        let tx = self.tx.take().ok_or(GraphError::NoActiveTransaction)?;
        if !tx.ops.is_empty() {
            self.state_mut().undo_ops(&tx.ops);
        }
        self.maybe_publish();
        Ok(())
    }

    /// Roll back to a statement mark, undoing only the ops after it. Used to
    /// abort a single statement (and its triggers) without losing earlier
    /// work in the transaction.
    pub fn rollback_to(&mut self, mark: StatementMark) -> Result<()> {
        let tx = self.tx.as_mut().ok_or(GraphError::NoActiveTransaction)?;
        let tail: Vec<Op> = tx.ops.split_off(mark.0);
        if !tail.is_empty() {
            self.state_mut().undo_ops(&tail);
        }
        Ok(())
    }

    /// Mark the current position in the op log (a statement boundary).
    pub fn mark(&self) -> StatementMark {
        StatementMark(self.tx.as_ref().map(|t| t.ops.len()).unwrap_or(0))
    }

    /// The ops recorded since `mark`.
    pub fn ops_since(&self, mark: StatementMark) -> &[Op] {
        match &self.tx {
            Some(tx) => &tx.ops[mark.0.min(tx.ops.len())..],
            None => &[],
        }
    }

    /// The normalized delta of the ops since `mark`.
    pub fn delta_since(&self, mark: StatementMark) -> Delta {
        let ops = self.ops_since(mark);
        Delta::from_ops(
            ops,
            |id| self.state.nodes.get(&id).map(|r| (**r).clone()),
            |id| self.state.rels.get(&id).map(|r| (**r).clone()),
        )
    }

    /// Normalize an arbitrary op slice against the **current** state (used
    /// for transaction-level deltas after commit).
    pub fn delta_of_ops(&self, ops: &[Op]) -> Delta {
        Delta::from_ops(
            ops,
            |id| self.state.nodes.get(&id).map(|r| (**r).clone()),
            |id| self.state.rels.get(&id).map(|r| (**r).clone()),
        )
    }

    // ------------------------------------------------------------------
    // Commit-epoch publication (single writer, N snapshot readers)
    // ------------------------------------------------------------------

    /// Mutable access to the storage state, copy-on-writing whatever is
    /// still shared with published snapshots. Every mutation and DDL path
    /// funnels through here so the dirty flag can never be missed.
    fn state_mut(&mut self) -> &mut StoreState {
        self.dirty = true;
        Arc::make_mut(&mut self.state)
    }

    /// Roll the epoch forward over unpublished changes and refresh the
    /// publisher slot. Called at every commit boundary: `begin`, `commit`,
    /// `rollback`, and out-of-transaction snapshot requests.
    fn maybe_publish(&mut self) {
        if self.dirty {
            self.epoch += 1;
            self.dirty = false;
        }
        // Nothing changed since the slot last saw this epoch: skip the
        // lock. This keeps clean `begin`s free under publication.
        if self.epoch == self.last_published {
            return;
        }
        if let Some(p) = &self.publisher {
            // `self.publisher` is the only strong count when no reader
            // handle is live: skip the slot store, leaving
            // `last_published` behind so the next boundary that *does*
            // see a handle catches up. The saving is not the store
            // itself but everything downstream of it — with no current
            // roots parked in the slot the writer stays sole owner of
            // its treap nodes, and the next transaction mutates in
            // place instead of path-copying a spine per touched key.
            if Arc::strong_count(p) == 1 {
                return;
            }
            p.publish(self.epoch, &self.state);
            self.last_published = self.epoch;
        }
    }

    /// The last committed (published) epoch. Epoch 0 is the initial empty
    /// state; every commit boundary that changed anything advances it by 1.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Strong count on the live state root — observability for epoch
    /// reclamation tests. 1 means exclusive (no publisher, no snapshots of
    /// the current version); with a publisher whose slot is current the
    /// baseline is 2 (graph + slot), plus 1 per snapshot still pinning
    /// this exact version. While publication has lapsed (no live reader
    /// handles, so commit boundaries skip the slot) the count drops back
    /// to 1: the slot keeps holding the last version it saw, not the
    /// live root.
    pub fn state_refcount(&self) -> usize {
        Arc::strong_count(&self.state)
    }

    /// A cloneable, `Send + Sync` handle that reader threads use to pin
    /// fresh snapshots without going through the writer.
    ///
    /// The first call must happen **outside** a transaction (the committed
    /// state becomes the handle's initial publication); it switches the
    /// graph from exclusive mode to copy-on-write publication. Subsequent
    /// calls are cheap and valid at any time.
    pub fn reader_handle(&mut self) -> GraphHandle {
        match &self.publisher {
            None => {
                assert!(
                    !self.in_tx(),
                    "the first reader handle must be created outside a transaction"
                );
                if self.dirty {
                    self.epoch += 1;
                    self.dirty = false;
                }
                let p = Arc::new(Publisher::new(self.epoch, Arc::clone(&self.state)));
                self.publisher = Some(Arc::clone(&p));
                self.last_published = self.epoch;
                GraphHandle::new(p)
            }
            Some(p) => {
                // Clone the publisher *before* publishing so the
                // strong count reflects this handle and the lapsed-
                // publication skip in `maybe_publish` cannot fire.
                let handle = GraphHandle::new(Arc::clone(p));
                if !self.in_tx() {
                    self.maybe_publish();
                } else if self.last_published != self.epoch {
                    // Publication lapsed (every handle was dropped, so
                    // recent boundaries skipped the slot) and we are
                    // mid-transaction. The boundary state is still
                    // recoverable as long as the transaction has not
                    // mutated anything: the writer's state *is* the
                    // boundary state, so store it. Once the transaction
                    // dirtied the state the boundary version has been
                    // overwritten in place (the writer was sole owner)
                    // and no snapshot can be served — fail loudly
                    // rather than expose in-flight mutations.
                    assert!(
                        !self.dirty,
                        "cannot mint a reader handle mid-transaction after \
                         publication lapsed: create a handle before the \
                         transaction mutates anything"
                    );
                    p.publish(self.epoch, &self.state);
                    self.last_published = self.epoch;
                }
                handle
            }
        }
    }

    /// Pin an immutable, `Send + Sync` snapshot of the last committed
    /// epoch. Mid-transaction this exposes the state as of the previous
    /// commit boundary — never in-flight mutations or partially applied
    /// trigger cascades.
    pub fn snapshot(&mut self) -> Snapshot {
        self.reader_handle().snapshot()
    }

    // ------------------------------------------------------------------
    // Write policy
    // ------------------------------------------------------------------

    /// Replace the write policy, returning the previous one.
    pub fn set_write_policy(&mut self, policy: WritePolicy) -> WritePolicy {
        std::mem::replace(&mut self.policy, policy)
    }

    pub fn write_policy(&self) -> &WritePolicy {
        &self.policy
    }

    fn check_write(&self, op: &'static str, item: Option<ItemRef>) -> Result<()> {
        match &self.policy {
            WritePolicy::Unrestricted => Ok(()),
            WritePolicy::ReadOnly => Err(GraphError::WritePolicy { op, item }),
            WritePolicy::ConditionNewOnly(allowed) => match item {
                Some(i) if allowed.contains(&i) && (op.contains("prop")) => Ok(()),
                _ => Err(GraphError::WritePolicy { op, item }),
            },
        }
    }

    fn log(&mut self, op: Op) {
        if let Some(tx) = &mut self.tx {
            tx.ops.push(op);
        }
    }

    // ------------------------------------------------------------------
    // Mutations
    // ------------------------------------------------------------------

    /// Create a node with the given labels and properties.
    pub fn create_node<L, S>(&mut self, labels: L, props: PropertyMap) -> Result<NodeId>
    where
        L: IntoIterator<Item = S>,
        S: Into<String>,
    {
        self.check_write("create node", None)?;
        for (k, v) in props.iter() {
            if !v.is_storable() {
                return Err(GraphError::NotStorable {
                    key: k.clone(),
                    type_name: v.type_name(),
                });
            }
        }
        let id = NodeId(self.next_node);
        self.next_node += 1;
        let record = NodeRecord {
            id,
            labels: labels.into_iter().map(Into::into).collect(),
            props,
        };
        self.state_mut().raw_insert_node(record.clone());
        self.log(Op::CreateNode { record });
        Ok(id)
    }

    /// Delete a node. Fails with [`GraphError::HasRelationships`] when
    /// relationships remain; use [`Graph::detach_delete_node`] for Cypher's
    /// `DETACH DELETE`.
    pub fn delete_node(&mut self, id: NodeId) -> Result<()> {
        self.check_write("delete node", Some(id.into()))?;
        let rec = self
            .state
            .nodes
            .get(&id)
            .ok_or(GraphError::NodeNotFound(id))?
            .as_ref()
            .clone();
        let degree = self.state.out_adj.get(&id).map(|v| v.len()).unwrap_or(0)
            + self.state.in_adj.get(&id).map(|v| v.len()).unwrap_or(0);
        if degree > 0 {
            return Err(GraphError::HasRelationships(id));
        }
        self.state_mut().raw_remove_node(id);
        self.log(Op::DeleteNode { record: rec });
        Ok(())
    }

    /// Delete a node together with all its relationships.
    pub fn detach_delete_node(&mut self, id: NodeId) -> Result<()> {
        self.check_write("delete node", Some(id.into()))?;
        if !self.state.nodes.contains_key(&id) {
            return Err(GraphError::NodeNotFound(id));
        }
        let mut attached: Vec<RelId> = Vec::new();
        if let Some(out) = self.state.out_adj.get(&id) {
            attached.extend(out.iter().copied());
        }
        if let Some(inc) = self.state.in_adj.get(&id) {
            attached.extend(inc.iter().copied());
        }
        attached.sort();
        attached.dedup();
        for rid in attached {
            self.delete_rel(rid)?;
        }
        self.delete_node(id)
    }

    /// Create a relationship.
    pub fn create_rel(
        &mut self,
        src: NodeId,
        dst: NodeId,
        rel_type: impl Into<String>,
        props: PropertyMap,
    ) -> Result<RelId> {
        self.check_write("create relationship", None)?;
        if !self.state.nodes.contains_key(&src) {
            return Err(GraphError::NodeNotFound(src));
        }
        if !self.state.nodes.contains_key(&dst) {
            return Err(GraphError::NodeNotFound(dst));
        }
        for (k, v) in props.iter() {
            if !v.is_storable() {
                return Err(GraphError::NotStorable {
                    key: k.clone(),
                    type_name: v.type_name(),
                });
            }
        }
        let id = RelId(self.next_rel);
        self.next_rel += 1;
        let record = RelRecord {
            id,
            rel_type: rel_type.into(),
            src,
            dst,
            props,
        };
        self.state_mut().raw_insert_rel(record.clone());
        self.log(Op::CreateRel { record });
        Ok(id)
    }

    /// Delete a relationship.
    pub fn delete_rel(&mut self, id: RelId) -> Result<()> {
        self.check_write("delete relationship", Some(id.into()))?;
        let rec = self
            .state
            .rels
            .get(&id)
            .ok_or(GraphError::RelNotFound(id))?
            .as_ref()
            .clone();
        self.state_mut().raw_remove_rel(id);
        self.log(Op::DeleteRel { record: rec });
        Ok(())
    }

    /// Add a label to a node; returns `false` (and records nothing) when the
    /// label was already present.
    pub fn set_label(&mut self, node: NodeId, label: impl Into<String>) -> Result<bool> {
        let label = label.into();
        self.check_write("set label", Some(node.into()))?;
        let present = self
            .state
            .nodes
            .get(&node)
            .ok_or(GraphError::NodeNotFound(node))?
            .labels
            .contains(&label);
        if present {
            return Ok(false);
        }
        let st = self.state_mut();
        let rec = Arc::make_mut(st.nodes.get_mut(&node).expect("existence checked above"));
        rec.labels.insert(label.clone());
        for (k, v) in rec.props.iter() {
            st.prop_index.insert(&label, k, v, node);
        }
        st.composite_index
            .index_item_label(&label, &rec.props, node);
        extent_insert(&mut st.label_index, &label, node);
        st.degree_note_label(node, &label, true);
        self.log(Op::SetLabel { node, label });
        Ok(true)
    }

    /// Remove a label from a node; `false` when it was absent.
    pub fn remove_label(&mut self, node: NodeId, label: &str) -> Result<bool> {
        self.check_write("remove label", Some(node.into()))?;
        let present = self
            .state
            .nodes
            .get(&node)
            .ok_or(GraphError::NodeNotFound(node))?
            .labels
            .contains(label);
        if !present {
            return Ok(false);
        }
        let st = self.state_mut();
        let rec = Arc::make_mut(st.nodes.get_mut(&node).expect("existence checked above"));
        rec.labels.remove(label);
        for (k, v) in rec.props.iter() {
            st.prop_index.remove(label, k, v, node);
        }
        st.composite_index
            .deindex_item_label(label, &rec.props, node);
        if let Some(ix) = st.label_index.get_mut(label) {
            ix.remove(&node);
        }
        st.degree_note_label(node, label, false);
        self.log(Op::RemoveLabel {
            node,
            label: label.to_string(),
        });
        Ok(true)
    }

    /// Assign a node property. Assigning `NULL` removes the property, per
    /// Cypher `SET` semantics.
    pub fn set_node_prop(
        &mut self,
        node: NodeId,
        key: impl Into<String>,
        value: Value,
    ) -> Result<()> {
        let key = key.into();
        self.check_write("set node prop", Some(node.into()))?;
        if !value.is_storable() {
            return Err(GraphError::NotStorable {
                key,
                type_name: value.type_name(),
            });
        }
        if !self.state.nodes.contains_key(&node) {
            return Err(GraphError::NodeNotFound(node));
        }
        let st = self.state_mut();
        let rec = Arc::make_mut(st.nodes.get_mut(&node).expect("existence checked above"));
        st.composite_index
            .deindex_item(rec.labels.iter().map(String::as_str), &rec.props, node);
        if value.is_null() {
            let old = rec.props.remove(&key);
            if let Some(old_v) = &old {
                for l in rec.labels.iter() {
                    st.prop_index.remove(l, &key, old_v, node);
                }
            }
            st.composite_index
                .index_item(rec.labels.iter().map(String::as_str), &rec.props, node);
            if let Some(old) = old {
                self.log(Op::RemoveNodeProp { node, key, old });
            }
            return Ok(());
        }
        let old = rec.props.set(key.clone(), value.clone());
        for l in rec.labels.iter() {
            if let Some(old_v) = &old {
                st.prop_index.remove(l, &key, old_v, node);
            }
            st.prop_index.insert(l, &key, &value, node);
        }
        st.composite_index
            .index_item(rec.labels.iter().map(String::as_str), &rec.props, node);
        self.log(Op::SetNodeProp {
            node,
            key,
            old,
            new: value,
        });
        Ok(())
    }

    /// Remove a node property, returning its old value (if any).
    pub fn remove_node_prop(&mut self, node: NodeId, key: &str) -> Result<Option<Value>> {
        self.check_write("remove node prop", Some(node.into()))?;
        if !self.state.nodes.contains_key(&node) {
            return Err(GraphError::NodeNotFound(node));
        }
        let st = self.state_mut();
        let rec = Arc::make_mut(st.nodes.get_mut(&node).expect("existence checked above"));
        st.composite_index
            .deindex_item(rec.labels.iter().map(String::as_str), &rec.props, node);
        let old = rec.props.remove(key);
        if let Some(old_v) = &old {
            for l in rec.labels.iter() {
                st.prop_index.remove(l, key, old_v, node);
            }
        }
        st.composite_index
            .index_item(rec.labels.iter().map(String::as_str), &rec.props, node);
        if let Some(old_v) = &old {
            self.log(Op::RemoveNodeProp {
                node,
                key: key.to_string(),
                old: old_v.clone(),
            });
        }
        Ok(old)
    }

    /// Assign a relationship property (`NULL` removes).
    pub fn set_rel_prop(&mut self, rel: RelId, key: impl Into<String>, value: Value) -> Result<()> {
        let key = key.into();
        self.check_write("set rel prop", Some(rel.into()))?;
        if !value.is_storable() {
            return Err(GraphError::NotStorable {
                key,
                type_name: value.type_name(),
            });
        }
        if !self.state.rels.contains_key(&rel) {
            return Err(GraphError::RelNotFound(rel));
        }
        let st = self.state_mut();
        let rec = Arc::make_mut(st.rels.get_mut(&rel).expect("existence checked above"));
        st.rel_composite_index
            .deindex_item_label(&rec.rel_type, &rec.props, rel);
        if value.is_null() {
            let old = rec.props.remove(&key);
            if let Some(old_v) = &old {
                st.rel_prop_index.remove(&rec.rel_type, &key, old_v, rel);
            }
            st.rel_composite_index
                .index_item_label(&rec.rel_type, &rec.props, rel);
            if let Some(old) = old {
                self.log(Op::RemoveRelProp { rel, key, old });
            }
            return Ok(());
        }
        let old = rec.props.set(key.clone(), value.clone());
        if let Some(old_v) = &old {
            st.rel_prop_index.remove(&rec.rel_type, &key, old_v, rel);
        }
        st.rel_prop_index.insert(&rec.rel_type, &key, &value, rel);
        st.rel_composite_index
            .index_item_label(&rec.rel_type, &rec.props, rel);
        self.log(Op::SetRelProp {
            rel,
            key,
            old,
            new: value,
        });
        Ok(())
    }

    /// Remove a relationship property.
    pub fn remove_rel_prop(&mut self, rel: RelId, key: &str) -> Result<Option<Value>> {
        self.check_write("remove rel prop", Some(rel.into()))?;
        if !self.state.rels.contains_key(&rel) {
            return Err(GraphError::RelNotFound(rel));
        }
        let st = self.state_mut();
        let rec = Arc::make_mut(st.rels.get_mut(&rel).expect("existence checked above"));
        st.rel_composite_index
            .deindex_item_label(&rec.rel_type, &rec.props, rel);
        let old = rec.props.remove(key);
        if let Some(old_v) = &old {
            st.rel_prop_index.remove(&rec.rel_type, key, old_v, rel);
        }
        st.rel_composite_index
            .index_item_label(&rec.rel_type, &rec.props, rel);
        if let Some(old_v) = &old {
            self.log(Op::RemoveRelProp {
                rel,
                key: key.to_string(),
                old: old_v.clone(),
            });
        }
        Ok(old)
    }

    // ------------------------------------------------------------------
    // Direct reads (record access)
    // ------------------------------------------------------------------

    pub fn node(&self, id: NodeId) -> Option<&NodeRecord> {
        self.state.nodes.get(&id).map(|r| &**r)
    }

    pub fn rel(&self, id: RelId) -> Option<&RelRecord> {
        self.state.rels.get(&id).map(|r| &**r)
    }

    pub fn node_count(&self) -> usize {
        self.state.nodes.len()
    }

    pub fn rel_count(&self) -> usize {
        self.state.rels.len()
    }

    /// All labels currently present (with non-empty extents).
    pub fn labels(&self) -> Vec<String> {
        let mut ls: Vec<String> = self
            .state
            .label_index
            .iter()
            .filter(|(_, ix)| !ix.is_empty())
            .map(|(l, _)| l.to_string())
            .collect();
        ls.sort();
        ls
    }

    /// All relationship types currently present.
    pub fn rel_types(&self) -> Vec<String> {
        let mut ts: Vec<String> = self
            .state
            .type_index
            .iter()
            .filter(|(_, ix)| !ix.is_empty())
            .map(|(t, _)| t.to_string())
            .collect();
        ts.sort();
        ts
    }

    /// Relationships of a given type (index lookup).
    pub fn rels_with_type(&self, rel_type: &str) -> Vec<RelId> {
        self.state
            .type_index
            .get(rel_type)
            .map(|ix| ix.iter().copied().collect())
            .unwrap_or_default()
    }

    // ------------------------------------------------------------------
    // Property indexes (DDL)
    // ------------------------------------------------------------------

    /// Create a property index on `(label, key)` and populate it from the
    /// current extent. Returns `false` when it already exists.
    ///
    /// Index DDL is not transactional: the definition survives rollback
    /// (its *entries* are kept consistent by the undo paths).
    pub fn create_index(&mut self, label: &str, key: &str) -> bool {
        if self.state.prop_index.is_indexed(label, key) {
            return false;
        }
        let st = self.state_mut();
        st.prop_index.create(label, key);
        if let Some(extent) = st.label_index.get(label) {
            for id in extent.iter() {
                if let Some(v) = st.nodes.get(id).and_then(|rec| rec.props.get(key)) {
                    st.prop_index.insert(label, key, v, *id);
                }
            }
        }
        true
    }

    /// Drop the property index on `(label, key)`; `false` when absent.
    pub fn drop_index(&mut self, label: &str, key: &str) -> bool {
        if !self.state.prop_index.is_indexed(label, key) {
            return false;
        }
        self.state_mut().prop_index.drop_index(label, key)
    }

    /// Whether `(label, key)` is indexed.
    pub fn has_index(&self, label: &str, key: &str) -> bool {
        self.state.prop_index.is_indexed(label, key)
    }

    /// All `(label, key)` index definitions, sorted.
    pub fn indexes(&self) -> Vec<(String, String)> {
        self.state.prop_index.definitions()
    }

    /// Create a relationship-property index on `(rel_type, key)` and
    /// populate it from the current type extent. Returns `false` when it
    /// already exists. Like node indexes, the definition is not
    /// transactional (entries are kept consistent by the undo paths).
    pub fn create_rel_index(&mut self, rel_type: &str, key: &str) -> bool {
        if self.state.rel_prop_index.is_indexed(rel_type, key) {
            return false;
        }
        let st = self.state_mut();
        st.rel_prop_index.create(rel_type, key);
        if let Some(extent) = st.type_index.get(rel_type) {
            for id in extent.iter() {
                if let Some(v) = st.rels.get(id).and_then(|rec| rec.props.get(key)) {
                    st.rel_prop_index.insert(rel_type, key, v, *id);
                }
            }
        }
        true
    }

    /// Drop the relationship-property index on `(rel_type, key)`.
    pub fn drop_rel_index(&mut self, rel_type: &str, key: &str) -> bool {
        if !self.state.rel_prop_index.is_indexed(rel_type, key) {
            return false;
        }
        self.state_mut().rel_prop_index.drop_index(rel_type, key)
    }

    /// Whether `(rel_type, key)` is indexed.
    pub fn has_rel_index(&self, rel_type: &str, key: &str) -> bool {
        self.state.rel_prop_index.is_indexed(rel_type, key)
    }

    /// All `(rel_type, key)` relationship-index definitions, sorted.
    pub fn rel_indexes(&self) -> Vec<(String, String)> {
        self.state.rel_prop_index.definitions()
    }

    /// Create a composite index on `(label, columns)` and populate it from
    /// the current extent. Returns `false` when it already exists or the
    /// column list is malformed (fewer than two columns, or repeats).
    /// Like single-key indexes, the definition is not transactional (its
    /// entries are kept consistent by the undo paths).
    pub fn create_composite_index(&mut self, label: &str, columns: &[String]) -> bool {
        if self.state.composite_index.is_indexed(label, columns) {
            return false;
        }
        let st = self.state_mut();
        if !st.composite_index.create(label, columns) {
            return false;
        }
        if let Some(extent) = st.label_index.get(label) {
            for id in extent.iter() {
                if let Some(rec) = st.nodes.get(id) {
                    st.composite_index
                        .insert_into(label, columns, &rec.props, *id);
                }
            }
        }
        true
    }

    /// Drop the composite index on `(label, columns)`; `false` when absent.
    pub fn drop_composite_index(&mut self, label: &str, columns: &[String]) -> bool {
        if !self.state.composite_index.is_indexed(label, columns) {
            return false;
        }
        self.state_mut().composite_index.drop_index(label, columns)
    }

    /// Whether `(label, columns)` carries a composite index.
    pub fn has_composite_index(&self, label: &str, columns: &[String]) -> bool {
        self.state.composite_index.is_indexed(label, columns)
    }

    /// All `(label, columns)` composite-index definitions, sorted.
    pub fn composite_indexes(&self) -> Vec<(String, Vec<String>)> {
        self.state.composite_index.definitions()
    }

    /// Create a composite relationship index on `(rel_type, columns)` and
    /// populate it from the current type extent.
    pub fn create_rel_composite_index(&mut self, rel_type: &str, columns: &[String]) -> bool {
        if self.state.rel_composite_index.is_indexed(rel_type, columns) {
            return false;
        }
        let st = self.state_mut();
        if !st.rel_composite_index.create(rel_type, columns) {
            return false;
        }
        if let Some(extent) = st.type_index.get(rel_type) {
            for id in extent.iter() {
                if let Some(rec) = st.rels.get(id) {
                    st.rel_composite_index
                        .insert_into(rel_type, columns, &rec.props, *id);
                }
            }
        }
        true
    }

    /// Drop the composite relationship index on `(rel_type, columns)`.
    pub fn drop_rel_composite_index(&mut self, rel_type: &str, columns: &[String]) -> bool {
        if !self.state.rel_composite_index.is_indexed(rel_type, columns) {
            return false;
        }
        self.state_mut()
            .rel_composite_index
            .drop_index(rel_type, columns)
    }

    /// Whether `(rel_type, columns)` carries a composite index.
    pub fn has_rel_composite_index(&self, rel_type: &str, columns: &[String]) -> bool {
        self.state.rel_composite_index.is_indexed(rel_type, columns)
    }

    /// All `(rel_type, columns)` composite relationship-index definitions.
    pub fn rel_composite_indexes(&self) -> Vec<(String, Vec<String>)> {
        self.state.rel_composite_index.definitions()
    }

    /// Rebuild every index histogram from the live key space (drift → 0).
    ///
    /// Incremental maintenance keeps totals exact but lets the equi-depth
    /// property erode within the documented `2·depth + drift` bound; bulk
    /// loads (which bypass the amortized rebuild cadence badly) should
    /// call this once after loading so planning estimates start from a
    /// fresh, zero-drift histogram.
    pub fn rebuild_stats(&mut self) {
        let st = self.state_mut();
        st.prop_index.rebuild_stats();
        st.rel_prop_index.rebuild_stats();
        st.composite_index.rebuild_stats();
        st.rel_composite_index.rebuild_stats();
        let combos: Vec<(String, String)> = st
            .degree_stats
            .iter()
            .flat_map(|(l, by_type)| by_type.keys().map(move |t| (l.to_string(), t.to_string())))
            .collect();
        for (label, rel_type) in combos {
            st.rebuild_degree_hist(&label, &rel_type, DEG_OUT);
            st.rebuild_degree_hist(&label, &rel_type, DEG_IN);
        }
    }

    // ------------------------------------------------------------------
    // Recovery and bulk load (the WAL layer's write-side surface)
    // ------------------------------------------------------------------

    /// Re-apply a committed op sequence verbatim (WAL replay).
    ///
    /// Forward application reuses the undo machinery: applying `op` is
    /// undoing `op.invert()`, so replay exercises exactly the same
    /// index-maintenance code as rollback — there is no second,
    /// subtly-different apply path to keep consistent. Ops are applied
    /// unlogged and outside any transaction (replay is not undoable), and
    /// the id-allocator watermarks advance past every id seen so
    /// post-recovery allocations never collide with replayed records.
    ///
    /// Callers replay *effects*: the ops were recorded post-cascade, so
    /// trigger dispatch must not be re-entered around this call.
    pub fn apply_committed_ops(&mut self, ops: &[Op]) -> Result<()> {
        if self.in_tx() {
            return Err(GraphError::TransactionActive);
        }
        let mut next_node = self.next_node;
        let mut next_rel = self.next_rel;
        for op in ops {
            if let Some(n) = op.node_id() {
                next_node = next_node.max(n.0 + 1);
            }
            if let Some(r) = op.rel_id() {
                next_rel = next_rel.max(r.0 + 1);
            }
        }
        let st = self.state_mut();
        for op in ops {
            st.undo_ops(std::slice::from_ref(&op.invert()));
        }
        self.next_node = next_node;
        self.next_rel = next_rel;
        Ok(())
    }

    /// Insert a node record verbatim (snapshot load). Indexes and degree
    /// statistics are maintained; the node-id watermark advances past the
    /// record's id. Unlogged, so only valid outside a transaction.
    pub fn load_node(&mut self, record: NodeRecord) -> Result<()> {
        if self.in_tx() {
            return Err(GraphError::TransactionActive);
        }
        self.next_node = self.next_node.max(record.id.0 + 1);
        self.state_mut().raw_insert_node(record);
        Ok(())
    }

    /// Insert a relationship record verbatim (snapshot load). Load nodes
    /// first: degree statistics attribute the edge to the endpoint labels
    /// visible at insert time.
    pub fn load_rel(&mut self, record: RelRecord) -> Result<()> {
        if self.in_tx() {
            return Err(GraphError::TransactionActive);
        }
        self.next_rel = self.next_rel.max(record.id.0 + 1);
        self.state_mut().raw_insert_rel(record);
        Ok(())
    }

    /// The id-allocator watermarks `(next_node, next_rel)`. Persisted in
    /// every WAL frame and snapshot: surviving records alone under-count
    /// (rolled-back and deleted work advances the allocators too), and
    /// recovering a lower watermark would re-issue ids.
    pub fn id_watermarks(&self) -> (u64, u64) {
        (self.next_node, self.next_rel)
    }

    /// Raise the id-allocator watermarks to at least `(next_node,
    /// next_rel)`. Lowering is impossible by design — max semantics — so
    /// replaying frames in any order converges on the highest watermark.
    pub fn set_id_floor(&mut self, next_node: u64, next_rel: u64) {
        self.next_node = self.next_node.max(next_node);
        self.next_rel = self.next_rel.max(next_rel);
    }

    /// All node records in id order (snapshot writing, state comparison).
    pub fn nodes(&self) -> impl Iterator<Item = &NodeRecord> {
        self.state.nodes.values().map(|rec| rec.as_ref())
    }

    /// All relationship records in id order.
    pub fn rels(&self) -> impl Iterator<Item = &RelRecord> {
        self.state.rels.values().map(|rec| rec.as_ref())
    }

    // ------------------------------------------------------------------
    // Probe observability (debug counters)
    // ------------------------------------------------------------------

    /// Snapshot of the index-probe counters since the last reset.
    pub fn index_probes(&self) -> IndexProbes {
        self.probes.snapshot()
    }

    /// Reset the index-probe counters to zero.
    pub fn reset_index_probes(&self) {
        self.probes.reset()
    }
}

/// Implements [`GraphView`] for a store-backed type carrying a `state`
/// field (a [`StoreState`], possibly behind `Arc`) and a `probes` field
/// ([`ProbeCounters`], possibly behind `Arc`). The live [`Graph`] and the
/// pinned [`Snapshot`] serve reads identically — same access paths, same
/// refusal semantics — each against its own probe counters.
macro_rules! impl_graph_view_via_state {
    ($ty:ty) => {
        impl GraphView for $ty {
            fn node_exists(&self, id: NodeId) -> bool {
                self.state.nodes.contains_key(&id)
            }

            fn rel_exists(&self, id: RelId) -> bool {
                self.state.rels.contains_key(&id)
            }

            fn node_labels(&self, id: NodeId) -> Vec<String> {
                self.state
                    .nodes
                    .get(&id)
                    .map(|n| n.labels.iter().cloned().collect())
                    .unwrap_or_default()
            }

            fn node_has_label(&self, id: NodeId, label: &str) -> bool {
                self.state
                    .nodes
                    .get(&id)
                    .map(|n| n.has_label(label))
                    .unwrap_or(false)
            }

            fn node_prop(&self, id: NodeId, key: &str) -> Option<Value> {
                self.state
                    .nodes
                    .get(&id)
                    .and_then(|n| n.props.get(key).cloned())
            }

            fn node_prop_keys(&self, id: NodeId) -> Vec<String> {
                self.state
                    .nodes
                    .get(&id)
                    .map(|n| n.props.keys().cloned().collect())
                    .unwrap_or_default()
            }

            fn rel_type(&self, id: RelId) -> Option<String> {
                self.state.rels.get(&id).map(|r| r.rel_type.clone())
            }

            fn rel_prop(&self, id: RelId, key: &str) -> Option<Value> {
                self.state
                    .rels
                    .get(&id)
                    .and_then(|r| r.props.get(key).cloned())
            }

            fn rel_prop_keys(&self, id: RelId) -> Vec<String> {
                self.state
                    .rels
                    .get(&id)
                    .map(|r| r.props.keys().cloned().collect())
                    .unwrap_or_default()
            }

            fn rel_endpoints(&self, id: RelId) -> Option<(NodeId, NodeId)> {
                self.state.rels.get(&id).map(|r| (r.src, r.dst))
            }

            fn nodes_with_label(&self, label: &str) -> Vec<NodeId> {
                self.state
                    .label_index
                    .get(label)
                    .map(|ix| ix.iter().copied().collect())
                    .unwrap_or_default()
            }

            fn all_node_ids(&self) -> Vec<NodeId> {
                self.state.nodes.keys().copied().collect()
            }

            fn all_rel_ids(&self) -> Vec<RelId> {
                self.state.rels.keys().copied().collect()
            }

            fn rels_of(&self, node: NodeId, dir: Direction) -> Vec<RelId> {
                let mut out: Vec<RelId> = Vec::new();
                if matches!(dir, Direction::Out | Direction::Both) {
                    if let Some(adj) = self.state.out_adj.get(&node) {
                        out.extend(adj.iter().copied());
                    }
                }
                if matches!(dir, Direction::In | Direction::Both) {
                    if let Some(adj) = self.state.in_adj.get(&node) {
                        if matches!(dir, Direction::Both) {
                            // A relationship appears in both adjacency lists
                            // of the same node only when it is a self-loop;
                            // skip those here (already collected from the
                            // out-list) instead of scanning `out` for every
                            // in-edge.
                            out.extend(adj.iter().copied().filter(|r| {
                                self.state.rels.get(r).is_none_or(|rec| rec.src != rec.dst)
                            }));
                        } else {
                            out.extend(adj.iter().copied());
                        }
                    }
                }
                out
            }

            fn nodes_with_prop(
                &self,
                label: &str,
                key: &str,
                value: &Value,
            ) -> Option<Vec<NodeId>> {
                self.probes
                    .materializing
                    .fetch_add(1, AtomicOrdering::Relaxed);
                self.state.prop_index.lookup(label, key, value)
            }

            fn nodes_in_prop_range(
                &self,
                label: &str,
                key: &str,
                lower: Bound<&Value>,
                upper: Bound<&Value>,
            ) -> Option<Vec<NodeId>> {
                self.probes
                    .materializing
                    .fetch_add(1, AtomicOrdering::Relaxed);
                self.state.prop_index.range_lookup(label, key, lower, upper)
            }

            fn nodes_with_prop_prefix(
                &self,
                label: &str,
                key: &str,
                prefix: &str,
            ) -> Option<Vec<NodeId>> {
                self.probes
                    .materializing
                    .fetch_add(1, AtomicOrdering::Relaxed);
                self.state.prop_index.prefix_lookup(label, key, prefix)
            }

            fn rels_with_prop(
                &self,
                rel_type: &str,
                key: &str,
                value: &Value,
            ) -> Option<Vec<RelId>> {
                self.probes
                    .materializing
                    .fetch_add(1, AtomicOrdering::Relaxed);
                self.state.rel_prop_index.lookup(rel_type, key, value)
            }

            fn rels_in_prop_range(
                &self,
                rel_type: &str,
                key: &str,
                lower: Bound<&Value>,
                upper: Bound<&Value>,
            ) -> Option<Vec<RelId>> {
                self.probes
                    .materializing
                    .fetch_add(1, AtomicOrdering::Relaxed);
                self.state
                    .rel_prop_index
                    .range_lookup(rel_type, key, lower, upper)
            }

            fn count_nodes_with_prop(
                &self,
                label: &str,
                key: &str,
                value: &Value,
            ) -> Option<usize> {
                self.probes.counting.fetch_add(1, AtomicOrdering::Relaxed);
                self.state.prop_index.count_eq(label, key, value)
            }

            fn count_nodes_in_prop_range(
                &self,
                label: &str,
                key: &str,
                lower: Bound<&Value>,
                upper: Bound<&Value>,
            ) -> Option<usize> {
                self.probes.counting.fetch_add(1, AtomicOrdering::Relaxed);
                self.state.prop_index.count_range(label, key, lower, upper)
            }

            fn count_nodes_with_prop_prefix(
                &self,
                label: &str,
                key: &str,
                prefix: &str,
            ) -> Option<usize> {
                self.probes.counting.fetch_add(1, AtomicOrdering::Relaxed);
                self.state.prop_index.count_prefix(label, key, prefix)
            }

            fn count_rels_with_prop(
                &self,
                rel_type: &str,
                key: &str,
                value: &Value,
            ) -> Option<usize> {
                self.probes.counting.fetch_add(1, AtomicOrdering::Relaxed);
                self.state.rel_prop_index.count_eq(rel_type, key, value)
            }

            fn count_rels_in_prop_range(
                &self,
                rel_type: &str,
                key: &str,
                lower: Bound<&Value>,
                upper: Bound<&Value>,
            ) -> Option<usize> {
                self.probes.counting.fetch_add(1, AtomicOrdering::Relaxed);
                self.state
                    .rel_prop_index
                    .count_range(rel_type, key, lower, upper)
            }

            fn node_prop_stats(&self, label: &str, key: &str) -> Option<(usize, usize)> {
                self.probes.counting.fetch_add(1, AtomicOrdering::Relaxed);
                self.state.prop_index.stats(label, key)
            }

            fn rel_prop_stats(&self, rel_type: &str, key: &str) -> Option<(usize, usize)> {
                self.probes.counting.fetch_add(1, AtomicOrdering::Relaxed);
                self.state.rel_prop_index.stats(rel_type, key)
            }

            fn nodes_in_prop_order(
                &self,
                label: &str,
                key: &str,
                descending: bool,
            ) -> Option<Box<dyn Iterator<Item = NodeId> + '_>> {
                self.probes.ordered.fetch_add(1, AtomicOrdering::Relaxed);
                self.state.prop_index.ordered_walk(label, key, descending)
            }

            fn rels_in_prop_order(
                &self,
                rel_type: &str,
                key: &str,
                descending: bool,
            ) -> Option<Box<dyn Iterator<Item = RelId> + '_>> {
                self.probes.ordered.fetch_add(1, AtomicOrdering::Relaxed);
                self.state
                    .rel_prop_index
                    .ordered_walk(rel_type, key, descending)
            }

            fn node_composite_defs(&self, label: &str) -> Vec<Vec<String>> {
                self.state.composite_index.defs_for_label(label)
            }

            fn rel_composite_defs(&self, rel_type: &str) -> Vec<Vec<String>> {
                self.state.rel_composite_index.defs_for_label(rel_type)
            }

            fn nodes_with_composite(
                &self,
                label: &str,
                columns: &[String],
                eq: &[Value],
                trailing: CompositeTrailing<'_>,
            ) -> Option<Vec<NodeId>> {
                self.probes
                    .materializing
                    .fetch_add(1, AtomicOrdering::Relaxed);
                self.probes.composite.fetch_add(1, AtomicOrdering::Relaxed);
                self.state
                    .composite_index
                    .lookup(label, columns, eq, trailing)
            }

            fn count_nodes_with_composite(
                &self,
                label: &str,
                columns: &[String],
                eq: &[Value],
                trailing: CompositeTrailing<'_>,
            ) -> Option<usize> {
                self.probes.counting.fetch_add(1, AtomicOrdering::Relaxed);
                self.state
                    .composite_index
                    .count(label, columns, eq, trailing)
            }

            fn rels_with_composite(
                &self,
                rel_type: &str,
                columns: &[String],
                eq: &[Value],
                trailing: CompositeTrailing<'_>,
            ) -> Option<Vec<RelId>> {
                self.probes
                    .materializing
                    .fetch_add(1, AtomicOrdering::Relaxed);
                self.probes.composite.fetch_add(1, AtomicOrdering::Relaxed);
                self.state
                    .rel_composite_index
                    .lookup(rel_type, columns, eq, trailing)
            }

            fn count_rels_with_composite(
                &self,
                rel_type: &str,
                columns: &[String],
                eq: &[Value],
                trailing: CompositeTrailing<'_>,
            ) -> Option<usize> {
                self.probes.counting.fetch_add(1, AtomicOrdering::Relaxed);
                self.state
                    .rel_composite_index
                    .count(rel_type, columns, eq, trailing)
            }

            fn nodes_in_composite_order(
                &self,
                label: &str,
                columns: &[String],
                eq: &[Value],
                descending: bool,
            ) -> Option<Box<dyn Iterator<Item = NodeId> + '_>> {
                self.probes.ordered.fetch_add(1, AtomicOrdering::Relaxed);
                self.state
                    .composite_index
                    .ordered_walk(label, columns, eq, descending)
            }

            fn rels_in_composite_order(
                &self,
                rel_type: &str,
                columns: &[String],
                eq: &[Value],
                descending: bool,
            ) -> Option<Box<dyn Iterator<Item = RelId> + '_>> {
                self.probes.ordered.fetch_add(1, AtomicOrdering::Relaxed);
                self.state
                    .rel_composite_index
                    .ordered_walk(rel_type, columns, eq, descending)
            }

            fn node_composite_stats(
                &self,
                label: &str,
                columns: &[String],
            ) -> Option<(usize, usize)> {
                self.probes.counting.fetch_add(1, AtomicOrdering::Relaxed);
                self.state.composite_index.stats(label, columns)
            }

            fn rel_composite_stats(
                &self,
                rel_type: &str,
                columns: &[String],
            ) -> Option<(usize, usize)> {
                self.probes.counting.fetch_add(1, AtomicOrdering::Relaxed);
                self.state.rel_composite_index.stats(rel_type, columns)
            }

            fn rels_with_type(&self, rel_type: &str) -> Vec<RelId> {
                self.state
                    .type_index
                    .get(rel_type)
                    .map(|ix| ix.iter().copied().collect())
                    .unwrap_or_default()
            }

            fn label_cardinality(&self, label: &str) -> usize {
                self.state
                    .label_index
                    .get(label)
                    .map(|ix| ix.len())
                    .unwrap_or(0)
            }

            fn rel_type_cardinality(&self, rel_type: &str) -> usize {
                self.state
                    .type_index
                    .get(rel_type)
                    .map(|ix| ix.len())
                    .unwrap_or(0)
            }

            fn node_count_estimate(&self) -> usize {
                self.state.nodes.len()
            }

            fn rel_count_estimate(&self) -> usize {
                self.state.rels.len()
            }

            fn degree_edge_count(
                &self,
                label: &str,
                rel_type: &str,
                dir: Direction,
            ) -> Option<usize> {
                self.probes.counting.fetch_add(1, AtomicOrdering::Relaxed);
                // A missing entry means the combination never carried an
                // edge: the count is exactly zero (stats are maintained
                // from the first mutation on).
                let entry = self
                    .state
                    .degree_stats
                    .get(label)
                    .and_then(|m| m.get(rel_type));
                Some(match (entry, dir) {
                    (None, _) => 0,
                    (Some(e), Direction::Out) => e[DEG_OUT].edges,
                    (Some(e), Direction::In) => e[DEG_IN].edges,
                    (Some(e), Direction::Both) => e[DEG_OUT].edges + e[DEG_IN].edges,
                })
            }

            fn degree_histogram(
                &self,
                label: &str,
                rel_type: &str,
                dir: Direction,
            ) -> Option<DegreeHistogram> {
                self.probes.counting.fetch_add(1, AtomicOrdering::Relaxed);
                let i = match dir {
                    Direction::Out => DEG_OUT,
                    Direction::In => DEG_IN,
                    // Out+in histograms are per-node distributions over
                    // different populations; a merged view would not be.
                    Direction::Both => return None,
                };
                self.state
                    .degree_stats
                    .get(label)
                    .and_then(|m| m.get(rel_type))
                    .map(|e| e[i].hist.clone())
            }

            fn parallel_snapshot(&self) -> Option<Snapshot> {
                // Pin the state this view reads *right now* — on the live
                // graph that includes in-flight transaction mutations,
                // which is deliberate: morsel workers must see the same
                // rows the serial executor over `self` would.
                Some(Snapshot::pin_current(self.epoch, &self.state))
            }

            fn absorb_probes(&self, probes: IndexProbes) {
                self.probes.add(probes);
            }
        }
    };
}

impl_graph_view_via_state!(Graph);
impl_graph_view_via_state!(Snapshot);

#[cfg(test)]
mod tests {
    use super::*;

    fn props(entries: &[(&str, Value)]) -> PropertyMap {
        entries
            .iter()
            .map(|(k, v)| (k.to_string(), v.clone()))
            .collect()
    }

    #[test]
    fn create_and_read_node() {
        let mut g = Graph::new();
        let n = g
            .create_node(["Mutation"], props(&[("name", Value::str("D614G"))]))
            .unwrap();
        assert!(g.node_exists(n));
        assert!(g.node_has_label(n, "Mutation"));
        assert_eq!(g.node_prop(n, "name"), Some(Value::str("D614G")));
        assert_eq!(g.nodes_with_label("Mutation"), vec![n]);
        assert_eq!(g.node_count(), 1);
    }

    #[test]
    fn rels_and_adjacency() {
        let mut g = Graph::new();
        let a = g.create_node(["A"], PropertyMap::new()).unwrap();
        let b = g.create_node(["B"], PropertyMap::new()).unwrap();
        let r = g.create_rel(a, b, "KNOWS", PropertyMap::new()).unwrap();
        assert_eq!(g.rels_of(a, Direction::Out), vec![r]);
        assert_eq!(g.rels_of(a, Direction::In), Vec::<RelId>::new());
        assert_eq!(g.rels_of(b, Direction::In), vec![r]);
        assert_eq!(g.rels_of(a, Direction::Both), vec![r]);
        assert_eq!(g.rel_endpoints(r), Some((a, b)));
        assert_eq!(g.rel_type(r), Some("KNOWS".to_string()));
    }

    #[test]
    fn self_loop_not_double_counted_in_both() {
        let mut g = Graph::new();
        let a = g.create_node(["A"], PropertyMap::new()).unwrap();
        let r = g.create_rel(a, a, "SELF", PropertyMap::new()).unwrap();
        assert_eq!(g.rels_of(a, Direction::Both), vec![r]);
        assert_eq!(g.rels_of(a, Direction::Out), vec![r]);
        assert_eq!(g.rels_of(a, Direction::In), vec![r]);
    }

    #[test]
    fn delete_node_with_rels_requires_detach() {
        let mut g = Graph::new();
        let a = g.create_node(["A"], PropertyMap::new()).unwrap();
        let b = g.create_node(["B"], PropertyMap::new()).unwrap();
        g.create_rel(a, b, "R", PropertyMap::new()).unwrap();
        assert_eq!(g.delete_node(a), Err(GraphError::HasRelationships(a)));
        g.detach_delete_node(a).unwrap();
        assert!(!g.node_exists(a));
        assert_eq!(g.rel_count(), 0);
    }

    #[test]
    fn rel_to_missing_node_fails() {
        let mut g = Graph::new();
        let a = g.create_node(["A"], PropertyMap::new()).unwrap();
        let err = g.create_rel(a, NodeId(99), "R", PropertyMap::new());
        assert_eq!(err, Err(GraphError::NodeNotFound(NodeId(99))));
    }

    #[test]
    fn label_index_tracks_set_and_remove() {
        let mut g = Graph::new();
        let n = g
            .create_node(Vec::<String>::new(), PropertyMap::new())
            .unwrap();
        assert!(g.set_label(n, "X").unwrap());
        assert!(!g.set_label(n, "X").unwrap()); // idempotent
        assert_eq!(g.nodes_with_label("X"), vec![n]);
        assert!(g.remove_label(n, "X").unwrap());
        assert!(!g.remove_label(n, "X").unwrap());
        assert!(g.nodes_with_label("X").is_empty());
    }

    #[test]
    fn setting_null_prop_removes() {
        let mut g = Graph::new();
        let n = g
            .create_node(["A"], props(&[("x", Value::Int(1))]))
            .unwrap();
        g.set_node_prop(n, "x", Value::Null).unwrap();
        assert_eq!(g.node_prop(n, "x"), None);
    }

    #[test]
    fn node_ref_not_storable() {
        let mut g = Graph::new();
        let n = g.create_node(["A"], PropertyMap::new()).unwrap();
        let err = g.set_node_prop(n, "bad", Value::Node(n));
        assert!(matches!(err, Err(GraphError::NotStorable { .. })));
    }

    #[test]
    fn tx_commit_returns_ops_and_delta() {
        let mut g = Graph::new();
        g.begin().unwrap();
        let mark = g.mark();
        let n = g
            .create_node(["A"], props(&[("x", Value::Int(1))]))
            .unwrap();
        g.set_node_prop(n, "x", Value::Int(2)).unwrap();
        let d = g.delta_since(mark);
        assert_eq!(d.created_nodes.len(), 1);
        // prop change folded into creation
        assert!(d.assigned_node_props.is_empty());
        assert_eq!(d.created_nodes[0].props.get("x"), Some(&Value::Int(2)));
        let ops = g.commit().unwrap();
        assert_eq!(ops.len(), 2);
        assert!(!g.in_tx());
    }

    #[test]
    fn rollback_restores_everything() {
        let mut g = Graph::new();
        let keep = g
            .create_node(["Keep"], props(&[("x", Value::Int(1))]))
            .unwrap();
        g.begin().unwrap();
        let n = g.create_node(["A"], PropertyMap::new()).unwrap();
        let r = g.create_rel(keep, n, "R", PropertyMap::new()).unwrap();
        g.set_node_prop(keep, "x", Value::Int(99)).unwrap();
        g.set_label(keep, "Extra").unwrap();
        g.remove_node_prop(keep, "x").unwrap();
        g.rollback().unwrap();
        assert!(!g.node_exists(n));
        assert!(!g.rel_exists(r));
        assert_eq!(g.node_prop(keep, "x"), Some(Value::Int(1)));
        assert!(!g.node_has_label(keep, "Extra"));
        assert_eq!(g.node_count(), 1);
        assert_eq!(g.rel_count(), 0);
        assert!(g.nodes_with_label("A").is_empty());
    }

    #[test]
    fn rollback_restores_deleted_subgraph() {
        let mut g = Graph::new();
        let a = g
            .create_node(["A"], props(&[("k", Value::Int(5))]))
            .unwrap();
        let b = g.create_node(["B"], PropertyMap::new()).unwrap();
        let r = g
            .create_rel(a, b, "R", props(&[("w", Value::Int(3))]))
            .unwrap();
        g.begin().unwrap();
        g.detach_delete_node(a).unwrap();
        assert!(!g.node_exists(a));
        g.rollback().unwrap();
        assert!(g.node_exists(a));
        assert!(g.rel_exists(r));
        assert_eq!(g.node_prop(a, "k"), Some(Value::Int(5)));
        assert_eq!(g.rel_prop(r, "w"), Some(Value::Int(3)));
        assert_eq!(g.rels_of(a, Direction::Out), vec![r]);
        assert_eq!(g.nodes_with_label("A"), vec![a]);
    }

    #[test]
    fn rollback_to_statement_mark_is_partial() {
        let mut g = Graph::new();
        g.begin().unwrap();
        let n1 = g.create_node(["A"], PropertyMap::new()).unwrap();
        let mark = g.mark();
        let n2 = g.create_node(["B"], PropertyMap::new()).unwrap();
        g.rollback_to(mark).unwrap();
        assert!(g.node_exists(n1));
        assert!(!g.node_exists(n2));
        // tx still active; committing keeps n1
        g.commit().unwrap();
        assert!(g.node_exists(n1));
    }

    #[test]
    fn double_begin_and_stray_commit_fail() {
        let mut g = Graph::new();
        assert_eq!(g.commit().err(), Some(GraphError::NoActiveTransaction));
        assert_eq!(g.rollback().err(), Some(GraphError::NoActiveTransaction));
        g.begin().unwrap();
        assert_eq!(g.begin().err(), Some(GraphError::TransactionActive));
        g.commit().unwrap();
    }

    #[test]
    fn read_only_policy_blocks_everything() {
        let mut g = Graph::new();
        let n = g.create_node(["A"], PropertyMap::new()).unwrap();
        g.set_write_policy(WritePolicy::ReadOnly);
        assert!(matches!(
            g.create_node(["B"], PropertyMap::new()),
            Err(GraphError::WritePolicy { .. })
        ));
        assert!(matches!(
            g.set_node_prop(n, "x", Value::Int(1)),
            Err(GraphError::WritePolicy { .. })
        ));
        g.set_write_policy(WritePolicy::Unrestricted);
        assert!(g.set_node_prop(n, "x", Value::Int(1)).is_ok());
    }

    #[test]
    fn condition_new_only_policy_allows_props_on_new_items() {
        let mut g = Graph::new();
        let fresh = g.create_node(["A"], PropertyMap::new()).unwrap();
        let other = g.create_node(["B"], PropertyMap::new()).unwrap();
        let allowed: BTreeSet<ItemRef> = [ItemRef::Node(fresh)].into_iter().collect();
        g.set_write_policy(WritePolicy::ConditionNewOnly(allowed));
        assert!(g.set_node_prop(fresh, "x", Value::Int(1)).is_ok());
        assert!(matches!(
            g.set_node_prop(other, "x", Value::Int(1)),
            Err(GraphError::WritePolicy { .. })
        ));
        assert!(matches!(
            g.delete_node(fresh),
            Err(GraphError::WritePolicy { .. })
        ));
        assert!(matches!(
            g.create_node(["C"], PropertyMap::new()),
            Err(GraphError::WritePolicy { .. })
        ));
    }

    #[test]
    fn both_direction_dedups_only_self_loops_at_high_degree() {
        // Regression: the old dedup scanned the whole out-list for every
        // in-edge (O(deg²)) and would have hidden a non-self-loop rel that
        // legitimately appears in both lists of *different* nodes.
        let mut g = Graph::new();
        let hub = g.create_node(["Hub"], PropertyMap::new()).unwrap();
        let mut expected = Vec::new();
        for i in 0..500 {
            let other = g.create_node(["Leaf"], PropertyMap::new()).unwrap();
            let r = if i % 2 == 0 {
                g.create_rel(hub, other, "R", PropertyMap::new()).unwrap()
            } else {
                g.create_rel(other, hub, "R", PropertyMap::new()).unwrap()
            };
            expected.push(r);
        }
        let self_loop = g.create_rel(hub, hub, "SELF", PropertyMap::new()).unwrap();
        expected.push(self_loop);
        let mut got = g.rels_of(hub, Direction::Both);
        assert_eq!(got.len(), 501, "self-loop counted exactly once");
        got.sort();
        expected.sort();
        assert_eq!(got, expected);
    }

    #[test]
    fn all_ids_stay_sorted_across_mutations() {
        let mut g = Graph::new();
        let a = g.create_node(["A"], PropertyMap::new()).unwrap();
        let b = g.create_node(["A"], PropertyMap::new()).unwrap();
        let c = g.create_node(["A"], PropertyMap::new()).unwrap();
        g.detach_delete_node(b).unwrap();
        assert_eq!(g.all_node_ids(), vec![a, c]);
        g.begin().unwrap();
        let d = g.create_node(["A"], PropertyMap::new()).unwrap();
        assert_eq!(g.all_node_ids(), vec![a, c, d]);
        g.rollback().unwrap();
        assert_eq!(g.all_node_ids(), vec![a, c]);
        let r1 = g.create_rel(a, c, "R", PropertyMap::new()).unwrap();
        let r2 = g.create_rel(c, a, "R", PropertyMap::new()).unwrap();
        g.delete_rel(r1).unwrap();
        assert_eq!(g.all_rel_ids(), vec![r2]);
    }

    #[test]
    fn prop_index_answers_and_tracks_mutations() {
        let mut g = Graph::new();
        let a = g
            .create_node(["P"], props(&[("ssn", Value::Int(1))]))
            .unwrap();
        assert!(g.create_index("P", "ssn"));
        assert!(!g.create_index("P", "ssn"));
        assert_eq!(g.indexes(), vec![("P".to_string(), "ssn".to_string())]);
        // populated from the existing extent
        assert_eq!(g.nodes_with_prop("P", "ssn", &Value::Int(1)), Some(vec![a]));
        // new nodes join the index
        let b = g
            .create_node(["P"], props(&[("ssn", Value::Int(2))]))
            .unwrap();
        assert_eq!(g.nodes_with_prop("P", "ssn", &Value::Int(2)), Some(vec![b]));
        // prop updates move entries
        g.set_node_prop(b, "ssn", Value::Int(3)).unwrap();
        assert_eq!(g.nodes_with_prop("P", "ssn", &Value::Int(2)), Some(vec![]));
        assert_eq!(g.nodes_with_prop("P", "ssn", &Value::Int(3)), Some(vec![b]));
        // NULL-assignment removes
        g.set_node_prop(b, "ssn", Value::Null).unwrap();
        assert_eq!(g.nodes_with_prop("P", "ssn", &Value::Int(3)), Some(vec![]));
        // label changes attach/detach entries
        let c = g
            .create_node(["Q"], props(&[("ssn", Value::Int(9))]))
            .unwrap();
        assert_eq!(g.nodes_with_prop("P", "ssn", &Value::Int(9)), Some(vec![]));
        g.set_label(c, "P").unwrap();
        assert_eq!(g.nodes_with_prop("P", "ssn", &Value::Int(9)), Some(vec![c]));
        g.remove_label(c, "P").unwrap();
        assert_eq!(g.nodes_with_prop("P", "ssn", &Value::Int(9)), Some(vec![]));
        // deletion removes
        g.detach_delete_node(a).unwrap();
        assert_eq!(g.nodes_with_prop("P", "ssn", &Value::Int(1)), Some(vec![]));
        // unindexed (label, key) cannot answer
        assert_eq!(g.nodes_with_prop("P", "name", &Value::Int(1)), None);
        assert!(g.drop_index("P", "ssn"));
        assert_eq!(g.nodes_with_prop("P", "ssn", &Value::Int(3)), None);
    }

    #[test]
    fn boundary_numerics_fall_back_to_scan_instead_of_lying() {
        // Int(2^53 + 1) eq3-equals Float(2^53.0) under lossy conversion;
        // neither may be served from the index, or the index path would
        // drop rows the scan path returns.
        let bound = 1i64 << 53;
        let mut g = Graph::new();
        let n = g
            .create_node(["M"], props(&[("k", Value::Int(bound + 1))]))
            .unwrap();
        g.create_index("M", "k");
        assert_eq!(
            g.nodes_with_prop("M", "k", &Value::Float(bound as f64)),
            None
        );
        assert_eq!(g.nodes_with_prop("M", "k", &Value::Int(bound + 1)), None);
        // the fallback scan agrees with eq3
        let scan: Vec<NodeId> = g
            .all_node_ids()
            .into_iter()
            .filter(|&id| {
                g.node_prop(id, "k")
                    .is_some_and(|v| v.eq3(&Value::Float(bound as f64)) == Some(true))
            })
            .collect();
        assert_eq!(scan, vec![n]);
        // in-range values still get exact index answers
        let m = g
            .create_node(["M"], props(&[("k", Value::Int(bound - 1))]))
            .unwrap();
        assert_eq!(
            g.nodes_with_prop("M", "k", &Value::Float((bound - 1) as f64)),
            Some(vec![m])
        );
    }

    #[test]
    fn prop_index_survives_rollback_paths() {
        let mut g = Graph::new();
        let keep = g
            .create_node(["P"], props(&[("k", Value::Int(1))]))
            .unwrap();
        g.create_index("P", "k");
        g.begin().unwrap();
        let tmp = g
            .create_node(["P"], props(&[("k", Value::Int(2))]))
            .unwrap();
        g.set_node_prop(keep, "k", Value::Int(7)).unwrap();
        g.set_label(tmp, "Extra").unwrap();
        g.remove_node_prop(keep, "k").unwrap();
        let mark = g.mark();
        g.set_node_prop(tmp, "k", Value::Int(5)).unwrap();
        g.rollback_to(mark).unwrap();
        // mid-statement rollback restored tmp's k=2
        assert_eq!(g.nodes_with_prop("P", "k", &Value::Int(2)), Some(vec![tmp]));
        assert_eq!(g.nodes_with_prop("P", "k", &Value::Int(5)), Some(vec![]));
        g.rollback().unwrap();
        // full rollback: only the original entry remains
        assert_eq!(
            g.nodes_with_prop("P", "k", &Value::Int(1)),
            Some(vec![keep])
        );
        for v in [2, 5, 7] {
            assert_eq!(
                g.nodes_with_prop("P", "k", &Value::Int(v)),
                Some(vec![]),
                "k={v}"
            );
        }
    }

    fn cols(cs: &[&str]) -> Vec<String> {
        cs.iter().map(|c| c.to_string()).collect()
    }

    #[test]
    fn composite_index_tracks_mutations() {
        use crate::composite::CompositeTrailing;
        let mut g = Graph::new();
        let c = cols(&["status", "severity"]);
        let a = g
            .create_node(
                ["P"],
                props(&[("status", Value::str("icu")), ("severity", Value::Int(9))]),
            )
            .unwrap();
        assert!(g.create_composite_index("P", &c));
        assert!(!g.create_composite_index("P", &c));
        assert_eq!(g.composite_indexes(), vec![("P".to_string(), c.clone())]);
        // populated from the existing extent
        let probe = |g: &Graph, status: &str, sev: i64| {
            g.nodes_with_composite(
                "P",
                &c,
                &[Value::str(status), Value::Int(sev)],
                CompositeTrailing::None,
            )
        };
        assert_eq!(probe(&g, "icu", 9), Some(vec![a]));
        // new nodes join; prop updates move the whole key vector
        let b = g
            .create_node(
                ["P"],
                props(&[("status", Value::str("ward")), ("severity", Value::Int(3))]),
            )
            .unwrap();
        assert_eq!(probe(&g, "ward", 3), Some(vec![b]));
        g.set_node_prop(b, "status", Value::str("icu")).unwrap();
        assert_eq!(probe(&g, "ward", 3), Some(vec![]));
        assert_eq!(probe(&g, "icu", 3), Some(vec![b]));
        // NULL-assignment moves the entry onto the missing marker
        g.set_node_prop(b, "severity", Value::Null).unwrap();
        assert_eq!(probe(&g, "icu", 3), Some(vec![]));
        assert_eq!(
            g.nodes_with_composite("P", &c, &[Value::str("icu")], CompositeTrailing::None),
            Some(vec![a, b])
        );
        // label changes attach/detach entries
        g.remove_label(b, "P").unwrap();
        assert_eq!(
            g.nodes_with_composite("P", &c, &[Value::str("icu")], CompositeTrailing::None),
            Some(vec![a])
        );
        g.set_label(b, "P").unwrap();
        assert_eq!(
            g.nodes_with_composite("P", &c, &[Value::str("icu")], CompositeTrailing::None),
            Some(vec![a, b])
        );
        // deletion removes; drop stops answering
        g.detach_delete_node(a).unwrap();
        assert_eq!(probe(&g, "icu", 9), Some(vec![]));
        assert!(g.drop_composite_index("P", &c));
        assert_eq!(probe(&g, "icu", 9), None);
    }

    #[test]
    fn composite_index_survives_rollback_paths() {
        use crate::composite::CompositeTrailing;
        let mut g = Graph::new();
        let c = cols(&["k", "m"]);
        let keep = g
            .create_node(["P"], props(&[("k", Value::Int(1)), ("m", Value::Int(2))]))
            .unwrap();
        g.create_composite_index("P", &c);
        let full = |g: &Graph, k: i64, m: i64| {
            g.nodes_with_composite(
                "P",
                &c,
                &[Value::Int(k), Value::Int(m)],
                CompositeTrailing::None,
            )
        };
        g.begin().unwrap();
        let tmp = g
            .create_node(["P"], props(&[("k", Value::Int(5)), ("m", Value::Int(6))]))
            .unwrap();
        g.set_node_prop(keep, "k", Value::Int(7)).unwrap();
        g.remove_node_prop(keep, "m").unwrap();
        g.set_label(tmp, "Extra").unwrap();
        let mark = g.mark();
        g.set_node_prop(tmp, "m", Value::Int(9)).unwrap();
        g.rollback_to(mark).unwrap();
        // mid-statement rollback restored tmp's (5, 6)
        assert_eq!(full(&g, 5, 6), Some(vec![tmp]));
        assert_eq!(full(&g, 5, 9), Some(vec![]));
        g.rollback().unwrap();
        // full rollback: only the original vector remains
        assert_eq!(full(&g, 1, 2), Some(vec![keep]));
        for (k, m) in [(5, 6), (7, 2), (5, 9)] {
            assert_eq!(full(&g, k, m), Some(vec![]), "({k}, {m})");
        }
        assert_eq!(g.node_composite_stats("P", &c), Some((1, 1)));
    }

    #[test]
    fn rebuild_stats_zeroes_drift_after_bulk_load() {
        use std::ops::Bound;
        let mut g = Graph::new();
        g.create_index("P", "k");
        g.create_composite_index("P", &cols(&["k", "m"]));
        // bulk load (no transaction): the incremental histogram drifts
        for i in 0..4000i64 {
            g.create_node(
                ["P"],
                props(&[("k", Value::Int(i)), ("m", Value::Int(i % 5))]),
            )
            .unwrap();
        }
        g.rebuild_stats();
        // a freshly rebuilt histogram answers within 2·depth (drift = 0)
        let est = g
            .count_nodes_in_prop_range(
                "P",
                "k",
                Bound::Included(&Value::Int(0)),
                Bound::Excluded(&Value::Int(1000)),
            )
            .unwrap();
        let depth = 4000usize.div_ceil(32);
        assert!(
            est.abs_diff(1000) <= 2 * depth,
            "single-key est {est} outside the zero-drift bound"
        );
        let est = g
            .count_nodes_with_composite(
                "P",
                &cols(&["k", "m"]),
                &[],
                crate::composite::CompositeTrailing::Range(
                    Bound::Included(&Value::Int(0)),
                    Bound::Excluded(&Value::Int(1000)),
                ),
            )
            .unwrap();
        assert!(
            est.abs_diff(1000) <= 2 * depth,
            "composite est {est} outside the zero-drift bound"
        );
    }

    #[test]
    fn labels_and_types_listing() {
        let mut g = Graph::new();
        let a = g.create_node(["B", "A"], PropertyMap::new()).unwrap();
        let b = g.create_node(["C"], PropertyMap::new()).unwrap();
        g.create_rel(a, b, "T2", PropertyMap::new()).unwrap();
        g.create_rel(a, b, "T1", PropertyMap::new()).unwrap();
        assert_eq!(g.labels(), vec!["A", "B", "C"]);
        assert_eq!(g.rel_types(), vec!["T1", "T2"]);
        assert_eq!(g.rels_with_type("T1").len(), 1);
    }
}
