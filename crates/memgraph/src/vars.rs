//! Memgraph's predefined trigger variables (paper Table 4).
//!
//! Memgraph triggers receive the transaction's changes through predefined
//! *variables* (not parameters): `createdVertices`, `updatedObjects`,
//! `setVertexLabels`, and so on. This module materializes all fifteen of
//! them from a [`Delta`] as a seed binding row.
//!
//! Shapes follow Memgraph's documentation:
//! * `created*` / `deleted*` are lists of vertices/edges (deleted ones as
//!   maps, since their identity is gone);
//! * `updated*` are lists of event maps
//!   `{event_type, vertex|edge, key?, label?, old_value?, value?}`;
//! * `setVertexLabels` / `removedVertexLabels` are lists of
//!   `{label, vertices}` groups;
//! * `set*Properties` / `removed*Properties` are lists of per-item event
//!   maps.

use pg_cypher::Row;
use pg_graph::{Delta, Value};
use std::collections::BTreeMap;

/// The fifteen predefined variable names of paper Table 4.
pub const MEMGRAPH_VAR_NAMES: [&str; 15] = [
    "createdVertices",
    "createdEdges",
    "createdObjects",
    "updatedVertices",
    "updatedEdges",
    "updatedObjects",
    "deletedVertices",
    "deletedEdges",
    "deletedObjects",
    "setVertexLabels",
    "removedVertexLabels",
    "setVertexProperties",
    "setEdgeProperties",
    "removedVertexProperties",
    "removedEdgeProperties",
];

fn event(entries: Vec<(&str, Value)>) -> Value {
    Value::Map(
        entries
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    )
}

/// Build the seed row binding every Table 4 variable.
pub fn memgraph_vars(delta: &Delta) -> Row {
    let created_vertices: Vec<Value> = delta
        .created_nodes
        .iter()
        .map(|n| Value::Node(n.id))
        .collect();
    let created_edges: Vec<Value> = delta
        .created_rels
        .iter()
        .map(|r| Value::Rel(r.id))
        .collect();
    let deleted_vertices: Vec<Value> = delta.deleted_nodes.iter().map(|n| n.to_value()).collect();
    let deleted_edges: Vec<Value> = delta.deleted_rels.iter().map(|r| r.to_value()).collect();

    let mut created_objects: Vec<Value> = Vec::new();
    for v in &created_vertices {
        created_objects.push(event(vec![
            ("event_type", Value::str("created_vertex")),
            ("vertex", v.clone()),
        ]));
    }
    for e in &created_edges {
        created_objects.push(event(vec![
            ("event_type", Value::str("created_edge")),
            ("edge", e.clone()),
        ]));
    }
    let mut deleted_objects: Vec<Value> = Vec::new();
    for v in &deleted_vertices {
        deleted_objects.push(event(vec![
            ("event_type", Value::str("deleted_vertex")),
            ("vertex", v.clone()),
        ]));
    }
    for e in &deleted_edges {
        deleted_objects.push(event(vec![
            ("event_type", Value::str("deleted_edge")),
            ("edge", e.clone()),
        ]));
    }

    // Vertex updates: property sets/removals and label sets/removals.
    let mut updated_vertices: Vec<Value> = Vec::new();
    let mut set_vertex_props: Vec<Value> = Vec::new();
    for pa in delta.raw_assigned_node_props() {
        let ev = event(vec![
            ("event_type", Value::str("set_vertex_property")),
            ("vertex", Value::Node(pa.target)),
            ("key", Value::str(pa.key.clone())),
            ("old_value", pa.old.clone()),
            ("value", pa.new.clone()),
        ]);
        set_vertex_props.push(ev.clone());
        updated_vertices.push(ev);
    }
    let mut removed_vertex_props: Vec<Value> = Vec::new();
    for pr in &delta.removed_node_props {
        let ev = event(vec![
            ("event_type", Value::str("removed_vertex_property")),
            ("vertex", Value::Node(pr.target)),
            ("key", Value::str(pr.key.clone())),
            ("old_value", pr.old.clone()),
        ]);
        removed_vertex_props.push(ev.clone());
        updated_vertices.push(ev);
    }
    // label groups: label -> vertices
    let mut set_label_groups: BTreeMap<String, Vec<Value>> = BTreeMap::new();
    for ev in delta.raw_assigned_labels() {
        set_label_groups
            .entry(ev.label.clone())
            .or_default()
            .push(Value::Node(ev.node));
        updated_vertices.push(event(vec![
            ("event_type", Value::str("set_vertex_label")),
            ("vertex", Value::Node(ev.node)),
            ("label", Value::str(ev.label.clone())),
        ]));
    }
    let mut removed_label_groups: BTreeMap<String, Vec<Value>> = BTreeMap::new();
    for ev in &delta.removed_labels {
        removed_label_groups
            .entry(ev.label.clone())
            .or_default()
            .push(Value::Node(ev.node));
        updated_vertices.push(event(vec![
            ("event_type", Value::str("removed_vertex_label")),
            ("vertex", Value::Node(ev.node)),
            ("label", Value::str(ev.label.clone())),
        ]));
    }
    let set_vertex_labels: Vec<Value> = set_label_groups
        .into_iter()
        .map(|(l, vs)| {
            event(vec![
                ("label", Value::str(l)),
                ("vertices", Value::List(vs)),
            ])
        })
        .collect();
    let removed_vertex_labels: Vec<Value> = removed_label_groups
        .into_iter()
        .map(|(l, vs)| {
            event(vec![
                ("label", Value::str(l)),
                ("vertices", Value::List(vs)),
            ])
        })
        .collect();

    // Edge updates.
    let mut updated_edges: Vec<Value> = Vec::new();
    let mut set_edge_props: Vec<Value> = Vec::new();
    for pa in delta.raw_assigned_rel_props() {
        let ev = event(vec![
            ("event_type", Value::str("set_edge_property")),
            ("edge", Value::Rel(pa.target)),
            ("key", Value::str(pa.key.clone())),
            ("old_value", pa.old.clone()),
            ("value", pa.new.clone()),
        ]);
        set_edge_props.push(ev.clone());
        updated_edges.push(ev);
    }
    let mut removed_edge_props: Vec<Value> = Vec::new();
    for pr in &delta.removed_rel_props {
        let ev = event(vec![
            ("event_type", Value::str("removed_edge_property")),
            ("edge", Value::Rel(pr.target)),
            ("key", Value::str(pr.key.clone())),
            ("old_value", pr.old.clone()),
        ]);
        removed_edge_props.push(ev.clone());
        updated_edges.push(ev);
    }
    let mut updated_objects = updated_vertices.clone();
    updated_objects.extend(updated_edges.iter().cloned());

    let mut row = Row::new();
    row.set("createdVertices", Value::List(created_vertices));
    row.set("createdEdges", Value::List(created_edges));
    row.set("createdObjects", Value::List(created_objects));
    row.set("updatedVertices", Value::List(updated_vertices));
    row.set("updatedEdges", Value::List(updated_edges));
    row.set("updatedObjects", Value::List(updated_objects));
    row.set("deletedVertices", Value::List(deleted_vertices));
    row.set("deletedEdges", Value::List(deleted_edges));
    row.set("deletedObjects", Value::List(deleted_objects));
    row.set("setVertexLabels", Value::List(set_vertex_labels));
    row.set("removedVertexLabels", Value::List(removed_vertex_labels));
    row.set("setVertexProperties", Value::List(set_vertex_props));
    row.set("setEdgeProperties", Value::List(set_edge_props));
    row.set("removedVertexProperties", Value::List(removed_vertex_props));
    row.set("removedEdgeProperties", Value::List(removed_edge_props));
    row
}

/// Which event classes a delta contains (drives the `ON () CREATE`-style
/// event filters of `CREATE TRIGGER`).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EventClasses {
    pub vertex_create: bool,
    pub vertex_update: bool,
    pub vertex_delete: bool,
    pub edge_create: bool,
    pub edge_update: bool,
    pub edge_delete: bool,
}

impl EventClasses {
    pub fn of(delta: &Delta) -> EventClasses {
        // Raw views for consistency with `memgraph_vars`: creating an item
        // with labels/properties also counts as an update event (matching
        // the metadata the trigger statement will observe).
        EventClasses {
            vertex_create: !delta.created_nodes.is_empty(),
            vertex_update: !delta.raw_assigned_labels().is_empty()
                || !delta.removed_labels.is_empty()
                || !delta.raw_assigned_node_props().is_empty()
                || !delta.removed_node_props.is_empty(),
            vertex_delete: !delta.deleted_nodes.is_empty(),
            edge_create: !delta.created_rels.is_empty(),
            edge_update: !delta.raw_assigned_rel_props().is_empty()
                || !delta.removed_rel_props.is_empty(),
            edge_delete: !delta.deleted_rels.is_empty(),
        }
    }

    pub fn any(&self) -> bool {
        self.vertex_create
            || self.vertex_update
            || self.vertex_delete
            || self.edge_create
            || self.edge_update
            || self.edge_delete
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pg_graph::{Graph, PropertyMap};

    #[test]
    fn all_fifteen_variables_bound() {
        let row = memgraph_vars(&Delta::default());
        for name in MEMGRAPH_VAR_NAMES {
            assert!(row.contains(name), "missing {name}");
        }
        assert_eq!(row.len(), 15);
    }

    #[test]
    fn created_and_updated_shapes() {
        let mut g = Graph::new();
        let n = g.create_node(["P"], PropertyMap::new()).unwrap();
        g.begin().unwrap();
        let mark = g.mark();
        g.set_node_prop(n, "x", Value::Int(1)).unwrap();
        g.set_label(n, "Flagged").unwrap();
        let row = memgraph_vars(&g.delta_since(mark));
        match row.get("setVertexProperties").unwrap() {
            Value::List(evs) => {
                assert_eq!(evs.len(), 1);
                match &evs[0] {
                    Value::Map(m) => {
                        assert_eq!(m["key"], Value::str("x"));
                        assert_eq!(m["value"], Value::Int(1));
                        assert_eq!(m["old_value"], Value::Null);
                    }
                    other => panic!("unexpected {other:?}"),
                }
            }
            other => panic!("unexpected {other:?}"),
        }
        match row.get("setVertexLabels").unwrap() {
            Value::List(groups) => match &groups[0] {
                Value::Map(m) => {
                    assert_eq!(m["label"], Value::str("Flagged"));
                    assert_eq!(m["vertices"].as_list().unwrap().len(), 1);
                }
                other => panic!("unexpected {other:?}"),
            },
            other => panic!("unexpected {other:?}"),
        }
        // updatedVertices aggregates both event kinds
        assert_eq!(
            row.get("updatedVertices").unwrap().as_list().unwrap().len(),
            2
        );
        // updatedObjects == updatedVertices (no edge updates here)
        assert_eq!(
            row.get("updatedObjects").unwrap().as_list().unwrap().len(),
            2
        );
    }

    #[test]
    fn event_classes() {
        let mut g = Graph::new();
        g.begin().unwrap();
        let mark = g.mark();
        g.create_node(["P"], PropertyMap::new()).unwrap();
        let classes = EventClasses::of(&g.delta_since(mark));
        assert!(classes.vertex_create);
        assert!(!classes.edge_create);
        assert!(classes.any());
        assert!(!EventClasses::of(&Delta::default()).any());
    }
}
