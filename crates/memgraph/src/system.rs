//! Emulation of Memgraph's trigger subsystem (paper §5.2).
//!
//! ```text
//! CREATE TRIGGER trigger_name
//! [ ON [ () | --> ] CREATE | UPDATE | DELETE ]
//! [ BEFORE | AFTER ] COMMIT
//! EXECUTE openCypherStatements
//! ```
//!
//! `BEFORE COMMIT` runs inside the committing transaction (the paper's
//! ONCOMMIT); `AFTER COMMIT` runs asynchronously after it. As the paper
//! notes, "the trigger management implementations … are identical to those
//! of Neo4j APOC procedures, therefore also in Memgraph triggers do not
//! correctly cascade" — trigger effects never re-activate triggers here.

use crate::vars::{memgraph_vars, EventClasses};
use pg_cypher::lexer::lex;
use pg_cypher::token::TokenKind;
use pg_cypher::{parse_query_lenient, run_ast, run_query, CypherError, Params, Query, QueryOutput};
use pg_graph::Graph;
use std::collections::VecDeque;

/// Which items an event filter watches.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ObjectFilter {
    /// `ON ()` — vertices.
    Vertex,
    /// `ON -->` — edges.
    Edge,
    /// No object marker — any object.
    Any,
}

/// The monitored operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OpFilter {
    Create,
    Update,
    Delete,
}

/// Trigger execution time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CommitPhase {
    Before,
    After,
}

/// A parsed Memgraph trigger.
#[derive(Debug, Clone)]
pub struct MemgraphTrigger {
    pub name: String,
    /// `None` = fire on any event.
    pub filter: Option<(ObjectFilter, OpFilter)>,
    pub phase: CommitPhase,
    pub statement: Query,
}

/// Errors from the Memgraph emulation layer.
#[derive(Debug, Clone, PartialEq)]
pub enum MemgraphError {
    Cypher(CypherError),
    Syntax(String),
    UnknownTrigger(String),
    DuplicateTrigger(String),
}

impl std::fmt::Display for MemgraphError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MemgraphError::Cypher(e) => write!(f, "{e}"),
            MemgraphError::Syntax(m) => write!(f, "trigger syntax error: {m}"),
            MemgraphError::UnknownTrigger(n) => write!(f, "unknown trigger '{n}'"),
            MemgraphError::DuplicateTrigger(n) => write!(f, "trigger '{n}' already exists"),
        }
    }
}

impl std::error::Error for MemgraphError {}

impl From<CypherError> for MemgraphError {
    fn from(e: CypherError) -> Self {
        MemgraphError::Cypher(e)
    }
}

/// Parse Memgraph `CREATE TRIGGER` / `DROP TRIGGER` DDL.
pub fn parse_memgraph_trigger(src: &str) -> Result<MemgraphTrigger, MemgraphError> {
    let tokens = lex(src).map_err(MemgraphError::Cypher)?;
    let mut i = 0usize;
    let word = |i: usize| -> Option<String> {
        match &tokens.get(i)?.kind {
            TokenKind::Ident(s) => Some(s.clone()),
            other => other.as_name().map(|s| s.to_string()),
        }
    };
    let expect_kw = |i: &mut usize, kw: &str| -> Result<(), MemgraphError> {
        match word(*i) {
            Some(w) if w.eq_ignore_ascii_case(kw) => {
                *i += 1;
                Ok(())
            }
            _ => Err(MemgraphError::Syntax(format!("expected {kw}"))),
        }
    };
    // CREATE is a keyword token in our lexer.
    if tokens[i].kind != TokenKind::Create {
        return Err(MemgraphError::Syntax("expected CREATE TRIGGER".into()));
    }
    i += 1;
    expect_kw(&mut i, "TRIGGER")?;
    let name = word(i).ok_or_else(|| MemgraphError::Syntax("expected trigger name".into()))?;
    i += 1;

    // Optional event filter: ON [() | -->] CREATE|UPDATE|DELETE
    let mut filter = None;
    if tokens[i].kind == TokenKind::On {
        i += 1;
        let object = match (&tokens[i].kind, &tokens.get(i + 1).map(|t| t.kind.clone())) {
            (TokenKind::LParen, Some(TokenKind::RParen)) => {
                i += 2;
                ObjectFilter::Vertex
            }
            // `-->` lexes as Minus ArrowRight
            (TokenKind::Minus, Some(TokenKind::ArrowRight)) => {
                i += 2;
                ObjectFilter::Edge
            }
            _ => ObjectFilter::Any,
        };
        let op = match &tokens[i].kind {
            TokenKind::Create => OpFilter::Create,
            TokenKind::Delete => OpFilter::Delete,
            TokenKind::Ident(s) if s.eq_ignore_ascii_case("update") => OpFilter::Update,
            other => {
                return Err(MemgraphError::Syntax(format!(
                    "expected CREATE, UPDATE or DELETE, found {other}"
                )))
            }
        };
        i += 1;
        filter = Some((object, op));
    }

    // [BEFORE | AFTER] COMMIT
    let phase = match word(i) {
        Some(w) if w.eq_ignore_ascii_case("BEFORE") => {
            i += 1;
            CommitPhase::Before
        }
        Some(w) if w.eq_ignore_ascii_case("AFTER") => {
            i += 1;
            CommitPhase::After
        }
        _ => CommitPhase::After,
    };
    expect_kw(&mut i, "COMMIT")?;
    expect_kw(&mut i, "EXECUTE")?;

    let body_src = &src[tokens[i].pos..];
    let statement = parse_query_lenient(body_src).map_err(MemgraphError::Cypher)?;
    Ok(MemgraphTrigger {
        name,
        filter,
        phase,
        statement,
    })
}

/// A Memgraph database emulation with trigger support.
pub struct MemgraphDb {
    graph: Graph,
    triggers: Vec<MemgraphTrigger>,
    after_queue: VecDeque<(String, pg_cypher::Row)>,
    now_ms: i64,
    /// Run AFTER COMMIT triggers immediately after each commit.
    pub auto_drain_after: bool,
    pub fired: u64,
}

impl Default for MemgraphDb {
    fn default() -> Self {
        MemgraphDb::new()
    }
}

impl MemgraphDb {
    pub fn new() -> Self {
        MemgraphDb {
            graph: Graph::new(),
            triggers: Vec::new(),
            after_queue: VecDeque::new(),
            now_ms: 0,
            auto_drain_after: true,
            fired: 0,
        }
    }

    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    pub fn graph_mut(&mut self) -> &mut Graph {
        &mut self.graph
    }

    /// `CREATE TRIGGER …`.
    pub fn create_trigger(&mut self, ddl: &str) -> Result<String, MemgraphError> {
        let trig = parse_memgraph_trigger(ddl)?;
        if self.triggers.iter().any(|t| t.name == trig.name) {
            return Err(MemgraphError::DuplicateTrigger(trig.name));
        }
        let name = trig.name.clone();
        self.triggers.push(trig);
        Ok(name)
    }

    /// `DROP TRIGGER name`.
    pub fn drop_trigger(&mut self, name: &str) -> Result<(), MemgraphError> {
        let before = self.triggers.len();
        self.triggers.retain(|t| t.name != name);
        if self.triggers.len() == before {
            Err(MemgraphError::UnknownTrigger(name.to_string()))
        } else {
            Ok(())
        }
    }

    pub fn trigger_names(&self) -> Vec<String> {
        self.triggers.iter().map(|t| t.name.clone()).collect()
    }

    fn filter_matches(filter: &Option<(ObjectFilter, OpFilter)>, classes: &EventClasses) -> bool {
        match filter {
            None => classes.any(),
            Some((obj, op)) => match (obj, op) {
                (ObjectFilter::Vertex, OpFilter::Create) => classes.vertex_create,
                (ObjectFilter::Vertex, OpFilter::Update) => classes.vertex_update,
                (ObjectFilter::Vertex, OpFilter::Delete) => classes.vertex_delete,
                (ObjectFilter::Edge, OpFilter::Create) => classes.edge_create,
                (ObjectFilter::Edge, OpFilter::Update) => classes.edge_update,
                (ObjectFilter::Edge, OpFilter::Delete) => classes.edge_delete,
                (ObjectFilter::Any, OpFilter::Create) => {
                    classes.vertex_create || classes.edge_create
                }
                (ObjectFilter::Any, OpFilter::Update) => {
                    classes.vertex_update || classes.edge_update
                }
                (ObjectFilter::Any, OpFilter::Delete) => {
                    classes.vertex_delete || classes.edge_delete
                }
            },
        }
    }

    /// Run one transaction with trigger processing.
    pub fn run_tx(&mut self, statements: &[&str]) -> Result<Vec<QueryOutput>, MemgraphError> {
        self.now_ms += 1000;
        self.graph.begin().map_err(CypherError::from)?;
        let tx_mark = self.graph.mark();
        let mut outputs = Vec::new();
        for src in statements {
            match run_query(&mut self.graph, src, &Params::new(), self.now_ms) {
                Ok(out) => outputs.push(out),
                Err(e) => {
                    let _ = self.graph.rollback();
                    return Err(e.into());
                }
            }
        }
        let delta = self.graph.delta_since(tx_mark);
        let classes = EventClasses::of(&delta);
        let vars = memgraph_vars(&delta);

        // BEFORE COMMIT triggers run inside the transaction (the paper's
        // ONCOMMIT), without cascading.
        let before: Vec<MemgraphTrigger> = self
            .triggers
            .iter()
            .filter(|t| t.phase == CommitPhase::Before && Self::filter_matches(&t.filter, &classes))
            .cloned()
            .collect();
        for t in before {
            match run_ast(
                &mut self.graph,
                &t.statement,
                vec![vars.clone()],
                &Params::new(),
                self.now_ms,
            ) {
                Ok(_) => self.fired += 1,
                Err(e) => {
                    let _ = self.graph.rollback();
                    return Err(e.into());
                }
            }
        }
        self.graph.commit().map_err(CypherError::from)?;

        // AFTER COMMIT triggers are queued (asynchronous in Memgraph).
        let after: Vec<String> = self
            .triggers
            .iter()
            .filter(|t| t.phase == CommitPhase::After && Self::filter_matches(&t.filter, &classes))
            .map(|t| t.name.clone())
            .collect();
        for name in after {
            self.after_queue.push_back((name, vars.clone()));
        }
        if self.auto_drain_after {
            self.drain_after()?;
        }
        Ok(outputs)
    }

    /// Execute pending AFTER COMMIT activations (each in a new transaction,
    /// against the current state — same race as APOC `afterAsync`).
    pub fn drain_after(&mut self) -> Result<usize, MemgraphError> {
        let mut n = 0;
        while let Some((name, vars)) = self.after_queue.pop_front() {
            let Some(t) = self.triggers.iter().find(|t| t.name == name).cloned() else {
                continue;
            };
            self.graph.begin().map_err(CypherError::from)?;
            match run_ast(
                &mut self.graph,
                &t.statement,
                vec![vars],
                &Params::new(),
                self.now_ms,
            ) {
                Ok(_) => {
                    self.fired += 1;
                    self.graph.commit().map_err(CypherError::from)?;
                }
                Err(e) => {
                    let _ = self.graph.rollback();
                    return Err(e.into());
                }
            }
            n += 1;
        }
        Ok(n)
    }

    pub fn pending_after(&self) -> usize {
        self.after_queue.len()
    }

    /// Query helper without trigger processing.
    pub fn query(&mut self, src: &str) -> Result<QueryOutput, MemgraphError> {
        self.graph.begin().map_err(CypherError::from)?;
        match run_query(&mut self.graph, src, &Params::new(), self.now_ms) {
            Ok(out) => {
                self.graph.commit().map_err(CypherError::from)?;
                Ok(out)
            }
            Err(e) => {
                let _ = self.graph.rollback();
                Err(e.into())
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pg_graph::Value;

    fn count(db: &mut MemgraphDb, label: &str) -> i64 {
        db.query(&format!("MATCH (n:{label}) RETURN count(*) AS n"))
            .unwrap()
            .single()
            .and_then(|v| v.as_i64())
            .unwrap()
    }

    #[test]
    fn parse_ddl_variants() {
        let t = parse_memgraph_trigger(
            "CREATE TRIGGER t ON () CREATE AFTER COMMIT EXECUTE CREATE (:Log)",
        )
        .unwrap();
        assert_eq!(t.filter, Some((ObjectFilter::Vertex, OpFilter::Create)));
        assert_eq!(t.phase, CommitPhase::After);

        let t = parse_memgraph_trigger(
            "CREATE TRIGGER t ON --> DELETE BEFORE COMMIT EXECUTE CREATE (:Log)",
        )
        .unwrap();
        assert_eq!(t.filter, Some((ObjectFilter::Edge, OpFilter::Delete)));
        assert_eq!(t.phase, CommitPhase::Before);

        let t =
            parse_memgraph_trigger("CREATE TRIGGER t ON UPDATE AFTER COMMIT EXECUTE CREATE (:Log)")
                .unwrap();
        assert_eq!(t.filter, Some((ObjectFilter::Any, OpFilter::Update)));

        let t =
            parse_memgraph_trigger("CREATE TRIGGER t AFTER COMMIT EXECUTE CREATE (:Log)").unwrap();
        assert_eq!(t.filter, None);

        assert!(parse_memgraph_trigger(
            "CREATE TRIGGER t ON () FROB AFTER COMMIT EXECUTE RETURN 1"
        )
        .is_err());
        assert!(parse_memgraph_trigger("DROP TRIGGER t").is_err());
    }

    #[test]
    fn figure_3_style_trigger_fires() {
        // Paper Figure 3: UNWIND createdVertices, CASE-flag filtering.
        let mut db = MemgraphDb::new();
        db.create_trigger(
            "CREATE TRIGGER newCritical ON () CREATE AFTER COMMIT EXECUTE
             UNWIND createdVertices AS newNode
             WITH CASE WHEN 'Mutation' IN labels(newNode) THEN newNode END AS flag, newNode AS newNode
             WHERE flag IS NOT NULL
             CREATE (:Alert {mutation: newNode.name})",
        )
        .unwrap();
        db.run_tx(&["CREATE (:Mutation {name: 'D614G'}), (:Other)"])
            .unwrap();
        let out = db.query("MATCH (a:Alert) RETURN a.mutation AS m").unwrap();
        assert_eq!(out.rows, vec![vec![Value::str("D614G")]]);
    }

    #[test]
    fn before_commit_joins_transaction() {
        let mut db = MemgraphDb::new();
        db.create_trigger(
            "CREATE TRIGGER tally ON () CREATE BEFORE COMMIT EXECUTE
             CREATE (:CommitLog {n: size(createdVertices)})",
        )
        .unwrap();
        db.run_tx(&["CREATE (:P), (:P)"]).unwrap();
        let out = db.query("MATCH (c:CommitLog) RETURN c.n AS n").unwrap();
        assert_eq!(out.rows, vec![vec![Value::Int(2)]]);
    }

    #[test]
    fn event_filters_select_triggers() {
        let mut db = MemgraphDb::new();
        db.create_trigger("CREATE TRIGGER onv ON () CREATE AFTER COMMIT EXECUTE CREATE (:VLog)")
            .unwrap();
        db.create_trigger("CREATE TRIGGER one ON --> CREATE AFTER COMMIT EXECUTE CREATE (:ELog)")
            .unwrap();
        db.run_tx(&["CREATE (:P)"]).unwrap();
        assert_eq!(count(&mut db, "VLog"), 1);
        assert_eq!(count(&mut db, "ELog"), 0);
        db.run_tx(&["MATCH (p:P) CREATE (p)-[:R]->(:Q)"]).unwrap();
        // vertex creation AND edge creation in that tx
        assert_eq!(count(&mut db, "VLog"), 2);
        assert_eq!(count(&mut db, "ELog"), 1);
    }

    #[test]
    fn triggers_do_not_cascade() {
        let mut db = MemgraphDb::new();
        db.create_trigger(
            "CREATE TRIGGER t1 ON () CREATE AFTER COMMIT EXECUTE
             UNWIND createdVertices AS v
             WITH v WHERE 'A' IN labels(v)
             CREATE (:B)",
        )
        .unwrap();
        db.create_trigger(
            "CREATE TRIGGER t2 ON () CREATE AFTER COMMIT EXECUTE
             UNWIND createdVertices AS v
             WITH v WHERE 'B' IN labels(v)
             CREATE (:C)",
        )
        .unwrap();
        db.run_tx(&["CREATE (:A)"]).unwrap();
        assert_eq!(count(&mut db, "B"), 1);
        assert_eq!(count(&mut db, "C"), 0); // no cascade (§5.2)
    }

    #[test]
    fn update_filter_and_set_vertex_properties() {
        let mut db = MemgraphDb::new();
        db.create_trigger(
            "CREATE TRIGGER watch ON () UPDATE AFTER COMMIT EXECUTE
             UNWIND setVertexProperties AS pe
             WITH pe WHERE pe.key = 'whoDesignation'
             CREATE (:Alert {was: pe.old_value, now: pe.value})",
        )
        .unwrap();
        db.run_tx(&["CREATE (:Lineage {whoDesignation: 'Indian'})"])
            .unwrap();
        // creation counts as vertex update too (raw props), 1 alert
        db.run_tx(&["MATCH (l:Lineage) SET l.whoDesignation = 'Delta'"])
            .unwrap();
        let out = db
            .query("MATCH (a:Alert) RETURN a.was AS w, a.now AS n ORDER BY w")
            .unwrap();
        // NULL sorts last under ORDER BY
        assert_eq!(
            out.rows,
            vec![
                vec![Value::str("Indian"), Value::str("Delta")],
                vec![Value::Null, Value::str("Indian")],
            ]
        );
    }

    #[test]
    fn duplicate_and_unknown_triggers() {
        let mut db = MemgraphDb::new();
        db.create_trigger("CREATE TRIGGER t AFTER COMMIT EXECUTE CREATE (:X)")
            .unwrap();
        assert!(matches!(
            db.create_trigger("CREATE TRIGGER t AFTER COMMIT EXECUTE CREATE (:X)"),
            Err(MemgraphError::DuplicateTrigger(_))
        ));
        db.drop_trigger("t").unwrap();
        assert!(matches!(
            db.drop_trigger("t"),
            Err(MemgraphError::UnknownTrigger(_))
        ));
    }
}
