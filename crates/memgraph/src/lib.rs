//! # pg-memgraph — Memgraph trigger subsystem emulation + translator
//!
//! Implements the paper's §5.2:
//!
//! 1. [`system::MemgraphDb`] emulates Memgraph triggers: the
//!    `CREATE TRIGGER … [ON [()|-->] CREATE|UPDATE|DELETE] [BEFORE|AFTER]
//!    COMMIT EXECUTE …` DDL, the fifteen predefined variables of Table 4
//!    (`createdVertices`, `updatedObjects`, `setVertexLabels`, …), and the
//!    same no-cascading limitation the paper reports ("identical to those
//!    of Neo4j APOC procedures").
//! 2. [`translate::translate`] is the syntax-directed translation of
//!    Figure 3 (the `CASE … THEN … END AS flag / WHERE flag IS NOT NULL`
//!    scheme), generalized to all fifteen event kinds.

pub mod system;
pub mod translate;
pub mod vars;

pub use system::{
    parse_memgraph_trigger, CommitPhase, MemgraphDb, MemgraphError, MemgraphTrigger, ObjectFilter,
    OpFilter,
};
pub use translate::{translate, MemgraphInstall, TranslateError};
pub use vars::{memgraph_vars, EventClasses, MEMGRAPH_VAR_NAMES};
