//! Syntax-directed translation **PG-Trigger → Memgraph trigger** (paper
//! §5.2, Figure 3), covering the fifteen supported event kinds.
//!
//! Scheme (Figure 3): `UNWIND` the matching predefined variable (Table 4),
//! inline the condition query, express the condition with openCypher's
//! `CASE` construct producing a `flag`, filter `WHERE flag IS NOT NULL`,
//! then run the trigger statement. "Memgraph moves all the logic inside the
//! openCypher statement."

use crate::system::{CommitPhase, ObjectFilter, OpFilter};
use pg_cypher::ast::Clause;
use pg_cypher::{rename_vars, unparse_clause, unparse_expr, unparse_query, Expr};
use pg_triggers::{ActionTime, EventType, Granularity, ItemKind, TransitionVar, TriggerSpec};
use std::collections::BTreeMap;

/// A translated trigger: Memgraph `CREATE TRIGGER` DDL.
#[derive(Debug, Clone, PartialEq)]
pub struct MemgraphInstall {
    pub name: String,
    /// The full `CREATE TRIGGER … EXECUTE …` text.
    pub ddl: String,
    pub phase: CommitPhase,
    pub warnings: Vec<String>,
}

/// Untranslatable trigger shapes.
#[derive(Debug, Clone, PartialEq)]
pub enum TranslateError {
    Unsupported(String),
}

impl std::fmt::Display for TranslateError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TranslateError::Unsupported(m) => write!(f, "untranslatable trigger: {m}"),
        }
    }
}

impl std::error::Error for TranslateError {}

/// Translate a PG-Trigger into Memgraph trigger DDL.
pub fn translate(spec: &TriggerSpec) -> Result<MemgraphInstall, TranslateError> {
    let mut warnings = Vec::new();
    let phase = match spec.time {
        ActionTime::OnCommit => CommitPhase::Before,
        ActionTime::After => CommitPhase::After,
        ActionTime::Detached => {
            warnings.push(
                "DETACHED approximated by AFTER COMMIT (asynchronous, may observe later state)"
                    .into(),
            );
            CommitPhase::After
        }
        ActionTime::Before => {
            warnings.push(
                "BEFORE has no Memgraph equivalent: mapped to BEFORE COMMIT, which sees \
                 post-statement state"
                    .into(),
            );
            CommitPhase::Before
        }
    };
    warnings.push("Memgraph triggers do not cascade (identical to APOC, §5.2)".into());

    let label = &spec.label;
    let var = |s: &str| Expr::Var(s.to_string());
    let lit = |s: &str| Expr::Literal(pg_graph::Value::Str(s.to_string()));

    // Plan: prefix pipeline, item variable, per-item check, event filter.
    struct Plan {
        prefix: String,
        item_var: String,
        check: Expr,
        filter: (ObjectFilter, OpFilter),
        renames: BTreeMap<String, String>,
    }

    let in_labels = |v: &str, label: &str| {
        Expr::Binary(
            pg_cypher::ast::BinOp::In,
            Box::new(lit(label)),
            Box::new(Expr::Func {
                name: "labels".into(),
                args: vec![var(v)],
                distinct: false,
            }),
        )
    };
    let eq_type = |v: &str, label: &str| {
        Expr::Binary(
            pg_cypher::ast::BinOp::Eq,
            Box::new(Expr::Func {
                name: "type".into(),
                args: vec![var(v)],
                distinct: false,
            }),
            Box::new(lit(label)),
        )
    };
    let map_field_eq = |v: &str, field: &str, label: &str| {
        Expr::Binary(
            pg_cypher::ast::BinOp::Eq,
            Box::new(Expr::Prop(Box::new(var(v)), field.to_string())),
            Box::new(lit(label)),
        )
    };

    let mut renames = BTreeMap::new();
    let new_name = spec.var_name(TransitionVar::New);
    let old_name = spec.var_name(TransitionVar::Old);
    let mut plan = match (spec.event, spec.item, &spec.property) {
        (EventType::Create, ItemKind::Node, _) => {
            renames.insert(new_name, "newNode".to_string());
            Plan {
                prefix: "UNWIND createdVertices AS newNode".into(),
                item_var: "newNode".into(),
                check: in_labels("newNode", label),
                filter: (ObjectFilter::Vertex, OpFilter::Create),
                renames,
            }
        }
        (EventType::Create, ItemKind::Relationship, _) => {
            renames.insert(new_name, "newEdge".to_string());
            Plan {
                prefix: "UNWIND createdEdges AS newEdge".into(),
                item_var: "newEdge".into(),
                check: eq_type("newEdge", label),
                filter: (ObjectFilter::Edge, OpFilter::Create),
                renames,
            }
        }
        (EventType::Delete, ItemKind::Node, _) => {
            renames.insert(old_name, "oldNode".to_string());
            Plan {
                prefix: "UNWIND deletedVertices AS oldNode".into(),
                item_var: "oldNode".into(),
                check: Expr::Binary(
                    pg_cypher::ast::BinOp::In,
                    Box::new(lit(label)),
                    Box::new(Expr::Prop(Box::new(var("oldNode")), "__labels".into())),
                ),
                filter: (ObjectFilter::Vertex, OpFilter::Delete),
                renames,
            }
        }
        (EventType::Delete, ItemKind::Relationship, _) => {
            renames.insert(old_name, "oldEdge".to_string());
            Plan {
                prefix: "UNWIND deletedEdges AS oldEdge".into(),
                item_var: "oldEdge".into(),
                check: map_field_eq("oldEdge", "__type", label),
                filter: (ObjectFilter::Edge, OpFilter::Delete),
                renames,
            }
        }
        (EventType::Set, ItemKind::Node, None) => {
            renames.insert(new_name, "newNode".to_string());
            Plan {
                prefix: format!(
                    "UNWIND setVertexLabels AS lblGroup \
                     WITH lblGroup WHERE lblGroup.label = '{label}' \
                     UNWIND lblGroup.vertices AS newNode"
                ),
                item_var: "newNode".into(),
                check: Expr::Literal(pg_graph::Value::Bool(true)),
                filter: (ObjectFilter::Vertex, OpFilter::Update),
                renames,
            }
        }
        (EventType::Remove, ItemKind::Node, None) => {
            renames.insert(old_name, "oldNode".to_string());
            renames.insert(new_name, "oldNode".to_string());
            Plan {
                prefix: format!(
                    "UNWIND removedVertexLabels AS lblGroup \
                     WITH lblGroup WHERE lblGroup.label = '{label}' \
                     UNWIND lblGroup.vertices AS oldNode"
                ),
                item_var: "oldNode".into(),
                check: Expr::Literal(pg_graph::Value::Bool(true)),
                filter: (ObjectFilter::Vertex, OpFilter::Update),
                renames,
            }
        }
        (EventType::Set, ItemKind::Node, Some(p)) => {
            renames.insert(new_name, "newNode".to_string());
            renames.insert(old_name, "oldProps".to_string());
            Plan {
                prefix: format!(
                    "UNWIND setVertexProperties AS pe \
                     WITH pe WHERE pe.key = '{p}' \
                     WITH pe.vertex AS newNode, {{{p}: pe.old_value}} AS oldProps"
                ),
                item_var: "newNode".into(),
                check: in_labels("newNode", label),
                filter: (ObjectFilter::Vertex, OpFilter::Update),
                renames,
            }
        }
        (EventType::Remove, ItemKind::Node, Some(p)) => {
            renames.insert(new_name, "newNode".to_string());
            renames.insert(old_name, "oldProps".to_string());
            Plan {
                prefix: format!(
                    "UNWIND removedVertexProperties AS pe \
                     WITH pe WHERE pe.key = '{p}' \
                     WITH pe.vertex AS newNode, {{{p}: pe.old_value}} AS oldProps"
                ),
                item_var: "newNode".into(),
                check: in_labels("newNode", label),
                filter: (ObjectFilter::Vertex, OpFilter::Update),
                renames,
            }
        }
        (EventType::Set, ItemKind::Relationship, Some(p)) => {
            renames.insert(new_name, "newEdge".to_string());
            renames.insert(old_name, "oldProps".to_string());
            Plan {
                prefix: format!(
                    "UNWIND setEdgeProperties AS pe \
                     WITH pe WHERE pe.key = '{p}' \
                     WITH pe.edge AS newEdge, {{{p}: pe.old_value}} AS oldProps"
                ),
                item_var: "newEdge".into(),
                check: eq_type("newEdge", label),
                filter: (ObjectFilter::Edge, OpFilter::Update),
                renames,
            }
        }
        (EventType::Remove, ItemKind::Relationship, Some(p)) => {
            renames.insert(new_name, "newEdge".to_string());
            renames.insert(old_name, "oldProps".to_string());
            Plan {
                prefix: format!(
                    "UNWIND removedEdgeProperties AS pe \
                     WITH pe WHERE pe.key = '{p}' \
                     WITH pe.edge AS newEdge, {{{p}: pe.old_value}} AS oldProps"
                ),
                item_var: "newEdge".into(),
                check: eq_type("newEdge", label),
                filter: (ObjectFilter::Edge, OpFilter::Update),
                renames,
            }
        }
        (e, i, p) => {
            return Err(TranslateError::Unsupported(format!(
                "event {e:?} on {i:?} with property {p:?}"
            )))
        }
    };

    // FOR ALL: collect into a list after the per-item check.
    if spec.granularity == Granularity::All {
        if matches!(spec.event, EventType::Set | EventType::Remove) && spec.property.is_some() {
            return Err(TranslateError::Unsupported(
                "FOR ALL with property events: predefined variables cannot deliver aligned \
                 OLD/NEW item sets"
                    .into(),
            ));
        }
        let unit = plan.item_var.clone();
        let list_var = format!("{unit}List");
        plan.prefix = format!(
            "{} WITH {unit} WHERE {} WITH collect({unit}) AS {list_var}",
            plan.prefix,
            unparse_expr(&plan.check),
        );
        plan.check = Expr::Binary(
            pg_cypher::ast::BinOp::Gt,
            Box::new(Expr::Func {
                name: "size".into(),
                args: vec![var(&list_var)],
                distinct: false,
            }),
            Box::new(Expr::Literal(pg_graph::Value::Int(0))),
        );
        let (new_set, old_set) = match spec.item {
            ItemKind::Node => (TransitionVar::NewNodes, TransitionVar::OldNodes),
            ItemKind::Relationship => (TransitionVar::NewRels, TransitionVar::OldRels),
        };
        plan.renames.clear();
        match spec.event {
            EventType::Create | EventType::Set => {
                plan.renames
                    .insert(spec.var_name(new_set), list_var.clone());
            }
            EventType::Delete | EventType::Remove => {
                plan.renames
                    .insert(spec.var_name(old_set), list_var.clone());
            }
        }
        plan.item_var = list_var;
    }

    // Condition: bare predicate → CASE flag (Figure 3); pipeline →
    // condition_query before the flag computation.
    let mut check = plan.check.clone();
    let mut pipeline = String::new();
    if let Some(cond) = &spec.condition {
        let renamed = rename_vars(cond, &plan.renames);
        match renamed.clauses.as_slice() {
            [Clause::Where(pred)] => {
                check = Expr::Binary(
                    pg_cypher::ast::BinOp::And,
                    Box::new(check),
                    Box::new(pred.clone()),
                );
            }
            clauses => {
                pipeline = clauses
                    .iter()
                    .map(unparse_clause)
                    .collect::<Vec<_>>()
                    .join(" ");
            }
        }
    }

    // Figure 3: WITH CASE WHEN <check> THEN <item> END AS flag, <carried>…
    // WHERE flag IS NOT NULL, then the statement.
    let statement = rename_vars(&spec.statement, &plan.renames);
    let stmt_text = unparse_query(&statement);
    // Variables the statement needs carried through the WITH (the item plus
    // condition bindings). We conservatively carry `*`.
    let exec = format!(
        "{prefix}{pipe} WITH *, CASE WHEN {check} THEN {item} END AS flag \
         WHERE flag IS NOT NULL {stmt}",
        prefix = plan.prefix,
        pipe = if pipeline.is_empty() {
            String::new()
        } else {
            format!(" {pipeline}")
        },
        check = unparse_expr(&check),
        item = plan.item_var,
        stmt = stmt_text,
    );

    let on_clause = {
        let (obj, op) = plan.filter;
        let obj_s = match obj {
            ObjectFilter::Vertex => "() ",
            ObjectFilter::Edge => "--> ",
            ObjectFilter::Any => "",
        };
        let op_s = match op {
            OpFilter::Create => "CREATE",
            OpFilter::Update => "UPDATE",
            OpFilter::Delete => "DELETE",
        };
        format!("ON {obj_s}{op_s}")
    };
    let phase_s = match phase {
        CommitPhase::Before => "BEFORE COMMIT",
        CommitPhase::After => "AFTER COMMIT",
    };
    let ddl = format!(
        "CREATE TRIGGER {name} {on_clause} {phase_s} EXECUTE {exec}",
        name = spec.name,
    );
    Ok(MemgraphInstall {
        name: spec.name.clone(),
        ddl,
        phase,
        warnings,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use pg_triggers::{parse_trigger_ddl, DdlStatement};

    fn spec(src: &str) -> TriggerSpec {
        match parse_trigger_ddl(src).unwrap() {
            DdlStatement::CreateTrigger(s) => s,
            _ => panic!(),
        }
    }

    #[test]
    fn figure_3_shape() {
        let t = spec(
            "CREATE TRIGGER NewCriticalMutation AFTER CREATE ON 'Mutation' FOR EACH NODE
             WHEN EXISTS (NEW)-[:Risk]-(:CriticalEffect)
             BEGIN CREATE (:Alert{mutation: NEW.name}) END",
        );
        let out = translate(&t).unwrap();
        assert!(
            out.ddl.starts_with(
                "CREATE TRIGGER NewCriticalMutation ON () CREATE AFTER COMMIT EXECUTE"
            ),
            "{}",
            out.ddl
        );
        assert!(
            out.ddl.contains("UNWIND createdVertices AS newNode"),
            "{}",
            out.ddl
        );
        assert!(out.ddl.contains("CASE WHEN"), "{}", out.ddl);
        assert!(out.ddl.contains("flag IS NOT NULL"), "{}", out.ddl);
        assert!(out.ddl.contains("newNode.name"), "{}", out.ddl);
        assert!(!out.ddl.contains("NEW."), "{}", out.ddl);
    }

    #[test]
    fn all_fifteen_event_kinds_translate() {
        // {vertex, edge} × {create, delete} + label set/remove +
        // {vertex, edge} × property {set, remove}; granularities both.
        let cases = [
            ("AFTER CREATE ON 'L' FOR EACH NODE", "createdVertices"),
            ("AFTER CREATE ON 'L' FOR EACH RELATIONSHIP", "createdEdges"),
            ("AFTER DELETE ON 'L' FOR EACH NODE", "deletedVertices"),
            ("AFTER DELETE ON 'L' FOR EACH RELATIONSHIP", "deletedEdges"),
            ("AFTER SET ON 'L' FOR EACH NODE", "setVertexLabels"),
            ("AFTER REMOVE ON 'L' FOR EACH NODE", "removedVertexLabels"),
            ("AFTER SET ON 'L'.'p' FOR EACH NODE", "setVertexProperties"),
            (
                "AFTER REMOVE ON 'L'.'p' FOR EACH NODE",
                "removedVertexProperties",
            ),
            (
                "AFTER SET ON 'L'.'p' FOR EACH RELATIONSHIP",
                "setEdgeProperties",
            ),
            (
                "AFTER REMOVE ON 'L'.'p' FOR EACH RELATIONSHIP",
                "removedEdgeProperties",
            ),
            ("AFTER CREATE ON 'L' FOR ALL NODES", "collect(newNode)"),
            ("AFTER DELETE ON 'L' FOR ALL NODES", "collect(oldNode)"),
            (
                "AFTER CREATE ON 'L' FOR ALL RELATIONSHIPS",
                "collect(newEdge)",
            ),
            (
                "AFTER DELETE ON 'L' FOR ALL RELATIONSHIPS",
                "collect(oldEdge)",
            ),
            ("AFTER SET ON 'L' FOR ALL NODES", "collect(newNode)"),
        ];
        for (middle, expect) in cases {
            let t = spec(&format!("CREATE TRIGGER t {middle} BEGIN CREATE (:X) END"));
            let out = translate(&t).unwrap_or_else(|e| panic!("{middle}: {e}"));
            assert!(out.ddl.contains(expect), "{middle}: {}", out.ddl);
        }
    }

    #[test]
    fn oncommit_is_before_commit() {
        let t = spec("CREATE TRIGGER t ONCOMMIT CREATE ON 'L' FOR EACH NODE BEGIN CREATE (:X) END");
        let out = translate(&t).unwrap();
        assert_eq!(out.phase, CommitPhase::Before);
        assert!(out.ddl.contains("BEFORE COMMIT"));
    }

    #[test]
    fn old_property_binding() {
        let t = spec(
            "CREATE TRIGGER who AFTER SET ON 'Lineage'.'whoDesignation' FOR EACH NODE
             WHEN OLD.whoDesignation <> NEW.whoDesignation
             BEGIN CREATE (:Alert {was: OLD.whoDesignation}) END",
        );
        let out = translate(&t).unwrap();
        assert!(out.ddl.contains("pe.key = 'whoDesignation'"), "{}", out.ddl);
        assert!(out.ddl.contains("oldProps.whoDesignation"), "{}", out.ddl);
    }

    #[test]
    fn unsupported_for_all_property_events() {
        let t = spec("CREATE TRIGGER t AFTER SET ON 'L'.'p' FOR ALL NODES BEGIN CREATE (:X) END");
        assert!(matches!(translate(&t), Err(TranslateError::Unsupported(_))));
    }
}
