//! Concurrency over the wire: N socket clients against one server, with
//! the §6 COVID scenario loaded. One client fires trigger cascades; the
//! others assert snapshot-consistent atomic reads the whole time. Plus
//! the transactional guarantees: disconnect-mid-transaction auto-rolls
//! back, and explicit transactions serialize writers.

use pg_graph::Value;
use pg_server::{Client, Server, ServerHandle};
use pg_triggers::Session;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

fn spawn_covid() -> (ServerHandle, String) {
    let mut session = Session::new();
    for stmt in pg_covid::wire::setup_statements() {
        session
            .execute(&stmt)
            .unwrap_or_else(|e| panic!("covid setup `{stmt}`: {e}"));
    }
    let server = Server::bind("127.0.0.1:0", session).unwrap();
    let addr = server.local_addr().to_string();
    (server.spawn(), addr)
}

/// One writer drives §6 cascades (critical-mutation discoveries and
/// ICU-overflow admissions) while three readers continuously assert that
/// every snapshot they see is cascade-atomic:
///
/// * a discovery's `Mutation` is never visible without its `Alert`
///   (checked in ONE statement, so one snapshot);
/// * the relocation cascade never leaves a hospitalized patient without
///   a `TreatedAt` edge;
/// * alert counts never decrease (snapshots are monotonic).
#[test]
fn four_clients_observe_cascades_atomically() {
    let (handle, addr) = spawn_covid();
    const DISCOVERIES: u64 = 20;
    const ADMISSIONS: u64 = 15;

    let committed = Arc::new(AtomicU64::new(0)); // discovery high-water mark
    let done = Arc::new(AtomicBool::new(false));

    let writer = {
        let (addr, committed, done) = (addr.clone(), committed.clone(), done.clone());
        std::thread::spawn(move || {
            let mut c = Client::connect(&addr).unwrap();
            for tag in 1..=DISCOVERIES.max(ADMISSIONS) {
                if tag <= DISCOVERIES {
                    let out = c
                        .run_all(&pg_covid::wire::discover_critical_mutation(tag), &[])
                        .unwrap();
                    assert!(
                        out.fired >= 1,
                        "discovery {tag} must fire the alert trigger"
                    );
                    committed.store(tag, Ordering::SeqCst);
                }
                if tag <= ADMISSIONS {
                    // Sacco has 3 beds: admissions 4.. fire relocations.
                    c.run_all(&pg_covid::wire::icu_admission(tag, "Sacco", 5), &[])
                        .unwrap();
                }
            }
            done.store(true, Ordering::SeqCst);
            c.goodbye().ok();
        })
    };

    let readers: Vec<_> = (0..3)
        .map(|r| {
            let (addr, committed, done) = (addr.clone(), committed.clone(), done.clone());
            std::thread::spawn(move || {
                let mut c = Client::connect(&addr).unwrap();
                let mut last_alerts = 0i64;
                let mut checks = 0u64;
                while !done.load(Ordering::SeqCst) || checks < 10 {
                    // Torn-cascade probe: any visible Mutation missing its
                    // Alert, in a single statement (= a single snapshot).
                    let torn = c
                        .run_all(
                            "MATCH (m:Mutation) \
                             WHERE NOT EXISTS { MATCH (:Alert {mutation: m.name}) } \
                             RETURN count(*) AS torn",
                            &[],
                        )
                        .unwrap();
                    assert_eq!(
                        torn.single_i64(),
                        Some(0),
                        "reader {r}: snapshot shows a mutation without its alert"
                    );

                    // Relocation atomicity: no orphaned patients, ever.
                    let orphans = c
                        .run_all(pg_covid::wire::ORPHANED_PATIENTS_QUERY, &[])
                        .unwrap();
                    assert_eq!(
                        orphans.single_i64(),
                        Some(0),
                        "reader {r}: relocation cascade left an orphan"
                    );

                    // Monotonic snapshots: alerts only ever accumulate, and
                    // every discovery committed BEFORE our read is visible.
                    let floor = committed.load(Ordering::SeqCst) as i64;
                    let alerts = c
                        .run_all(pg_covid::wire::ALERT_COUNT_QUERY, &[])
                        .unwrap()
                        .single_i64()
                        .unwrap();
                    assert!(
                        alerts >= last_alerts,
                        "reader {r}: alerts went backwards ({alerts} < {last_alerts})"
                    );
                    assert!(
                        alerts >= floor,
                        "reader {r}: snapshot misses committed discoveries \
                         ({alerts} alerts < {floor} committed)"
                    );
                    last_alerts = alerts;
                    checks += 1;
                }
                c.goodbye().ok();
                checks
            })
        })
        .collect();

    writer.join().unwrap();
    for reader in readers {
        let checks = reader.join().unwrap();
        assert!(checks >= 10, "reader made only {checks} passes");
    }

    // Endgame: every discovery produced exactly one alert, and Sacco ended
    // at-or-under capacity with every overflow admission relocated.
    let mut c = Client::connect(&addr).unwrap();
    let mutation_alerts = c
        .run_all(
            "MATCH (a:Alert {desc: 'New critical mutation'}) RETURN count(*) AS n",
            &[],
        )
        .unwrap();
    assert_eq!(mutation_alerts.single_i64(), Some(DISCOVERIES as i64));
    let at_sacco = c
        .run_all(&pg_covid::wire::treated_at_query("Sacco"), &[])
        .unwrap()
        .single_i64()
        .unwrap();
    assert!(at_sacco <= pg_covid::wire::SACCO_ICU_BEDS);
    let everywhere: i64 = ["Sacco", "Meyer", "Niguarda"]
        .iter()
        .map(|h| {
            c.run_all(&pg_covid::wire::treated_at_query(h), &[])
                .unwrap()
                .single_i64()
                .unwrap()
        })
        .sum();
    assert_eq!(
        everywhere, ADMISSIONS as i64,
        "every admission is treated somewhere"
    );
    c.goodbye().ok();
    handle.shutdown();
}

/// Dropping a connection mid-transaction rolls the transaction back and
/// releases the writer: nothing of the abandoned work is visible, and the
/// next client can immediately open its own transaction.
#[test]
fn disconnect_mid_transaction_rolls_back_and_releases_the_writer() {
    let (handle, addr) = {
        let server = Server::bind("127.0.0.1:0", Session::new()).unwrap();
        let addr = server.local_addr().to_string();
        (server.spawn(), addr)
    };

    // Client A opens a transaction, writes, and vanishes without COMMIT.
    let mut a = Client::connect(&addr).unwrap();
    a.begin().unwrap();
    let out = a
        .run_all("CREATE (:Abandoned {note: 'never'})", &[])
        .unwrap();
    assert_eq!(out.fired, 0);
    drop(a); // socket closes; no ROLLBACK, no GOODBYE

    // Client B's BEGIN blocks until A's handler notices the disconnect
    // and rolls back — then B owns the writer.
    let mut b = Client::connect(&addr).unwrap();
    b.begin().unwrap();
    let seen = b
        .run_all("MATCH (n:Abandoned) RETURN count(*) AS n", &[])
        .unwrap();
    assert_eq!(
        seen.single_i64(),
        Some(0),
        "abandoned writes must be rolled back"
    );
    b.run_all("CREATE (:Kept)", &[]).unwrap();
    b.commit().unwrap();
    let kept = b
        .run_all("MATCH (n:Kept) RETURN count(*) AS n", &[])
        .unwrap();
    assert_eq!(kept.single_i64(), Some(1));
    b.goodbye().ok();
    handle.shutdown();
}

/// Two clients' explicit transactions serialize on the single writer:
/// the second BEGIN waits for the first COMMIT, then reads its effects.
#[test]
fn explicit_transactions_serialize_on_the_writer() {
    let (handle, addr) = {
        let server = Server::bind("127.0.0.1:0", Session::new()).unwrap();
        let addr = server.local_addr().to_string();
        (server.spawn(), addr)
    };

    let mut a = Client::connect(&addr).unwrap();
    a.begin().unwrap();
    a.run_all("CREATE (:Serial {who: 'a'})", &[]).unwrap();

    // B tries to BEGIN while A holds the writer; it must block.
    let b_thread = {
        let addr = addr.clone();
        std::thread::spawn(move || {
            let mut b = Client::connect(&addr).unwrap();
            b.begin().unwrap(); // parks until A commits
            let n = b
                .run_all("MATCH (s:Serial) RETURN count(*) AS n", &[])
                .unwrap()
                .single_i64()
                .unwrap();
            b.run_all("CREATE (:Serial {who: 'b'})", &[]).unwrap();
            b.commit().unwrap();
            b.goodbye().ok();
            n
        })
    };

    // Give B ample time to reach its (blocking) BEGIN, then commit.
    std::thread::sleep(std::time::Duration::from_millis(150));
    a.commit().unwrap();
    let seen_by_b = b_thread.join().unwrap();
    assert_eq!(
        seen_by_b, 1,
        "B's transaction must observe A's committed write"
    );

    let total = a
        .run_all("MATCH (s:Serial) RETURN count(*) AS n", &[])
        .unwrap();
    assert_eq!(total.single_i64(), Some(2));
    a.goodbye().ok();
    handle.shutdown();
}

/// RESET inside an explicit transaction rolls it back.
#[test]
fn reset_rolls_back_an_open_transaction() {
    let (handle, addr) = {
        let server = Server::bind("127.0.0.1:0", Session::new()).unwrap();
        let addr = server.local_addr().to_string();
        (server.spawn(), addr)
    };
    let mut c = Client::connect(&addr).unwrap();
    c.begin().unwrap();
    c.run_all("CREATE (:ResetMe)", &[]).unwrap();
    c.reset().unwrap();
    let n = c
        .run_all("MATCH (r:ResetMe) RETURN count(*) AS n", &[])
        .unwrap();
    assert_eq!(n.single_i64(), Some(0));
    // The writer is free again: a fresh transaction works.
    c.begin().unwrap();
    c.run_all("CREATE (:ResetMe)", &[]).unwrap();
    c.commit().unwrap();
    let n = c
        .run_all("MATCH (r:ResetMe) RETURN count(*) AS n", &[])
        .unwrap();
    assert_eq!(n.single_i64(), Some(1));
    c.goodbye().ok();
    handle.shutdown();
}

/// Parameterized reads work concurrently from several clients while a
/// writer churns — exercising the reader-session path under load.
#[test]
fn concurrent_parameterized_reads_while_writing() {
    let (handle, addr) = spawn_covid();
    let done = Arc::new(AtomicBool::new(false));

    let writer = {
        let (addr, done) = (addr.clone(), done.clone());
        std::thread::spawn(move || {
            let mut c = Client::connect(&addr).unwrap();
            for tag in 100..130 {
                c.run_all(&pg_covid::wire::icu_admission(tag, "Niguarda", 3), &[])
                    .unwrap();
            }
            done.store(true, Ordering::SeqCst);
            c.goodbye().ok();
        })
    };

    let readers: Vec<_> = (0..3)
        .map(|_| {
            let (addr, done) = (addr.clone(), done.clone());
            std::thread::spawn(move || {
                let mut c = Client::connect(&addr).unwrap();
                let mut loops = 0;
                while !done.load(Ordering::SeqCst) || loops < 5 {
                    let out = c
                        .run_all(
                            "MATCH (h:Hospital {name: $h}) RETURN h.icuBeds AS beds",
                            &[("h".to_string(), Value::str("Sacco"))],
                        )
                        .unwrap();
                    assert_eq!(out.single_i64(), Some(pg_covid::wire::SACCO_ICU_BEDS));
                    loops += 1;
                }
                c.goodbye().ok();
            })
        })
        .collect();

    writer.join().unwrap();
    for r in readers {
        r.join().unwrap();
    }
    handle.shutdown();
}
