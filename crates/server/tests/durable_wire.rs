//! Durability meets the wire: writes made over sockets survive a server
//! restart via WAL recovery, the recovered server serves the same data,
//! and the PID lock file refuses a second writer on a live directory.

use pg_server::{Client, Server};
use pg_triggers::{EngineConfig, Session};
use pg_wal::{RecoveryError, SyncPolicy, WalOptions};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

struct TempDir(PathBuf);

impl TempDir {
    fn new(tag: &str) -> TempDir {
        static COUNTER: AtomicU64 = AtomicU64::new(0);
        let path = std::env::temp_dir().join(format!(
            "pg_server_{tag}_{}_{}",
            std::process::id(),
            COUNTER.fetch_add(1, Ordering::SeqCst)
        ));
        let _ = std::fs::remove_dir_all(&path);
        std::fs::create_dir_all(&path).unwrap();
        TempDir(path)
    }

    fn path(&self) -> &Path {
        &self.0
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

fn wal_options() -> WalOptions {
    WalOptions {
        sync: SyncPolicy::Always,
        ..WalOptions::default()
    }
}

fn open_session(dir: &Path) -> Result<(Session, pg_wal::RecoveryReport), RecoveryError> {
    Session::open_durable(dir, EngineConfig::default(), wal_options())
}

/// The handler threads hold the engine (and with it the WAL lock) until
/// their sockets close; after a client GOODBYE + handle shutdown that is
/// a race measured in microseconds, but a race nonetheless — reopen with
/// a bounded retry on `Locked`.
fn reopen_when_released(dir: &Path) -> (Session, pg_wal::RecoveryReport) {
    for _ in 0..200 {
        match open_session(dir) {
            Ok(opened) => return opened,
            Err(RecoveryError::Locked { .. }) => {
                std::thread::sleep(std::time::Duration::from_millis(10))
            }
            Err(e) => panic!("reopen failed: {e}"),
        }
    }
    panic!("previous server never released the WAL lock");
}

#[test]
fn wire_writes_survive_a_server_restart() {
    let tmp = TempDir::new("restart");

    // Generation 1: a durable server takes writes over the wire — data,
    // a trigger, and a cascade the trigger fires.
    {
        let (session, _) = open_session(tmp.path()).unwrap();
        let server = Server::bind("127.0.0.1:0", session).unwrap();
        let addr = server.local_addr().to_string();
        let handle = server.spawn();

        let mut c = Client::connect(&addr).unwrap();
        let out = c.run_all("CREATE (:Fact {k: 'alpha'})", &[]).unwrap();
        assert!(out.wal_seq.is_some(), "durable writes report a wal_seq");
        c.run_all(
            "CREATE TRIGGER FactEcho AFTER CREATE ON 'Fact' FOR EACH NODE \
             BEGIN CREATE (:Echo {k: NEW.k}) END",
            &[],
        )
        .unwrap();
        let out = c.run_all("CREATE (:Fact {k: 'beta'})", &[]).unwrap();
        assert_eq!(out.fired, 1);

        // An explicit transaction, committed over the wire.
        c.begin().unwrap();
        c.run_all("CREATE (:Fact {k: 'gamma'})", &[]).unwrap();
        c.commit().unwrap();

        // And one abandoned mid-transaction: must NOT survive.
        let mut doomed = Client::connect(&addr).unwrap();
        doomed.begin().unwrap();
        doomed.run_all("CREATE (:Fact {k: 'doomed'})", &[]).unwrap();
        drop(doomed);

        c.goodbye().ok();
        handle.shutdown();
    }

    // Generation 2: recovery replays the committed history — including
    // the trigger's cascade effect — and serves it over the wire again.
    let (session, report) = reopen_when_released(tmp.path());
    assert!(report.last_seq > 0, "the WAL recorded the first generation");
    let server = Server::bind("127.0.0.1:0", session).unwrap();
    let addr = server.local_addr().to_string();
    let handle = server.spawn();

    let mut c = Client::connect(&addr).unwrap();
    let facts = c.run_all("MATCH (f:Fact) RETURN f.k AS k", &[]).unwrap();
    let mut keys: Vec<String> = facts
        .rows
        .iter()
        .filter_map(|r| r.first().and_then(|v| v.as_str().map(|s| s.to_string())))
        .collect();
    keys.sort();
    assert_eq!(keys, ["alpha", "beta", "gamma"], "doomed must not recover");
    let echoes = c
        .run_all("MATCH (e:Echo {k: 'beta'}) RETURN count(*) AS n", &[])
        .unwrap();
    assert_eq!(
        echoes.single_i64(),
        Some(1),
        "the cascade effect recovers with its statement"
    );

    // The recovered store keeps taking durable writes.
    let out = c.run_all("CREATE (:Fact {k: 'delta'})", &[]).unwrap();
    assert!(out.wal_seq.unwrap() > 0);
    c.goodbye().ok();
    handle.shutdown();
}

#[test]
fn second_open_is_refused_while_the_server_lives() {
    let tmp = TempDir::new("live_lock");
    let (session, _) = open_session(tmp.path()).unwrap();
    let server = Server::bind("127.0.0.1:0", session).unwrap();
    let addr = server.local_addr().to_string();
    let handle = server.spawn();

    // The server is live (prove it over the wire)...
    let mut c = Client::connect(&addr).unwrap();
    c.run_all("CREATE (:Guard)", &[]).unwrap();

    // ...so a second durable open on the same directory must refuse, and
    // name this very process as the holder.
    match open_session(tmp.path()) {
        Err(RecoveryError::Locked { holder_pid }) => {
            assert_eq!(holder_pid, std::process::id())
        }
        Ok(_) => panic!("second open on a live directory must be refused"),
        Err(e) => panic!("expected Locked, got {e}"),
    }

    // The refusal did not disturb the serving generation.
    let n = c
        .run_all("MATCH (g:Guard) RETURN count(*) AS n", &[])
        .unwrap();
    assert_eq!(n.single_i64(), Some(1));
    c.goodbye().ok();
    handle.shutdown();
}
