//! Single-connection protocol semantics over a real socket: handshake
//! discipline, chunked streaming with backpressure, DISCARD, the
//! failed-state FAILURE → IGNORED → RESET cycle, parameters, and
//! EXPLAIN/DDL results.

use pg_graph::Value;
use pg_server::{Client, ClientError, Server, ServerHandle};
use pg_triggers::Session;

fn spawn_empty() -> (ServerHandle, String) {
    let server = Server::bind("127.0.0.1:0", Session::new()).unwrap();
    let addr = server.local_addr().to_string();
    (server.spawn(), addr)
}

#[test]
fn hello_handshake_is_required_before_anything_else() {
    use pg_server::{Request, Response};
    use std::io::Write;
    let (handle, addr) = spawn_empty();

    // A raw connection whose first frame is RUN, not HELLO.
    let mut stream = std::net::TcpStream::connect(&addr).unwrap();
    let mut payload = Vec::new();
    pg_server::protocol::encode_request(
        &Request::Run {
            query: "RETURN 1".into(),
            params: Vec::new(),
        },
        &mut payload,
    );
    pg_server::protocol::write_frame(&mut stream, &payload).unwrap();
    stream.flush().unwrap();

    let mut reader = std::io::BufReader::new(stream.try_clone().unwrap());
    let frame = pg_server::protocol::read_frame(&mut reader).unwrap();
    match pg_server::protocol::decode_response(&frame).unwrap() {
        Response::Failure { code, .. } => assert_eq!(code, "Request.Invalid"),
        other => panic!("expected FAILURE before handshake, got {other:?}"),
    }
    // The server hangs up after refusing the handshake.
    match pg_server::protocol::read_frame(&mut reader) {
        Err(_) => {}
        Ok(frame) => panic!("connection should be closed, read {} bytes", frame.len()),
    }

    // A proper HELLO still works on a fresh connection.
    let mut client = Client::connect(&addr).unwrap();
    let out = client.run_all("RETURN 1 AS one", &[]).unwrap();
    assert_eq!(out.single_i64(), Some(1));
    client.goodbye().ok();
    handle.shutdown();
}

#[test]
fn pull_streams_in_chunks_with_has_more() {
    let (handle, addr) = spawn_empty();
    let mut client = Client::connect(&addr).unwrap();
    for i in 0..10 {
        client
            .run_all(&format!("CREATE (:Row {{i: {i}}})"), &[])
            .unwrap();
    }
    let result = client.run("MATCH (r:Row) RETURN r.i AS i", &[]).unwrap();
    assert_eq!(result.columns, ["i"]);

    // 10 records, pulled 4 at a time: 4 + 4 + 2, has_more true/true/false.
    let (batch, more) = client.pull(4).unwrap();
    assert_eq!((batch.len(), more), (4, true));
    let (batch, more) = client.pull(4).unwrap();
    assert_eq!((batch.len(), more), (4, true));
    let (batch, more) = client.pull(4).unwrap();
    assert_eq!((batch.len(), more), (2, false));

    // The stream is consumed: a fresh RUN is accepted immediately.
    let out = client
        .run_all("MATCH (r:Row) RETURN count(*) AS n", &[])
        .unwrap();
    assert_eq!(out.single_i64(), Some(10));
    client.goodbye().ok();
    handle.shutdown();
}

#[test]
fn pull_zero_keeps_the_stream_open() {
    let (handle, addr) = spawn_empty();
    let mut client = Client::connect(&addr).unwrap();
    client.run_all("CREATE (:One)", &[]).unwrap();
    client.run("MATCH (o:One) RETURN o", &[]).unwrap();
    let (batch, more) = client.pull(0).unwrap();
    assert_eq!((batch.len(), more), (0, true));
    let (batch, more) = client.pull(1).unwrap();
    assert_eq!((batch.len(), more), (1, false));
    client.goodbye().ok();
    handle.shutdown();
}

#[test]
fn discard_abandons_the_pending_result() {
    let (handle, addr) = spawn_empty();
    let mut client = Client::connect(&addr).unwrap();
    for i in 0..5 {
        client
            .run_all(&format!("CREATE (:D {{i: {i}}})"), &[])
            .unwrap();
    }
    client.run("MATCH (d:D) RETURN d.i", &[]).unwrap();
    let (batch, more) = client.pull(2).unwrap();
    assert_eq!((batch.len(), more), (2, true));
    client.discard().unwrap();

    // Nothing left to pull; the session accepts new work at once.
    let out = client.run_all("RETURN 7 AS seven", &[]).unwrap();
    assert_eq!(out.single_i64(), Some(7));
    client.goodbye().ok();
    handle.shutdown();
}

#[test]
fn run_while_results_pend_is_refused_but_recoverable() {
    let (handle, addr) = spawn_empty();
    let mut client = Client::connect(&addr).unwrap();
    client.run_all("CREATE (:P)", &[]).unwrap();
    client.run("MATCH (p:P) RETURN p", &[]).unwrap();
    match client.run("RETURN 1", &[]) {
        Err(ClientError::Server { code, .. }) => assert_eq!(code, "Request.Invalid"),
        other => panic!("expected refusal, got {other:?}"),
    }
    client.reset().unwrap();
    assert_eq!(
        client.run_all("RETURN 1 AS one", &[]).unwrap().single_i64(),
        Some(1)
    );
    client.goodbye().ok();
    handle.shutdown();
}

#[test]
fn failure_then_ignored_then_reset() {
    let (handle, addr) = spawn_empty();
    let mut client = Client::connect(&addr).unwrap();

    // A statement error fails the session...
    match client.run("THIS IS NOT A STATEMENT", &[]) {
        Err(ClientError::Server { code, .. }) => assert_eq!(code, "Statement.Error"),
        other => panic!("expected Statement.Error, got {other:?}"),
    }
    // ...after which everything except RESET is IGNORED...
    match client.run("RETURN 1", &[]) {
        Err(ClientError::Ignored) => {}
        other => panic!("expected IGNORED, got {other:?}"),
    }
    match client.pull(1) {
        Err(ClientError::Ignored) => {}
        other => panic!("expected IGNORED, got {other:?}"),
    }
    // ...and RESET restores service.
    client.reset().unwrap();
    let out = client.run_all("RETURN 42 AS n", &[]).unwrap();
    assert_eq!(out.single_i64(), Some(42));
    client.goodbye().ok();
    handle.shutdown();
}

#[test]
fn parameters_reach_the_statement() {
    let (handle, addr) = spawn_empty();
    let mut client = Client::connect(&addr).unwrap();
    client
        .run_all("CREATE (:City {name: 'Milano', pop: 1400000})", &[])
        .unwrap();
    let out = client
        .run_all(
            "MATCH (c:City {name: $name}) RETURN c.pop AS pop",
            &[("name".to_string(), Value::str("Milano"))],
        )
        .unwrap();
    assert_eq!(out.single_i64(), Some(1400000));
    client.goodbye().ok();
    handle.shutdown();
}

#[test]
fn ddl_explain_and_trigger_metadata_over_the_wire() {
    let (handle, addr) = spawn_empty();
    let mut client = Client::connect(&addr).unwrap();

    // DDL answers a one-row summary.
    let out = client.run_all("CREATE INDEX ON :City(name)", &[]).unwrap();
    assert_eq!(out.columns, ["summary"]);
    assert_eq!(out.rows.len(), 1);

    // EXPLAIN renders the plan, one line per row.
    client
        .run_all("CREATE (:City {name: 'Como'})", &[])
        .unwrap();
    let out = client
        .run_all("EXPLAIN MATCH (c:City {name: 'Como'}) RETURN c", &[])
        .unwrap();
    assert_eq!(out.columns, ["plan"]);
    assert!(!out.rows.is_empty());

    // A trigger install is DDL; firing it reports `fired` in the metadata.
    client
        .run_all(
            "CREATE TRIGGER CityEcho AFTER CREATE ON 'City' FOR EACH NODE \
             BEGIN CREATE (:Echo {city: NEW.name}) END",
            &[],
        )
        .unwrap();
    let out = client
        .run_all("CREATE (:City {name: 'Lecco'})", &[])
        .unwrap();
    assert_eq!(out.fired, 1);
    assert!(out.wal_seq.is_none(), "in-memory server reports no wal_seq");
    let out = client
        .run_all("MATCH (e:Echo {city: 'Lecco'}) RETURN count(*) AS n", &[])
        .unwrap();
    assert_eq!(out.single_i64(), Some(1));
    assert!(out.epoch.is_some(), "reads report their snapshot epoch");
    client.goodbye().ok();
    handle.shutdown();
}

#[test]
fn reads_report_monotonic_epochs() {
    let (handle, addr) = spawn_empty();
    let mut client = Client::connect(&addr).unwrap();
    let mut last = -1;
    for i in 0..5 {
        client
            .run_all(&format!("CREATE (:E {{i: {i}}})"), &[])
            .unwrap();
        let out = client
            .run_all("MATCH (e:E) RETURN count(*) AS n", &[])
            .unwrap();
        assert_eq!(out.single_i64(), Some(i + 1), "reads see their own writes");
        let epoch = out.epoch.expect("reads carry an epoch");
        assert!(epoch > last, "epoch must advance: {epoch} after {last}");
        last = epoch;
    }
    client.goodbye().ok();
    handle.shutdown();
}
