//! The wire protocol: a Bolt-style length-prefixed request/response
//! subset over TCP.
//!
//! Every message is one frame:
//!
//! ```text
//! frame    := len:u32  payload                (len = payload byte count,
//!                                              little-endian, max 64 MiB)
//! payload  := tag:u8  fields                  (pg_graph::codec encoding)
//! ```
//!
//! Requests (client → server):
//!
//! | tag    | message    | fields                                   |
//! |--------|------------|------------------------------------------|
//! | `0x01` | `HELLO`    | `agent:str`                              |
//! | `0x02` | `GOODBYE`  | —                                        |
//! | `0x0F` | `RESET`    | —                                        |
//! | `0x10` | `RUN`      | `query:str` `params:u32 (str value)*`    |
//! | `0x11` | `BEGIN`    | —                                        |
//! | `0x12` | `COMMIT`   | —                                        |
//! | `0x13` | `ROLLBACK` | —                                        |
//! | `0x2F` | `DISCARD`  | —                                        |
//! | `0x3F` | `PULL`     | `n:u64` (`u64::MAX` = all)               |
//!
//! Responses (server → client):
//!
//! | tag    | message   | fields                                    |
//! |--------|-----------|-------------------------------------------|
//! | `0x70` | `SUCCESS` | `meta:u32 (str value)*`                   |
//! | `0x71` | `RECORD`  | `values:u32 value*`                       |
//! | `0x7E` | `IGNORED` | —                                         |
//! | `0x7F` | `FAILURE` | `code:str` `message:str`                  |
//!
//! Values reuse [`pg_graph::codec`] — the same byte encoding the WAL
//! persists, so a `Value` that round-trips through the log round-trips
//! through the wire. Strings, maps and lists are codec-encoded; there is
//! no second serialization scheme to keep in sync.
//!
//! The response protocol is Bolt's: `RUN` answers `SUCCESS` with a
//! `fields` list, each `PULL n` streams up to `n` `RECORD` frames
//! followed by one `SUCCESS` carrying `has_more`, and after a `FAILURE`
//! the connection ignores everything except `RESET` (answering `IGNORED`)
//! so pipelined requests cannot run against a failed state.

use pg_graph::codec::{self, CodecError, Reader};
use pg_graph::Value;
use std::io::{self, Read, Write};

/// Hard ceiling on one frame's payload (64 MiB): a corrupt or hostile
/// length prefix must not allocate unbounded memory server-side.
pub const MAX_FRAME: u32 = 64 * 1024 * 1024;

/// Protocol version string sent back by HELLO.
pub const SERVER_AGENT: &str = concat!("pg-server/", env!("CARGO_PKG_VERSION"));

// Request tags.
pub const TAG_HELLO: u8 = 0x01;
pub const TAG_GOODBYE: u8 = 0x02;
pub const TAG_RESET: u8 = 0x0F;
pub const TAG_RUN: u8 = 0x10;
pub const TAG_BEGIN: u8 = 0x11;
pub const TAG_COMMIT: u8 = 0x12;
pub const TAG_ROLLBACK: u8 = 0x13;
pub const TAG_DISCARD: u8 = 0x2F;
pub const TAG_PULL: u8 = 0x3F;

// Response tags.
pub const TAG_SUCCESS: u8 = 0x70;
pub const TAG_RECORD: u8 = 0x71;
pub const TAG_IGNORED: u8 = 0x7E;
pub const TAG_FAILURE: u8 = 0x7F;

/// A decoded request frame.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    Hello {
        agent: String,
    },
    Goodbye,
    Reset,
    Run {
        query: String,
        params: Vec<(String, Value)>,
    },
    Begin,
    Commit,
    Rollback,
    Discard,
    Pull {
        n: u64,
    },
}

/// A decoded response frame.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    Success { meta: Vec<(String, Value)> },
    Record { values: Vec<Value> },
    Ignored,
    Failure { code: String, message: String },
}

/// Wire-level failure: I/O, framing, or codec.
#[derive(Debug)]
pub enum WireError {
    Io(io::Error),
    /// The peer closed the connection cleanly between frames.
    Closed,
    /// A length prefix exceeded [`MAX_FRAME`].
    FrameTooLarge {
        len: u32,
    },
    /// The payload failed to decode.
    Codec(CodecError),
    /// An unknown message tag.
    BadTag {
        tag: u8,
    },
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Io(e) => write!(f, "wire I/O error: {e}"),
            WireError::Closed => write!(f, "peer closed the connection"),
            WireError::FrameTooLarge { len } => {
                write!(f, "frame of {len} bytes exceeds the {MAX_FRAME}-byte cap")
            }
            WireError::Codec(e) => write!(f, "frame payload undecodable: {e}"),
            WireError::BadTag { tag } => write!(f, "unknown message tag {tag:#04x}"),
        }
    }
}

impl std::error::Error for WireError {}

impl From<io::Error> for WireError {
    fn from(e: io::Error) -> Self {
        WireError::Io(e)
    }
}

impl From<CodecError> for WireError {
    fn from(e: CodecError) -> Self {
        WireError::Codec(e)
    }
}

// ----------------------------------------------------------------------
// Framing
// ----------------------------------------------------------------------

/// Write one frame: length prefix + payload. One `write_all` per frame so
/// a record stream backpressures through the socket, not through a
/// server-side buffer of the whole result.
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> Result<(), WireError> {
    let mut frame = Vec::with_capacity(4 + payload.len());
    codec::put_u32(&mut frame, payload.len() as u32);
    frame.extend_from_slice(payload);
    w.write_all(&frame)?;
    Ok(())
}

/// Read one frame's payload. `Closed` when the peer hung up cleanly
/// between frames (EOF on the length prefix).
pub fn read_frame(r: &mut impl Read) -> Result<Vec<u8>, WireError> {
    let mut len_buf = [0u8; 4];
    let mut filled = 0;
    while filled < 4 {
        let n = r.read(&mut len_buf[filled..])?;
        if n == 0 {
            if filled == 0 {
                return Err(WireError::Closed);
            }
            return Err(WireError::Io(io::ErrorKind::UnexpectedEof.into()));
        }
        filled += n;
    }
    let len = u32::from_le_bytes(len_buf);
    if len > MAX_FRAME {
        return Err(WireError::FrameTooLarge { len });
    }
    let mut payload = vec![0u8; len as usize];
    r.read_exact(&mut payload)?;
    Ok(payload)
}

// ----------------------------------------------------------------------
// Requests
// ----------------------------------------------------------------------

fn encode_pairs(pairs: &[(String, Value)], out: &mut Vec<u8>) {
    codec::put_u32(out, pairs.len() as u32);
    for (k, v) in pairs {
        codec::put_str(out, k);
        codec::encode_value(v, out);
    }
}

fn decode_pairs(r: &mut Reader<'_>) -> Result<Vec<(String, Value)>, CodecError> {
    let n = r.u32("pair count")?;
    let mut pairs = Vec::with_capacity((n as usize).min(1 << 12));
    for _ in 0..n {
        let k = r.string("pair key")?;
        let v = codec::decode_value(r)?;
        pairs.push((k, v));
    }
    Ok(pairs)
}

/// Encode a request into a payload (framing applied by the caller).
pub fn encode_request(req: &Request, out: &mut Vec<u8>) {
    match req {
        Request::Hello { agent } => {
            codec::put_u8(out, TAG_HELLO);
            codec::put_str(out, agent);
        }
        Request::Goodbye => codec::put_u8(out, TAG_GOODBYE),
        Request::Reset => codec::put_u8(out, TAG_RESET),
        Request::Run { query, params } => {
            codec::put_u8(out, TAG_RUN);
            codec::put_str(out, query);
            encode_pairs(params, out);
        }
        Request::Begin => codec::put_u8(out, TAG_BEGIN),
        Request::Commit => codec::put_u8(out, TAG_COMMIT),
        Request::Rollback => codec::put_u8(out, TAG_ROLLBACK),
        Request::Discard => codec::put_u8(out, TAG_DISCARD),
        Request::Pull { n } => {
            codec::put_u8(out, TAG_PULL);
            codec::put_u64(out, *n);
        }
    }
}

/// Decode one request payload, requiring full consumption.
pub fn decode_request(payload: &[u8]) -> Result<Request, WireError> {
    let mut r = Reader::new(payload);
    let tag = r.u8("request tag")?;
    let req = match tag {
        TAG_HELLO => Request::Hello {
            agent: r.string("hello agent")?,
        },
        TAG_GOODBYE => Request::Goodbye,
        TAG_RESET => Request::Reset,
        TAG_RUN => Request::Run {
            query: r.string("run query")?,
            params: decode_pairs(&mut r)?,
        },
        TAG_BEGIN => Request::Begin,
        TAG_COMMIT => Request::Commit,
        TAG_ROLLBACK => Request::Rollback,
        TAG_DISCARD => Request::Discard,
        TAG_PULL => Request::Pull {
            n: r.u64("pull n")?,
        },
        tag => return Err(WireError::BadTag { tag }),
    };
    if !r.is_empty() {
        return Err(WireError::Codec(CodecError::BadTag {
            what: "bytes after request payload",
            tag: r.u8("trailing byte")?,
        }));
    }
    Ok(req)
}

// ----------------------------------------------------------------------
// Responses
// ----------------------------------------------------------------------

/// Encode a response into a payload (framing applied by the caller).
pub fn encode_response(resp: &Response, out: &mut Vec<u8>) {
    match resp {
        Response::Success { meta } => {
            codec::put_u8(out, TAG_SUCCESS);
            encode_pairs(meta, out);
        }
        Response::Record { values } => {
            codec::put_u8(out, TAG_RECORD);
            codec::put_u32(out, values.len() as u32);
            for v in values {
                codec::encode_value(v, out);
            }
        }
        Response::Ignored => codec::put_u8(out, TAG_IGNORED),
        Response::Failure { code, message } => {
            codec::put_u8(out, TAG_FAILURE);
            codec::put_str(out, code);
            codec::put_str(out, message);
        }
    }
}

/// Decode one response payload, requiring full consumption.
pub fn decode_response(payload: &[u8]) -> Result<Response, WireError> {
    let mut r = Reader::new(payload);
    let tag = r.u8("response tag")?;
    let resp = match tag {
        TAG_SUCCESS => Response::Success {
            meta: decode_pairs(&mut r)?,
        },
        TAG_RECORD => {
            let n = r.u32("record width")?;
            let mut values = Vec::with_capacity((n as usize).min(1 << 12));
            for _ in 0..n {
                values.push(codec::decode_value(&mut r)?);
            }
            Response::Record { values }
        }
        TAG_IGNORED => Response::Ignored,
        TAG_FAILURE => Response::Failure {
            code: r.string("failure code")?,
            message: r.string("failure message")?,
        },
        tag => return Err(WireError::BadTag { tag }),
    };
    if !r.is_empty() {
        return Err(WireError::Codec(CodecError::BadTag {
            what: "bytes after response payload",
            tag: r.u8("trailing byte")?,
        }));
    }
    Ok(resp)
}

/// Convenience: metadata lookup by key.
pub fn meta_value<'a>(meta: &'a [(String, Value)], key: &str) -> Option<&'a Value> {
    meta.iter().find(|(k, _)| k == key).map(|(_, v)| v)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip_req(req: Request) {
        let mut buf = Vec::new();
        encode_request(&req, &mut buf);
        assert_eq!(decode_request(&buf).unwrap(), req);
    }

    fn roundtrip_resp(resp: Response) {
        let mut buf = Vec::new();
        encode_response(&resp, &mut buf);
        assert_eq!(decode_response(&buf).unwrap(), resp);
    }

    #[test]
    fn requests_roundtrip() {
        roundtrip_req(Request::Hello {
            agent: "test/1".into(),
        });
        roundtrip_req(Request::Goodbye);
        roundtrip_req(Request::Reset);
        roundtrip_req(Request::Run {
            query: "MATCH (n) RETURN n".into(),
            params: vec![
                ("k".into(), Value::Int(1)),
                ("s".into(), Value::str("x")),
                ("l".into(), Value::list([Value::Bool(true), Value::Null])),
            ],
        });
        roundtrip_req(Request::Begin);
        roundtrip_req(Request::Commit);
        roundtrip_req(Request::Rollback);
        roundtrip_req(Request::Discard);
        roundtrip_req(Request::Pull { n: 64 });
        roundtrip_req(Request::Pull { n: u64::MAX });
    }

    #[test]
    fn responses_roundtrip() {
        roundtrip_resp(Response::Success {
            meta: vec![
                ("fields".into(), Value::list([Value::str("n")])),
                ("has_more".into(), Value::Bool(false)),
            ],
        });
        roundtrip_resp(Response::Record {
            values: vec![Value::Int(7), Value::Float(1.5), Value::Null],
        });
        roundtrip_resp(Response::Ignored);
        roundtrip_resp(Response::Failure {
            code: "SyntaxError".into(),
            message: "unexpected token".into(),
        });
    }

    #[test]
    fn frames_roundtrip_over_a_byte_pipe() {
        let mut pipe = Vec::new();
        let mut p1 = Vec::new();
        encode_request(
            &Request::Run {
                query: "RETURN 1".into(),
                params: vec![],
            },
            &mut p1,
        );
        write_frame(&mut pipe, &p1).unwrap();
        let mut p2 = Vec::new();
        encode_request(&Request::Pull { n: 10 }, &mut p2);
        write_frame(&mut pipe, &p2).unwrap();

        let mut cursor = &pipe[..];
        assert_eq!(read_frame(&mut cursor).unwrap(), p1);
        assert_eq!(read_frame(&mut cursor).unwrap(), p2);
        assert!(matches!(read_frame(&mut cursor), Err(WireError::Closed)));
    }

    #[test]
    fn oversized_frame_is_refused_without_allocating() {
        let mut buf = Vec::new();
        codec::put_u32(&mut buf, MAX_FRAME + 1);
        let mut cursor = &buf[..];
        assert!(matches!(
            read_frame(&mut cursor),
            Err(WireError::FrameTooLarge { .. })
        ));
    }

    #[test]
    fn unknown_tags_and_trailing_bytes_are_typed_errors() {
        assert!(matches!(
            decode_request(&[0xAA]),
            Err(WireError::BadTag { tag: 0xAA })
        ));
        assert!(matches!(
            decode_response(&[0x55]),
            Err(WireError::BadTag { tag: 0x55 })
        ));
        // RESET followed by a stray byte.
        assert!(decode_request(&[TAG_RESET, 0x00]).is_err());
    }

    #[test]
    fn truncated_payloads_are_typed_errors() {
        let mut buf = Vec::new();
        encode_request(
            &Request::Run {
                query: "MATCH (n) RETURN n".into(),
                params: vec![("a".into(), Value::Int(3))],
            },
            &mut buf,
        );
        for cut in 0..buf.len() {
            assert!(
                decode_request(&buf[..cut]).is_err(),
                "a {cut}-byte prefix must not decode"
            );
        }
    }
}
