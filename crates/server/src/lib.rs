//! # pg-server — the wire-protocol front door
//!
//! Puts the PG-Triggers engine behind TCP: a Bolt-style length-prefixed
//! request/response protocol (`HELLO`/`RUN`/`PULL`/`DISCARD`/`RESET` plus
//! explicit `BEGIN`/`COMMIT`/`ROLLBACK`), typed result streams encoded
//! with [`pg_graph::codec`] (the WAL's own byte encoding — one
//! serialization scheme for disk and wire), and a session pool that maps
//! every connection onto **one shared writer** [`pg_triggers::Session`]
//! plus a **private snapshot reader** ([`pg_triggers::ReadSession`]).
//!
//! What the paper's semantics buy here: concurrent clients observe each
//! other's *trigger cascades atomically*. A write that fires a cascade
//! commits the statement's effects and every transitive trigger effect as
//! one published epoch; any other client's read — served from a pinned
//! snapshot — sees all of it or none of it, never a half-applied cascade.
//!
//! Module map:
//!
//! * [`protocol`] — frame format, message tags, codecs (shared by server
//!   and client; see the module docs for the wire grammar);
//! * [`engine`] — the shared writer + snapshot-reader pool;
//! * `handler` — the per-connection state machine (handshake, streaming
//!   with client-paced backpressure, explicit transactions with
//!   auto-rollback on disconnect, failed-state/RESET semantics);
//! * [`server`] — TCP accept loop ([`Server::bind`] → [`Server::spawn`]);
//! * [`client`] — a blocking reference client ([`Client`]), used by the
//!   integration tests, the `pg-load` generator, and the CI smoke script.
//!
//! Binaries: `pg-serverd` (the daemon) and `pg-load` (the sustained-load
//! harness emitting `BENCH_server.json`).

pub mod client;
pub mod engine;
mod handler;
pub mod protocol;
pub mod server;

pub use client::{Client, ClientError, QueryResult};
pub use engine::Engine;
pub use protocol::{Request, Response, WireError, MAX_FRAME, SERVER_AGENT};
pub use server::{Server, ServerHandle};
