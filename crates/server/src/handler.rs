//! Per-connection request handling: the Bolt-style session state machine.
//!
//! One OS thread per connection, one loop per thread. The states a
//! connection moves through:
//!
//! * **handshake** — the first frame must be `HELLO`; anything else is a
//!   failure and the connection closes.
//! * **ready** — `RUN` executes a statement and answers `SUCCESS` with
//!   the result's `fields`; the rows wait server-side for `PULL`.
//! * **streaming** — each `PULL n` sends up to `n` `RECORD` frames and
//!   one `SUCCESS {has_more}`; `DISCARD` drops the rest. Rows leave the
//!   pending buffer as they are written, so the server never holds more
//!   than the un-pulled remainder of one result per connection — the
//!   client controls the pace (backpressure), and a slow client
//!   backpressures through the socket, not through server memory.
//! * **transaction** — `BEGIN` acquires the shared writer session and
//!   holds it until `COMMIT`/`ROLLBACK`/`RESET`/disconnect. Statements
//!   inside the transaction run on the writer (they see its uncommitted
//!   writes); a dropped connection rolls the transaction back before the
//!   writer is released.
//! * **failed** — after a `FAILURE` response every request except
//!   `RESET`/`GOODBYE` answers `IGNORED`, so a pipelined client cannot
//!   run statements against a state it has not acknowledged. `RESET`
//!   clears the failure, discards any pending result, and rolls back an
//!   open transaction.
//!
//! Auto-commit routing: read-only statements run on the connection's
//! private [`ReadSession`] against a freshly pinned snapshot — they never
//! take the writer lock, and they observe trigger cascades atomically
//! (a snapshot is a published commit epoch: all of a cascade's effects or
//! none). Updating statements, DDL, and `EXPLAIN` serialize through the
//! writer.

use crate::engine::Engine;
use crate::protocol::{self, Request, Response, WireError, SERVER_AGENT};
use pg_cypher::{parse_query, Params};
use pg_graph::Value;
use pg_triggers::{is_index_ddl, is_trigger_ddl, ExecResult, ReadSession, Session, TriggerError};
use std::collections::VecDeque;
use std::io::{BufReader, BufWriter, Write};
use std::net::TcpStream;
use std::sync::MutexGuard;

/// Buffered frame I/O over one socket.
struct Wire {
    r: BufReader<TcpStream>,
    w: BufWriter<TcpStream>,
}

impl Wire {
    fn new(stream: TcpStream) -> std::io::Result<Wire> {
        let write_half = stream.try_clone()?;
        Ok(Wire {
            r: BufReader::new(stream),
            w: BufWriter::new(write_half),
        })
    }

    fn recv(&mut self) -> Result<Request, WireError> {
        let payload = protocol::read_frame(&mut self.r)?;
        protocol::decode_request(&payload)
    }

    /// Queue one response frame (flushed explicitly, so a record stream
    /// amortizes syscalls without buffering the whole result).
    fn send(&mut self, resp: &Response) -> Result<(), WireError> {
        let mut payload = Vec::new();
        protocol::encode_response(resp, &mut payload);
        protocol::write_frame(&mut self.w, &payload)
    }

    fn flush(&mut self) -> Result<(), WireError> {
        self.w.flush()?;
        Ok(())
    }

    fn send_flush(&mut self, resp: &Response) -> Result<(), WireError> {
        self.send(resp)?;
        self.flush()
    }
}

/// A statement's result waiting to be pulled.
struct Pending {
    rows: VecDeque<Vec<Value>>,
}

fn success(meta: Vec<(String, Value)>) -> Response {
    Response::Success { meta }
}

fn failure(code: &str, message: impl Into<String>) -> Response {
    Response::Failure {
        code: code.to_string(),
        message: message.into(),
    }
}

/// Stable failure code per engine error family — what clients branch on.
fn error_code(e: &TriggerError) -> &'static str {
    match e {
        TriggerError::Install(_) => "Trigger.Install",
        TriggerError::Cypher(_) => "Statement.Error",
        TriggerError::Store(_) => "Store.Error",
        TriggerError::RecursionLimit { .. } => "Trigger.RecursionLimit",
        TriggerError::CommitFixpointDiverged { .. } => "Trigger.CommitDiverged",
        TriggerError::Session(_) => "Session.Error",
        TriggerError::UnknownTrigger(_) => "Trigger.Unknown",
        TriggerError::Schema(_) => "Schema.Violation",
    }
}

fn engine_failure(e: &TriggerError) -> Response {
    failure(error_code(e), e.to_string())
}

/// Flatten an [`ExecResult`] into `(columns, rows)` for the wire. DDL
/// acknowledgements become a one-row `summary` column; `EXPLAIN` streams
/// its report one line per record (it can be long).
fn result_rows(res: ExecResult) -> (Vec<String>, VecDeque<Vec<Value>>) {
    fn summary(text: String) -> (Vec<String>, VecDeque<Vec<Value>>) {
        (
            vec!["summary".to_string()],
            VecDeque::from([vec![Value::Str(text)]]),
        )
    }
    match res {
        ExecResult::Query(out) => (out.columns, out.rows.into()),
        ExecResult::Explain(report) => (
            vec!["plan".to_string()],
            report.lines().map(|l| vec![Value::str(l)]).collect(),
        ),
        ExecResult::TriggerCreated(name) => summary(format!("trigger created: {name}")),
        ExecResult::TriggerDropped(name) => summary(format!("trigger dropped: {name}")),
        ExecResult::IndexCreated { label, key } => {
            summary(format!("index created: :{label}({key})"))
        }
        ExecResult::IndexDropped { label, key } => {
            summary(format!("index dropped: :{label}({key})"))
        }
        ExecResult::RelIndexCreated { rel_type, key } => {
            summary(format!("rel index created: [:{rel_type}({key})]"))
        }
        ExecResult::RelIndexDropped { rel_type, key } => {
            summary(format!("rel index dropped: [:{rel_type}({key})]"))
        }
        ExecResult::CompositeIndexCreated { label, columns } => summary(format!(
            "composite index created: :{label}({})",
            columns.join(", ")
        )),
        ExecResult::CompositeIndexDropped { label, columns } => summary(format!(
            "composite index dropped: :{label}({})",
            columns.join(", ")
        )),
        ExecResult::RelCompositeIndexCreated { rel_type, columns } => summary(format!(
            "composite rel index created: [:{rel_type}({})]",
            columns.join(", ")
        )),
        ExecResult::RelCompositeIndexDropped { rel_type, columns } => summary(format!(
            "composite rel index dropped: [:{rel_type}({})]",
            columns.join(", ")
        )),
    }
}

/// Outcome of one statement executed server-side.
struct RunOutcome {
    columns: Vec<String>,
    rows: VecDeque<Vec<Value>>,
    /// Trigger firings this statement caused (writer statements only).
    fired: u64,
    /// The epoch/WAL position the result reflects, for observability.
    epoch_meta: Vec<(String, Value)>,
}

/// Execute one auto-commit statement, routing read-only queries to the
/// private snapshot reader and everything else to the shared writer.
fn run_autocommit(
    engine: &Engine,
    reader: &mut ReadSession,
    query: &str,
    params: &Params,
) -> Result<RunOutcome, TriggerError> {
    let is_ddl = is_trigger_ddl(query) || is_index_ddl(query);
    let is_explain = pg_cypher::strip_explain(query).is_some();
    if !is_ddl && !is_explain {
        let parsed = parse_query(query).map_err(TriggerError::Cypher)?;
        if !parsed.is_updating() {
            // Read-only: fresh snapshot, no writer lock. The pinned epoch
            // is a committed one, so cascade effects appear atomically.
            let epoch = reader.refresh();
            let out = reader.run_with_params(query, params)?;
            return Ok(RunOutcome {
                columns: out.columns,
                rows: out.rows.into(),
                fired: 0,
                epoch_meta: vec![("epoch".to_string(), Value::Int(epoch as i64))],
            });
        }
    }
    let mut writer = engine.writer();
    run_on_writer(&mut writer, query, params)
}

/// Execute one statement on the writer session (auto-commit or in-tx).
fn run_on_writer(
    session: &mut Session,
    query: &str,
    params: &Params,
) -> Result<RunOutcome, TriggerError> {
    let fired_before = session.stats().fired;
    let res = if params.is_empty() {
        session.execute(query)?
    } else {
        // Parameterized statements are queries (DDL takes no parameters).
        ExecResult::Query(session.run_with_params(query, params)?)
    };
    let fired = session.stats().fired - fired_before;
    let (columns, rows) = result_rows(res);
    // A WAL sequence only means something on a durable server.
    let epoch_meta = if session.is_durable() {
        vec![("wal_seq".to_string(), Value::Int(session.wal_seq() as i64))]
    } else {
        Vec::new()
    };
    Ok(RunOutcome {
        columns,
        rows,
        fired,
        epoch_meta,
    })
}

fn run_success_meta(out: &RunOutcome) -> Vec<(String, Value)> {
    let mut meta = vec![(
        "fields".to_string(),
        Value::list(out.columns.iter().map(|c| Value::str(c.as_str()))),
    )];
    meta.push(("fired".to_string(), Value::Int(out.fired as i64)));
    meta.extend(out.epoch_meta.iter().cloned());
    meta
}

/// Stream up to `n` records from `pending`, then the `has_more` SUCCESS.
/// Consumed rows are freed as they are written: the server-side footprint
/// of a result only ever shrinks, and a huge result pulled in chunks is
/// paced entirely by the client.
fn pull(wire: &mut Wire, pending: &mut Option<Pending>, n: u64) -> Result<(), WireError> {
    let Some(p) = pending.as_mut() else {
        return wire.send_flush(&failure(
            "Request.Invalid",
            "PULL with no pending result (RUN first)",
        ));
    };
    let mut sent: u64 = 0;
    while sent < n {
        let Some(values) = p.rows.pop_front() else {
            break;
        };
        wire.send(&Response::Record { values })?;
        sent += 1;
    }
    let has_more = !p.rows.is_empty();
    if !has_more {
        *pending = None;
    }
    wire.send(&success(vec![(
        "has_more".to_string(),
        Value::Bool(has_more),
    )]))?;
    wire.flush()
}

/// Serve one accepted connection until the peer leaves. Returns `Ok` on
/// clean closes; the error is for abnormal transport/protocol failures
/// (logged by the caller, connection dropped either way).
pub(crate) fn serve_connection(engine: &Engine, stream: TcpStream) -> Result<(), WireError> {
    // Small frames dominate the protocol; Nagle would add latency.
    let _ = stream.set_nodelay(true);
    let mut wire = Wire::new(stream)?;

    // ---- handshake ----------------------------------------------------
    match wire.recv() {
        Ok(Request::Hello { .. }) => {
            wire.send_flush(&success(vec![
                ("server".to_string(), Value::str(SERVER_AGENT)),
                ("epoch".to_string(), Value::Int(engine.epoch() as i64)),
            ]))?;
        }
        Ok(Request::Goodbye) | Err(WireError::Closed) => return Ok(()),
        Ok(_) => {
            wire.send_flush(&failure("Request.Invalid", "expected HELLO"))?;
            return Ok(());
        }
        Err(e) => return Err(e),
    }

    let mut reader = engine.read_session();
    let mut pending: Option<Pending> = None;
    let mut failed = false;
    // The open explicit transaction, if any: holding the guard *is*
    // holding the writer. Dropped (after rollback) on every exit path.
    let mut tx: Option<MutexGuard<'_, Session>> = None;

    loop {
        let req = match wire.recv() {
            Ok(req) => req,
            Err(e) => {
                // Disconnect (clean or not) mid-transaction: roll back
                // before the writer guard drops — the next writer must
                // never see this connection's uncommitted statements.
                if let Some(mut session) = tx.take() {
                    let _ = session.rollback();
                }
                return match e {
                    WireError::Closed => Ok(()),
                    e => Err(e),
                };
            }
        };

        match req {
            Request::Goodbye => {
                if let Some(mut session) = tx.take() {
                    let _ = session.rollback();
                }
                return Ok(());
            }
            Request::Reset => {
                // RESET always works: discard result, clear failure, roll
                // back an open transaction (releasing the writer).
                pending = None;
                failed = false;
                if let Some(mut session) = tx.take() {
                    let _ = session.rollback();
                }
                wire.send_flush(&success(vec![]))?;
            }
            _ if failed => {
                wire.send_flush(&Response::Ignored)?;
            }
            Request::Hello { .. } => {
                failed = true;
                wire.send_flush(&failure("Request.Invalid", "HELLO already completed"))?;
            }
            Request::Run { query, params } => {
                if pending.is_some() {
                    failed = true;
                    wire.send_flush(&failure(
                        "Request.Invalid",
                        "previous result not consumed (PULL or DISCARD first)",
                    ))?;
                    continue;
                }
                let params: Params = params.into_iter().collect();
                let outcome = match tx.as_deref_mut() {
                    Some(session) => run_on_writer(session, &query, &params),
                    None => run_autocommit(engine, &mut reader, &query, &params),
                };
                match outcome {
                    Ok(out) => {
                        let meta = run_success_meta(&out);
                        pending = Some(Pending { rows: out.rows });
                        wire.send_flush(&success(meta))?;
                    }
                    Err(e) => {
                        // In-tx statement errors already rolled back to the
                        // statement mark; the transaction itself survives
                        // server-side but the client must RESET (which
                        // rolls it back) — Bolt's contract, and the only
                        // sane one under pipelining.
                        failed = true;
                        wire.send_flush(&engine_failure(&e))?;
                    }
                }
            }
            Request::Pull { n } => pull(&mut wire, &mut pending, n)?,
            Request::Discard => {
                pending = None;
                wire.send_flush(&success(vec![("has_more".to_string(), Value::Bool(false))]))?;
            }
            Request::Begin => {
                if tx.is_some() {
                    failed = true;
                    wire.send_flush(&failure("Request.Invalid", "transaction already open"))?;
                    continue;
                }
                if pending.is_some() {
                    failed = true;
                    wire.send_flush(&failure(
                        "Request.Invalid",
                        "previous result not consumed (PULL or DISCARD first)",
                    ))?;
                    continue;
                }
                // Blocks until the writer is free — explicit transactions
                // from concurrent connections serialize here.
                let mut session = engine.writer();
                match session.begin() {
                    Ok(()) => {
                        tx = Some(session);
                        wire.send_flush(&success(vec![]))?;
                    }
                    Err(e) => {
                        failed = true;
                        wire.send_flush(&engine_failure(&e))?;
                    }
                }
            }
            Request::Commit => match tx.take() {
                Some(mut session) => {
                    let fired_before = session.stats().fired;
                    match session.commit() {
                        Ok(()) => {
                            let mut meta = vec![(
                                "fired".to_string(),
                                Value::Int((session.stats().fired - fired_before) as i64),
                            )];
                            if session.is_durable() {
                                meta.push((
                                    "wal_seq".to_string(),
                                    Value::Int(session.wal_seq() as i64),
                                ));
                            }
                            drop(session);
                            wire.send_flush(&success(meta))?;
                        }
                        Err(e) => {
                            // ONCOMMIT / schema / durability veto: the
                            // session already rolled the transaction back.
                            drop(session);
                            failed = true;
                            wire.send_flush(&engine_failure(&e))?;
                        }
                    }
                }
                None => {
                    failed = true;
                    wire.send_flush(&failure("Request.Invalid", "no open transaction"))?;
                }
            },
            Request::Rollback => match tx.take() {
                Some(mut session) => {
                    let res = session.rollback();
                    drop(session);
                    match res {
                        Ok(()) => wire.send_flush(&success(vec![]))?,
                        Err(e) => {
                            failed = true;
                            wire.send_flush(&engine_failure(&e))?;
                        }
                    }
                }
                None => {
                    failed = true;
                    wire.send_flush(&failure("Request.Invalid", "no open transaction"))?;
                }
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exec_results_flatten_to_rows() {
        let (cols, rows) = result_rows(ExecResult::TriggerCreated("T".into()));
        assert_eq!(cols, vec!["summary"]);
        assert_eq!(rows.len(), 1);
        let (cols, rows) = result_rows(ExecResult::Explain("line1\nline2".into()));
        assert_eq!(cols, vec!["plan"]);
        assert_eq!(rows.len(), 2);
    }

    #[test]
    fn error_codes_are_stable() {
        assert_eq!(error_code(&TriggerError::Session("x")), "Session.Error");
        assert_eq!(
            error_code(&TriggerError::UnknownTrigger("t".into())),
            "Trigger.Unknown"
        );
    }
}
