//! The shared engine behind all connections: one writer [`Session`], N
//! snapshot readers.
//!
//! The concurrency model is the engine's own (see `pg-graph`'s MVCC-lite
//! store): a **single writer** runs statements with full trigger
//! semantics, committing epochs that are published atomically; any number
//! of **readers** pin immutable snapshots of published epochs. The wire
//! layer maps onto that directly:
//!
//! * every connection shares one writer session behind a mutex — write
//!   statements serialize, and an explicit transaction holds the writer
//!   for its whole span (so its statements are one atomic unit and other
//!   writers queue behind it);
//! * every connection owns a private [`ReadSession`] — auto-commit
//!   read-only queries never touch the writer lock, and each one re-pins
//!   the latest published epoch first, so a client always observes commit
//!   atomicity: a trigger cascade's effects appear all-or-nothing.

use pg_graph::GraphHandle;
use pg_triggers::{ReadSession, Session};
use std::sync::{Mutex, MutexGuard};

/// The shared state every connection handler holds an `Arc` of.
pub struct Engine {
    writer: Mutex<Session>,
    handle: GraphHandle,
}

impl Engine {
    /// Wrap a prepared session (schema/triggers/data already installed —
    /// or recovered, for durable sessions) for serving.
    ///
    /// The session must not have an open explicit transaction.
    pub fn new(mut session: Session) -> Engine {
        let handle = session.reader_handle();
        Engine {
            writer: Mutex::new(session),
            handle,
        }
    }

    /// Lock the writer session. Blocks while another connection holds it
    /// (e.g. for an explicit transaction).
    ///
    /// Poisoning (a handler thread panicking mid-statement) is recovered
    /// into the guard: the session's own statement/transaction rollback
    /// already restored store consistency before the unwind, and refusing
    /// every later write would turn one bad statement into a dead server.
    pub fn writer(&self) -> MutexGuard<'_, Session> {
        match self.writer.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// A new private snapshot reader pinned to the latest published epoch.
    pub fn read_session(&self) -> ReadSession {
        ReadSession::new(self.handle.clone())
    }

    /// The epoch a fresh snapshot would pin right now.
    pub fn epoch(&self) -> u64 {
        self.handle.epoch()
    }

    /// Tear the engine down, returning the writer session (tests and
    /// clean server shutdown — e.g. to `close_durable` it).
    pub fn into_session(self) -> Session {
        match self.writer.into_inner() {
            Ok(s) => s,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn readers_pin_published_epochs_only() {
        let mut session = Session::new();
        session.run("CREATE (:T {v: 1})").unwrap();
        let engine = Engine::new(session);

        let mut r = engine.read_session();
        let n = |r: &mut ReadSession| {
            r.run("MATCH (t:T) RETURN count(*) AS n")
                .unwrap()
                .single()
                .and_then(|v| v.as_i64())
                .unwrap()
        };
        assert_eq!(n(&mut r), 1);

        engine.writer().run("CREATE (:T {v: 2})").unwrap();
        // Pinned reader is unaffected until refreshed.
        assert_eq!(n(&mut r), 1);
        r.refresh();
        assert_eq!(n(&mut r), 2);
        // Fresh readers see the latest epoch immediately.
        let mut r2 = engine.read_session();
        assert_eq!(n(&mut r2), 2);
    }

    #[test]
    fn writer_lock_serializes() {
        let engine = Engine::new(Session::new());
        {
            let mut w = engine.writer();
            w.run("CREATE (:A)").unwrap();
        }
        let mut w = engine.writer();
        w.run("CREATE (:A)").unwrap();
        let out = w.run("MATCH (a:A) RETURN count(*) AS n").unwrap();
        assert_eq!(out.single().and_then(|v| v.as_i64()), Some(2));
    }
}
