//! A blocking wire client: the load generator's and the tests' view of
//! the server — and a reference implementation of the protocol for any
//! other client.
//!
//! [`Client::connect`] performs the `HELLO` handshake. [`Client::run`]
//! submits a statement and returns its field names; records are then
//! pulled in chunks with [`Client::pull`] (the backpressure lever — the
//! server sends at most `n` records per request) or all at once with
//! [`Client::pull_all`]. [`Client::run_all`] does the common
//! run-then-drain round trip.
//!
//! After a server `FAILURE` the session ignores everything until `RESET`;
//! [`Client::run`]/[`Client::pull`] surface the failure as
//! [`ClientError::Server`] and [`Client::reset`] clears it.

use crate::protocol::{self, meta_value, Request, Response, WireError, MAX_FRAME};
use pg_graph::Value;
use std::io::{BufReader, BufWriter, Write};
use std::net::{TcpStream, ToSocketAddrs};

/// Client-side failure: transport/protocol, or a typed server refusal.
#[derive(Debug)]
pub enum ClientError {
    Wire(WireError),
    /// The server answered `FAILURE {code, message}`.
    Server {
        code: String,
        message: String,
    },
    /// The server answered `IGNORED` (session in failed state — RESET).
    Ignored,
    /// The server answered something the current exchange does not allow.
    Unexpected(&'static str),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Wire(e) => write!(f, "wire error: {e}"),
            ClientError::Server { code, message } => {
                write!(f, "server failure [{code}]: {message}")
            }
            ClientError::Ignored => write!(f, "request ignored (session failed; RESET first)"),
            ClientError::Unexpected(what) => write!(f, "unexpected response: {what}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<WireError> for ClientError {
    fn from(e: WireError) -> Self {
        ClientError::Wire(e)
    }
}

/// A consumed statement result.
#[derive(Debug, Clone, Default)]
pub struct QueryResult {
    pub columns: Vec<String>,
    pub rows: Vec<Vec<Value>>,
    /// Trigger firings the statement caused (from the RUN metadata).
    pub fired: i64,
    /// Snapshot epoch (reads) or WAL sequence (writes) the result
    /// reflects, when the server reported one.
    pub epoch: Option<i64>,
    pub wal_seq: Option<i64>,
}

impl QueryResult {
    /// First value of the first row (single-value convenience).
    pub fn single(&self) -> Option<&Value> {
        self.rows.first().and_then(|r| r.first())
    }

    /// First value of the first row as an integer.
    pub fn single_i64(&self) -> Option<i64> {
        self.single().and_then(|v| v.as_i64())
    }
}

/// One open connection.
pub struct Client {
    r: BufReader<TcpStream>,
    w: BufWriter<TcpStream>,
}

impl Client {
    /// Connect and complete the `HELLO` handshake.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Client, ClientError> {
        Self::connect_as(addr, concat!("pg-client/", env!("CARGO_PKG_VERSION")))
    }

    /// Connect with an explicit agent string.
    pub fn connect_as(addr: impl ToSocketAddrs, agent: &str) -> Result<Client, ClientError> {
        let stream = TcpStream::connect(addr).map_err(WireError::Io)?;
        let _ = stream.set_nodelay(true);
        let write_half = stream.try_clone().map_err(WireError::Io)?;
        let mut client = Client {
            r: BufReader::new(stream),
            w: BufWriter::new(write_half),
        };
        client.request(&Request::Hello {
            agent: agent.to_string(),
        })?;
        Ok(client)
    }

    fn send(&mut self, req: &Request) -> Result<(), WireError> {
        let mut payload = Vec::new();
        protocol::encode_request(req, &mut payload);
        debug_assert!(payload.len() as u32 <= MAX_FRAME);
        protocol::write_frame(&mut self.w, &payload)?;
        self.w.flush()?;
        Ok(())
    }

    fn recv(&mut self) -> Result<Response, WireError> {
        let payload = protocol::read_frame(&mut self.r)?;
        protocol::decode_response(&payload)
    }

    /// One request → one terminal response (no records expected). Returns
    /// the SUCCESS metadata.
    fn request(&mut self, req: &Request) -> Result<Vec<(String, Value)>, ClientError> {
        self.send(req)?;
        match self.recv()? {
            Response::Success { meta } => Ok(meta),
            Response::Failure { code, message } => Err(ClientError::Server { code, message }),
            Response::Ignored => Err(ClientError::Ignored),
            Response::Record { .. } => Err(ClientError::Unexpected("RECORD outside PULL")),
        }
    }

    /// Submit a statement; returns its column names. Records wait
    /// server-side until pulled.
    pub fn run(
        &mut self,
        query: &str,
        params: &[(String, Value)],
    ) -> Result<QueryResult, ClientError> {
        let meta = self.request(&Request::Run {
            query: query.to_string(),
            params: params.to_vec(),
        })?;
        let columns = match meta_value(&meta, "fields") {
            Some(Value::List(items)) => items
                .iter()
                .map(|v| match v {
                    Value::Str(s) => s.clone(),
                    other => format!("{other:?}"),
                })
                .collect(),
            _ => Vec::new(),
        };
        let as_int = |key: &str| meta_value(&meta, key).and_then(|v| v.as_i64());
        Ok(QueryResult {
            columns,
            rows: Vec::new(),
            fired: as_int("fired").unwrap_or(0),
            epoch: as_int("epoch"),
            wal_seq: as_int("wal_seq"),
        })
    }

    /// Pull up to `n` records. Returns `(records, has_more)`.
    pub fn pull(&mut self, n: u64) -> Result<(Vec<Vec<Value>>, bool), ClientError> {
        self.send(&Request::Pull { n })?;
        let mut rows = Vec::new();
        loop {
            match self.recv()? {
                Response::Record { values } => rows.push(values),
                Response::Success { meta } => {
                    let has_more = matches!(meta_value(&meta, "has_more"), Some(Value::Bool(true)));
                    return Ok((rows, has_more));
                }
                Response::Failure { code, message } => {
                    return Err(ClientError::Server { code, message })
                }
                Response::Ignored => return Err(ClientError::Ignored),
            }
        }
    }

    /// Drain the pending result completely, `chunk` records per PULL.
    pub fn pull_all_chunked(&mut self, chunk: u64) -> Result<Vec<Vec<Value>>, ClientError> {
        let mut rows = Vec::new();
        loop {
            let (mut batch, has_more) = self.pull(chunk)?;
            rows.append(&mut batch);
            if !has_more {
                return Ok(rows);
            }
        }
    }

    /// Drain the pending result in one PULL.
    pub fn pull_all(&mut self) -> Result<Vec<Vec<Value>>, ClientError> {
        let (rows, has_more) = self.pull(u64::MAX)?;
        debug_assert!(!has_more);
        Ok(rows)
    }

    /// Run + drain: the common round trip. On a server failure the
    /// session is RESET before returning the error, so the connection
    /// stays usable.
    pub fn run_all(
        &mut self,
        query: &str,
        params: &[(String, Value)],
    ) -> Result<QueryResult, ClientError> {
        let mut result = match self.run(query, params) {
            Ok(r) => r,
            Err(e @ ClientError::Server { .. }) => {
                self.reset()?;
                return Err(e);
            }
            Err(e) => return Err(e),
        };
        result.rows = self.pull_all()?;
        Ok(result)
    }

    /// Abandon the rest of the pending result.
    pub fn discard(&mut self) -> Result<(), ClientError> {
        self.request(&Request::Discard).map(|_| ())
    }

    /// Open an explicit transaction (holds the server's writer until
    /// commit/rollback/reset/disconnect).
    pub fn begin(&mut self) -> Result<(), ClientError> {
        self.request(&Request::Begin).map(|_| ())
    }

    /// Commit the open transaction; returns the cascade firing count the
    /// commit phase added (ONCOMMIT/DETACHED triggers).
    pub fn commit(&mut self) -> Result<i64, ClientError> {
        let meta = self.request(&Request::Commit)?;
        Ok(meta_value(&meta, "fired")
            .and_then(|v| v.as_i64())
            .unwrap_or(0))
    }

    /// Roll back the open transaction.
    pub fn rollback(&mut self) -> Result<(), ClientError> {
        self.request(&Request::Rollback).map(|_| ())
    }

    /// Clear a failed session state (and roll back an open transaction).
    pub fn reset(&mut self) -> Result<(), ClientError> {
        self.request(&Request::Reset).map(|_| ())
    }

    /// Polite close. The server answers nothing; the socket just ends.
    pub fn goodbye(mut self) -> Result<(), ClientError> {
        self.send(&Request::Goodbye)?;
        Ok(())
    }
}
