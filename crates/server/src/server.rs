//! The TCP front door: bind, accept, one handler thread per connection.
//!
//! ```no_run
//! use pg_server::{Client, Server};
//! use pg_triggers::Session;
//!
//! let server = Server::bind("127.0.0.1:0", Session::new()).unwrap();
//! let addr = server.local_addr();
//! let handle = server.spawn();
//!
//! let mut client = Client::connect(addr).unwrap();
//! let result = client.run_all("RETURN 1 AS one", &[]).unwrap();
//! assert_eq!(result.rows.len(), 1);
//! client.goodbye().ok();
//! handle.shutdown();
//! ```

use crate::engine::Engine;
use crate::handler::serve_connection;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

/// A bound-but-not-yet-serving server.
pub struct Server {
    listener: TcpListener,
    engine: Arc<Engine>,
    local_addr: SocketAddr,
}

/// Control handle for a serving server: address + graceful shutdown.
pub struct ServerHandle {
    local_addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept_thread: JoinHandle<()>,
    engine: Arc<Engine>,
}

impl Server {
    /// Bind `addr` (e.g. `"127.0.0.1:0"` for an ephemeral test port) and
    /// wrap `session` as the shared writer. The session carries whatever
    /// schema, triggers, indexes, and data it was prepared with — for a
    /// durable server, open it with [`pg_triggers::Session::open_durable`]
    /// first.
    pub fn bind(
        addr: impl std::net::ToSocketAddrs,
        session: pg_triggers::Session,
    ) -> std::io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        let local_addr = listener.local_addr()?;
        Ok(Server {
            listener,
            engine: Arc::new(Engine::new(session)),
            local_addr,
        })
    }

    /// The bound address (resolves `:0` to the assigned port).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// The shared engine (tests peek at epochs through this).
    pub fn engine(&self) -> &Arc<Engine> {
        &self.engine
    }

    /// Start accepting in a background thread and return the control
    /// handle. Each connection gets its own handler thread; handler
    /// threads exit when their peer disconnects.
    pub fn spawn(self) -> ServerHandle {
        let stop = Arc::new(AtomicBool::new(false));
        let engine = Arc::clone(&self.engine);
        let local_addr = self.local_addr;
        let accept_stop = Arc::clone(&stop);
        let accept_engine = Arc::clone(&self.engine);
        let listener = self.listener;
        let accept_thread = std::thread::spawn(move || {
            for conn in listener.incoming() {
                if accept_stop.load(Ordering::SeqCst) {
                    break;
                }
                let Ok(stream) = conn else { continue };
                let engine = Arc::clone(&accept_engine);
                std::thread::spawn(move || {
                    // Transport errors just end the connection; the engine
                    // state is protected by per-request transaction
                    // handling, not by the connection's fate.
                    let _ = serve_connection(&engine, stream);
                });
            }
        });
        ServerHandle {
            local_addr,
            stop,
            accept_thread,
            engine,
        }
    }

    /// Serve on the calling thread, forever (the daemon binary's mode).
    pub fn serve_forever(self) -> std::io::Result<()> {
        for conn in self.listener.incoming() {
            let Ok(stream) = conn else { continue };
            let engine = Arc::clone(&self.engine);
            std::thread::spawn(move || {
                let _ = serve_connection(&engine, stream);
            });
        }
        Ok(())
    }
}

impl ServerHandle {
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    pub fn engine(&self) -> &Arc<Engine> {
        &self.engine
    }

    /// Stop accepting new connections and join the accept thread. Open
    /// connections finish on their own threads (clients disconnect them);
    /// call after the test's clients said GOODBYE.
    pub fn shutdown(self) {
        self.stop.store(true, Ordering::SeqCst);
        // Unblock the accept loop with a throwaway connection.
        let _ = TcpStream::connect(self.local_addr);
        let _ = self.accept_thread.join();
    }
}
