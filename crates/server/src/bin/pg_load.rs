//! `pg-load` — sustained mixed-workload generator for `pg-server`,
//! driving the §6 COVID reactive scenario over real sockets and emitting
//! `BENCH_server.json` (ops/sec, latency percentiles, cascade-visibility
//! lag).
//!
//! ```text
//! pg-load [--addr HOST:PORT] [--clients N] [--writers W] [--secs S]
//!         [--ops-per-client N] [--pull-chunk N] [--out PATH]
//!         [--quick] [--smoke]
//!
//!   --addr            drive an external server (it must have been started
//!                     with `pg-serverd --covid`); omitted = spawn an
//!                     in-process server on an ephemeral port (still
//!                     exercised over real TCP sockets)
//!   --clients N       total concurrent connections        (default 8)
//!   --writers W       how many of them write              (default clients/2)
//!   --secs S          wall-clock budget                   (default 10)
//!   --ops-per-client  op budget instead of a time budget
//!   --pull-chunk N    records per PULL                    (default 256)
//!   --out PATH        report path                         (default BENCH_server.json)
//!   --quick           CI mode: 4 clients, small op budget, asserts
//!   --smoke           scripted single-client session, asserts, exits
//! ```
//!
//! **Workload.** Writers mix ICU admissions against the undersized Sacco
//! ICU (overflow fires the §6.2.3 relocation cascade), tagged critical-
//! mutation discoveries (§6.2.1 alert cascade), and lineage
//! redesignations (§6.2.2 property-change trigger). Readers mix alert
//! aggregates, indexed patient point reads, per-hospital ICU counts, an
//! orphaned-patient invariant probe (must always read 0 — snapshot
//! atomicity of the relocation cascade), and a **cascade-visibility
//! probe**: each discovery's commit time is recorded, and the first
//! reader snapshot that contains the cascade's alert dates the
//! visibility lag.

use pg_graph::Value;
use pg_server::{Client, ClientError, Server};
use pg_triggers::Session;
use serde_json::json;
use std::collections::VecDeque;
use std::process::ExitCode;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

// ----------------------------------------------------------------------
// Configuration
// ----------------------------------------------------------------------

struct Args {
    addr: Option<String>,
    clients: usize,
    writers: usize,
    secs: u64,
    ops_per_client: Option<u64>,
    pull_chunk: u64,
    out: String,
    quick: bool,
    smoke: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        addr: None,
        clients: 8,
        writers: 0, // 0 = clients/2, resolved below
        secs: 10,
        ops_per_client: None,
        pull_chunk: 256,
        out: "BENCH_server.json".to_string(),
        quick: false,
        smoke: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        let mut val = |flag: &str| -> Result<String, String> {
            it.next().ok_or(format!("{flag} needs a value"))
        };
        match arg.as_str() {
            "--addr" => args.addr = Some(val("--addr")?),
            "--clients" => args.clients = val("--clients")?.parse().map_err(|e| format!("{e}"))?,
            "--writers" => args.writers = val("--writers")?.parse().map_err(|e| format!("{e}"))?,
            "--secs" => args.secs = val("--secs")?.parse().map_err(|e| format!("{e}"))?,
            "--ops-per-client" => {
                args.ops_per_client = Some(
                    val("--ops-per-client")?
                        .parse()
                        .map_err(|e| format!("{e}"))?,
                )
            }
            "--pull-chunk" => {
                args.pull_chunk = val("--pull-chunk")?.parse().map_err(|e| format!("{e}"))?
            }
            "--out" => args.out = val("--out")?,
            "--quick" => args.quick = true,
            "--smoke" => args.smoke = true,
            "--help" | "-h" => {
                return Err("see module docs: pg-load [--addr ..] [--quick] [--smoke]".into())
            }
            other => return Err(format!("unknown argument: {other}")),
        }
    }
    if args.quick {
        args.clients = 4;
        args.writers = 2;
        args.ops_per_client = Some(args.ops_per_client.unwrap_or(120));
        args.secs = 60; // generous deadline; the op budget is the limiter
    }
    if args.writers == 0 {
        args.writers = (args.clients / 2).max(1);
    }
    if args.writers >= args.clients {
        return Err("--writers must leave at least one reader".into());
    }
    Ok(args)
}

// ----------------------------------------------------------------------
// Shared run state
// ----------------------------------------------------------------------

/// A discovery waiting to be observed by a reader snapshot.
struct Probe {
    tag: u64,
    committed_at: Instant,
}

#[derive(Default)]
struct Metrics {
    write_us: Vec<u64>,
    read_us: Vec<u64>,
    cascade_lag_us: Vec<u64>,
    errors: Vec<String>,
    orphan_violations: u64,
    discoveries_committed: u64,
}

struct Shared {
    stop: AtomicBool,
    next_tag: AtomicU64,
    probes: Mutex<VecDeque<Probe>>,
    metrics: Mutex<Metrics>,
}

impl Shared {
    fn record(&self, f: impl FnOnce(&mut Metrics)) {
        f(&mut self.metrics.lock().unwrap());
    }
}

fn percentile(sorted: &[u64], p: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let idx = ((p / 100.0) * (sorted.len() - 1) as f64).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

fn latency_summary(mut samples: Vec<u64>) -> serde_json::Value {
    samples.sort_unstable();
    json!({
        "count": samples.len(),
        "p50": percentile(&samples, 50.0),
        "p95": percentile(&samples, 95.0),
        "p99": percentile(&samples, 99.0),
        "max": samples.last().copied().unwrap_or(0),
    })
}

// ----------------------------------------------------------------------
// Workload threads
// ----------------------------------------------------------------------

fn timed<T>(f: impl FnOnce() -> Result<T, ClientError>) -> (Result<T, ClientError>, u64) {
    let start = Instant::now();
    let res = f();
    (res, start.elapsed().as_micros() as u64)
}

fn writer_loop(
    addr: String,
    shared: Arc<Shared>,
    deadline: Instant,
    op_budget: Option<u64>,
    writer_idx: usize,
) {
    let mut client = match Client::connect(&addr) {
        Ok(c) => c,
        Err(e) => {
            shared.record(|m| m.errors.push(format!("writer connect: {e}")));
            return;
        }
    };
    let designations = ["Delta", "Kappa", "Delta Plus", "Epsilon"];
    let mut ops: u64 = 0;
    while !shared.stop.load(Ordering::Relaxed) && Instant::now() < deadline {
        if let Some(budget) = op_budget {
            if ops >= budget {
                break;
            }
        }
        let tag = shared.next_tag.fetch_add(1, Ordering::Relaxed);
        // Mix: 1/6 cascade-probe discovery, 1/12 redesignation, rest ICU
        // admissions (the cascade-prone hot path).
        let step = ops % 12;
        let (res, us) = if step == 0 {
            let stmt = pg_covid::wire::discover_critical_mutation(tag);
            let (res, us) = timed(|| client.run_all(&stmt, &[]));
            if res.is_ok() {
                shared.probes.lock().unwrap().push_back(Probe {
                    tag,
                    committed_at: Instant::now(),
                });
                shared.record(|m| m.discoveries_committed += 1);
            }
            (res.map(|_| ()), us)
        } else if step == 6 {
            let to = designations[(ops as usize / 12 + writer_idx) % designations.len()];
            let stmt = pg_covid::wire::redesignate_lineage(to);
            let (res, us) = timed(|| client.run_all(&stmt, &[]));
            (res.map(|_| ()), us)
        } else {
            let stmt = pg_covid::wire::icu_admission(tag, "Sacco", (tag % 10) as i64);
            let (res, us) = timed(|| client.run_all(&stmt, &[]));
            (res.map(|_| ()), us)
        };
        match res {
            Ok(()) => shared.record(|m| m.write_us.push(us)),
            Err(e) => {
                shared.record(|m| m.errors.push(format!("writer op: {e}")));
                // The connection auto-resets on server failures; transport
                // errors end the thread.
                if matches!(e, ClientError::Wire(_)) {
                    return;
                }
            }
        }
        ops += 1;
    }
    let _ = client.goodbye();
}

fn reader_loop(
    addr: String,
    shared: Arc<Shared>,
    deadline: Instant,
    op_budget: Option<u64>,
    pull_chunk: u64,
) {
    let mut client = match Client::connect(&addr) {
        Ok(c) => c,
        Err(e) => {
            shared.record(|m| m.errors.push(format!("reader connect: {e}")));
            return;
        }
    };
    let mut ops: u64 = 0;
    while !shared.stop.load(Ordering::Relaxed) && Instant::now() < deadline {
        if let Some(budget) = op_budget {
            if ops >= budget {
                break;
            }
        }
        let step = ops % 5;
        let outcome: Result<(), ClientError> = match step {
            // Cascade-visibility probe: is the oldest outstanding
            // discovery's alert visible to a fresh snapshot yet?
            0 => {
                let probe = shared.probes.lock().unwrap().pop_front();
                match probe {
                    None => {
                        // Nothing outstanding; fall back to the aggregate.
                        let (res, us) =
                            timed(|| client.run_all(pg_covid::wire::ALERT_COUNT_QUERY, &[]));
                        res.map(|_| shared.record(|m| m.read_us.push(us)))
                    }
                    Some(probe) => {
                        let query = pg_covid::wire::cascade_alert_query(probe.tag);
                        let (res, us) = timed(|| client.run_all(&query, &[]));
                        match res {
                            Ok(out) => {
                                shared.record(|m| m.read_us.push(us));
                                if out.single_i64() == Some(1) {
                                    let lag = probe.committed_at.elapsed().as_micros() as u64;
                                    shared.record(|m| m.cascade_lag_us.push(lag));
                                } else {
                                    // Not visible yet — requeue for a later
                                    // snapshot.
                                    shared.probes.lock().unwrap().push_back(probe);
                                }
                                Ok(())
                            }
                            Err(e) => Err(e),
                        }
                    }
                }
            }
            // Snapshot-atomicity invariant: the relocation cascade must
            // never leave a hospitalized patient without a hospital.
            1 => {
                let (res, us) =
                    timed(|| client.run_all(pg_covid::wire::ORPHANED_PATIENTS_QUERY, &[]));
                match res {
                    Ok(out) => {
                        shared.record(|m| m.read_us.push(us));
                        if out.single_i64() != Some(0) {
                            shared.record(|m| m.orphan_violations += 1);
                        }
                        Ok(())
                    }
                    Err(e) => Err(e),
                }
            }
            // Indexed point read of a recently admitted patient.
            2 => {
                let recent = shared.next_tag.load(Ordering::Relaxed).saturating_sub(1);
                let query = pg_covid::wire::patient_lookup(recent);
                let (res, us) = timed(|| client.run_all(&query, &[]));
                res.map(|_| shared.record(|m| m.read_us.push(us)))
            }
            // Per-hospital ICU occupancy (chunk-pulled: exercises
            // backpressure streaming even for small results).
            3 => {
                let query = pg_covid::wire::treated_at_query("Niguarda");
                let (res, us) = timed(|| {
                    client.run(&query, &[])?;
                    client.pull_all_chunked(pull_chunk)
                });
                res.map(|_| shared.record(|m| m.read_us.push(us)))
            }
            // Alert aggregate.
            _ => {
                let (res, us) = timed(|| client.run_all(pg_covid::wire::ALERT_COUNT_QUERY, &[]));
                res.map(|_| shared.record(|m| m.read_us.push(us)))
            }
        };
        if let Err(e) = outcome {
            shared.record(|m| m.errors.push(format!("reader op: {e}")));
            if matches!(e, ClientError::Wire(_)) {
                return;
            }
        }
        ops += 1;
    }
    let _ = client.goodbye();
}

// ----------------------------------------------------------------------
// Smoke mode: one scripted session, asserted end to end
// ----------------------------------------------------------------------

fn run_smoke(addr: &str) -> Result<(), String> {
    let fail = |what: &str, detail: String| format!("smoke: {what}: {detail}");
    let mut c = Client::connect(addr).map_err(|e| fail("connect", e.to_string()))?;

    // 1. Scalar round trip.
    let out = c
        .run_all("RETURN 1 AS one", &[])
        .map_err(|e| fail("RETURN 1", e.to_string()))?;
    if out.single_i64() != Some(1) || out.columns != ["one"] {
        return Err(fail("RETURN 1", format!("{out:?}")));
    }

    // 2. Writes + reads (fresh labels; idempotent via cleanup first).
    c.run_all("MATCH (n:SmokeNode) DETACH DELETE n", &[]).ok();
    c.run_all("MATCH (n:SmokeAlert) DETACH DELETE n", &[]).ok();
    c.run_all("MATCH (n:SmokeSrc) DETACH DELETE n", &[]).ok();
    for i in 0..10 {
        c.run_all(&format!("CREATE (:SmokeNode {{i: {i}}})"), &[])
            .map_err(|e| fail("create", e.to_string()))?;
    }

    // 3. Chunked streaming with backpressure: 10 rows pulled 3 at a time.
    c.run("MATCH (n:SmokeNode) RETURN n.i AS i", &[])
        .map_err(|e| fail("run stream", e.to_string()))?;
    let mut rows = 0;
    let mut pulls = 0;
    loop {
        let (batch, has_more) = c.pull(3).map_err(|e| fail("pull", e.to_string()))?;
        rows += batch.len();
        pulls += 1;
        if !has_more {
            break;
        }
        if batch.len() != 3 {
            return Err(fail(
                "pull",
                format!("short non-final batch: {}", batch.len()),
            ));
        }
    }
    if rows != 10 || pulls != 4 {
        return Err(fail(
            "stream",
            format!("rows={rows} pulls={pulls}, want 10/4"),
        ));
    }

    // 4. A trigger cascade over the wire.
    c.run_all("DROP TRIGGER SmokeEcho", &[]).ok();
    c.run_all(
        "CREATE TRIGGER SmokeEcho AFTER CREATE ON 'SmokeSrc' FOR EACH NODE \
         BEGIN CREATE (:SmokeAlert {src: NEW.tag}) END",
        &[],
    )
    .map_err(|e| fail("trigger install", e.to_string()))?;
    let out = c
        .run_all("CREATE (:SmokeSrc {tag: 'probe'})", &[])
        .map_err(|e| fail("trigger fire", e.to_string()))?;
    if out.fired < 1 {
        return Err(fail("trigger fire", format!("fired = {}", out.fired)));
    }
    let out = c
        .run_all(
            "MATCH (a:SmokeAlert {src: 'probe'}) RETURN count(*) AS n",
            &[],
        )
        .map_err(|e| fail("trigger read", e.to_string()))?;
    if out.single_i64() != Some(1) {
        return Err(fail("trigger read", format!("{out:?}")));
    }

    // 5. Explicit transactions: rollback leaves nothing, commit lands.
    c.begin().map_err(|e| fail("begin", e.to_string()))?;
    c.run_all("CREATE (:SmokeTx {kind: 'rolled'})", &[])
        .map_err(|e| fail("tx stmt", e.to_string()))?;
    c.rollback().map_err(|e| fail("rollback", e.to_string()))?;
    c.begin().map_err(|e| fail("begin2", e.to_string()))?;
    c.run_all("CREATE (:SmokeTx {kind: 'committed'})", &[])
        .map_err(|e| fail("tx stmt2", e.to_string()))?;
    c.commit().map_err(|e| fail("commit", e.to_string()))?;
    let out = c
        .run_all("MATCH (t:SmokeTx) RETURN t.kind AS kind", &[])
        .map_err(|e| fail("tx read", e.to_string()))?;
    if out.rows.len() != 1 || out.rows[0][0] != Value::str("committed") {
        return Err(fail("tx read", format!("{:?}", out.rows)));
    }

    // 6. Failure → RESET → usable again (run_all auto-resets).
    match c.run_all("THIS IS NOT CYPHER", &[]) {
        Err(ClientError::Server { .. }) => {}
        other => return Err(fail("syntax error", format!("{other:?}"))),
    }
    let out = c
        .run_all("RETURN 2 AS two", &[])
        .map_err(|e| fail("post-reset", e.to_string()))?;
    if out.single_i64() != Some(2) {
        return Err(fail("post-reset", format!("{out:?}")));
    }

    // 7. EXPLAIN over the wire renders a plan.
    let out = c
        .run_all("EXPLAIN MATCH (n:SmokeNode) RETURN n.i", &[])
        .map_err(|e| fail("explain", e.to_string()))?;
    if out.columns != ["plan"] || out.rows.is_empty() {
        return Err(fail("explain", format!("{out:?}")));
    }

    // Cleanup.
    c.run_all("DROP TRIGGER SmokeEcho", &[]).ok();
    for label in ["SmokeNode", "SmokeAlert", "SmokeSrc", "SmokeTx"] {
        c.run_all(&format!("MATCH (n:{label}) DETACH DELETE n"), &[])
            .ok();
    }
    c.goodbye().ok();
    println!("SMOKE OK");
    Ok(())
}

// ----------------------------------------------------------------------
// Main
// ----------------------------------------------------------------------

fn spawn_local_server() -> Result<(pg_server::ServerHandle, String), String> {
    let mut session = Session::new();
    for stmt in pg_covid::wire::setup_statements() {
        session
            .execute(&stmt)
            .map_err(|e| format!("local covid setup `{stmt}`: {e}"))?;
    }
    let server =
        Server::bind("127.0.0.1:0", session).map_err(|e| format!("local server bind: {e}"))?;
    let addr = server.local_addr().to_string();
    Ok((server.spawn(), addr))
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::FAILURE;
        }
    };

    // Resolve the target server: external, or a self-spawned local one.
    let (handle, addr) = match &args.addr {
        Some(addr) => (None, addr.clone()),
        None => match spawn_local_server() {
            Ok((handle, addr)) => {
                eprintln!("pg-load: spawned local server on {addr}");
                (Some(handle), addr)
            }
            Err(e) => {
                eprintln!("pg-load: {e}");
                return ExitCode::FAILURE;
            }
        },
    };

    if args.smoke {
        let result = run_smoke(&addr);
        if let Some(h) = handle {
            h.shutdown();
        }
        return match result {
            Ok(()) => ExitCode::SUCCESS,
            Err(msg) => {
                eprintln!("{msg}");
                ExitCode::FAILURE
            }
        };
    }

    let shared = Arc::new(Shared {
        stop: AtomicBool::new(false),
        next_tag: AtomicU64::new(1),
        probes: Mutex::new(VecDeque::new()),
        metrics: Mutex::new(Metrics::default()),
    });

    let readers = args.clients - args.writers;
    eprintln!(
        "pg-load: {} writers + {} readers against {addr} ({})",
        args.writers,
        readers,
        match args.ops_per_client {
            Some(n) => format!("{n} ops/client"),
            None => format!("{}s", args.secs),
        }
    );

    let started = Instant::now();
    let deadline = started + Duration::from_secs(args.secs);
    let mut threads = Vec::new();
    for w in 0..args.writers {
        let (addr, shared) = (addr.clone(), Arc::clone(&shared));
        let budget = args.ops_per_client;
        threads.push(std::thread::spawn(move || {
            writer_loop(addr, shared, deadline, budget, w)
        }));
    }
    for _ in 0..readers {
        let (addr, shared) = (addr.clone(), Arc::clone(&shared));
        let (budget, chunk) = (args.ops_per_client, args.pull_chunk);
        threads.push(std::thread::spawn(move || {
            reader_loop(addr, shared, deadline, budget, chunk)
        }));
    }
    for t in threads {
        let _ = t.join();
    }
    shared.stop.store(true, Ordering::SeqCst);
    let elapsed = started.elapsed().as_secs_f64();

    // Final consistency audit on a fresh connection: every committed
    // discovery's cascade alert must be visible by now.
    let audit = (|| -> Result<(u64, i64), ClientError> {
        let mut c = Client::connect(&addr)?;
        let alerts = c
            .run_all(
                "MATCH (a:Alert {desc: 'New critical mutation'}) RETURN count(*) AS n",
                &[],
            )?
            .single_i64()
            .unwrap_or(-1);
        let orphans = c
            .run_all(pg_covid::wire::ORPHANED_PATIENTS_QUERY, &[])?
            .single_i64()
            .unwrap_or(-1);
        c.goodbye().ok();
        Ok((orphans.max(0) as u64, alerts))
    })();

    if let Some(h) = handle {
        h.shutdown();
    }

    let metrics = shared.metrics.lock().unwrap();
    let total_ops = metrics.write_us.len() + metrics.read_us.len();
    let (final_orphans, final_alerts) = match audit {
        Ok((o, a)) => (o, a),
        Err(e) => {
            eprintln!("pg-load: final audit failed: {e}");
            (u64::MAX, -1)
        }
    };
    let alerts_match = final_alerts == metrics.discoveries_committed as i64;
    let checks_ok = metrics.errors.is_empty()
        && metrics.orphan_violations == 0
        && final_orphans == 0
        && alerts_match
        && total_ops > 0;

    let config = json!({
        "clients": args.clients,
        "writers": args.writers,
        "readers": readers,
        "quick": args.quick,
        "external_server": args.addr.is_some(),
        "pull_chunk": args.pull_chunk,
    });
    let totals = json!({
        "ops": total_ops,
        "write_ops": metrics.write_us.len(),
        "read_ops": metrics.read_us.len(),
        "elapsed_secs": elapsed,
        "ops_per_sec": total_ops as f64 / elapsed,
        "errors": metrics.errors.len(),
    });
    let final_orphans_field = if final_orphans == u64::MAX {
        -1
    } else {
        final_orphans as i64
    };
    let checks = json!({
        "discoveries_committed": metrics.discoveries_committed,
        "cascade_alerts_observed": final_alerts,
        "alerts_match_discoveries": alerts_match,
        "orphan_violations": metrics.orphan_violations,
        "final_orphans": final_orphans_field,
        "ok": checks_ok,
    });
    let report = json!({
        "bench": "server",
        "config": config,
        "totals": totals,
        "write_latency_us": latency_summary(metrics.write_us.clone()),
        "read_latency_us": latency_summary(metrics.read_us.clone()),
        "cascade_visibility_us": latency_summary(metrics.cascade_lag_us.clone()),
        "checks": checks,
    });
    let rendered = serde_json::to_string_pretty(&report).unwrap();
    if let Err(e) = std::fs::write(&args.out, &rendered) {
        eprintln!("pg-load: cannot write {}: {e}", args.out);
        return ExitCode::FAILURE;
    }
    println!("{rendered}");
    if !metrics.errors.is_empty() {
        for e in metrics.errors.iter().take(10) {
            eprintln!("pg-load error: {e}");
        }
    }
    if checks_ok {
        ExitCode::SUCCESS
    } else {
        eprintln!("pg-load: consistency checks FAILED");
        ExitCode::FAILURE
    }
}
