//! `pg-serverd` — the PG-Triggers wire-protocol daemon.
//!
//! ```text
//! pg-serverd [--addr HOST:PORT] [--dir PATH] [--covid] [--threads N]
//!
//!   --addr HOST:PORT   listen address           (default 127.0.0.1:7687)
//!   --dir PATH         durable data directory (WAL + snapshots); omitted
//!                      = in-memory. PG_WAL_SYNC picks the sync policy
//!                      (always/group/never; invalid spellings refuse to
//!                      start — no silent fallback).
//!   --covid            stand up the §6 COVID scenario (indexes, seed
//!                      graph, paper triggers) before serving
//! ```
//!
//! The process serves until killed. A durable directory is protected by a
//! PID lock file: starting a second daemon on the same `--dir` while the
//! first lives fails with a `Locked` error instead of corrupting the WAL.

use pg_server::Server;
use pg_triggers::{EngineConfig, Session, WalOptions};
use std::process::ExitCode;

struct Args {
    addr: String,
    dir: Option<std::path::PathBuf>,
    covid: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        addr: "127.0.0.1:7687".to_string(),
        dir: None,
        covid: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--addr" => args.addr = it.next().ok_or("--addr needs a value")?,
            "--dir" => args.dir = Some(it.next().ok_or("--dir needs a value")?.into()),
            "--covid" => args.covid = true,
            "--help" | "-h" => {
                return Err("usage: pg-serverd [--addr HOST:PORT] [--dir PATH] [--covid]".into())
            }
            other => return Err(format!("unknown argument: {other}")),
        }
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::FAILURE;
        }
    };

    let mut session = match &args.dir {
        Some(dir) => {
            let wal = match WalOptions::from_env() {
                Ok(w) => w,
                Err(e) => {
                    eprintln!("pg-serverd: {e}");
                    return ExitCode::FAILURE;
                }
            };
            match Session::open_durable(dir, EngineConfig::default(), wal) {
                Ok((session, report)) => {
                    eprintln!(
                        "pg-serverd: recovered {} (snapshot seq {}, replayed {} frames, wal seq {})",
                        dir.display(),
                        report.snapshot_seq,
                        report.commits_replayed,
                        report.last_seq
                    );
                    session
                }
                Err(e) => {
                    eprintln!("pg-serverd: cannot open {}: {e}", dir.display());
                    return ExitCode::FAILURE;
                }
            }
        }
        None => Session::new(),
    };

    if args.covid {
        // Idempotence over restarts: a recovered durable store already
        // holds the seed — detect it and only (re)install the triggers,
        // which are code, not data (never persisted).
        let seeded = session
            .run("MATCH (h:Hospital {name: 'Sacco'}) RETURN count(*) AS n")
            .ok()
            .and_then(|o| o.single().and_then(|v| v.as_i64()))
            .unwrap_or(0)
            > 0;
        let stmts = if seeded {
            pg_covid::triggers::PAPER_TRIGGERS
                .iter()
                .map(|t| t.to_string())
                .collect()
        } else {
            pg_covid::wire::setup_statements()
        };
        for stmt in &stmts {
            if let Err(e) = session.execute(stmt) {
                eprintln!("pg-serverd: covid setup failed on `{stmt}`: {e}");
                return ExitCode::FAILURE;
            }
        }
        eprintln!(
            "pg-serverd: covid scenario {} ({} statements)",
            if seeded { "re-armed" } else { "installed" },
            stmts.len()
        );
    }

    let server = match Server::bind(args.addr.as_str(), session) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("pg-serverd: cannot bind {}: {e}", args.addr);
            return ExitCode::FAILURE;
        }
    };
    // Parsed by scripts (CI smoke) to learn the resolved port.
    println!("listening on {}", server.local_addr());
    match server.serve_forever() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("pg-serverd: accept loop failed: {e}");
            ExitCode::FAILURE
        }
    }
}
