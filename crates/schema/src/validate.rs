//! Graph validation against a [`GraphType`], including PG-Key uniqueness.

use crate::types::{GraphType, PropType};
use pg_graph::{Graph, GraphView, NodeId, RelId, Value};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// A single validation failure.
#[derive(Debug, Clone, PartialEq)]
pub enum Violation {
    /// STRICT graph: node labels match no declared type.
    UntypedNode { node: NodeId, labels: Vec<String> },
    /// Node labels match more than one declared type (ambiguous in STRICT).
    AmbiguousNode { node: NodeId, types: Vec<String> },
    /// A required property is missing.
    MissingProp {
        node: NodeId,
        type_name: String,
        prop: String,
    },
    /// A property value has the wrong type.
    WrongPropType {
        node: NodeId,
        prop: String,
        expected: PropType,
        got: &'static str,
    },
    /// A closed type carries an undeclared property.
    UndeclaredProp {
        node: NodeId,
        type_name: String,
        prop: String,
    },
    /// Two nodes of the same type share a key (PG-Keys).
    DuplicateKey {
        type_name: String,
        key: Vec<String>,
        nodes: (NodeId, NodeId),
    },
    /// Relationship label matches no declared edge type.
    UntypedRel { rel: RelId, rel_type: String },
    /// Relationship endpoints don't conform to the edge type's signature.
    BadEndpoints { rel: RelId, edge_type: String },
    /// Edge property issues.
    RelMissingProp {
        rel: RelId,
        edge_type: String,
        prop: String,
    },
    RelWrongPropType {
        rel: RelId,
        prop: String,
        expected: PropType,
        got: &'static str,
    },
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Violation::UntypedNode { node, labels } => {
                write!(
                    f,
                    "node {node} with labels {labels:?} matches no declared type"
                )
            }
            Violation::AmbiguousNode { node, types } => {
                write!(f, "node {node} matches multiple types {types:?}")
            }
            Violation::MissingProp {
                node,
                type_name,
                prop,
            } => {
                write!(
                    f,
                    "node {node} ({type_name}) misses required property '{prop}'"
                )
            }
            Violation::WrongPropType {
                node,
                prop,
                expected,
                got,
            } => {
                write!(
                    f,
                    "node {node} property '{prop}': expected {expected}, got {got}"
                )
            }
            Violation::UndeclaredProp {
                node,
                type_name,
                prop,
            } => {
                write!(
                    f,
                    "node {node} ({type_name}, closed) has undeclared property '{prop}'"
                )
            }
            Violation::DuplicateKey {
                type_name,
                key,
                nodes,
            } => {
                write!(
                    f,
                    "duplicate key {key:?} on {type_name}: {} and {}",
                    nodes.0, nodes.1
                )
            }
            Violation::UntypedRel { rel, rel_type } => {
                write!(
                    f,
                    "relationship {rel} of type '{rel_type}' matches no edge type"
                )
            }
            Violation::BadEndpoints { rel, edge_type } => {
                write!(
                    f,
                    "relationship {rel} violates the endpoint signature of {edge_type}"
                )
            }
            Violation::RelMissingProp {
                rel,
                edge_type,
                prop,
            } => {
                write!(
                    f,
                    "relationship {rel} ({edge_type}) misses required property '{prop}'"
                )
            }
            Violation::RelWrongPropType {
                rel,
                prop,
                expected,
                got,
            } => {
                write!(
                    f,
                    "relationship {rel} property '{prop}': expected {expected}, got {got}"
                )
            }
        }
    }
}

/// Resolve the unique node type whose **full** label set equals the node's
/// labels. Returns all candidates (0, 1 or more).
fn node_types_of(gt: &GraphType, labels: &BTreeSet<String>) -> Vec<String> {
    gt.node_types
        .iter()
        .filter(|t| &gt.full_labels(&t.name) == labels)
        .map(|t| t.name.clone())
        .collect()
}

/// Validate an entire graph against a graph type. Returns all violations
/// (empty = conformant).
pub fn validate_graph(graph: &Graph, gt: &GraphType) -> Vec<Violation> {
    let mut out = Vec::new();
    // node typing map for edge validation
    let mut type_of: BTreeMap<NodeId, String> = BTreeMap::new();
    // key uniqueness: (type, key values) -> first node
    let mut keys_seen: BTreeMap<(String, String), NodeId> = BTreeMap::new();

    for id in graph.all_node_ids() {
        let rec = graph.node(id).expect("listed node exists");
        let candidates = node_types_of(gt, &rec.labels);
        match candidates.len() {
            0 => {
                if gt.strict {
                    out.push(Violation::UntypedNode {
                        node: id,
                        labels: rec.labels.iter().cloned().collect(),
                    });
                }
                continue;
            }
            1 => {}
            _ => {
                out.push(Violation::AmbiguousNode {
                    node: id,
                    types: candidates.clone(),
                });
                continue;
            }
        }
        let tname = &candidates[0];
        type_of.insert(id, tname.clone());
        let props = gt.full_props(tname);
        let declared: BTreeSet<&str> = props.iter().map(|p| p.name.as_str()).collect();
        for p in &props {
            match rec.props.get(&p.name) {
                None => {
                    if p.required {
                        out.push(Violation::MissingProp {
                            node: id,
                            type_name: tname.clone(),
                            prop: p.name.clone(),
                        });
                    }
                }
                Some(v) => {
                    if !p.prop_type.accepts(v) {
                        out.push(Violation::WrongPropType {
                            node: id,
                            prop: p.name.clone(),
                            expected: p.prop_type.clone(),
                            got: v.type_name(),
                        });
                    }
                }
            }
        }
        if !gt.is_open(tname) {
            for (k, _) in rec.props.iter() {
                if !declared.contains(k.as_str()) {
                    out.push(Violation::UndeclaredProp {
                        node: id,
                        type_name: tname.clone(),
                        prop: k.clone(),
                    });
                }
            }
        }
        // PG-Keys: uniqueness of the key tuple within the type.
        let key_props = gt.key_props(tname);
        if !key_props.is_empty() {
            let key_vals: Vec<String> = key_props
                .iter()
                .map(|k| rec.props.get(k).cloned().unwrap_or(Value::Null).to_string())
                .collect();
            let composite = key_vals.join("\u{1}");
            if let Some(&first) = keys_seen.get(&(tname.clone(), composite.clone())) {
                out.push(Violation::DuplicateKey {
                    type_name: tname.clone(),
                    key: key_props.clone(),
                    nodes: (first, id),
                });
            } else {
                keys_seen.insert((tname.clone(), composite), id);
            }
        }
    }

    for rid in graph.all_rel_ids() {
        let rec = graph.rel(rid).expect("listed rel exists");
        let candidates: Vec<_> = gt
            .edge_types
            .iter()
            .filter(|e| e.label == rec.rel_type)
            .collect();
        if candidates.is_empty() {
            if gt.strict {
                out.push(Violation::UntypedRel {
                    rel: rid,
                    rel_type: rec.rel_type.clone(),
                });
            }
            continue;
        }
        // An edge conforms if at least one declared edge type with this
        // label accepts its endpoints (endpoint subtyping allowed: the
        // endpoint's type may inherit from the declared endpoint type).
        let conforms = candidates.iter().any(|e| {
            endpoint_ok(gt, type_of.get(&rec.src), &e.src_type)
                && endpoint_ok(gt, type_of.get(&rec.dst), &e.dst_type)
        });
        if !conforms {
            out.push(Violation::BadEndpoints {
                rel: rid,
                edge_type: candidates[0].name.clone(),
            });
            continue;
        }
        // Validate props against the first structurally matching edge type.
        if let Some(e) = candidates.iter().find(|e| {
            endpoint_ok(gt, type_of.get(&rec.src), &e.src_type)
                && endpoint_ok(gt, type_of.get(&rec.dst), &e.dst_type)
        }) {
            for p in &e.props {
                match rec.props.get(&p.name) {
                    None if p.required => out.push(Violation::RelMissingProp {
                        rel: rid,
                        edge_type: e.name.clone(),
                        prop: p.name.clone(),
                    }),
                    Some(v) if !p.prop_type.accepts(v) => out.push(Violation::RelWrongPropType {
                        rel: rid,
                        prop: p.name.clone(),
                        expected: p.prop_type.clone(),
                        got: v.type_name(),
                    }),
                    _ => {}
                }
            }
        }
    }
    out
}

/// An endpoint conforms when its resolved type is the declared type or a
/// subtype of it.
fn endpoint_ok(gt: &GraphType, actual: Option<&String>, declared: &str) -> bool {
    let Some(actual) = actual else {
        return false;
    };
    if actual == declared {
        return true;
    }
    // walk actual's supertypes
    let mut stack = vec![actual.clone()];
    let mut seen = BTreeSet::new();
    while let Some(t) = stack.pop() {
        if !seen.insert(t.clone()) {
            continue;
        }
        if t == declared {
            return true;
        }
        if let Some(def) = gt.node_type(&t) {
            stack.extend(def.supertypes.iter().cloned());
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ddl::parse_graph_type;
    use pg_graph::PropertyMap;

    fn schema() -> GraphType {
        parse_graph_type(
            "CREATE GRAPH TYPE G STRICT {
               (PatientType: Patient {ssn STRING KEY, name STRING}),
               (HospitalizedPatientType: PatientType & HospitalizedPatient {prognosis STRING}),
               (HospitalType: Hospital {name STRING, icuBeds INT32}),
               (AlertType: Alert OPEN {desc STRING}),
               (:HospitalizedPatientType)-[TreatedAtType: TreatedAt]->(:HospitalType),
               (:HospitalType)-[ConnType: ConnectedTo {distance INT32}]->(:HospitalType)
             }",
        )
        .unwrap()
    }

    fn props(entries: &[(&str, Value)]) -> PropertyMap {
        entries
            .iter()
            .map(|(k, v)| (k.to_string(), v.clone()))
            .collect()
    }

    fn valid_patient(g: &mut Graph, ssn: &str) -> NodeId {
        g.create_node(
            ["Patient"],
            props(&[("ssn", Value::str(ssn)), ("name", Value::str("P"))]),
        )
        .unwrap()
    }

    #[test]
    fn conformant_graph_passes() {
        let gt = schema();
        let mut g = Graph::new();
        valid_patient(&mut g, "a");
        let hp = g
            .create_node(
                ["Patient", "HospitalizedPatient"],
                props(&[
                    ("ssn", Value::str("b")),
                    ("name", Value::str("Q")),
                    ("prognosis", Value::str("severe")),
                ]),
            )
            .unwrap();
        let h = g
            .create_node(
                ["Hospital"],
                props(&[("name", Value::str("Sacco")), ("icuBeds", Value::Int(50))]),
            )
            .unwrap();
        g.create_rel(hp, h, "TreatedAt", PropertyMap::new())
            .unwrap();
        assert_eq!(validate_graph(&g, &gt), vec![]);
    }

    #[test]
    fn strict_rejects_untyped_nodes() {
        let gt = schema();
        let mut g = Graph::new();
        g.create_node(["Stranger"], PropertyMap::new()).unwrap();
        let v = validate_graph(&g, &gt);
        assert!(matches!(v[0], Violation::UntypedNode { .. }));
    }

    #[test]
    fn missing_and_wrong_props_flagged() {
        let gt = schema();
        let mut g = Graph::new();
        g.create_node(["Patient"], props(&[("ssn", Value::Int(1))]))
            .unwrap();
        let v = validate_graph(&g, &gt);
        assert!(v
            .iter()
            .any(|x| matches!(x, Violation::MissingProp { prop, .. } if prop == "name")));
        assert!(v
            .iter()
            .any(|x| matches!(x, Violation::WrongPropType { prop, .. } if prop == "ssn")));
    }

    #[test]
    fn closed_type_rejects_extra_props_open_allows() {
        let gt = schema();
        let mut g = Graph::new();
        g.create_node(
            ["Patient"],
            props(&[
                ("ssn", Value::str("a")),
                ("name", Value::str("x")),
                ("surprise", Value::Int(1)),
            ]),
        )
        .unwrap();
        let v = validate_graph(&g, &gt);
        assert!(v
            .iter()
            .any(|x| matches!(x, Violation::UndeclaredProp { prop, .. } if prop == "surprise")));

        // Alert is OPEN: arbitrary properties allowed (paper §6.2).
        let mut g = Graph::new();
        g.create_node(
            ["Alert"],
            props(&[
                ("desc", Value::str("New critical mutation")),
                ("mutation", Value::str("D614G")),
                ("lineage", Value::str("B.1.1.7")),
            ]),
        )
        .unwrap();
        assert_eq!(validate_graph(&g, &gt), vec![]);
    }

    #[test]
    fn pg_key_uniqueness_enforced() {
        let gt = schema();
        let mut g = Graph::new();
        valid_patient(&mut g, "dup");
        valid_patient(&mut g, "dup");
        let v = validate_graph(&g, &gt);
        assert!(matches!(v[0], Violation::DuplicateKey { .. }));
        // keys inherited: Patient + HospitalizedPatient share the ssn space?
        // No — keys are per-type; subtypes have their own extent.
    }

    #[test]
    fn edge_endpoint_signature_enforced() {
        let gt = schema();
        let mut g = Graph::new();
        let p = valid_patient(&mut g, "a");
        let h = g
            .create_node(
                ["Hospital"],
                props(&[("name", Value::str("H")), ("icuBeds", Value::Int(1))]),
            )
            .unwrap();
        // TreatedAt requires HospitalizedPatientType source; a plain Patient
        // is a supertype, not a subtype → violation.
        g.create_rel(p, h, "TreatedAt", PropertyMap::new()).unwrap();
        let v = validate_graph(&g, &gt);
        assert!(matches!(v[0], Violation::BadEndpoints { .. }));
    }

    #[test]
    fn unknown_rel_label_in_strict() {
        let gt = schema();
        let mut g = Graph::new();
        let a = valid_patient(&mut g, "a");
        let b = valid_patient(&mut g, "b");
        g.create_rel(a, b, "Mystery", PropertyMap::new()).unwrap();
        let v = validate_graph(&g, &gt);
        assert!(matches!(v[0], Violation::UntypedRel { .. }));
    }

    #[test]
    fn edge_props_validated() {
        let gt = schema();
        let mut g = Graph::new();
        let h1 = g
            .create_node(
                ["Hospital"],
                props(&[("name", Value::str("A")), ("icuBeds", Value::Int(1))]),
            )
            .unwrap();
        let h2 = g
            .create_node(
                ["Hospital"],
                props(&[("name", Value::str("B")), ("icuBeds", Value::Int(1))]),
            )
            .unwrap();
        g.create_rel(
            h1,
            h2,
            "ConnectedTo",
            props(&[("distance", Value::str("far"))]),
        )
        .unwrap();
        let v = validate_graph(&g, &gt);
        assert!(v
            .iter()
            .any(|x| matches!(x, Violation::RelWrongPropType { .. })));
        g.create_rel(h1, h2, "ConnectedTo", PropertyMap::new())
            .unwrap();
        let v = validate_graph(&g, &gt);
        assert!(v
            .iter()
            .any(|x| matches!(x, Violation::RelMissingProp { .. })));
    }

    #[test]
    fn subtype_endpoints_accepted() {
        // ICU patients (subtype) can still be TreatedAt a hospital if the
        // schema declares the supertype as endpoint.
        let gt = parse_graph_type(
            "CREATE GRAPH TYPE G STRICT {
               (PatientType: Patient {ssn STRING}),
               (HospitalizedPatientType: PatientType & HospitalizedPatient {}),
               (HospitalType: Hospital {}),
               (:PatientType)-[TreatedAtType: TreatedAt]->(:HospitalType)
             }",
        )
        .unwrap();
        let mut g = Graph::new();
        let hp = g
            .create_node(
                ["Patient", "HospitalizedPatient"],
                props(&[("ssn", Value::str("x"))]),
            )
            .unwrap();
        let h = g.create_node(["Hospital"], PropertyMap::new()).unwrap();
        g.create_rel(hp, h, "TreatedAt", PropertyMap::new())
            .unwrap();
        assert_eq!(validate_graph(&g, &gt), vec![]);
    }
}
