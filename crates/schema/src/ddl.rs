//! Parser for the PG-Schema-style DDL (`CREATE GRAPH TYPE …`).
//!
//! Grammar (a faithful subset of the PG-Schema proposal used by the paper's
//! Figure 5):
//!
//! ```text
//! graph_type ::= CREATE GRAPH TYPE <name> [STRICT | LOOSE] { element (, element)* }
//! element    ::= node_type | edge_type
//! node_type  ::= ( <TypeName> : spec (& spec)* [OPEN] [props] )
//! spec       ::= <TypeName>            -- inherit from another node type
//!              | <Label>               -- own label (distinguished by case
//!                                      -- of reference: a spec naming a
//!                                      -- declared type inherits, else it
//!                                      -- is a label)
//! edge_type  ::= (: <SrcType>) - [ <TypeName> : <Label> [props] ] -> (: <DstType>)
//! props      ::= { entry (, entry)* }
//! entry      ::= prop | composite
//! prop       ::= [OPTIONAL] <name> <type> [KEY] [INDEX]
//! composite  ::= INDEX ( <name> (, <name>)+ )   -- multi-key index decl
//! ```

use crate::types::{EdgeTypeDef, GraphType, NodeTypeDef, PropDef, PropType, SchemaError};

struct Lexer<'a> {
    src: &'a str,
    pos: usize,
}

#[derive(Debug, Clone, PartialEq)]
enum Tok {
    Word(String),
    LParen,
    RParen,
    LBrace,
    RBrace,
    LBracket,
    RBracket,
    Comma,
    Colon,
    Amp,
    Minus,
    Arrow,
    Eof,
}

impl<'a> Lexer<'a> {
    fn new(src: &'a str) -> Self {
        Lexer { src, pos: 0 }
    }

    fn next_tok(&mut self) -> Result<Tok, SchemaError> {
        let bytes = self.src.as_bytes();
        while self.pos < bytes.len() && (bytes[self.pos] as char).is_whitespace() {
            self.pos += 1;
        }
        if self.pos >= bytes.len() {
            return Ok(Tok::Eof);
        }
        let c = bytes[self.pos] as char;
        self.pos += 1;
        Ok(match c {
            '(' => Tok::LParen,
            ')' => Tok::RParen,
            '{' => Tok::LBrace,
            '}' => Tok::RBrace,
            '[' => Tok::LBracket,
            ']' => Tok::RBracket,
            ',' => Tok::Comma,
            ':' => Tok::Colon,
            '&' => Tok::Amp,
            '-' => {
                if bytes.get(self.pos) == Some(&b'>') {
                    self.pos += 1;
                    Tok::Arrow
                } else {
                    Tok::Minus
                }
            }
            '<' => {
                // `<:` inheritance operator (alternative spelling)
                if bytes.get(self.pos) == Some(&b':') {
                    self.pos += 1;
                    Tok::Amp // treated like '&' followed by a supertype name
                } else {
                    return Err(SchemaError::Parse(format!(
                        "unexpected '<' at {}",
                        self.pos
                    )));
                }
            }
            c if c.is_ascii_alphanumeric() || c == '_' => {
                let start = self.pos - 1;
                while self.pos < bytes.len()
                    && ((bytes[self.pos] as char).is_ascii_alphanumeric()
                        || bytes[self.pos] == b'_')
                {
                    self.pos += 1;
                }
                // `ARRAY[inner]` lexes as a single word so PropType::parse
                // sees the full spelling.
                if self.src[start..self.pos].eq_ignore_ascii_case("array")
                    && bytes.get(self.pos) == Some(&b'[')
                {
                    while self.pos < bytes.len() && bytes[self.pos] != b']' {
                        self.pos += 1;
                    }
                    if self.pos < bytes.len() {
                        self.pos += 1; // consume ']'
                    }
                }
                Tok::Word(self.src[start..self.pos].to_string())
            }
            other => return Err(SchemaError::Parse(format!("unexpected '{other}'"))),
        })
    }
}

struct Parser {
    toks: Vec<Tok>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> &Tok {
        self.toks.get(self.pos).unwrap_or(&Tok::Eof)
    }

    fn bump(&mut self) -> Tok {
        let t = self.peek().clone();
        self.pos += 1;
        t
    }

    fn eat(&mut self, t: &Tok) -> bool {
        if self.peek() == t {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect(&mut self, t: Tok) -> Result<(), SchemaError> {
        if self.peek() == &t {
            self.pos += 1;
            Ok(())
        } else {
            Err(SchemaError::Parse(format!(
                "expected {t:?}, found {:?}",
                self.peek()
            )))
        }
    }

    fn expect_word(&mut self) -> Result<String, SchemaError> {
        match self.bump() {
            Tok::Word(w) => Ok(w),
            other => Err(SchemaError::Parse(format!(
                "expected a name, found {other:?}"
            ))),
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if let Tok::Word(w) = self.peek() {
            if w.eq_ignore_ascii_case(kw) {
                self.pos += 1;
                return true;
            }
        }
        false
    }
}

/// Parse a `CREATE GRAPH TYPE` document into a [`GraphType`] (also runs
/// [`GraphType::check`]).
pub fn parse_graph_type(src: &str) -> Result<GraphType, SchemaError> {
    let mut lx = Lexer::new(src);
    let mut toks = Vec::new();
    loop {
        let t = lx.next_tok()?;
        let eof = t == Tok::Eof;
        toks.push(t);
        if eof {
            break;
        }
    }
    let mut p = Parser { toks, pos: 0 };

    for kw in ["CREATE", "GRAPH", "TYPE"] {
        if !p.eat_keyword(kw) {
            return Err(SchemaError::Parse(format!("expected {kw}")));
        }
    }
    let name = p.expect_word()?;
    let strict = if p.eat_keyword("STRICT") {
        true
    } else {
        // LOOSE is the default; consume the keyword if present
        p.eat_keyword("LOOSE");
        false
    };
    p.expect(Tok::LBrace)?;

    let mut gt = GraphType {
        name,
        strict,
        node_types: Vec::new(),
        edge_types: Vec::new(),
    };
    // First pass collects raw elements; node-type references inside specs
    // are resolved by name against the declared node-type set afterwards.
    struct RawNode {
        name: String,
        specs: Vec<String>,
        open: bool,
        props: Vec<PropDef>,
        composite_indexes: Vec<Vec<String>>,
    }
    let mut raw_nodes: Vec<RawNode> = Vec::new();

    while p.peek() != &Tok::RBrace {
        p.expect(Tok::LParen)?;
        if p.eat(&Tok::Colon) {
            // Edge type: (:SrcType)-[Name: Label {props}]->(:DstType)
            let src_type = p.expect_word()?;
            p.expect(Tok::RParen)?;
            p.expect(Tok::Minus)?;
            p.expect(Tok::LBracket)?;
            let ename = p.expect_word()?;
            p.expect(Tok::Colon)?;
            let label = p.expect_word()?;
            let (props, composite_indexes) = if p.peek() == &Tok::LBrace {
                parse_props(&mut p)?
            } else {
                (Vec::new(), Vec::new())
            };
            p.expect(Tok::RBracket)?;
            p.expect(Tok::Arrow)?;
            p.expect(Tok::LParen)?;
            p.expect(Tok::Colon)?;
            let dst_type = p.expect_word()?;
            p.expect(Tok::RParen)?;
            gt.edge_types.push(EdgeTypeDef {
                name: ename,
                label,
                src_type,
                dst_type,
                props,
                composite_indexes,
            });
        } else {
            // Node type: (Name: spec (& spec)* [OPEN] [{props}])
            let tname = p.expect_word()?;
            p.expect(Tok::Colon)?;
            let mut specs = vec![p.expect_word()?];
            while p.eat(&Tok::Amp) {
                specs.push(p.expect_word()?);
            }
            let mut open = false;
            // OPEN may appear before or instead of the property block.
            if p.eat_keyword("OPEN") {
                open = true;
            }
            let (props, composite_indexes) = if p.peek() == &Tok::LBrace {
                parse_props(&mut p)?
            } else {
                (Vec::new(), Vec::new())
            };
            if p.eat_keyword("OPEN") {
                open = true;
            }
            p.expect(Tok::RParen)?;
            raw_nodes.push(RawNode {
                name: tname,
                specs,
                open,
                props,
                composite_indexes,
            });
        }
        if !p.eat(&Tok::Comma) {
            break;
        }
    }
    p.expect(Tok::RBrace)?;

    // Resolve specs: a spec naming a declared node type is inheritance,
    // anything else is an own label.
    let declared: Vec<String> = raw_nodes.iter().map(|r| r.name.clone()).collect();
    for r in raw_nodes {
        let mut supertypes = Vec::new();
        let mut labels = Vec::new();
        for s in r.specs {
            if declared.contains(&s) {
                supertypes.push(s);
            } else {
                labels.push(s);
            }
        }
        gt.node_types.push(NodeTypeDef {
            name: r.name,
            supertypes,
            labels,
            props: r.props,
            composite_indexes: r.composite_indexes,
            open: r.open,
        });
    }

    gt.check()?;
    Ok(gt)
}

fn parse_props(p: &mut Parser) -> Result<(Vec<PropDef>, Vec<Vec<String>>), SchemaError> {
    p.expect(Tok::LBrace)?;
    let mut out = Vec::new();
    let mut composites: Vec<Vec<String>> = Vec::new();
    if p.peek() != &Tok::RBrace {
        loop {
            // `INDEX (k1, k2, …)` declares a composite (multi-key) index
            // over previously (or later) declared properties.
            if matches!(p.peek(), Tok::Word(w) if w.eq_ignore_ascii_case("INDEX"))
                && p.toks.get(p.pos + 1) == Some(&Tok::LParen)
            {
                p.bump(); // INDEX
                p.expect(Tok::LParen)?;
                let mut cols = vec![p.expect_word()?];
                while p.eat(&Tok::Comma) {
                    cols.push(p.expect_word()?);
                }
                p.expect(Tok::RParen)?;
                if cols.len() < 2 {
                    return Err(SchemaError::Parse(
                        "a composite INDEX needs at least two columns".into(),
                    ));
                }
                composites.push(cols);
            } else {
                let required = !p.eat_keyword("OPTIONAL");
                let name = p.expect_word()?;
                // tolerate `name: TYPE` and `name TYPE`
                p.eat(&Tok::Colon);
                let tword = p.expect_word()?;
                let prop_type = PropType::parse(&tword).ok_or_else(|| {
                    SchemaError::Parse(format!("unknown property type '{tword}'"))
                })?;
                let key = p.eat_keyword("KEY");
                let indexed = p.eat_keyword("INDEX");
                out.push(PropDef {
                    name,
                    prop_type,
                    required,
                    key,
                    indexed,
                });
            }
            if !p.eat(&Tok::Comma) {
                break;
            }
        }
    }
    p.expect(Tok::RBrace)?;
    Ok((out, composites))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_minimal_graph_type() {
        let gt = parse_graph_type("CREATE GRAPH TYPE G STRICT { (AType: A {x STRING}) }").unwrap();
        assert_eq!(gt.name, "G");
        assert!(gt.strict);
        assert_eq!(gt.node_types.len(), 1);
        assert_eq!(gt.node_types[0].labels, vec!["A"]);
    }

    #[test]
    fn parse_inheritance_and_edges() {
        let gt = parse_graph_type(
            "CREATE GRAPH TYPE G STRICT {
               (PatientType: Patient {ssn STRING KEY, name STRING, OPTIONAL vaccinated INT32}),
               (HospitalizedPatientType: PatientType & HospitalizedPatient {id INT32, prognosis STRING}),
               (HospitalType: Hospital {name STRING, icuBeds INT32}),
               (:HospitalizedPatientType)-[TreatedAtType: TreatedAt]->(:HospitalType)
             }",
        )
        .unwrap();
        let hp = gt.node_type("HospitalizedPatientType").unwrap();
        assert_eq!(hp.supertypes, vec!["PatientType"]);
        assert_eq!(hp.labels, vec!["HospitalizedPatient"]);
        let full = gt.full_labels("HospitalizedPatientType");
        assert!(full.contains("Patient") && full.contains("HospitalizedPatient"));
        assert_eq!(gt.key_props("HospitalizedPatientType"), vec!["ssn"]);
        assert_eq!(gt.edge_types.len(), 1);
        assert_eq!(gt.edge_types[0].label, "TreatedAt");
        assert_eq!(gt.edge_types[0].src_type, "HospitalizedPatientType");
    }

    #[test]
    fn parse_index_qualifier_and_indexed_props() {
        let gt = parse_graph_type(
            "CREATE GRAPH TYPE G STRICT {
               (PatientType: Patient {ssn STRING KEY, name STRING INDEX, age INT32}),
               (HospitalType: Hospital {name STRING INDEX})
             }",
        )
        .unwrap();
        let p = gt.node_type("PatientType").unwrap();
        assert!(p.props.iter().any(|d| d.name == "name" && d.indexed));
        assert!(p.props.iter().any(|d| d.name == "age" && !d.indexed));
        // KEY implies an index; explicit INDEX adds one.
        assert_eq!(
            gt.indexed_props(),
            vec![
                ("Hospital".to_string(), "name".to_string()),
                ("Patient".to_string(), "name".to_string()),
                ("Patient".to_string(), "ssn".to_string()),
            ]
        );
    }

    #[test]
    fn parse_edge_index_qualifier_and_indexed_rel_props() {
        let gt = parse_graph_type(
            "CREATE GRAPH TYPE G STRICT {
               (HospitalType: Hospital {name STRING}),
               (:HospitalType)-[CT: ConnectedTo {distance INT32 INDEX, note STRING}]->(:HospitalType),
               (:HospitalType)-[RF: RefersTo {code STRING KEY}]->(:HospitalType)
             }",
        )
        .unwrap();
        assert_eq!(
            gt.indexed_rel_props(),
            vec![
                ("ConnectedTo".to_string(), "distance".to_string()),
                ("RefersTo".to_string(), "code".to_string()),
            ]
        );
        assert!(gt.indexed_props().is_empty());
    }

    #[test]
    fn parse_composite_index_declarations() {
        let gt = parse_graph_type(
            "CREATE GRAPH TYPE G STRICT {
               (PatientType: Patient {status STRING, severity INT32,
                                      INDEX(status, severity)}),
               (HospitalType: Hospital {name STRING}),
               (:HospitalType)-[CT: ConnectedTo {kind STRING, distance INT32,
                                                 INDEX(kind, distance)}]->(:HospitalType)
             }",
        )
        .unwrap();
        assert_eq!(
            gt.composite_indexed_props(),
            vec![(
                "Patient".to_string(),
                vec!["status".to_string(), "severity".to_string()]
            )]
        );
        assert_eq!(
            gt.composite_indexed_rel_props(),
            vec![(
                "ConnectedTo".to_string(),
                vec!["kind".to_string(), "distance".to_string()]
            )]
        );
        // the plain per-prop declarations are untouched
        assert!(gt.indexed_props().is_empty());
        // one-column composite declarations are rejected
        assert!(
            parse_graph_type("CREATE GRAPH TYPE G STRICT { (AType: A {x STRING, INDEX(x)}) }")
                .is_err()
        );
    }

    #[test]
    fn parse_open_type_and_arrays() {
        let gt = parse_graph_type(
            "CREATE GRAPH TYPE G LOOSE {
               (AlertType: Alert OPEN {time DATETIME, desc STRING}),
               (PatientType: Patient {comorbidity ARRAY[string]})
             }",
        )
        .unwrap();
        assert!(!gt.strict);
        assert!(gt.node_type("AlertType").unwrap().open);
        assert_eq!(
            gt.node_type("PatientType").unwrap().props[0].prop_type,
            PropType::Array(Box::new(PropType::String))
        );
    }

    #[test]
    fn parse_edge_with_props() {
        let gt = parse_graph_type(
            "CREATE GRAPH TYPE G STRICT {
               (HospitalType: Hospital {name STRING}),
               (:HospitalType)-[ConnType: ConnectedTo {distance INT32}]->(:HospitalType)
             }",
        )
        .unwrap();
        assert_eq!(gt.edge_types[0].props[0].name, "distance");
    }

    #[test]
    fn parse_errors() {
        assert!(parse_graph_type("CREATE GRAPH G {}").is_err());
        assert!(parse_graph_type("CREATE GRAPH TYPE G STRICT { (A) }").is_err());
        assert!(
            parse_graph_type("CREATE GRAPH TYPE G STRICT { (AType: A {x NOTATYPE}) }").is_err()
        );
        // unknown endpoint type caught by check()
        assert!(matches!(
            parse_graph_type(
                "CREATE GRAPH TYPE G STRICT { (AType: A), (:AType)-[E: R]->(:Ghost) }"
            ),
            Err(SchemaError::UnknownEndpointType { .. })
        ));
    }
}
