//! # pg-schema — a PG-Schema / PG-Keys subset
//!
//! Implements the schema substrate the paper's running example uses (§6.1,
//! Figures 4–5): typed nodes and edges with property types, type hierarchies
//! with inheritance (`HospitalizedPatient <: Patient`), `OPEN` types (the
//! paper's `Alert` nodes allow arbitrary extra properties), key constraints
//! (PG-Keys), and `STRICT` graph types where every node must conform to
//! exactly one declared type.
//!
//! The DDL follows the PG-Schema proposal's surface:
//!
//! ```text
//! CREATE GRAPH TYPE CovidGraphType STRICT {
//!   (PatientType: Patient {ssn STRING KEY, name STRING, sex STRING,
//!                          OPTIONAL vaccinated INT32}),
//!   (HospitalizedPatientType: PatientType & HospitalizedPatient
//!                             {id INT32, prognosis STRING}),
//!   (AlertType: Alert OPEN {time DATETIME, desc STRING}),
//!   (:HospitalizedPatientType)-[TreatedAtType: TreatedAt]->(:HospitalType)
//! }
//! ```

pub mod ddl;
pub mod types;
pub mod validate;

pub use ddl::parse_graph_type;
pub use types::{EdgeTypeDef, GraphType, NodeTypeDef, PropDef, PropType, SchemaError};
pub use validate::{validate_graph, Violation};
