//! Graph-type definitions: node types, edge types, property types, keys.

use pg_graph::Value;
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// A property type (the subset used by the paper's Figure 4 schema).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PropType {
    String,
    Int32,
    Int64,
    Float,
    Bool,
    Date,
    DateTime,
    /// `ARRAY[t]`, e.g. the paper's `comorbidity: ARRAY[string]`.
    Array(Box<PropType>),
    /// Any storable value.
    Any,
}

impl PropType {
    /// Whether `v` conforms to this type.
    pub fn accepts(&self, v: &Value) -> bool {
        match (self, v) {
            (_, Value::Null) => true, // absence handled by `required`
            (PropType::String, Value::Str(_)) => true,
            (PropType::Int32, Value::Int(i)) => *i >= i32::MIN as i64 && *i <= i32::MAX as i64,
            (PropType::Int64, Value::Int(_)) => true,
            (PropType::Float, Value::Float(_) | Value::Int(_)) => true,
            (PropType::Bool, Value::Bool(_)) => true,
            (PropType::Date, Value::Date(_)) => true,
            (PropType::DateTime, Value::DateTime(_)) => true,
            (PropType::Array(inner), Value::List(items)) => items.iter().all(|i| inner.accepts(i)),
            (PropType::Any, _) => true,
            _ => false,
        }
    }

    /// Parse a type name (`STRING`, `INT32`, `ARRAY[string]`, …).
    pub fn parse(name: &str) -> Option<PropType> {
        let up = name.trim().to_ascii_uppercase();
        Some(match up.as_str() {
            "STRING" | "STR" => PropType::String,
            "INT32" | "INT" | "INTEGER" => PropType::Int32,
            "INT64" | "LONG" => PropType::Int64,
            "FLOAT" | "DOUBLE" => PropType::Float,
            "BOOL" | "BOOLEAN" => PropType::Bool,
            "DATE" => PropType::Date,
            "DATETIME" | "TIMESTAMP" => PropType::DateTime,
            "ANY" => PropType::Any,
            _ => {
                if let Some(rest) = up.strip_prefix("ARRAY[") {
                    let inner = rest.strip_suffix(']')?;
                    return Some(PropType::Array(Box::new(PropType::parse(inner)?)));
                }
                return None;
            }
        })
    }
}

impl fmt::Display for PropType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PropType::String => write!(f, "STRING"),
            PropType::Int32 => write!(f, "INT32"),
            PropType::Int64 => write!(f, "INT64"),
            PropType::Float => write!(f, "FLOAT"),
            PropType::Bool => write!(f, "BOOL"),
            PropType::Date => write!(f, "DATE"),
            PropType::DateTime => write!(f, "DATETIME"),
            PropType::Array(t) => write!(f, "ARRAY[{t}]"),
            PropType::Any => write!(f, "ANY"),
        }
    }
}

/// One property declaration.
#[derive(Debug, Clone, PartialEq)]
pub struct PropDef {
    pub name: String,
    pub prop_type: PropType,
    /// `OPTIONAL` properties may be absent.
    pub required: bool,
    /// `KEY` properties form the type's PG-Key (unique, mandatory).
    pub key: bool,
    /// `INDEX` properties request a property index on `(label, name)`
    /// for every own label of the declaring type. `KEY` implies an index
    /// (key-based access is the point of a key).
    pub indexed: bool,
}

/// A node type: a set of labels (own + inherited), property declarations,
/// and openness.
#[derive(Debug, Clone, PartialEq)]
pub struct NodeTypeDef {
    /// Type name (e.g. `PatientType`).
    pub name: String,
    /// Declared supertypes (type names), e.g. `HospitalizedPatientType`
    /// inherits from `PatientType`.
    pub supertypes: Vec<String>,
    /// Own labels (excluding inherited).
    pub labels: Vec<String>,
    /// Own property declarations (excluding inherited).
    pub props: Vec<PropDef>,
    /// Composite `INDEX (k1, k2, …)` declarations: each requests one
    /// composite index over the listed property columns for every own
    /// label of the type.
    pub composite_indexes: Vec<Vec<String>>,
    /// `OPEN` types tolerate undeclared extra properties (the paper's Alert
    /// nodes, §6.2: "a new, OPEN type (allowing for the inclusion of
    /// arbitrary properties)").
    pub open: bool,
}

/// An edge type: a label plus source/destination node-type names.
#[derive(Debug, Clone, PartialEq)]
pub struct EdgeTypeDef {
    pub name: String,
    pub label: String,
    pub src_type: String,
    pub dst_type: String,
    pub props: Vec<PropDef>,
    /// Composite `INDEX (k1, k2, …)` declarations over edge properties.
    pub composite_indexes: Vec<Vec<String>>,
}

/// Errors building or resolving a graph type.
#[derive(Debug, Clone, PartialEq)]
pub enum SchemaError {
    DuplicateType(String),
    UnknownSupertype { t: String, supertype: String },
    UnknownEndpointType { edge: String, endpoint: String },
    CyclicInheritance(String),
    Parse(String),
}

impl fmt::Display for SchemaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SchemaError::DuplicateType(t) => write!(f, "duplicate type '{t}'"),
            SchemaError::UnknownSupertype { t, supertype } => {
                write!(f, "type '{t}' inherits from unknown type '{supertype}'")
            }
            SchemaError::UnknownEndpointType { edge, endpoint } => {
                write!(
                    f,
                    "edge type '{edge}' references unknown node type '{endpoint}'"
                )
            }
            SchemaError::CyclicInheritance(t) => write!(f, "cyclic inheritance through '{t}'"),
            SchemaError::Parse(msg) => write!(f, "schema parse error: {msg}"),
        }
    }
}

impl std::error::Error for SchemaError {}

/// A complete graph type (the content of `CREATE GRAPH TYPE … { … }`).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct GraphType {
    pub name: String,
    /// STRICT graph types require every node to conform to exactly one
    /// declared type; non-strict (LOOSE) graphs tolerate untyped nodes.
    pub strict: bool,
    pub node_types: Vec<NodeTypeDef>,
    pub edge_types: Vec<EdgeTypeDef>,
}

impl GraphType {
    /// Look up a node type by name.
    pub fn node_type(&self, name: &str) -> Option<&NodeTypeDef> {
        self.node_types.iter().find(|t| t.name == name)
    }

    /// Look up an edge type by name.
    pub fn edge_type(&self, name: &str) -> Option<&EdgeTypeDef> {
        self.edge_types.iter().find(|t| t.name == name)
    }

    /// Validate internal consistency (types resolve, no inheritance cycles).
    pub fn check(&self) -> Result<(), SchemaError> {
        let mut seen = BTreeSet::new();
        for t in &self.node_types {
            if !seen.insert(&t.name) {
                return Err(SchemaError::DuplicateType(t.name.clone()));
            }
            for s in &t.supertypes {
                if self.node_type(s).is_none() {
                    return Err(SchemaError::UnknownSupertype {
                        t: t.name.clone(),
                        supertype: s.clone(),
                    });
                }
            }
        }
        for t in &self.node_types {
            // cycle detection via DFS
            let mut stack = vec![&t.name];
            let mut visited = BTreeSet::new();
            while let Some(n) = stack.pop() {
                if !visited.insert(n.clone()) {
                    return Err(SchemaError::CyclicInheritance(t.name.clone()));
                }
                if let Some(def) = self.node_type(n) {
                    for s in &def.supertypes {
                        stack.push(s);
                    }
                }
            }
        }
        for e in &self.edge_types {
            for endpoint in [&e.src_type, &e.dst_type] {
                if self.node_type(endpoint).is_none() {
                    return Err(SchemaError::UnknownEndpointType {
                        edge: e.name.clone(),
                        endpoint: endpoint.clone(),
                    });
                }
            }
        }
        Ok(())
    }

    /// The full label set of a node type including inherited labels. Nodes
    /// of a subtype carry all supertype labels (this is how the paper models
    /// type-hierarchy matching: "Note the use of two labels to denote
    /// matching along type hierarchies", §6.2.2).
    pub fn full_labels(&self, type_name: &str) -> BTreeSet<String> {
        let mut out = BTreeSet::new();
        let mut stack = vec![type_name.to_string()];
        let mut visited = BTreeSet::new();
        while let Some(n) = stack.pop() {
            if !visited.insert(n.clone()) {
                continue;
            }
            if let Some(def) = self.node_type(&n) {
                out.extend(def.labels.iter().cloned());
                stack.extend(def.supertypes.iter().cloned());
            }
        }
        out
    }

    /// The `(label, property)` pairs that declare a property index: every
    /// own label of a node type paired with each of its own `INDEX` (or
    /// `KEY`, which implies an index) property declarations. The trigger
    /// engine creates these indexes when the graph type is attached to a
    /// session.
    pub fn indexed_props(&self) -> Vec<(String, String)> {
        let mut out: Vec<(String, String)> = Vec::new();
        for t in &self.node_types {
            for p in &t.props {
                if p.indexed || p.key {
                    for l in &t.labels {
                        out.push((l.clone(), p.name.clone()));
                    }
                }
            }
        }
        out.sort();
        out.dedup();
        out
    }

    /// The `(label, columns)` pairs that declare a **composite** index:
    /// every own label of a node type paired with each of its
    /// `INDEX (k1, k2, …)` declarations. The trigger engine creates these
    /// composite indexes when the graph type is attached to a session.
    pub fn composite_indexed_props(&self) -> Vec<(String, Vec<String>)> {
        let mut out: Vec<(String, Vec<String>)> = Vec::new();
        for t in &self.node_types {
            for cols in &t.composite_indexes {
                for l in &t.labels {
                    out.push((l.clone(), cols.clone()));
                }
            }
        }
        out.sort();
        out.dedup();
        out
    }

    /// The `(relationship type, columns)` pairs that declare a composite
    /// relationship index.
    pub fn composite_indexed_rel_props(&self) -> Vec<(String, Vec<String>)> {
        let mut out: Vec<(String, Vec<String>)> = Vec::new();
        for e in &self.edge_types {
            for cols in &e.composite_indexes {
                out.push((e.label.clone(), cols.clone()));
            }
        }
        out.sort();
        out.dedup();
        out
    }

    /// The `(relationship type, property)` pairs that declare a
    /// relationship-property index: each edge type's label paired with its
    /// `INDEX` (or `KEY`) property declarations. The trigger engine creates
    /// these indexes when the graph type is attached to a session.
    pub fn indexed_rel_props(&self) -> Vec<(String, String)> {
        let mut out: Vec<(String, String)> = Vec::new();
        for e in &self.edge_types {
            for p in &e.props {
                if p.indexed || p.key {
                    out.push((e.label.clone(), p.name.clone()));
                }
            }
        }
        out.sort();
        out.dedup();
        out
    }

    /// The full property declarations of a node type including inherited
    /// ones (own declarations shadow inherited declarations of the same
    /// property name).
    pub fn full_props(&self, type_name: &str) -> Vec<PropDef> {
        let mut by_name: BTreeMap<String, PropDef> = BTreeMap::new();
        // collect supertype props first so own decls overwrite
        fn collect(
            gt: &GraphType,
            name: &str,
            by_name: &mut BTreeMap<String, PropDef>,
            depth: usize,
        ) {
            if depth > 64 {
                return; // cycle guard; `check` reports cycles properly
            }
            if let Some(def) = gt.node_type(name) {
                for s in &def.supertypes {
                    collect(gt, s, by_name, depth + 1);
                }
                for p in &def.props {
                    by_name.insert(p.name.clone(), p.clone());
                }
            }
        }
        collect(self, type_name, &mut by_name, 0);
        by_name.into_values().collect()
    }

    /// Whether a node type is open (own flag; openness is not inherited).
    pub fn is_open(&self, type_name: &str) -> bool {
        self.node_type(type_name).map(|t| t.open).unwrap_or(false)
    }

    /// Key properties of a type (including inherited), paper's PG-Keys.
    pub fn key_props(&self, type_name: &str) -> Vec<String> {
        self.full_props(type_name)
            .into_iter()
            .filter(|p| p.key)
            .map(|p| p.name)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn prop(name: &str, t: PropType) -> PropDef {
        PropDef {
            name: name.into(),
            prop_type: t,
            required: true,
            key: false,
            indexed: false,
        }
    }

    fn patient_hierarchy() -> GraphType {
        GraphType {
            name: "G".into(),
            strict: true,
            node_types: vec![
                NodeTypeDef {
                    name: "PatientType".into(),
                    supertypes: vec![],
                    labels: vec!["Patient".into()],
                    props: vec![
                        PropDef {
                            name: "ssn".into(),
                            prop_type: PropType::String,
                            required: true,
                            key: true,
                            indexed: false,
                        },
                        prop("name", PropType::String),
                    ],
                    composite_indexes: vec![],
                    open: false,
                },
                NodeTypeDef {
                    name: "HospitalizedPatientType".into(),
                    supertypes: vec!["PatientType".into()],
                    labels: vec!["HospitalizedPatient".into()],
                    props: vec![prop("prognosis", PropType::String)],
                    composite_indexes: vec![],
                    open: false,
                },
                NodeTypeDef {
                    name: "IcuPatientType".into(),
                    supertypes: vec!["HospitalizedPatientType".into()],
                    labels: vec!["IcuPatient".into()],
                    props: vec![prop("admittedToICU", PropType::Bool)],
                    composite_indexes: vec![],
                    open: false,
                },
            ],
            edge_types: vec![],
        }
    }

    #[test]
    fn prop_type_accepts() {
        assert!(PropType::String.accepts(&Value::str("x")));
        assert!(!PropType::String.accepts(&Value::Int(1)));
        assert!(PropType::Int32.accepts(&Value::Int(5)));
        assert!(!PropType::Int32.accepts(&Value::Int(i64::MAX)));
        assert!(PropType::Int64.accepts(&Value::Int(i64::MAX)));
        assert!(PropType::Float.accepts(&Value::Int(1)));
        assert!(PropType::Array(Box::new(PropType::String))
            .accepts(&Value::list([Value::str("diabetes")])));
        assert!(!PropType::Array(Box::new(PropType::String)).accepts(&Value::list([Value::Int(1)])));
        assert!(PropType::Any.accepts(&Value::Bool(true)));
    }

    #[test]
    fn prop_type_parse() {
        assert_eq!(PropType::parse("STRING"), Some(PropType::String));
        assert_eq!(PropType::parse("int32"), Some(PropType::Int32));
        assert_eq!(
            PropType::parse("ARRAY[string]"),
            Some(PropType::Array(Box::new(PropType::String)))
        );
        assert_eq!(PropType::parse("nope"), None);
    }

    #[test]
    fn inheritance_accumulates_labels_and_props() {
        let gt = patient_hierarchy();
        gt.check().unwrap();
        let labels = gt.full_labels("IcuPatientType");
        assert!(labels.contains("Patient"));
        assert!(labels.contains("HospitalizedPatient"));
        assert!(labels.contains("IcuPatient"));
        let props = gt.full_props("IcuPatientType");
        let names: Vec<_> = props.iter().map(|p| p.name.as_str()).collect();
        assert!(names.contains(&"ssn"));
        assert!(names.contains(&"prognosis"));
        assert!(names.contains(&"admittedToICU"));
        assert_eq!(gt.key_props("IcuPatientType"), vec!["ssn"]);
    }

    #[test]
    fn check_rejects_unknown_supertype_and_duplicates() {
        let mut gt = patient_hierarchy();
        gt.node_types[1].supertypes = vec!["Ghost".into()];
        assert!(matches!(
            gt.check(),
            Err(SchemaError::UnknownSupertype { .. })
        ));

        let mut gt = patient_hierarchy();
        gt.node_types.push(gt.node_types[0].clone());
        assert!(matches!(gt.check(), Err(SchemaError::DuplicateType(_))));
    }

    #[test]
    fn check_rejects_cycles() {
        let mut gt = patient_hierarchy();
        gt.node_types[0].supertypes = vec!["IcuPatientType".into()];
        assert!(matches!(gt.check(), Err(SchemaError::CyclicInheritance(_))));
    }

    #[test]
    fn check_rejects_unknown_edge_endpoint() {
        let mut gt = patient_hierarchy();
        gt.edge_types.push(EdgeTypeDef {
            name: "E".into(),
            label: "Rel".into(),
            src_type: "PatientType".into(),
            dst_type: "Nope".into(),
            props: vec![],
            composite_indexes: vec![],
        });
        assert!(matches!(
            gt.check(),
            Err(SchemaError::UnknownEndpointType { .. })
        ));
    }
}
