//! APOC trigger transition metadata (paper Table 2 / Table 3).
//!
//! Neo4j APOC triggers receive the transaction's changes through implicit
//! parameters: `$createdNodes`, `$deletedRels`, `$assignedLabels`,
//! `$assignedNodeProperties` (⟨node, property, old, new⟩ quadruples grouped
//! by property key), and so on. This module materializes exactly those
//! structures from a [`Delta`].
//!
//! Faithfulness notes (§5.1):
//! * `assignedLabels` / `assignedNodeProperties` **include** the labels and
//!   initial properties of nodes created in the same transaction (APOC does
//!   not separate creation from assignment) — we use the delta's raw views;
//! * deleted items are delivered as maps (their node identity is gone), with
//!   labels under `__labels` and the relationship type under `__type`.

use pg_cypher::Params;
use pg_graph::{Delta, Value};
use std::collections::BTreeMap;

/// Build the full APOC parameter set for a transaction delta.
pub fn apoc_params(delta: &Delta) -> Params {
    let mut p = Params::new();
    p.insert(
        "createdNodes".into(),
        Value::List(
            delta
                .created_nodes
                .iter()
                .map(|n| Value::Node(n.id))
                .collect(),
        ),
    );
    p.insert(
        "createdRelationships".into(),
        Value::List(
            delta
                .created_rels
                .iter()
                .map(|r| Value::Rel(r.id))
                .collect(),
        ),
    );
    p.insert(
        "deletedNodes".into(),
        Value::List(delta.deleted_nodes.iter().map(|n| n.to_value()).collect()),
    );
    p.insert(
        "deletedRelationships".into(),
        Value::List(delta.deleted_rels.iter().map(|r| r.to_value()).collect()),
    );

    // label -> list of nodes
    let mut assigned_labels: BTreeMap<String, Vec<Value>> = BTreeMap::new();
    for ev in delta.raw_assigned_labels() {
        assigned_labels
            .entry(ev.label)
            .or_default()
            .push(Value::Node(ev.node));
    }
    p.insert(
        "assignedLabels".into(),
        Value::Map(
            assigned_labels
                .into_iter()
                .map(|(k, v)| (k, Value::List(v)))
                .collect(),
        ),
    );
    let mut removed_labels: BTreeMap<String, Vec<Value>> = BTreeMap::new();
    for ev in &delta.removed_labels {
        removed_labels
            .entry(ev.label.clone())
            .or_default()
            .push(Value::Node(ev.node));
    }
    p.insert(
        "removedLabels".into(),
        Value::Map(
            removed_labels
                .into_iter()
                .map(|(k, v)| (k, Value::List(v)))
                .collect(),
        ),
    );

    // property key -> list of {node|relationship, key, old[, new]}
    let mut anp: BTreeMap<String, Vec<Value>> = BTreeMap::new();
    for pa in delta.raw_assigned_node_props() {
        anp.entry(pa.key.clone()).or_default().push(Value::map([
            ("node".to_string(), Value::Node(pa.target)),
            ("key".to_string(), Value::Str(pa.key.clone())),
            ("old".to_string(), pa.old.clone()),
            ("new".to_string(), pa.new.clone()),
        ]));
    }
    p.insert(
        "assignedNodeProperties".into(),
        Value::Map(anp.into_iter().map(|(k, v)| (k, Value::List(v))).collect()),
    );

    let mut arp: BTreeMap<String, Vec<Value>> = BTreeMap::new();
    for pa in delta.raw_assigned_rel_props() {
        arp.entry(pa.key.clone()).or_default().push(Value::map([
            ("relationship".to_string(), Value::Rel(pa.target)),
            ("key".to_string(), Value::Str(pa.key.clone())),
            ("old".to_string(), pa.old.clone()),
            ("new".to_string(), pa.new.clone()),
        ]));
    }
    p.insert(
        "assignedRelProperties".into(),
        Value::Map(arp.into_iter().map(|(k, v)| (k, Value::List(v))).collect()),
    );

    let mut rnp: BTreeMap<String, Vec<Value>> = BTreeMap::new();
    for pr in &delta.removed_node_props {
        rnp.entry(pr.key.clone()).or_default().push(Value::map([
            ("node".to_string(), Value::Node(pr.target)),
            ("key".to_string(), Value::Str(pr.key.clone())),
            ("old".to_string(), pr.old.clone()),
        ]));
    }
    p.insert(
        "removedNodeProperties".into(),
        Value::Map(rnp.into_iter().map(|(k, v)| (k, Value::List(v))).collect()),
    );

    let mut rrp: BTreeMap<String, Vec<Value>> = BTreeMap::new();
    for pr in &delta.removed_rel_props {
        rrp.entry(pr.key.clone()).or_default().push(Value::map([
            ("relationship".to_string(), Value::Rel(pr.target)),
            ("key".to_string(), Value::Str(pr.key.clone())),
            ("old".to_string(), pr.old.clone()),
        ]));
    }
    p.insert(
        "removedRelProperties".into(),
        Value::Map(rrp.into_iter().map(|(k, v)| (k, Value::List(v))).collect()),
    );
    p
}

/// The names of all APOC transition parameters (Table 2).
pub const APOC_PARAM_NAMES: [&str; 10] = [
    "createdNodes",
    "createdRelationships",
    "deletedNodes",
    "deletedRelationships",
    "assignedLabels",
    "removedLabels",
    "assignedNodeProperties",
    "assignedRelProperties",
    "removedNodeProperties",
    "removedRelProperties",
];

#[cfg(test)]
mod tests {
    use super::*;
    use pg_graph::{Graph, PropertyMap};

    fn props(entries: &[(&str, Value)]) -> PropertyMap {
        entries
            .iter()
            .map(|(k, v)| (k.to_string(), v.clone()))
            .collect()
    }

    #[test]
    fn all_ten_parameters_present() {
        let p = apoc_params(&Delta::default());
        for name in APOC_PARAM_NAMES {
            assert!(p.contains_key(name), "missing {name}");
        }
    }

    #[test]
    fn created_nodes_and_raw_assigned_included() {
        let mut g = Graph::new();
        g.begin().unwrap();
        let mark = g.mark();
        g.create_node(["L"], props(&[("x", Value::Int(1))]))
            .unwrap();
        let delta = g.delta_since(mark);
        let p = apoc_params(&delta);
        assert_eq!(p["createdNodes"].as_list().unwrap().len(), 1);
        // APOC also reports the creation's labels and properties as assigned
        match &p["assignedLabels"] {
            Value::Map(m) => assert_eq!(m["L"].as_list().unwrap().len(), 1),
            other => panic!("unexpected {other:?}"),
        }
        match &p["assignedNodeProperties"] {
            Value::Map(m) => {
                let quad = &m["x"].as_list().unwrap()[0];
                match quad {
                    Value::Map(q) => {
                        assert_eq!(q["old"], Value::Null);
                        assert_eq!(q["new"], Value::Int(1));
                    }
                    other => panic!("unexpected {other:?}"),
                }
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn deleted_nodes_are_maps_with_labels() {
        let mut g = Graph::new();
        let n = g
            .create_node(["Gone"], props(&[("name", Value::str("x"))]))
            .unwrap();
        g.begin().unwrap();
        let mark = g.mark();
        g.detach_delete_node(n).unwrap();
        let p = apoc_params(&g.delta_since(mark));
        match &p["deletedNodes"].as_list().unwrap()[0] {
            Value::Map(m) => {
                assert_eq!(m["name"], Value::str("x"));
                assert_eq!(m["__labels"], Value::list([Value::str("Gone")]));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn assigned_props_quadruples() {
        let mut g = Graph::new();
        let n = g
            .create_node(["L"], props(&[("v", Value::Int(1))]))
            .unwrap();
        g.begin().unwrap();
        let mark = g.mark();
        g.set_node_prop(n, "v", Value::Int(2)).unwrap();
        g.remove_node_prop(n, "v").unwrap();
        let p = apoc_params(&g.delta_since(mark));
        // net effect: removal with old = 1
        match &p["removedNodeProperties"] {
            Value::Map(m) => {
                let triple = &m["v"].as_list().unwrap()[0];
                match triple {
                    Value::Map(t) => assert_eq!(t["old"], Value::Int(1)),
                    other => panic!("unexpected {other:?}"),
                }
            }
            other => panic!("unexpected {other:?}"),
        }
    }
}
