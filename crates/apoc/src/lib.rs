//! # pg-apoc — Neo4j APOC trigger subsystem emulation + translator
//!
//! Implements the paper's §5.1 twice over:
//!
//! 1. [`system::ApocDb`] emulates the `apoc.trigger.*` procedures — install
//!    / drop / dropAll / stop / start, the four phases (`before`,
//!    `rollback`, `after`, `afterAsync`), the Table 2/3 transition metadata
//!    (`$createdNodes`, `$assignedNodeProperties` quadruples, …), and
//!    `apoc.do.when` — **including the limitations the paper reports**: no
//!    cascading, alphabetical all-trigger execution in the `before` phase,
//!    and the `afterAsync` stale-state race.
//! 2. [`translate::translate`] is the syntax-directed translation of
//!    Figure 2, generalized to all ten event kinds.
//!
//! Together they let the test suite and benchmarks compare native
//! PG-Trigger semantics against what a Neo4j+APOC deployment would do.

pub mod meta;
pub mod paper63;
pub mod statement;
pub mod system;
pub mod translate;

pub use meta::{apoc_params, APOC_PARAM_NAMES};
pub use statement::{execute_apoc_statement, parse_apoc_statement, ApocStatement, DoWhen};
pub use system::{ApocDb, ApocError, Phase};
pub use translate::{translate, ApocInstall, TranslateError};
