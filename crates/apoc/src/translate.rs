//! Syntax-directed translation **PG-Trigger → APOC trigger** (paper §5.1,
//! Figure 2), covering all ten event kinds:
//! `{node, relationship} × {creation, deletion}` ∪
//! `{label, node-property, relationship-property} × {set, removal}`.
//!
//! Scheme (Figure 2): the APOC statement `UNWIND`s the transition metadata
//! for the trigger's event, renames the affected item to a local variable
//! (`cNodes` in the paper), inlines the condition query (when present) as a
//! filtering pipeline, and wraps the condition predicate and the trigger
//! statement in `apoc.do.when(<label-check AND condition>, '<statement>',
//! '', {<operands>})`.
//!
//! Divergence from the paper's hand translation: for property events the
//! paper destructures the ⟨node, property, old, new⟩ quadruple into scalar
//! `oldValue`/`newValue` variables; we instead bind `OLD` to the one-entry
//! map `{<property>: old}`, which lets the trigger's `OLD.<property>`
//! references work unchanged. Both are syntax-directed; ours avoids
//! rewriting property accesses. `OLD.<other-property>` yields `null` under
//! APOC (the metadata only carries the changed property) — a documented
//! APOC limitation relative to native PG-Triggers.

use crate::system::Phase;
use pg_cypher::ast::{Clause, Expr, PathPattern, Query};
use pg_cypher::{rename_vars, unparse_clause, unparse_expr, unparse_query};
use pg_triggers::{ActionTime, EventType, Granularity, ItemKind, TransitionVar, TriggerSpec};
use std::collections::{BTreeMap, BTreeSet};

/// A translated trigger: the arguments of `apoc.trigger.install`.
#[derive(Debug, Clone, PartialEq)]
pub struct ApocInstall {
    pub name: String,
    pub statement: String,
    pub phase: Phase,
    /// Semantic caveats of the translation (APOC limitations per §5.1).
    pub warnings: Vec<String>,
}

/// Errors for trigger shapes APOC cannot express.
#[derive(Debug, Clone, PartialEq)]
pub enum TranslateError {
    Unsupported(String),
}

impl std::fmt::Display for TranslateError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TranslateError::Unsupported(msg) => write!(f, "untranslatable trigger: {msg}"),
        }
    }
}

impl std::error::Error for TranslateError {}

/// Translate a PG-Trigger into an APOC trigger installation.
pub fn translate(spec: &TriggerSpec) -> Result<ApocInstall, TranslateError> {
    let mut warnings = Vec::new();
    let phase = match spec.time {
        // APOC's `before` runs at the commit point inside the transaction —
        // exactly the paper's ONCOMMIT (§5.1).
        ActionTime::OnCommit => Phase::Before,
        // The APOC community discourages `after` and advises `afterAsync`
        // (§5.1); we follow the paper's choice.
        ActionTime::After => Phase::AfterAsync,
        ActionTime::Detached => {
            warnings.push(
                "DETACHED approximated by afterAsync: the autonomous transaction may observe \
                 state later than the activating commit"
                    .to_string(),
            );
            Phase::AfterAsync
        }
        ActionTime::Before => {
            warnings.push(
                "BEFORE has no APOC equivalent: mapped to the (pre-commit) 'before' phase, \
                 which sees post-statement state and cannot veto cleanly"
                    .to_string(),
            );
            Phase::Before
        }
    };
    warnings.push(
        "APOC triggers do not cascade (trigger-generated changes never re-activate triggers)"
            .to_string(),
    );

    // ------------------------------------------------------------------
    // Event plan: UNWIND source, local variable names, label check.
    // ------------------------------------------------------------------
    struct Plan {
        /// prefix clauses (text) binding the per-item variables
        prefix: String,
        /// the item variable visible to condition/statement
        item_var: String,
        /// per-item label/type check (before collection for FOR ALL)
        label_check: Expr,
        /// renames applied to condition + statement
        renames: BTreeMap<String, String>,
    }

    let var = |s: &str| Expr::Var(s.to_string());
    let lit = |s: &str| Expr::Literal(pg_graph::Value::Str(s.to_string()));
    let label = spec.label.clone();

    let each_plan = |spec: &TriggerSpec| -> Result<Plan, TranslateError> {
        let mut renames = BTreeMap::new();
        let p = match (spec.event, spec.item, &spec.property) {
            (EventType::Create, ItemKind::Node, _) => {
                renames.insert(spec.var_name(TransitionVar::New), "cNodes".to_string());
                Plan {
                    prefix: "UNWIND $createdNodes AS cNodes".to_string(),
                    item_var: "cNodes".to_string(),
                    label_check: Expr::HasLabel(Box::new(var("cNodes")), vec![label.clone()]),
                    renames,
                }
            }
            (EventType::Create, ItemKind::Relationship, _) => {
                renames.insert(spec.var_name(TransitionVar::New), "cRels".to_string());
                Plan {
                    prefix: "UNWIND $createdRelationships AS cRels".to_string(),
                    item_var: "cRels".to_string(),
                    label_check: Expr::Binary(
                        pg_cypher::ast::BinOp::Eq,
                        Box::new(Expr::Func {
                            name: "type".into(),
                            args: vec![var("cRels")],
                            distinct: false,
                        }),
                        Box::new(lit(&label)),
                    ),
                    renames,
                }
            }
            (EventType::Delete, ItemKind::Node, _) => {
                renames.insert(spec.var_name(TransitionVar::Old), "dNodes".to_string());
                Plan {
                    prefix: "UNWIND $deletedNodes AS dNodes".to_string(),
                    item_var: "dNodes".to_string(),
                    label_check: Expr::Binary(
                        pg_cypher::ast::BinOp::In,
                        Box::new(lit(&label)),
                        Box::new(Expr::Prop(Box::new(var("dNodes")), "__labels".into())),
                    ),
                    renames,
                }
            }
            (EventType::Delete, ItemKind::Relationship, _) => {
                renames.insert(spec.var_name(TransitionVar::Old), "dRels".to_string());
                Plan {
                    prefix: "UNWIND $deletedRelationships AS dRels".to_string(),
                    item_var: "dRels".to_string(),
                    label_check: Expr::Binary(
                        pg_cypher::ast::BinOp::Eq,
                        Box::new(Expr::Prop(Box::new(var("dRels")), "__type".into())),
                        Box::new(lit(&label)),
                    ),
                    renames,
                }
            }
            (EventType::Set, ItemKind::Node, None) => {
                renames.insert(spec.var_name(TransitionVar::New), "cNodes".to_string());
                Plan {
                    prefix: format!("UNWIND $assignedLabels['{label}'] AS cNodes"),
                    item_var: "cNodes".to_string(),
                    label_check: Expr::Literal(pg_graph::Value::Bool(true)),
                    renames,
                }
            }
            (EventType::Remove, ItemKind::Node, None) => {
                renames.insert(spec.var_name(TransitionVar::Old), "cNodes".to_string());
                renames.insert(spec.var_name(TransitionVar::New), "cNodes".to_string());
                Plan {
                    prefix: format!("UNWIND $removedLabels['{label}'] AS cNodes"),
                    item_var: "cNodes".to_string(),
                    label_check: Expr::Literal(pg_graph::Value::Bool(true)),
                    renames,
                }
            }
            (EventType::Set, ItemKind::Node, Some(p)) => {
                renames.insert(spec.var_name(TransitionVar::New), "node".to_string());
                renames.insert(spec.var_name(TransitionVar::Old), "oldProps".to_string());
                Plan {
                    prefix: format!(
                        "UNWIND $assignedNodeProperties['{p}'] AS aProp \
                         WITH aProp.node AS node, {{{p}: aProp.old}} AS oldProps"
                    ),
                    item_var: "node".to_string(),
                    label_check: Expr::HasLabel(Box::new(var("node")), vec![label.clone()]),
                    renames,
                }
            }
            (EventType::Remove, ItemKind::Node, Some(p)) => {
                renames.insert(spec.var_name(TransitionVar::New), "node".to_string());
                renames.insert(spec.var_name(TransitionVar::Old), "oldProps".to_string());
                Plan {
                    prefix: format!(
                        "UNWIND $removedNodeProperties['{p}'] AS aProp \
                         WITH aProp.node AS node, {{{p}: aProp.old}} AS oldProps"
                    ),
                    item_var: "node".to_string(),
                    label_check: Expr::HasLabel(Box::new(var("node")), vec![label.clone()]),
                    renames,
                }
            }
            (EventType::Set, ItemKind::Relationship, Some(p)) => {
                renames.insert(spec.var_name(TransitionVar::New), "rel".to_string());
                renames.insert(spec.var_name(TransitionVar::Old), "oldProps".to_string());
                Plan {
                    prefix: format!(
                        "UNWIND $assignedRelProperties['{p}'] AS aProp \
                         WITH aProp.relationship AS rel, {{{p}: aProp.old}} AS oldProps"
                    ),
                    item_var: "rel".to_string(),
                    label_check: Expr::Binary(
                        pg_cypher::ast::BinOp::Eq,
                        Box::new(Expr::Func {
                            name: "type".into(),
                            args: vec![var("rel")],
                            distinct: false,
                        }),
                        Box::new(lit(&label)),
                    ),
                    renames,
                }
            }
            (EventType::Remove, ItemKind::Relationship, Some(p)) => {
                renames.insert(spec.var_name(TransitionVar::New), "rel".to_string());
                renames.insert(spec.var_name(TransitionVar::Old), "oldProps".to_string());
                Plan {
                    prefix: format!(
                        "UNWIND $removedRelProperties['{p}'] AS aProp \
                         WITH aProp.relationship AS rel, {{{p}: aProp.old}} AS oldProps"
                    ),
                    item_var: "rel".to_string(),
                    label_check: Expr::Binary(
                        pg_cypher::ast::BinOp::Eq,
                        Box::new(Expr::Func {
                            name: "type".into(),
                            args: vec![var("rel")],
                            distinct: false,
                        }),
                        Box::new(lit(&label)),
                    ),
                    renames,
                }
            }
            (e, i, p) => {
                return Err(TranslateError::Unsupported(format!(
                    "event {e:?} on {i:?} with property {p:?}"
                )))
            }
        };
        Ok(p)
    };

    let mut plan = each_plan(spec)?;

    // FOR ALL: collect the affected items into a list after the per-item
    // label filter; the set-level transition variable maps onto the list.
    // (§5.1: "we cannot separate the two cases of granularity, because
    // UNWIND returns, in any case, the entire set".)
    if spec.granularity == Granularity::All {
        let unit = plan.item_var.clone();
        let list_var = format!("{unit}List");
        plan.prefix = format!(
            "{} WITH {unit} WHERE {} WITH collect({unit}) AS {list_var}",
            plan.prefix,
            unparse_expr(&plan.label_check),
        );
        plan.label_check = Expr::Binary(
            pg_cypher::ast::BinOp::Gt,
            Box::new(Expr::Func {
                name: "size".into(),
                args: vec![var(&list_var)],
                distinct: false,
            }),
            Box::new(Expr::Literal(pg_graph::Value::Int(0))),
        );
        let (new_set, old_set) = match spec.item {
            ItemKind::Node => (TransitionVar::NewNodes, TransitionVar::OldNodes),
            ItemKind::Relationship => (TransitionVar::NewRels, TransitionVar::OldRels),
        };
        plan.renames.clear();
        match spec.event {
            EventType::Create | EventType::Set => {
                plan.renames
                    .insert(spec.var_name(new_set), list_var.clone());
            }
            EventType::Delete | EventType::Remove => {
                plan.renames
                    .insert(spec.var_name(old_set), list_var.clone());
            }
        }
        if matches!(spec.event, EventType::Set | EventType::Remove) && spec.property.is_some() {
            return Err(TranslateError::Unsupported(
                "FOR ALL with property events: APOC metadata cannot deliver aligned OLD/NEW item sets"
                    .to_string(),
            ));
        }
        plan.item_var = list_var;
    }

    // ------------------------------------------------------------------
    // Condition: a bare predicate goes into do.when; a pipeline becomes a
    // filtering condition_query before it (Figure 2's `condition_query`).
    // ------------------------------------------------------------------
    let mut cond_expr = plan.label_check.clone();
    let mut condition_pipeline = String::new();
    if let Some(cond) = &spec.condition {
        let renamed = rename_vars(cond, &plan.renames);
        match renamed.clauses.as_slice() {
            [Clause::Where(pred)] => {
                cond_expr = Expr::Binary(
                    pg_cypher::ast::BinOp::And,
                    Box::new(cond_expr),
                    Box::new(pred.clone()),
                );
            }
            clauses => {
                condition_pipeline = clauses
                    .iter()
                    .map(unparse_clause)
                    .collect::<Vec<_>>()
                    .join(" ");
            }
        }
    }

    // ------------------------------------------------------------------
    // Statement + operands.
    // ------------------------------------------------------------------
    let statement = rename_vars(&spec.statement, &plan.renames);
    let stmt_text = unparse_query(&statement);

    // Operands = variables the statement references that the prefix (or the
    // condition pipeline) binds.
    let mut bound: BTreeSet<String> = BTreeSet::new();
    bound.insert(plan.item_var.clone());
    for v in plan.renames.values() {
        bound.insert(v.clone());
    }
    if let Some(cond) = &spec.condition {
        collect_bound_vars(&rename_vars(cond, &plan.renames), &mut bound);
    }
    let mut referenced: BTreeSet<String> = BTreeSet::new();
    collect_var_refs(&statement, &mut referenced);
    collect_expr_refs(&cond_expr, &mut referenced);
    let args: Vec<String> = bound.intersection(&referenced).cloned().collect();
    let args_text = if args.is_empty() {
        format!("{{{}: {}}}", plan.item_var, plan.item_var)
    } else {
        format!(
            "{{{}}}",
            args.iter()
                .map(|v| format!("{v}: {v}"))
                .collect::<Vec<_>>()
                .join(", ")
        )
    };

    let escaped_stmt = stmt_text.replace('\\', "\\\\").replace('\'', "\\'");
    let statement = format!(
        "{prefix}{pipeline} CALL apoc.do.when({cond}, '{then}', '', {args}) YIELD value RETURN *",
        prefix = plan.prefix,
        pipeline = if condition_pipeline.is_empty() {
            String::new()
        } else {
            format!(" {condition_pipeline}")
        },
        cond = unparse_expr(&cond_expr),
        then = escaped_stmt,
        args = args_text,
    );

    Ok(ApocInstall {
        name: spec.name.clone(),
        statement,
        phase,
        warnings,
    })
}

/// Variables bound by a query's clauses (approximate: pattern variables,
/// UNWIND aliases, WITH/RETURN aliases).
fn collect_bound_vars(q: &Query, out: &mut BTreeSet<String>) {
    fn pattern_vars(p: &PathPattern, out: &mut BTreeSet<String>) {
        if let Some(v) = &p.start.var {
            out.insert(v.clone());
        }
        for (r, n) in &p.segments {
            if let Some(v) = &r.var {
                out.insert(v.clone());
            }
            if let Some(v) = &n.var {
                out.insert(v.clone());
            }
        }
    }
    for c in &q.clauses {
        match c {
            Clause::Match { patterns, .. } | Clause::Create { patterns } => {
                for p in patterns {
                    pattern_vars(p, out);
                }
            }
            Clause::Merge { pattern, .. } => pattern_vars(pattern, out),
            Clause::Unwind { alias, .. } => {
                out.insert(alias.clone());
            }
            Clause::With(p) | Clause::Return(p) => {
                for i in &p.items {
                    out.insert(i.name());
                }
            }
            _ => {}
        }
    }
}

/// All variable references in a query (expressions, pattern labels that may
/// be transition-variable references, property maps).
fn collect_var_refs(q: &Query, out: &mut BTreeSet<String>) {
    fn from_pattern(p: &PathPattern, out: &mut BTreeSet<String>) {
        for l in &p.start.labels {
            out.insert(l.clone());
        }
        if let Some(v) = &p.start.var {
            out.insert(v.clone());
        }
        for (_, e) in &p.start.props {
            collect_expr_refs(e, out);
        }
        for (r, n) in &p.segments {
            if let Some(v) = &r.var {
                out.insert(v.clone());
            }
            for (_, e) in &r.props {
                collect_expr_refs(e, out);
            }
            for l in &n.labels {
                out.insert(l.clone());
            }
            if let Some(v) = &n.var {
                out.insert(v.clone());
            }
            for (_, e) in &n.props {
                collect_expr_refs(e, out);
            }
        }
    }
    for c in &q.clauses {
        match c {
            Clause::Match {
                patterns,
                where_clause,
                ..
            } => {
                for p in patterns {
                    from_pattern(p, out);
                }
                if let Some(w) = where_clause {
                    collect_expr_refs(w, out);
                }
            }
            Clause::Create { patterns } => {
                for p in patterns {
                    from_pattern(p, out);
                }
            }
            Clause::Merge {
                pattern,
                on_create,
                on_match,
            } => {
                from_pattern(pattern, out);
                for items in [on_create, on_match] {
                    for i in items {
                        match i {
                            pg_cypher::ast::SetItem::Prop { target, value, .. } => {
                                collect_expr_refs(target, out);
                                collect_expr_refs(value, out);
                            }
                            pg_cypher::ast::SetItem::Labels { var, .. } => {
                                out.insert(var.clone());
                            }
                            pg_cypher::ast::SetItem::ReplaceProps { var, value }
                            | pg_cypher::ast::SetItem::MergeProps { var, value } => {
                                out.insert(var.clone());
                                collect_expr_refs(value, out);
                            }
                        }
                    }
                }
            }
            Clause::Where(e) | Clause::Abort(e) => collect_expr_refs(e, out),
            Clause::Unwind { expr, .. } => collect_expr_refs(expr, out),
            Clause::With(p) | Clause::Return(p) => {
                for i in &p.items {
                    collect_expr_refs(&i.expr, out);
                }
                for (e, _) in &p.order_by {
                    collect_expr_refs(e, out);
                }
                if let Some(w) = &p.where_clause {
                    collect_expr_refs(w, out);
                }
            }
            Clause::Set { items } => {
                for i in items {
                    match i {
                        pg_cypher::ast::SetItem::Prop { target, value, .. } => {
                            collect_expr_refs(target, out);
                            collect_expr_refs(value, out);
                        }
                        pg_cypher::ast::SetItem::Labels { var, .. } => {
                            out.insert(var.clone());
                        }
                        pg_cypher::ast::SetItem::ReplaceProps { var, value }
                        | pg_cypher::ast::SetItem::MergeProps { var, value } => {
                            out.insert(var.clone());
                            collect_expr_refs(value, out);
                        }
                    }
                }
            }
            Clause::Remove { items } => {
                for i in items {
                    match i {
                        pg_cypher::ast::RemoveItem::Prop { target, .. } => {
                            collect_expr_refs(target, out)
                        }
                        pg_cypher::ast::RemoveItem::Labels { var, .. } => {
                            out.insert(var.clone());
                        }
                    }
                }
            }
            Clause::Delete { exprs, .. } => {
                for e in exprs {
                    collect_expr_refs(e, out);
                }
            }
            Clause::Foreach { list, body, .. } => {
                collect_expr_refs(list, out);
                collect_var_refs(
                    &Query {
                        clauses: body.clone(),
                    },
                    out,
                );
            }
        }
    }
}

fn collect_expr_refs(e: &Expr, out: &mut BTreeSet<String>) {
    let mut v = Vec::new();
    e.collect_vars(&mut v);
    out.extend(v);
    // EXISTS pattern labels may be transition references.
    if let Expr::ExistsSubquery(patterns, _) = e {
        for p in patterns {
            for l in &p.start.labels {
                out.insert(l.clone());
            }
            for (_, n) in &p.segments {
                for l in &n.labels {
                    out.insert(l.clone());
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pg_triggers::{parse_trigger_ddl, DdlStatement};

    fn spec(src: &str) -> TriggerSpec {
        match parse_trigger_ddl(src).unwrap() {
            DdlStatement::CreateTrigger(s) => s,
            _ => panic!(),
        }
    }

    #[test]
    fn figure_2_node_creation_shape() {
        let t = spec(
            "CREATE TRIGGER NewCriticalMutation AFTER CREATE ON 'Mutation' FOR EACH NODE
             WHEN EXISTS (NEW)-[:Risk]-(:CriticalEffect)
             BEGIN CREATE (:Alert{desc:'New critical mutation', mutation:NEW.name}) END",
        );
        let out = translate(&t).unwrap();
        assert_eq!(out.phase, Phase::AfterAsync);
        assert!(
            out.statement.starts_with("UNWIND $createdNodes AS cNodes"),
            "{}",
            out.statement
        );
        assert!(
            out.statement.contains("apoc.do.when((cNodes:Mutation AND"),
            "{}",
            out.statement
        );
        assert!(out.statement.contains("cNodes.name"), "{}", out.statement);
        assert!(!out.statement.contains("NEW"), "{}", out.statement);
    }

    #[test]
    fn all_ten_event_kinds_translate() {
        let cases = [
            ("AFTER CREATE ON 'L' FOR EACH NODE", "$createdNodes"),
            (
                "AFTER CREATE ON 'L' FOR EACH RELATIONSHIP",
                "$createdRelationships",
            ),
            ("AFTER DELETE ON 'L' FOR EACH NODE", "$deletedNodes"),
            (
                "AFTER DELETE ON 'L' FOR EACH RELATIONSHIP",
                "$deletedRelationships",
            ),
            ("AFTER SET ON 'L' FOR EACH NODE", "$assignedLabels['L']"),
            ("AFTER REMOVE ON 'L' FOR EACH NODE", "$removedLabels['L']"),
            (
                "AFTER SET ON 'L'.'p' FOR EACH NODE",
                "$assignedNodeProperties['p']",
            ),
            (
                "AFTER REMOVE ON 'L'.'p' FOR EACH NODE",
                "$removedNodeProperties['p']",
            ),
            (
                "AFTER SET ON 'L'.'p' FOR EACH RELATIONSHIP",
                "$assignedRelProperties['p']",
            ),
            (
                "AFTER REMOVE ON 'L'.'p' FOR EACH RELATIONSHIP",
                "$removedRelProperties['p']",
            ),
        ];
        for (middle, expect) in cases {
            let t = spec(&format!("CREATE TRIGGER t {middle} BEGIN CREATE (:X) END"));
            let out = translate(&t).unwrap_or_else(|e| panic!("{middle}: {e}"));
            assert!(
                out.statement.contains(expect),
                "{middle}: {}",
                out.statement
            );
        }
    }

    #[test]
    fn oncommit_maps_to_before_phase() {
        let t = spec("CREATE TRIGGER t ONCOMMIT CREATE ON 'L' FOR EACH NODE BEGIN CREATE (:X) END");
        assert_eq!(translate(&t).unwrap().phase, Phase::Before);
    }

    #[test]
    fn for_all_collects() {
        let t = spec(
            "CREATE TRIGGER t AFTER CREATE ON 'IcuPatient' FOR ALL NODES
             BEGIN CREATE (:Wave {n: size(NEWNODES)}) END",
        );
        let out = translate(&t).unwrap();
        assert!(
            out.statement.contains("collect(cNodes) AS cNodesList"),
            "{}",
            out.statement
        );
        assert!(
            out.statement.contains("size(cNodesList)"),
            "{}",
            out.statement
        );
        assert!(!out.statement.contains("NEWNODES"), "{}", out.statement);
    }

    #[test]
    fn condition_pipeline_becomes_condition_query() {
        let t = spec(
            "CREATE TRIGGER t AFTER CREATE ON 'IcuPatient' FOR ALL NODES
             WHEN MATCH (p:IcuPatient) WITH COUNT(p) AS n WHERE n > 50
             BEGIN CREATE (:Alert) END",
        );
        let out = translate(&t).unwrap();
        assert!(
            out.statement.contains("MATCH (p:IcuPatient)"),
            "{}",
            out.statement
        );
        assert!(
            out.statement.contains("WITH count(p) AS n WHERE (n > 50)"),
            "{}",
            out.statement
        );
    }

    #[test]
    fn old_property_binds_map() {
        let t = spec(
            "CREATE TRIGGER who AFTER SET ON 'Lineage'.'whoDesignation' FOR EACH NODE
             WHEN OLD.whoDesignation <> NEW.whoDesignation
             BEGIN CREATE (:Alert {was: OLD.whoDesignation}) END",
        );
        let out = translate(&t).unwrap();
        assert!(
            out.statement
                .contains("{whoDesignation: aProp.old} AS oldProps"),
            "{}",
            out.statement
        );
        assert!(
            out.statement.contains("oldProps.whoDesignation"),
            "{}",
            out.statement
        );
        assert!(
            out.statement.contains("node.whoDesignation"),
            "{}",
            out.statement
        );
    }

    #[test]
    fn for_all_property_events_unsupported() {
        let t = spec("CREATE TRIGGER t AFTER SET ON 'L'.'p' FOR ALL NODES BEGIN CREATE (:X) END");
        assert!(matches!(translate(&t), Err(TranslateError::Unsupported(_))));
    }

    #[test]
    fn warnings_document_limitations() {
        let t = spec("CREATE TRIGGER t DETACHED CREATE ON 'L' FOR EACH NODE BEGIN CREATE (:X) END");
        let out = translate(&t).unwrap();
        assert!(out.warnings.iter().any(|w| w.contains("DETACHED")));
        assert!(out.warnings.iter().any(|w| w.contains("cascade")));
    }
}
