//! APOC trigger statement parsing and execution.
//!
//! An APOC trigger statement is a Cypher query that may end in the
//! conditional-execution procedure the paper's translation scheme relies on
//! (Figure 2):
//!
//! ```text
//! UNWIND $createdNodes AS cNodes
//! <condition_query…>
//! CALL apoc.do.when(<cond>, '<then>', '<else>', {<args>})
//! YIELD value RETURN *
//! ```
//!
//! We parse the prefix with `pg-cypher`, and `apoc.do.when` into its four
//! arguments (condition expression, then/else query strings, argument map).

use pg_cypher::lexer::lex;
use pg_cypher::token::TokenKind;
use pg_cypher::{
    parse_expression, parse_query_lenient, run_ast, CypherError, Expr, Params, Query, Row,
};
use pg_graph::Graph;

/// A parsed APOC trigger statement.
#[derive(Debug, Clone, PartialEq)]
pub struct ApocStatement {
    /// Clauses before the `CALL` (usually `UNWIND $…` + condition query).
    pub prefix: Query,
    /// The conditional tail, when present.
    pub do_when: Option<DoWhen>,
}

/// `apoc.do.when(cond, then, else, args)`.
#[derive(Debug, Clone, PartialEq)]
pub struct DoWhen {
    pub cond: Expr,
    pub then_query: Query,
    pub else_query: Query,
    /// Fourth parameter: the operands available inside then/else.
    pub args: Vec<(String, Expr)>,
}

/// Parse an APOC trigger statement.
pub fn parse_apoc_statement(src: &str) -> Result<ApocStatement, CypherError> {
    let tokens = lex(src)?;
    // Find top-level `CALL` (an identifier in our token set).
    let mut call_idx = None;
    let mut depth = 0i32;
    for (i, t) in tokens.iter().enumerate() {
        match &t.kind {
            TokenKind::LParen | TokenKind::LBrace | TokenKind::LBracket => depth += 1,
            TokenKind::RParen | TokenKind::RBrace | TokenKind::RBracket => depth -= 1,
            TokenKind::Ident(s) if depth == 0 && s.eq_ignore_ascii_case("call") => {
                call_idx = Some(i);
                break;
            }
            _ => {}
        }
    }
    let Some(ci) = call_idx else {
        return Ok(ApocStatement {
            prefix: parse_query_lenient(src)?,
            do_when: None,
        });
    };

    let prefix_src = &src[..tokens[ci].pos];
    let prefix = parse_query_lenient(prefix_src)?;

    // Expect `apoc . do . when (`
    let err = |msg: &str, pos: usize| CypherError::parse(pos, msg.to_string());
    let mut i = ci + 1;
    let expect_word = |i: &mut usize, w: &str| -> Result<(), CypherError> {
        match &tokens[*i].kind {
            TokenKind::Ident(s) if s.eq_ignore_ascii_case(w) => {
                *i += 1;
                Ok(())
            }
            TokenKind::When if w == "when" => {
                *i += 1;
                Ok(())
            }
            other => Err(err(
                &format!("expected '{w}', found {other}"),
                tokens[*i].pos,
            )),
        }
    };
    expect_word(&mut i, "apoc")?;
    if tokens[i].kind != TokenKind::Dot {
        return Err(err("expected '.'", tokens[i].pos));
    }
    i += 1;
    expect_word(&mut i, "do")?;
    if tokens[i].kind != TokenKind::Dot {
        return Err(err("expected '.'", tokens[i].pos));
    }
    i += 1;
    expect_word(&mut i, "when")?;
    if tokens[i].kind != TokenKind::LParen {
        return Err(err("expected '(' after apoc.do.when", tokens[i].pos));
    }
    let open = i;
    // Split the call arguments at top-level commas.
    let mut splits: Vec<usize> = Vec::new(); // token indices of commas
    let mut close = None;
    let mut depth = 0i32;
    for (j, t) in tokens.iter().enumerate().skip(open) {
        match &t.kind {
            TokenKind::LParen | TokenKind::LBrace | TokenKind::LBracket => depth += 1,
            TokenKind::RParen | TokenKind::RBrace | TokenKind::RBracket => {
                depth -= 1;
                if depth == 0 {
                    close = Some(j);
                    break;
                }
            }
            TokenKind::Comma if depth == 1 => splits.push(j),
            _ => {}
        }
    }
    let close = close.ok_or_else(|| err("unbalanced apoc.do.when call", tokens[open].pos))?;
    if splits.len() != 3 {
        return Err(err(
            &format!(
                "apoc.do.when expects 4 arguments, found {}",
                splits.len() + 1
            ),
            tokens[open].pos,
        ));
    }

    let arg_src =
        |from_tok: usize, to_tok: usize| -> &str { &src[tokens[from_tok].pos..tokens[to_tok].pos] };
    let cond = parse_expression(arg_src(open + 1, splits[0]).trim())?;

    let string_arg = |tok_idx: usize| -> Result<String, CypherError> {
        match &tokens[tok_idx].kind {
            TokenKind::Str(s) => Ok(s.clone()),
            other => Err(err(
                &format!("apoc.do.when then/else must be a string literal, found {other}"),
                tokens[tok_idx].pos,
            )),
        }
    };
    let then_src = string_arg(splits[0] + 1)?;
    let else_src = string_arg(splits[1] + 1)?;
    let then_query = parse_query_lenient(&then_src)?;
    let else_query = parse_query_lenient(&else_src)?;

    let args_expr = parse_expression(arg_src(splits[2] + 1, close).trim())?;
    let args = match args_expr {
        Expr::MapLit(entries) => entries,
        other => {
            return Err(err(
                &format!("apoc.do.when args must be a map literal, found {other:?}"),
                tokens[splits[2]].pos,
            ))
        }
    };

    // Tolerate a trailing `YIELD value RETURN *` (and variants).
    // Everything after the call's closing paren is ignored if it only
    // consists of YIELD/RETURN tokens.
    for t in tokens.iter().skip(close + 1) {
        match &t.kind {
            TokenKind::Eof | TokenKind::Semicolon => break,
            TokenKind::Ident(s)
                if s.eq_ignore_ascii_case("yield") || s.eq_ignore_ascii_case("value") => {}
            TokenKind::Return | TokenKind::Star => {}
            TokenKind::Ident(_) | TokenKind::Comma | TokenKind::LParen | TokenKind::RParen => {}
            other => {
                return Err(err(
                    &format!("unexpected token after apoc.do.when: {other}"),
                    t.pos,
                ))
            }
        }
    }

    Ok(ApocStatement {
        prefix,
        do_when: Some(DoWhen {
            cond,
            then_query,
            else_query,
            args,
        }),
    })
}

/// Execute an APOC statement against the graph with the given transition
/// parameters. Returns the number of rows for which the `then` branch ran.
pub fn execute_apoc_statement(
    graph: &mut Graph,
    stmt: &ApocStatement,
    params: &Params,
    now_ms: i64,
) -> Result<u64, CypherError> {
    let out = run_ast(graph, &stmt.prefix, Vec::new(), params, now_ms)?;
    let rows = out.bindings;
    let Some(dw) = &stmt.do_when else {
        return Ok(rows.len() as u64);
    };
    let mut then_count = 0u64;
    for row in rows {
        // Evaluate the condition and the argument map against the row. The
        // operands are visible to the inner queries both as plain variables
        // and as `$`-parameters (APOC passes them as query parameters).
        let (cond_val, seed, inner_params) = {
            let ctx = pg_cypher::expr::EvalCtx::new(graph, params, now_ms);
            let cond_val = pg_cypher::expr::eval(&ctx, &row, &dw.cond)?;
            let mut seed = Row::new();
            let mut inner_params = params.clone();
            for (name, e) in &dw.args {
                let v = pg_cypher::expr::eval(&ctx, &row, e)?;
                seed.set(name.clone(), v.clone());
                inner_params.insert(name.clone(), v);
            }
            (cond_val, seed, inner_params)
        };
        if cond_val.is_truthy() {
            run_ast(graph, &dw.then_query, vec![seed], &inner_params, now_ms)?;
            then_count += 1;
        } else {
            run_ast(graph, &dw.else_query, vec![seed], &inner_params, now_ms)?;
        }
    }
    Ok(then_count)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pg_cypher::run_query;
    use pg_graph::{GraphView, Value};

    /// The paper's Figure 2 shape, lightly concretized.
    const FIG2: &str = "
        UNWIND $createdNodes AS cNodes
        CALL apoc.do.when(cNodes:Mutation AND EXISTS (cNodes)-[:Risk]-(:CriticalEffect),
          'CREATE (:Alert{desc: \\'New critical mutation\\', mutation: cNodes.name})',
          '',
          {cNodes: cNodes})
        YIELD value RETURN *";

    #[test]
    fn parse_figure_2_statement() {
        let stmt = parse_apoc_statement(FIG2).unwrap();
        assert_eq!(stmt.prefix.clauses.len(), 1);
        let dw = stmt.do_when.unwrap();
        assert_eq!(dw.args.len(), 1);
        assert!(dw.else_query.clauses.is_empty());
        assert_eq!(dw.then_query.clauses.len(), 1);
    }

    #[test]
    fn plain_statement_without_call() {
        let stmt = parse_apoc_statement("UNWIND $createdNodes AS n SET n.seen = true").unwrap();
        assert!(stmt.do_when.is_none());
        assert_eq!(stmt.prefix.clauses.len(), 2);
    }

    #[test]
    fn execute_figure_2_fires_on_matching_node() {
        let mut g = Graph::new();
        run_query(
            &mut g,
            "CREATE (m:Mutation {name: 'D614G'})-[:Risk]->(:CriticalEffect), (:Mutation {name: 'benign'})",
            &Params::new(),
            0,
        )
        .unwrap();
        let created: Vec<Value> = g
            .nodes_with_label("Mutation")
            .into_iter()
            .map(Value::Node)
            .collect();
        let mut params = Params::new();
        params.insert("createdNodes".into(), Value::List(created));
        let stmt = parse_apoc_statement(FIG2).unwrap();
        let fired = execute_apoc_statement(&mut g, &stmt, &params, 0).unwrap();
        assert_eq!(fired, 1);
        let alerts = run_query(
            &mut g,
            "MATCH (a:Alert) RETURN a.mutation AS m",
            &Params::new(),
            0,
        )
        .unwrap();
        assert_eq!(alerts.rows, vec![vec![Value::str("D614G")]]);
    }

    #[test]
    fn parse_errors() {
        assert!(parse_apoc_statement("CALL apoc.do.when(1, 2)").is_err());
        assert!(parse_apoc_statement("CALL apoc.do.when(true, notastring, '', {})").is_err());
        assert!(parse_apoc_statement("CALL apoc.do.if(true, '', '', {})").is_err());
    }

    #[test]
    fn else_branch_runs_when_false() {
        let mut g = Graph::new();
        let stmt = parse_apoc_statement(
            "UNWIND [1] AS x CALL apoc.do.when(x > 5, 'CREATE (:ThenBranch)', 'CREATE (:ElseBranch)', {x: x}) YIELD value RETURN *",
        )
        .unwrap();
        let fired = execute_apoc_statement(&mut g, &stmt, &Params::new(), 0).unwrap();
        assert_eq!(fired, 0);
        assert_eq!(g.nodes_with_label("ElseBranch").len(), 1);
        assert!(g.nodes_with_label("ThenBranch").is_empty());
    }
}
