//! The paper's §6.3 hand-written APOC translations, as executable
//! artifacts.
//!
//! §6.3 presents four manual translations of the §6.2 triggers. They are
//! reproduced here with the *minimal* edits needed to execute (quoting
//! fixes the paper itself would need on real APOC: a missing closing brace
//! in `MoveToNearHospital`'s region pattern, `IcuBeds` vs `icuBeds` casing,
//! and string-literal escaping). Two observations the tests document:
//!
//! * `WhoDesignationChange` is faithful: it reproduces the native trigger's
//!   behaviour exactly.
//! * `IcuPatientIncrease` (verbatim) groups `COUNT(cNodes)`/`COUNT(p)` by
//!   the `cNodes` pass-through, so both counts equal the per-group row
//!   count and the ratio is always 1 — the trigger fires whenever *any*
//!   ICU patient exists at Sacco. The paper's translation scheme is
//!   intricate exactly as §5.1 warns; our machine translation
//!   ([`mod@crate::translate`]) preserves the intended semantics instead.
//!
//! The §6.3 prototypes model the type hierarchy with explicit `Isa`
//! relationships ("type hierarchies are not supported in Neo4j"), so the
//! test fixtures here do the same.

/// §6.3 — WhoDesignationChange (adapted: string escaping only).
pub const WHO_DESIGNATION_CHANGE_63: &str = r#"
UNWIND keys($assignedNodeProperties) AS k
UNWIND $assignedNodeProperties[k] AS aProp
WITH aProp.node AS node, collect(aProp.key) AS propList,
     aProp.old AS oldValue, aProp.new AS newValue
CALL apoc.do.when(
  node:Lineage AND 'whoDesignation' IN propList
    AND oldValue <> newValue,
  'CREATE (:Alert{time: DATETIME(),
     desc: "New Designation for an existing Lineage"})',
  '', {})
YIELD value RETURN *"#;

/// §6.3 — IcuPatientIncrease (adapted: casing; semantics verbatim,
/// including its grouping quirk — see module docs).
pub const ICU_PATIENT_INCREASE_63: &str = r#"
UNWIND $createdNodes AS cNodes
MATCH (p:IcuPatient)-[:Isa]-(:HospitalizedPatient)
  -[:TreatedAt]-(h:Hospital{name:'Sacco'})
WITH COUNT(cNodes) AS NewIcuPat,
     COUNT(p) AS TotalIcuPat, cNodes
CALL apoc.do.when(
  cNodes:IcuPatient AND NewIcuPat * 1.0 / TotalIcuPat > 0.1,
  'MERGE (:Alert{desc: "ICU patients at Sacco Hospital have increased more than 10%"})',
  '', {} )
YIELD value RETURN *"#;

/// §6.3 — IcuPatientMove (adapted: `icuBeds` casing, escaping).
pub const ICU_PATIENT_MOVE_63: &str = r#"
UNWIND $createdNodes AS cNodes
MATCH (:IcuPatient)-[:Isa]-(p:HospitalizedPatient)-
  [:TreatedAt]-(h:Hospital{name:'Sacco'})
WITH COUNT(p) AS TotalIcuPat,
     h.icuBeds AS TotalBeds,
     cNodes
CALL apoc.do.when(
  cNodes:IcuPatient AND TotalIcuPat > TotalBeds,
  'MATCH (pt:IcuPatient)-[:Isa]-(:HospitalizedPatient)
     -[:TreatedAt]-(ht:Hospital{name:$Meyer})
   WITH COUNT(pt) AS MeyerICU, ht.icuBeds AS MeyerBeds,
        COUNT(cNodes) AS newICUSacco, ht, cNodes
   WHERE newICUSacco + MeyerICU <= MeyerBeds
   MATCH (cNodes)-[:Isa]-(:HospitalizedPatient)
     -[c:TreatedAt]-(:Hospital{name:$Sacco})
   FOREACH (p IN [cNodes] | DELETE c)
   FOREACH (p IN [cNodes] | CREATE (p)-[:TreatedAt]->(ht))',
  '', {cNodes: cNodes, Meyer: 'Meyer', Sacco: 'Sacco'})
YIELD value RETURN count(*)"#;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::system::ApocDb;
    use pg_graph::Value;

    fn count(db: &mut ApocDb, label: &str) -> i64 {
        db.query(&format!("MATCH (n:{label}) RETURN count(*) AS n"))
            .unwrap()
            .single()
            .and_then(|v| v.as_i64())
            .unwrap()
    }

    #[test]
    fn who_designation_change_63_is_faithful() {
        let mut db = ApocDb::new();
        db.install(
            "neo4j",
            "WhoDesignationChange",
            WHO_DESIGNATION_CHANGE_63,
            "afterAsync",
        )
        .unwrap();
        db.run_tx(&["CREATE (:Lineage {name: 'B.1.617.2', whoDesignation: 'Indian'})"])
            .unwrap();
        // the creation itself assigns whoDesignation with old = null →
        // null <> 'Indian' is NULL → no alert (3-valued logic)
        assert_eq!(count(&mut db, "Alert"), 0);
        db.run_tx(&["MATCH (l:Lineage) SET l.whoDesignation = 'Delta'"])
            .unwrap();
        assert_eq!(count(&mut db, "Alert"), 1);
        // same-value set: no event at all (delta normalization)
        db.run_tx(&["MATCH (l:Lineage) SET l.whoDesignation = 'Delta'"])
            .unwrap();
        assert_eq!(count(&mut db, "Alert"), 1);
        let out = db.query("MATCH (a:Alert) RETURN a.desc AS d").unwrap();
        assert_eq!(
            out.rows,
            vec![vec![Value::str("New Designation for an existing Lineage")]]
        );
    }

    /// Build the §6.3-style Isa-modelled hospital fixture: `n` ICU patients
    /// at Sacco, each an `IcuPatient` node Isa-linked to a
    /// `HospitalizedPatient` node treated at Sacco.
    fn admit_isa_patients(db: &mut ApocDb, n: usize, offset: usize) {
        for i in 0..n {
            let k = offset + i;
            db.run_tx(&[&format!(
                "MATCH (h:Hospital {{name: 'Sacco'}})
                 CREATE (icu:IcuPatient {{id: {k}}})-[:Isa]->
                        (:HospitalizedPatient {{id: {k}}})-[:TreatedAt]->(h)"
            )])
            .unwrap();
        }
    }

    #[test]
    fn icu_patient_increase_63_fires_whenever_icu_nonempty() {
        // Documents the verbatim translation's grouping quirk: because
        // cNodes is a pass-through group key, NewIcuPat == TotalIcuPat per
        // group and the ratio is always 1 → the alert appears on every
        // admission once any ICU patient is treated at Sacco. (The machine
        // translation in crate::translate preserves the intended 10%
        // semantics; the native trigger too.)
        let mut db = ApocDb::new();
        db.install(
            "neo4j",
            "IcuPatientIncrease",
            ICU_PATIENT_INCREASE_63,
            "afterAsync",
        )
        .unwrap();
        db.run_tx(&["CREATE (:Hospital {name: 'Sacco', icuBeds: 100})"])
            .unwrap();
        admit_isa_patients(&mut db, 20, 0);
        // 21st admission adds < 10% of 20 — the intended semantics would be
        // silent, but the verbatim translation fires (ratio always 1):
        admit_isa_patients(&mut db, 1, 20);
        assert_eq!(
            count(&mut db, "Alert"),
            1,
            "verbatim §6.3 fires (MERGE dedups)"
        );
    }

    #[test]
    fn icu_patient_move_63_relocates_to_meyer() {
        let mut db = ApocDb::new();
        db.install("neo4j", "IcuPatientMove", ICU_PATIENT_MOVE_63, "afterAsync")
            .unwrap();
        db.run_tx(&[
            "CREATE (:Hospital {name: 'Sacco', icuBeds: 3})",
            "CREATE (:Hospital {name: 'Meyer', icuBeds: 10})",
        ])
        .unwrap();
        // The verbatim translation's inner `MATCH (pt:…)-[:TreatedAt]-(ht)`
        // yields zero rows when Meyer's ICU is empty, so the move silently
        // does nothing — a real quirk of §6.3's text (the native trigger in
        // pg-covid uses OPTIONAL MATCH instead). Pre-seed one Meyer patient
        // so the verbatim statement has rows to work with.
        db.run_tx(&["MATCH (h:Hospital {name: 'Meyer'})
             CREATE (:IcuPatient {id: 900})-[:Isa]->
                    (:HospitalizedPatient {id: 900})-[:TreatedAt]->(h)"])
            .unwrap();
        // four admissions at Sacco: the fourth overflows it (4 > 3); the
        // NEW patient moves to Meyer (per-creation UNWIND).
        admit_isa_patients(&mut db, 4, 0);
        // §6.3 creates the new TreatedAt from the IcuPatient node itself.
        let moved = db
            .query(
                "MATCH (i:IcuPatient)-[:TreatedAt]-(:Hospital {name: 'Meyer'})
                 RETURN count(DISTINCT i) AS n",
            )
            .unwrap()
            .single()
            .and_then(|v| v.as_i64())
            .unwrap();
        assert!(moved >= 1, "no §6.3 relocation happened");
        let still_at_sacco = db
            .query(
                "MATCH (:IcuPatient)-[:Isa]-(p:HospitalizedPatient)-[:TreatedAt]-(:Hospital {name: 'Sacco'})
                 RETURN count(DISTINCT p) AS n",
            )
            .unwrap()
            .single()
            .and_then(|v| v.as_i64())
            .unwrap();
        assert_eq!(still_at_sacco + moved, 4, "patients conserved");
    }

    #[test]
    fn all_63_translations_parse() {
        for (name, src) in [
            ("WhoDesignationChange", WHO_DESIGNATION_CHANGE_63),
            ("IcuPatientIncrease", ICU_PATIENT_INCREASE_63),
            ("IcuPatientMove", ICU_PATIENT_MOVE_63),
        ] {
            crate::statement::parse_apoc_statement(src).unwrap_or_else(|e| panic!("{name}: {e}"));
        }
    }
}
