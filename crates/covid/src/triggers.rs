//! The six PG-Triggers of the paper's §6.2, in executable form.
//!
//! The paper's listings are near-executable Cypher with a few informal
//! spots; the versions here are the faithful executable readings, with each
//! adaptation noted:
//!
//! * aggregate conditions use `COUNT(DISTINCT …)` where the paper writes
//!   `COUNT(…)` over multi-pattern matches (set semantics over a cross
//!   join — the paper's §6.3 APOC translations have the same intent);
//! * the ICU-increase ratio multiplies by `1.0` to force float division
//!   (`NewIcuPat / TotalIcuPat` would be integer division in Cypher);
//! * `IcuPatientMove` counts Meyer's ICU patients with `OPTIONAL MATCH` so
//!   an empty ICU reads as zero rather than failing the match;
//! * the paper's `THEN BEGIN … END` block punctuation is accepted verbatim
//!   by the lenient parser.

use pg_triggers::{InstallError, Session};

/// §6.2.1 — "reacts to the fact that a new mutation is associated with a
/// critical effect by creating an alert with the name of the mutation."
pub const NEW_CRITICAL_MUTATION: &str = "
CREATE TRIGGER NewCriticalMutation
AFTER CREATE
ON 'Mutation'
FOR EACH NODE
WHEN EXISTS (NEW)-[:Risk]-(:CriticalEffect)
BEGIN
  CREATE (:Alert{time:DATETIME(),
                 desc:'New critical mutation',
                 mutation:NEW.name})
END";

/// §6.2.1 — "reacts to the association of a critical mutation with a
/// lineage … and creates an alert for the lineage."
pub const NEW_CRITICAL_LINEAGE: &str = "
CREATE TRIGGER NewCriticalLineage
AFTER CREATE
ON 'BelongsTo'
FOR EACH RELATIONSHIP
WHEN
  MATCH (s:Sequence)-[NEW]-(l:Lineage)
  WHERE EXISTS {
    MATCH (:CriticalEffect)-[:Risk]-(:Mutation)-[:FoundIn]-(s)
  }
BEGIN
  CREATE (:Alert{time:DATETIME(),
                 desc:'New critical lineage',
                 lineage:l.name})
END";

/// §6.2.1 — "monitors a simple change in the whoDesignation property, e.g.
/// the change of Indian to Delta."
pub const WHO_DESIGNATION_CHANGE: &str = "
CREATE TRIGGER WhoDesignationChange
AFTER SET
ON 'Lineage'.'whoDesignation'
FOR EACH NODE
WHEN OLD.whoDesignation <> NEW.whoDesignation
BEGIN
  CREATE (:Alert{time: DATETIME(),
    desc:'New Designation for an existing Lineage'})
END";

/// §6.2.2 — "counts the patients who require intensive care at the Sacco
/// Hospital and raises an alert when their number exceeds 50 patients."
pub const ICU_PATIENTS_OVER_THRESHOLD: &str = "
CREATE TRIGGER IcuPatientsOverThreshold
AFTER CREATE
ON 'IcuPatient'
FOR ALL NODES
WHEN
  MATCH (p:HospitalizedPatient:IcuPatient)
    -[:TreatedAt]-(:Hospital{name:'Sacco'})
  WITH COUNT(DISTINCT p) AS icuPat
  WHERE icuPat > 50
BEGIN
  CREATE (:Alert{time:DATETIME(),desc:'ICU patients at Sacco Hospital are more than 50'})
END";

/// §6.2.2 — "raises an alert when the new patients in ICU are more than 10%
/// of the total of patients in ICU."
pub const ICU_PATIENT_INCREASE: &str = "
CREATE TRIGGER IcuPatientIncrease
AFTER CREATE
ON 'IcuPatient'
FOR ALL NODES
WHEN
  MATCH (p:HospitalizedPatient:IcuPatient)-
    [:TreatedAt]-(:Hospital{name: 'Sacco'}),
  MATCH (pn:NEWNODES)-[:TreatedAt]-(:Hospital{name:'Sacco'})
  WITH COUNT(DISTINCT pn) AS NewIcuPat,
       COUNT(DISTINCT p) AS TotalIcuPat
  WHERE NewIcuPat * 1.0 / TotalIcuPat > 0.1
BEGIN
  CREATE (:Alert{time:DATETIME(),desc:'ICU patients at Sacco Hospital have increased by > 10%'})
END";

/// §6.2.3 — "the relocation of patients from the Sacco Hospital … to the
/// Meyer Hospital … caused by the unavailability of ICU beds."
pub const ICU_PATIENT_MOVE: &str = "
CREATE TRIGGER IcuPatientMove
AFTER CREATE
ON 'IcuPatient'
FOR ALL NODES
WHEN
  MATCH (p:HospitalizedPatient:IcuPatient)-[:TreatedAt]-
    (h:Hospital{name:'Sacco'})
  WITH COUNT(DISTINCT p) AS TotalIcuPat, h
  WHERE TotalIcuPat > h.icuBeds
BEGIN
  MATCH (ht:Hospital {name:'Meyer'})
  MATCH (pn:NEWNODES)-[:TreatedAt]-(:Hospital{name:'Sacco'})
  OPTIONAL MATCH (pt:HospitalizedPatient:IcuPatient)-[:TreatedAt]-(ht)
  WITH collect(DISTINCT pn) AS movers, COUNT(DISTINCT pt) AS MeyerICU, ht
  WHERE size(movers) + MeyerICU <= ht.icuBeds
  THEN FOREACH (p IN movers)
  BEGIN
    MATCH (p)-[c:TreatedAt]-(:Hospital{name:'Sacco'})
    DELETE c
    CREATE (p)-[:TreatedAt]->(ht)
  END
END";

/// §6.2.3 — "operates upon all hospitals in Lombardy where there are new
/// patients admitted to ICU, and moves newly admitted patients from those
/// hospitals where ICU beds are exceeded … to the closest hospital."
pub const MOVE_TO_NEAR_HOSPITAL: &str = "
CREATE TRIGGER MoveToNearHospital
AFTER CREATE
ON 'IcuPatient'
FOR EACH NODE
WHEN
  MATCH (NEW:HospitalizedPatient:IcuPatient)
    -[:TreatedAt]-(h:Hospital)
    -[:LocatedIn]-(:Region{name:'Lombardy'}),
  MATCH (p:IcuPatient)-[:TreatedAt]-(h)
  WITH COUNT(DISTINCT p) AS TotalIcuPat, h
  WHERE TotalIcuPat > h.icuBeds
BEGIN
  MATCH (pn:NEW)-[c:TreatedAt]-(h)-[ct:ConnectedTo]-(hc:Hospital)
  WITH ct, c, hc, pn ORDER BY ct.distance LIMIT 1
  THEN
  BEGIN
    DELETE c
    CREATE (pn)-[:TreatedAt]->(hc)
  END
END";

/// The six §6.2 triggers in paper order.
pub const PAPER_TRIGGERS: [&str; 7] = [
    NEW_CRITICAL_MUTATION,
    NEW_CRITICAL_LINEAGE,
    WHO_DESIGNATION_CHANGE,
    ICU_PATIENTS_OVER_THRESHOLD,
    ICU_PATIENT_INCREASE,
    ICU_PATIENT_MOVE,
    MOVE_TO_NEAR_HOSPITAL,
];

/// Install all §6.2 triggers into a session, returning their names.
pub fn install_paper_triggers(session: &mut Session) -> Result<Vec<String>, InstallError> {
    PAPER_TRIGGERS
        .iter()
        .map(|ddl| session.install(ddl))
        .collect()
}

/// The `(label, property)` pairs the §6.2 trigger conditions filter on
/// with equality predicates — `{name: 'Sacco'}`, `{name: 'Lombardy'}`,
/// sequence accessions, lineage names — plus the schema's PG-Keys
/// (`Patient.ssn`), whose key-based access is what condition matching over
/// a large patient population needs. Indexing them turns the
/// condition-matching hot path from label scans into index lookups.
pub const PAPER_INDEXES: [(&str, &str); 6] = [
    ("Hospital", "name"),
    ("Region", "name"),
    ("Lineage", "name"),
    ("Mutation", "name"),
    ("Patient", "ssn"),
    ("Sequence", "accession"),
];

/// The `(rel_type, property)` pairs the §6.2 triggers order or filter
/// relationships by — `ConnectedTo.distance` backs the §6.2.3
/// `MoveToNearHospital` body's `ORDER BY ct.distance LIMIT 1`, which the
/// executor serves as an index-backed top-k walk once this index exists.
pub const PAPER_REL_INDEXES: [(&str, &str); 1] = [("ConnectedTo", "distance")];

/// The `(label, columns)` composite indexes behind §6's *conjunctive*
/// condition shapes — `(p:Patient {status: 'icu'}) WHERE p.severity >= t`
/// is one O(log n + k) walk of `(Patient, [status, severity])`, and the
/// same index serves `{status: 'icu'} … ORDER BY p.severity LIMIT k` as
/// an equality-prefix-pinned ordered walk.
pub const PAPER_COMPOSITE_INDEXES: [(&str, &[&str]); 1] = [("Patient", &["status", "severity"])];

/// Create the property indexes backing the §6.2 trigger predicates
/// (idempotent: already-existing indexes are left alone).
pub fn install_paper_indexes(session: &mut Session) {
    for (label, key) in PAPER_INDEXES {
        // ignore "already exists" — the covid schema may have created some
        let _ = session.graph_mut().create_index(label, key);
    }
    for (rel_type, key) in PAPER_REL_INDEXES {
        let _ = session.graph_mut().create_rel_index(rel_type, key);
    }
    for (label, columns) in PAPER_COMPOSITE_INDEXES {
        let columns: Vec<String> = columns.iter().map(|c| c.to_string()).collect();
        let _ = session.graph_mut().create_composite_index(label, &columns);
    }
    // indexes created after a bulk load start with fresh statistics
    session.graph_mut().rebuild_stats();
}

#[cfg(test)]
mod tests {
    use super::*;
    use pg_triggers::{parse_trigger_ddl, DdlStatement};

    #[test]
    fn all_paper_triggers_parse() {
        for ddl in PAPER_TRIGGERS {
            match parse_trigger_ddl(ddl) {
                Ok(DdlStatement::CreateTrigger(spec)) => {
                    assert!(!spec.name.is_empty());
                }
                other => panic!("{ddl}\nfailed: {other:?}"),
            }
        }
    }

    #[test]
    fn paper_triggers_regenerate_and_reinstall() {
        // Every §6.2 trigger must survive to_ddl → parse → install.
        for ddl in PAPER_TRIGGERS {
            let spec = match parse_trigger_ddl(ddl).unwrap() {
                DdlStatement::CreateTrigger(s) => s,
                _ => panic!(),
            };
            let regenerated = spec.to_ddl();
            let mut s = Session::new();
            s.install(&regenerated)
                .unwrap_or_else(|e| panic!("{}\n{e}", regenerated));
        }
    }

    #[test]
    fn install_all_into_session() {
        let mut s = Session::new();
        let names = install_paper_triggers(&mut s).unwrap();
        assert_eq!(names.len(), 7);
        assert_eq!(s.catalog().len(), 7);
        assert_eq!(names[0], "NewCriticalMutation");
        assert_eq!(names[6], "MoveToNearHospital");
    }
}
