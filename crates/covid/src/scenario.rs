//! The COVID-19 reactive scenario driver (paper §6).
//!
//! Drives the events the paper's triggers monitor — critical-mutation
//! discovery, lineage assignment, WHO redesignation, and ICU admission
//! waves — through a PG-Trigger [`Session`] so the §6.2 triggers fire, and
//! reports the resulting alerts and patient relocations.

use crate::generator::{generate, CovidDataset, GeneratorConfig};
use crate::triggers::install_paper_triggers;
use pg_graph::Value;
use pg_triggers::{Session, TriggerError};
use std::collections::BTreeMap;

/// Scenario knobs.
#[derive(Debug, Clone)]
pub struct ScenarioConfig {
    pub generator: GeneratorConfig,
    /// Number of admission waves.
    pub waves: usize,
    /// ICU admissions per wave.
    pub admissions_per_wave: usize,
    /// Critical mutations discovered during the scenario.
    pub discoveries: usize,
    /// Lineage redesignations during the scenario.
    pub redesignations: usize,
    /// Create the property indexes behind the paper triggers' equality
    /// predicates ([`crate::triggers::PAPER_INDEXES`]) before the run.
    pub indexed: bool,
}

impl Default for ScenarioConfig {
    fn default() -> Self {
        ScenarioConfig {
            generator: GeneratorConfig::default(),
            waves: 4,
            admissions_per_wave: 8,
            discoveries: 3,
            redesignations: 2,
            indexed: false,
        }
    }
}

/// What happened.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ScenarioReport {
    /// Alert description → count.
    pub alerts: BTreeMap<String, u64>,
    /// Patients no longer treated where they were admitted.
    pub relocated_patients: u64,
    /// Total ICU admissions performed.
    pub admissions: u64,
    /// Trigger firings observed by the engine.
    pub triggers_fired: u64,
}

impl ScenarioReport {
    pub fn total_alerts(&self) -> u64 {
        self.alerts.values().sum()
    }
}

/// A fully prepared scenario: session with data and triggers installed.
pub struct Scenario {
    pub session: Session,
    pub dataset: CovidDataset,
    cfg: ScenarioConfig,
    admission_counter: usize,
}

impl Scenario {
    /// Build the baseline dataset (bulk-loaded, trigger-silent) and install
    /// the §6.2 triggers.
    pub fn new(cfg: ScenarioConfig) -> Scenario {
        let mut session = Session::new();
        let dataset = generate(session.graph_mut(), &cfg.generator);
        if cfg.indexed {
            crate::triggers::install_paper_indexes(&mut session);
        }
        install_paper_triggers(&mut session).expect("paper triggers install");
        Scenario {
            session,
            dataset,
            cfg,
            admission_counter: 0,
        }
    }

    /// Build the scenario on a **durable** session rooted at `dir`.
    ///
    /// The baseline dataset is bulk-loaded outside any transaction, so the
    /// generator's writes bypass the WAL entirely; the checkpoint taken
    /// right after (and after the paper indexes, when enabled, so their
    /// definitions land in the snapshot) is what makes the baseline
    /// durable. Every subsequent scenario event commits through the WAL
    /// and survives a crash.
    pub fn new_durable(
        cfg: ScenarioConfig,
        dir: &std::path::Path,
        wal: pg_triggers::WalOptions,
    ) -> Result<Scenario, pg_triggers::RecoveryError> {
        let (mut session, _) =
            Session::open_durable(dir, pg_triggers::EngineConfig::default(), wal)?;
        let dataset = generate(session.graph_mut(), &cfg.generator);
        if cfg.indexed {
            crate::triggers::install_paper_indexes(&mut session);
        }
        session
            .checkpoint()
            .map_err(pg_triggers::RecoveryError::from)?;
        install_paper_triggers(&mut session).expect("paper triggers install");
        Ok(Scenario {
            session,
            dataset,
            cfg,
            admission_counter: 0,
        })
    }

    /// Discover a new mutation; when `critical`, it is linked to a critical
    /// effect in the same statement (fires `NewCriticalMutation`).
    pub fn discover_mutation(&mut self, idx: usize, critical: bool) -> Result<(), TriggerError> {
        let name = format!("Spike:X{idx}Z");
        if critical {
            self.session.run(&format!(
                "MATCH (e:CriticalEffect) WITH e LIMIT 1 \
                 CREATE (:Mutation {{name: '{name}', protein: 'Spike'}})-[:Risk]->(e)"
            ))?;
        } else {
            self.session.run(&format!(
                "CREATE (:Mutation {{name: '{name}', protein: 'Spike'}})"
            ))?;
        }
        Ok(())
    }

    /// Attach a fresh sequence carrying a critical mutation to a lineage
    /// (fires `NewCriticalLineage`).
    pub fn assign_critical_sequence(&mut self, idx: usize) -> Result<(), TriggerError> {
        self.session.run(&format!(
            "CREATE (:Sequence {{accession: 'SCN{idx:04}', collection: date()}})"
        ))?;
        self.session.run(&format!(
            "MATCH (s:Sequence {{accession: 'SCN{idx:04}'}}) \
             MATCH (m:Mutation)-[:Risk]-(:CriticalEffect) WITH s, m LIMIT 1 \
             CREATE (m)-[:FoundIn]->(s)"
        ))?;
        self.session.run(&format!(
            "MATCH (s:Sequence {{accession: 'SCN{idx:04}'}}), (l:Lineage) \
             WITH s, l LIMIT 1 CREATE (s)-[:BelongsTo]->(l)"
        ))?;
        Ok(())
    }

    /// Change a lineage's WHO designation (fires `WhoDesignationChange`).
    pub fn redesignate(&mut self, to: &str) -> Result<(), TriggerError> {
        self.session.run(&format!(
            "MATCH (l:Lineage) WHERE l.whoDesignation IS NOT NULL \
             WITH l LIMIT 1 SET l.whoDesignation = '{to}'"
        ))?;
        Ok(())
    }

    /// Admit `n` new ICU patients to the named hospital in one statement
    /// (fires the ICU triggers; may relocate patients).
    pub fn admission_wave(&mut self, hospital: &str, n: usize) -> Result<(), TriggerError> {
        if n == 0 {
            return Ok(());
        }
        let mut q = format!("MATCH (h:Hospital {{name: '{hospital}'}}) CREATE ");
        let patterns: Vec<String> = (0..n)
            .map(|i| {
                let k = self.admission_counter + i;
                format!(
                    "(:Patient:HospitalizedPatient:IcuPatient {{\
                     ssn: 'ADM{k:08}', name: 'Admitted {k}', sex: 'F', \
                     id: {k}, prognosis: 'severe', admittedToICU: true, \
                     admission: date()}})-[:TreatedAt]->(h)"
                )
            })
            .collect();
        q.push_str(&patterns.join(", "));
        self.admission_counter += n;
        self.session.run(&q)?;
        Ok(())
    }

    /// Run the whole configured scenario.
    pub fn run(&mut self) -> Result<ScenarioReport, TriggerError> {
        let cfg = self.cfg.clone();
        for i in 0..cfg.discoveries {
            self.discover_mutation(i, true)?;
            self.assign_critical_sequence(i)?;
        }
        const WHO: [&str; 4] = ["Delta", "Omicron", "Kappa", "Eta"];
        for i in 0..cfg.redesignations {
            self.redesignate(WHO[i % WHO.len()])?;
        }
        for w in 0..cfg.waves {
            // Alternate waves between Sacco and another Lombardy hospital.
            let target = if w % 2 == 0 { "Sacco" } else { "Hospital-0-1" };
            self.admission_wave(target, cfg.admissions_per_wave)?;
        }
        self.report()
    }

    /// Summarize the observable outcomes.
    pub fn report(&mut self) -> Result<ScenarioReport, TriggerError> {
        let mut report = ScenarioReport {
            admissions: self.admission_counter as u64,
            triggers_fired: self.session.stats().fired,
            ..ScenarioReport::default()
        };
        let out = self
            .session
            .run("MATCH (a:Alert) RETURN a.desc AS d, count(*) AS n")?;
        for row in &out.rows {
            if let (Value::Str(d), Value::Int(n)) = (&row[0], &row[1]) {
                report.alerts.insert(d.clone(), *n as u64);
            }
        }
        let out = self.session.run(
            "MATCH (p:IcuPatient)-[:TreatedAt]-(h:Hospital) \
             WHERE p.ssn STARTS WITH 'ADM' AND NOT (h.name = 'Sacco' OR h.name = 'Hospital-0-1') \
             RETURN count(DISTINCT p) AS n",
        )?;
        report.relocated_patients = out.single().and_then(|v| v.as_i64()).unwrap_or(0) as u64;
        Ok(report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_cfg() -> ScenarioConfig {
        ScenarioConfig {
            generator: GeneratorConfig {
                regions: 2,
                hospitals_per_region: 2,
                icu_beds_per_hospital: 10,
                labs_per_region: 1,
                mutations: 10,
                critical_fraction: 0.3,
                effects: 3,
                lineages: 4,
                designated_fraction: 0.8,
                sequences: 20,
                max_mutations_per_sequence: 2,
                patients: 20,
                seed: 1,
            },
            waves: 3,
            admissions_per_wave: 6,
            discoveries: 2,
            redesignations: 1,
            indexed: false,
        }
    }

    #[test]
    fn scenario_produces_alerts() {
        let mut sc = Scenario::new(small_cfg());
        let report = sc.run().unwrap();
        assert!(
            report.alerts.contains_key("New critical mutation"),
            "{report:?}"
        );
        assert!(
            report.alerts.contains_key("New critical lineage"),
            "{report:?}"
        );
        assert!(
            report
                .alerts
                .contains_key("New Designation for an existing Lineage"),
            "{report:?}"
        );
        assert_eq!(report.admissions, 18);
        assert!(report.triggers_fired >= report.total_alerts());
    }

    #[test]
    fn indexed_scenario_reports_identically() {
        // The candidate planner must be invisible to trigger semantics:
        // the same seeded scenario produces the same report with and
        // without the paper indexes.
        let baseline = Scenario::new(small_cfg()).run().unwrap();
        let mut cfg = small_cfg();
        cfg.indexed = true;
        let mut sc = Scenario::new(cfg);
        assert!(!sc.session.indexes().is_empty());
        let indexed = sc.run().unwrap();
        assert_eq!(baseline, indexed);
    }

    #[test]
    fn overflow_wave_relocates_patients() {
        // Sacco has 10 beds; a 14-patient wave overflows it and the new
        // arrivals relocate (IcuPatientMove → Meyer, or MoveToNearHospital).
        let mut cfg = small_cfg();
        cfg.waves = 0;
        let mut sc = Scenario::new(cfg);
        sc.admission_wave("Sacco", 14).unwrap();
        let report = sc.report().unwrap();
        let at_sacco = sc
            .session
            .run(
                "MATCH (p:IcuPatient)-[:TreatedAt]-(:Hospital {name: 'Sacco'}) \
                 RETURN count(DISTINCT p) AS n",
            )
            .unwrap()
            .single()
            .and_then(|v| v.as_i64())
            .unwrap();
        assert!(at_sacco <= 14, "sacco load: {at_sacco}");
        // someone moved somewhere (Meyer via IcuPatientMove, or the nearest
        // hospital via MoveToNearHospital)
        let moved = sc
            .session
            .run(
                "MATCH (p:IcuPatient)-[:TreatedAt]-(h:Hospital) \
                 WHERE h.name <> 'Sacco' RETURN count(DISTINCT p) AS n",
            )
            .unwrap()
            .single()
            .and_then(|v| v.as_i64())
            .unwrap();
        assert!(moved > 0, "no relocations: {report:?}");
    }

    #[test]
    fn relocation_trigger_served_by_indexed_topk() {
        // With the paper indexes installed (incl. ConnectedTo.distance),
        // the §6.2.3 MoveToNearHospital body's `ORDER BY ct.distance
        // LIMIT 1` is served from the ordered rel-index walk — observable
        // via the ordered-probe counter — and relocations still happen.
        let mut cfg = small_cfg();
        cfg.waves = 0;
        cfg.indexed = true;
        let mut sc = Scenario::new(cfg);
        sc.session.graph().reset_index_probes();
        sc.admission_wave("Sacco", 14).unwrap();
        let probes = sc.session.graph().index_probes();
        assert!(
            probes.ordered >= 1,
            "relocation should walk the ordered rel index: {probes:?}"
        );
        let moved = sc
            .session
            .run(
                "MATCH (p:IcuPatient)-[:TreatedAt]-(h:Hospital) \
                 WHERE h.name <> 'Sacco' RETURN count(DISTINCT p) AS n",
            )
            .unwrap()
            .single()
            .and_then(|v| v.as_i64())
            .unwrap();
        assert!(moved > 0, "no relocations through the indexed path");
    }

    #[test]
    fn composite_paper_index_serves_severity_conjunction_and_topk() {
        // The §6 conjunction shape over the generated population: with the
        // composite (Patient, [status, severity]) paper index the
        // conjunctive filter and the pinned `ORDER BY severity LIMIT k`
        // are index-served, and the answers match the unindexed twin
        // exactly.
        let conj = "MATCH (p:Patient {status: 'icu'}) WHERE p.severity >= 60 \
                    RETURN count(*) AS n";
        let topk = "MATCH (p:Patient {status: 'icu'}) \
                    WITH p ORDER BY p.severity DESC LIMIT 3 RETURN p.severity AS s";
        let mut plain = Scenario::new(small_cfg());
        let mut cfg = small_cfg();
        cfg.indexed = true;
        let mut indexed = Scenario::new(cfg);
        assert!(!indexed.session.composite_indexes().is_empty());
        let a = plain.session.run(conj).unwrap();
        indexed.session.graph().reset_index_probes();
        let b = indexed.session.run(conj).unwrap();
        assert_eq!(a.rows, b.rows, "conjunction diverged");
        assert!(
            indexed.session.graph().index_probes().counting >= 1,
            "conjunction should be planned through count probes"
        );
        let a = plain.session.run(topk).unwrap();
        indexed.session.graph().reset_index_probes();
        let b = indexed.session.run(topk).unwrap();
        assert_eq!(a.rows, b.rows, "pinned top-k diverged");
        assert!(
            indexed.session.graph().index_probes().ordered >= 1,
            "pinned top-k should walk the composite index"
        );
    }

    #[test]
    fn explain_surfaces_paper_query_plan() {
        // `EXPLAIN` through the session on a §6 query shape: the report
        // names the chosen access path, carries a join-output estimate
        // for the hop (degree statistics over the generated population),
        // and its actual-row count agrees with really running the query.
        let mut cfg = small_cfg();
        cfg.indexed = true;
        let mut sc = Scenario::new(cfg);
        let q = "MATCH (s:Sequence)-[:BelongsTo]->(l:Lineage) \
                 RETURN l.name AS l, count(s) AS n";
        let report = match sc.session.execute(&format!("EXPLAIN {q}")).unwrap() {
            pg_triggers::ExecResult::Explain(r) => r,
            other => panic!("expected Explain, got {other:?}"),
        };
        assert!(report.contains("Seed ("), "{report}");
        assert!(report.contains("Expand "), "{report}");
        assert!(report.contains("fanout="), "{report}");
        assert!(report.contains("estimated match rows:"), "{report}");
        let actual = sc.session.run(q).unwrap().rows.len();
        assert!(actual > 0, "fixture must produce rows");
        assert!(
            report.contains(&format!("actual rows: {actual}")),
            "{report}"
        );
    }

    #[test]
    fn batched_executor_agrees_on_scenario_graph() {
        // The batched executor must be invisible on the paper's data:
        // multi-seed pipelines over the generated population produce
        // row-for-row identical output under both match modes.
        use pg_cypher::{parse_query, Executor, MatchMode, Params, Target};
        let mut sc = Scenario::new(small_cfg());
        sc.run().unwrap();
        let params = Params::new();
        for q in [
            "MATCH (h:Hospital) MATCH (p:IcuPatient)-[:TreatedAt]->(h2:Hospital) \
             WHERE h2.name = h.name RETURN h.name AS h, count(p) AS n",
            "MATCH (m:Mutation) OPTIONAL MATCH (m)-[:FoundIn]->(s:Sequence) \
             RETURN count(s) AS n",
            "MATCH (l:Lineage) MATCH (s:Sequence)-[:BelongsTo]->(l) \
             RETURN l.name AS l, count(s) AS n",
        ] {
            let query = parse_query(q).unwrap();
            let g = sc.session.graph();
            let batched = Executor::new(Target::Read(g), &params, 0)
                .with_match_mode(MatchMode::Batched)
                .run(&query, Vec::new())
                .unwrap();
            let reference = Executor::new(Target::Read(g), &params, 0)
                .with_match_mode(MatchMode::Reference)
                .run(&query, Vec::new())
                .unwrap();
            assert!(!reference.rows.is_empty(), "vacuous panel query: {q}");
            assert_eq!(batched.rows, reference.rows, "{q}");
        }
    }

    #[test]
    fn icu_threshold_alert_at_51() {
        let mut cfg = small_cfg();
        cfg.generator.icu_beds_per_hospital = 100; // no relocations
        cfg.waves = 0;
        let mut sc = Scenario::new(cfg);
        sc.admission_wave("Sacco", 40).unwrap();
        let report = sc.report().unwrap();
        assert!(!report
            .alerts
            .contains_key("ICU patients at Sacco Hospital are more than 50"));
        sc.admission_wave("Sacco", 15).unwrap();
        let report = sc.report().unwrap();
        assert!(
            report
                .alerts
                .contains_key("ICU patients at Sacco Hospital are more than 50"),
            "{report:?}"
        );
    }
}
