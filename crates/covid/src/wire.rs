//! The §6 scenario as *wire-executable statements*: everything a remote
//! client needs to stand up the reactive COVID workload over a socket —
//! index DDL, the §6.2 trigger DDL, a compact seed graph — plus the
//! statement shapes concurrent clients drive against it.
//!
//! The in-process [`crate::Scenario`] bulk-loads through
//! [`pg_triggers::Session::graph_mut`]; a wire client has no such
//! backdoor, so here the whole setup is ordinary statements any
//! connection can `RUN`. The seed is deliberately small and *cascade-
//! prone*: Sacco's ICU holds only [`SACCO_ICU_BEDS`] beds, so a few
//! concurrent admissions push it over capacity and fire the §6.2.3
//! relocation triggers, while critical-mutation discoveries fire the
//! §6.2.1 alert trigger — each committing an atomic multi-effect epoch
//! that *other* clients' snapshot reads must observe all-or-nothing.

use crate::triggers::{PAPER_INDEXES, PAPER_REL_INDEXES, PAPER_TRIGGERS};

/// ICU capacity of the Sacco hospital in the wire seed — small, so
/// admission waves overflow it quickly and the relocation cascade fires.
pub const SACCO_ICU_BEDS: i64 = 3;

/// ICU capacity of the relocation targets (roomy, so moves succeed).
pub const TARGET_ICU_BEDS: i64 = 500;

/// Statements that stand up the full scenario on an empty server, in
/// execution order: indexes first (they then serve the trigger
/// conditions), the seed graph second, the §6.2 triggers last (so seeding
/// itself fires nothing).
pub fn setup_statements() -> Vec<String> {
    let mut stmts: Vec<String> = Vec::new();
    for (label, key) in PAPER_INDEXES {
        stmts.push(format!("CREATE INDEX ON :{label}({key})"));
    }
    for (rel_type, key) in PAPER_REL_INDEXES {
        stmts.push(format!("CREATE INDEX ON -[:{rel_type}({key})]-"));
    }
    stmts.extend(seed_statements());
    stmts.extend(PAPER_TRIGGERS.iter().map(|t| t.to_string()));
    stmts
}

/// The seed graph alone (region, hospitals with ICU capacities and
/// distances, one critical effect, a lineage, a sequence).
pub fn seed_statements() -> Vec<String> {
    let mut stmts = vec![
        "CREATE (:Region {name: 'Lombardy'})".to_string(),
        format!(
            "MATCH (r:Region {{name: 'Lombardy'}}) \
             CREATE (:Hospital {{name: 'Sacco', icuBeds: {SACCO_ICU_BEDS}}})-[:LocatedIn]->(r)"
        ),
        format!(
            "MATCH (r:Region {{name: 'Lombardy'}}) \
             CREATE (:Hospital {{name: 'Meyer', icuBeds: {TARGET_ICU_BEDS}}})-[:LocatedIn]->(r)"
        ),
        format!(
            "MATCH (r:Region {{name: 'Lombardy'}}) \
             CREATE (:Hospital {{name: 'Niguarda', icuBeds: {TARGET_ICU_BEDS}}})-[:LocatedIn]->(r)"
        ),
    ];
    // Niguarda is the closest neighbour, so §6.2.3 MoveToNearHospital
    // relocates Sacco's overflow there (distance 3 beats Meyer's 12).
    stmts.push(
        "MATCH (a:Hospital {name: 'Sacco'}), (b:Hospital {name: 'Meyer'}) \
         CREATE (a)-[:ConnectedTo {distance: 12}]->(b)"
            .to_string(),
    );
    stmts.push(
        "MATCH (a:Hospital {name: 'Sacco'}), (b:Hospital {name: 'Niguarda'}) \
         CREATE (a)-[:ConnectedTo {distance: 3}]->(b)"
            .to_string(),
    );
    stmts.push("CREATE (:CriticalEffect {name: 'SevereOutcome'})".to_string());
    stmts.push("CREATE (:Lineage {name: 'B.1.617.2', whoDesignation: 'Indian'})".to_string());
    stmts.push("CREATE (:Sequence {accession: 'SEQ-1'})".to_string());
    stmts
}

/// Discover a critical mutation tagged `tag`: links the new `Mutation` to
/// the seeded `CriticalEffect`, so §6.2.1 `NewCriticalMutation` fires in
/// the same transaction and creates an `Alert {mutation: 'M<tag>'}` —
/// the probe other clients watch for with [`cascade_alert_query`].
pub fn discover_critical_mutation(tag: u64) -> String {
    format!(
        "MATCH (e:CriticalEffect) WITH e LIMIT 1 \
         CREATE (:Mutation {{name: 'M{tag}', protein: 'Spike'}})-[:Risk]->(e)"
    )
}

/// Count the alert raised by [`discover_critical_mutation`]`(tag)` — 0
/// before the cascade's epoch is visible, 1 from then on. Mutation and
/// alert commit in one epoch, so no snapshot can see one without the
/// other.
pub fn cascade_alert_query(tag: u64) -> String {
    format!("MATCH (a:Alert {{mutation: 'M{tag}'}}) RETURN count(*) AS n")
}

/// Admit an ICU patient (ssn `P<tag>`) to a hospital. Admissions beyond
/// the hospital's `icuBeds` fire the §6.2.3 relocation triggers, whose
/// delete-old-edge/create-new-edge effects commit atomically with the
/// admission.
pub fn icu_admission(tag: u64, hospital: &str, severity: i64) -> String {
    format!(
        "MATCH (h:Hospital {{name: '{hospital}'}}) \
         CREATE (p:Patient:HospitalizedPatient:IcuPatient \
                 {{ssn: 'P{tag}', status: 'icu', severity: {severity}}})\
                -[:TreatedAt]->(h)"
    )
}

/// Every hospitalized patient must be treated *somewhere*, in every
/// snapshot: the relocation cascade deletes the old `TreatedAt` edge and
/// creates the new one in one epoch. Returns the number of patients
/// violating that (must always read 0).
pub const ORPHANED_PATIENTS_QUERY: &str = "\
MATCH (p:HospitalizedPatient) \
WHERE NOT EXISTS { MATCH (p)-[:TreatedAt]-(:Hospital) } \
RETURN count(*) AS orphans";

/// Patients treated at a given hospital right now.
pub fn treated_at_query(hospital: &str) -> String {
    format!(
        "MATCH (p:IcuPatient)-[:TreatedAt]-(h:Hospital {{name: '{hospital}'}}) \
         RETURN count(DISTINCT p) AS n"
    )
}

/// An indexed point read (Patient by ssn) for read-mix workloads.
pub fn patient_lookup(tag: u64) -> String {
    format!("MATCH (p:Patient {{ssn: 'P{tag}'}}) RETURN p.severity AS severity")
}

/// A redesignation write (fires §6.2.1 `WhoDesignationChange`).
pub fn redesignate_lineage(to: &str) -> String {
    format!("MATCH (l:Lineage {{name: 'B.1.617.2'}}) SET l.whoDesignation = '{to}'")
}

/// Total alerts of any kind (read-mix aggregate).
pub const ALERT_COUNT_QUERY: &str = "MATCH (a:Alert) RETURN count(*) AS n";

#[cfg(test)]
mod tests {
    use super::*;
    use pg_triggers::Session;

    /// The wire statements must stand up the scenario on a plain session
    /// (what the server does with them), and the cascade probes must
    /// behave as documented.
    #[test]
    fn setup_statements_execute_and_cascade() {
        let mut s = Session::new();
        for stmt in setup_statements() {
            s.execute(&stmt)
                .unwrap_or_else(|e| panic!("{stmt}\nfailed: {e}"));
        }
        // Seeding fired nothing (triggers installed last).
        assert_eq!(s.stats().fired, 0);

        // A tagged critical discovery raises exactly its alert, atomically.
        s.run(&discover_critical_mutation(7)).unwrap();
        assert_eq!(s.stats().fired, 1);
        let out = s.run(&cascade_alert_query(7)).unwrap();
        assert_eq!(out.single().and_then(|v| v.as_i64()), Some(1));

        // Overflow Sacco: beds + 2 admissions; the relocation triggers
        // move the overflow, and no patient is ever orphaned.
        let total = SACCO_ICU_BEDS + 2;
        for i in 0..total {
            s.run(&icu_admission(i as u64, "Sacco", 5)).unwrap();
        }
        let orphans = s.run(ORPHANED_PATIENTS_QUERY).unwrap();
        assert_eq!(orphans.single().and_then(|v| v.as_i64()), Some(0));
        let at_sacco = s.run(&treated_at_query("Sacco")).unwrap();
        assert!(
            at_sacco.single().and_then(|v| v.as_i64()).unwrap() <= SACCO_ICU_BEDS,
            "relocation cascade must keep Sacco at or under capacity"
        );
        let elsewhere: i64 = ["Meyer", "Niguarda"]
            .iter()
            .map(|h| {
                s.run(&treated_at_query(h))
                    .unwrap()
                    .single()
                    .and_then(|v| v.as_i64())
                    .unwrap()
            })
            .sum();
        assert_eq!(
            elsewhere + SACCO_ICU_BEDS,
            total,
            "every overflow admission relocated"
        );
    }
}
