//! # pg-covid — the CoV2K COVID-19 running example (paper §6)
//!
//! * [`schema`] — the PG-Schema of Figures 4–5 (node/edge types, the
//!   `Patient → HospitalizedPatient → IcuPatient` hierarchy, the OPEN
//!   `Alert` type);
//! * [`triggers`] — the six §6.2 PG-Triggers in executable form;
//! * [`generator`] — a seeded synthetic CoV2K dataset generator (the
//!   paper's real data derives from non-redistributable repositories; the
//!   generator preserves schema shape and configurable cardinalities);
//! * [`scenario`] — the reactive scenario driver: mutation discoveries,
//!   lineage events, and ICU admission waves with relocation.

pub mod generator;
pub mod scenario;
pub mod schema;
pub mod triggers;
pub mod wire;

pub use generator::{generate, CovidDataset, GeneratorConfig};
pub use scenario::{Scenario, ScenarioConfig, ScenarioReport};
pub use schema::{covid_graph_type, COVID_SCHEMA_DDL};
pub use triggers::{install_paper_indexes, install_paper_triggers, PAPER_INDEXES, PAPER_TRIGGERS};
