//! The CoV2K PG-Schema of the paper's running example (Figures 4–5).

use pg_schema::{parse_graph_type, GraphType};

/// The PG-Schema DDL of Figure 5 (as reconstructed from Figure 4's
/// diagram): node types with the `Patient → HospitalizedPatient →
/// IcuPatient` hierarchy, the `Alert` OPEN type used by the §6.2 triggers,
/// and every edge type of the diagram.
pub const COVID_SCHEMA_DDL: &str = "
CREATE GRAPH TYPE CovidGraphType STRICT {
  (MutationType: Mutation {name STRING, protein STRING}),
  (CriticalEffectType: CriticalEffect {description STRING}),
  (SequenceType: Sequence {accession STRING KEY, collection DATE}),
  (LineageType: Lineage {name STRING, OPTIONAL whoDesignation STRING}),
  (LaboratoryType: Laboratory {name STRING}),
  (RegionType: Region {name STRING}),
  (HospitalType: Hospital {name STRING, icuBeds INT32}),
  (PatientType: Patient {ssn STRING KEY, name STRING, sex STRING,
                         OPTIONAL comorbidity ARRAY[string],
                         OPTIONAL vaccinated INT32,
                         OPTIONAL status STRING, OPTIONAL severity INT32,
                         INDEX(status, severity)}),
  (HospitalizedPatientType: PatientType & HospitalizedPatient
                            {id INT32, prognosis STRING}),
  (IcuPatientType: HospitalizedPatientType & IcuPatient
                   {admittedToICU BOOL, OPTIONAL admission DATE}),
  (AlertType: Alert OPEN {time DATETIME, desc STRING}),

  (:MutationType)-[RiskType: Risk]->(:CriticalEffectType),
  (:MutationType)-[FoundInType: FoundIn]->(:SequenceType),
  (:SequenceType)-[BelongsToType: BelongsTo]->(:LineageType),
  (:SequenceType)-[SequencedAtType: SequencedAt]->(:LaboratoryType),
  (:LaboratoryType)-[LabLocatedInType: LocatedIn]->(:RegionType),
  (:HospitalType)-[HospLocatedInType: LocatedIn]->(:RegionType),
  (:PatientType)-[HasSampleType: HasSample]->(:SequenceType),
  (:HospitalizedPatientType)-[TreatedAtType: TreatedAt]->(:HospitalType),
  (:HospitalType)-[ConnectedToType: ConnectedTo {distance INT32}]->(:HospitalType)
}";

/// Parse and check the CoV2K graph type.
pub fn covid_graph_type() -> GraphType {
    parse_graph_type(COVID_SCHEMA_DDL).expect("the CoV2K schema is well-formed")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schema_parses_and_checks() {
        let gt = covid_graph_type();
        assert_eq!(gt.name, "CovidGraphType");
        assert!(gt.strict);
        assert_eq!(gt.node_types.len(), 11);
        assert_eq!(gt.edge_types.len(), 9);
    }

    #[test]
    fn hierarchy_accumulates_labels() {
        let gt = covid_graph_type();
        let labels = gt.full_labels("IcuPatientType");
        assert!(labels.contains("Patient"));
        assert!(labels.contains("HospitalizedPatient"));
        assert!(labels.contains("IcuPatient"));
        // and the keys are inherited from Patient
        assert_eq!(gt.key_props("IcuPatientType"), vec!["ssn"]);
    }

    #[test]
    fn patient_declares_the_composite_paper_index() {
        // §6's conjunction shape `{status: 'ICU'} WHERE severity >= t` is
        // backed by a composite INDEX(status, severity) declaration that
        // `set_schema` auto-creates.
        let gt = covid_graph_type();
        assert_eq!(
            gt.composite_indexed_props(),
            vec![(
                "Patient".to_string(),
                vec!["status".to_string(), "severity".to_string()]
            )]
        );
        let mut s = pg_triggers::Session::new();
        s.set_schema(gt);
        assert_eq!(
            s.composite_indexes(),
            vec![(
                "Patient".to_string(),
                vec!["status".to_string(), "severity".to_string()]
            )]
        );
    }

    #[test]
    fn alert_is_open() {
        let gt = covid_graph_type();
        assert!(gt.is_open("AlertType"));
        assert!(!gt.is_open("PatientType"));
    }
}
