//! Synthetic CoV2K data generator.
//!
//! The paper's running example is backed by the authors' CoV2K knowledge
//! base, which derives from non-redistributable sequence repositories.
//! We substitute a seeded synthetic generator over the same PG-Schema
//! (Figure 4): identical labels, properties, relationship types,
//! hierarchies, and configurable cardinalities/fan-outs, so every trigger
//! code path the paper exercises is preserved.

use pg_graph::{Graph, NodeId, PropertyMap, Value};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Generator knobs.
#[derive(Debug, Clone)]
pub struct GeneratorConfig {
    pub regions: usize,
    /// Hospitals per region (the first region is Lombardy and always hosts
    /// the paper's `Sacco`; the second is Tuscany with `Meyer`).
    pub hospitals_per_region: usize,
    pub icu_beds_per_hospital: i64,
    pub labs_per_region: usize,
    pub mutations: usize,
    /// Fraction of mutations linked to a critical effect via `Risk`.
    pub critical_fraction: f64,
    pub effects: usize,
    pub lineages: usize,
    /// Fraction of lineages with a `whoDesignation`.
    pub designated_fraction: f64,
    pub sequences: usize,
    /// Mutations found in each sequence (uniform 1..=max).
    pub max_mutations_per_sequence: usize,
    pub patients: usize,
    pub seed: u64,
}

impl Default for GeneratorConfig {
    fn default() -> Self {
        GeneratorConfig {
            regions: 3,
            hospitals_per_region: 4,
            icu_beds_per_hospital: 20,
            labs_per_region: 2,
            mutations: 40,
            critical_fraction: 0.2,
            effects: 8,
            lineages: 12,
            designated_fraction: 0.5,
            sequences: 200,
            max_mutations_per_sequence: 4,
            patients: 300,
            seed: 42,
        }
    }
}

/// Handles to the generated entities (for scenario drivers and tests).
#[derive(Debug, Clone, Default)]
pub struct CovidDataset {
    pub regions: Vec<NodeId>,
    pub hospitals: Vec<NodeId>,
    pub labs: Vec<NodeId>,
    pub mutations: Vec<NodeId>,
    pub effects: Vec<NodeId>,
    pub lineages: Vec<NodeId>,
    pub sequences: Vec<NodeId>,
    pub patients: Vec<NodeId>,
    /// Index of the `Sacco` hospital in `hospitals`.
    pub sacco: usize,
    /// Index of the `Meyer` hospital in `hospitals`.
    pub meyer: usize,
}

fn props(entries: Vec<(&str, Value)>) -> PropertyMap {
    entries
        .into_iter()
        .map(|(k, v)| (k.to_string(), v))
        .collect()
}

const EFFECT_DESCRIPTIONS: [&str; 8] = [
    "Enhanced infectivity",
    "Immune evasion",
    "Antiviral resistance",
    "Increased transmissibility",
    "Monoclonal antibody escape",
    "Vaccine efficacy reduction",
    "Enhanced replication",
    "Severity increase",
];

const PROTEINS: [&str; 6] = ["Spike", "N", "M", "E", "ORF1a", "ORF8"];
const AMINO: [char; 12] = ['A', 'C', 'D', 'E', 'F', 'G', 'K', 'L', 'N', 'R', 'S', 'Y'];

/// Generate the baseline CoV2K dataset directly into the graph (bulk load,
/// no trigger processing — the scenario driver later produces the
/// trigger-visible events through the session).
pub fn generate(graph: &mut Graph, cfg: &GeneratorConfig) -> CovidDataset {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut ds = CovidDataset::default();

    // Regions: Lombardy and Tuscany first (the paper's scenario), then
    // synthetic ones.
    let region_names: Vec<String> = (0..cfg.regions)
        .map(|i| match i {
            0 => "Lombardy".to_string(),
            1 => "Tuscany".to_string(),
            i => format!("Region{i}"),
        })
        .collect();
    for name in &region_names {
        let id = graph
            .create_node(["Region"], props(vec![("name", Value::str(name.clone()))]))
            .unwrap();
        ds.regions.push(id);
    }

    // Hospitals with ICU beds, located in their region, pairwise connected
    // with random distances (complete graph within a region + a few
    // inter-region links so relocation can always find a target).
    for (ri, &region) in ds.regions.iter().enumerate() {
        for hi in 0..cfg.hospitals_per_region {
            let name = match (ri, hi) {
                (0, 0) => "Sacco".to_string(),
                (1, 0) => "Meyer".to_string(),
                _ => format!("Hospital-{ri}-{hi}"),
            };
            let beds = cfg.icu_beds_per_hospital
                + rng.gen_range(-2..=2).max(1 - cfg.icu_beds_per_hospital);
            let id = graph
                .create_node(
                    ["Hospital"],
                    props(vec![
                        ("name", Value::str(name)),
                        ("icuBeds", Value::Int(beds)),
                    ]),
                )
                .unwrap();
            graph
                .create_rel(id, region, "LocatedIn", PropertyMap::new())
                .unwrap();
            if name_of(graph, id) == "Sacco" {
                ds.sacco = ds.hospitals.len();
            }
            if name_of(graph, id) == "Meyer" {
                ds.meyer = ds.hospitals.len();
            }
            ds.hospitals.push(id);
        }
    }
    // connectivity: ring over all hospitals + random chords
    let n = ds.hospitals.len();
    for i in 0..n {
        let j = (i + 1) % n;
        if i != j {
            let d = rng.gen_range(5..120);
            graph
                .create_rel(
                    ds.hospitals[i],
                    ds.hospitals[j],
                    "ConnectedTo",
                    props(vec![("distance", Value::Int(d))]),
                )
                .unwrap();
        }
    }
    for _ in 0..n {
        let i = rng.gen_range(0..n);
        let j = rng.gen_range(0..n);
        if i != j {
            let d = rng.gen_range(5..300);
            graph
                .create_rel(
                    ds.hospitals[i],
                    ds.hospitals[j],
                    "ConnectedTo",
                    props(vec![("distance", Value::Int(d))]),
                )
                .unwrap();
        }
    }

    // Laboratories.
    for (ri, &region) in ds.regions.iter().enumerate() {
        for li in 0..cfg.labs_per_region {
            let id = graph
                .create_node(
                    ["Laboratory"],
                    props(vec![("name", Value::str(format!("Lab-{ri}-{li}")))]),
                )
                .unwrap();
            graph
                .create_rel(id, region, "LocatedIn", PropertyMap::new())
                .unwrap();
            ds.labs.push(id);
        }
    }

    // Critical effects.
    for i in 0..cfg.effects {
        let id = graph
            .create_node(
                ["CriticalEffect"],
                props(vec![(
                    "description",
                    Value::str(EFFECT_DESCRIPTIONS[i % EFFECT_DESCRIPTIONS.len()]),
                )]),
            )
            .unwrap();
        ds.effects.push(id);
    }

    // Mutations; a fraction carries a Risk edge to a critical effect.
    for i in 0..cfg.mutations {
        let protein = PROTEINS[rng.gen_range(0..PROTEINS.len())];
        let name = format!(
            "{protein}:{}{}{}",
            AMINO[rng.gen_range(0..AMINO.len())],
            100 + i,
            AMINO[rng.gen_range(0..AMINO.len())]
        );
        let id = graph
            .create_node(
                ["Mutation"],
                props(vec![
                    ("name", Value::str(name)),
                    ("protein", Value::str(protein)),
                ]),
            )
            .unwrap();
        if rng.gen_bool(cfg.critical_fraction) && !ds.effects.is_empty() {
            let e = ds.effects[rng.gen_range(0..ds.effects.len())];
            graph.create_rel(id, e, "Risk", PropertyMap::new()).unwrap();
        }
        ds.mutations.push(id);
    }

    // Lineages.
    const WHO: [&str; 8] = [
        "Alpha", "Beta", "Gamma", "Delta", "Epsilon", "Lambda", "Mu", "Omicron",
    ];
    for i in 0..cfg.lineages {
        let mut entries = vec![("name", Value::str(format!("B.1.{i}")))];
        if rng.gen_bool(cfg.designated_fraction) {
            entries.push(("whoDesignation", Value::str(WHO[i % WHO.len()])));
        }
        let id = graph.create_node(["Lineage"], props(entries)).unwrap();
        ds.lineages.push(id);
    }

    // Sequences with mutations, lineage, lab.
    for i in 0..cfg.sequences {
        let id = graph
            .create_node(
                ["Sequence"],
                props(vec![
                    ("accession", Value::str(format!("SEQ{i:06}"))),
                    ("collection", Value::Date(18_600 + rng.gen_range(0..700))),
                ]),
            )
            .unwrap();
        let k = rng.gen_range(1..=cfg.max_mutations_per_sequence.max(1));
        for _ in 0..k {
            let m = ds.mutations[rng.gen_range(0..ds.mutations.len().max(1))];
            graph
                .create_rel(m, id, "FoundIn", PropertyMap::new())
                .unwrap();
        }
        if !ds.lineages.is_empty() {
            let l = ds.lineages[rng.gen_range(0..ds.lineages.len())];
            graph
                .create_rel(id, l, "BelongsTo", PropertyMap::new())
                .unwrap();
        }
        if !ds.labs.is_empty() {
            let lab = ds.labs[rng.gen_range(0..ds.labs.len())];
            graph
                .create_rel(id, lab, "SequencedAt", PropertyMap::new())
                .unwrap();
        }
        ds.sequences.push(id);
    }

    // Patients, some with samples. `status`/`severity` back the paper's
    // §6 conjunction shape (`{status: 'icu'} WHERE severity >= t`) served
    // by the composite (Patient, [status, severity]) index.
    const COMORBIDITIES: [&str; 5] = ["diabetes", "hypertension", "asthma", "obesity", "copd"];
    const STATUSES: [&str; 3] = ["home", "ward", "icu"];
    for i in 0..cfg.patients {
        let sex = if rng.gen_bool(0.5) { "F" } else { "M" };
        let status = STATUSES[match rng.gen_range(0..10) {
            0 => 2,     // 10% icu
            1..=3 => 1, // 30% ward
            _ => 0,     // 60% home
        }];
        let mut entries = vec![
            ("ssn", Value::str(format!("SSN{i:08}"))),
            ("name", Value::str(format!("Patient {i}"))),
            ("sex", Value::str(sex)),
            ("vaccinated", Value::Int(rng.gen_range(0..4))),
            ("status", Value::str(status)),
            ("severity", Value::Int(rng.gen_range(0..100))),
        ];
        if rng.gen_bool(0.3) {
            let c = COMORBIDITIES[rng.gen_range(0..COMORBIDITIES.len())];
            entries.push(("comorbidity", Value::list([Value::str(c)])));
        }
        let id = graph.create_node(["Patient"], props(entries)).unwrap();
        if !ds.sequences.is_empty() && rng.gen_bool(0.4) {
            let s = ds.sequences[rng.gen_range(0..ds.sequences.len())];
            graph
                .create_rel(id, s, "HasSample", PropertyMap::new())
                .unwrap();
        }
        ds.patients.push(id);
    }

    // Bulk loads bypass the histogram's amortized rebuild cadence; start
    // planning from fresh, zero-drift statistics for any index that
    // existed through the load (e.g. schema-declared indexes).
    graph.rebuild_stats();

    ds
}

fn name_of(graph: &Graph, id: NodeId) -> String {
    use pg_graph::GraphView;
    match graph.node_prop(id, "name") {
        Some(Value::Str(s)) => s,
        _ => String::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::covid_graph_type;
    use pg_graph::GraphView;
    use pg_schema::validate_graph;

    #[test]
    fn generated_data_conforms_to_schema() {
        let mut g = Graph::new();
        let cfg = GeneratorConfig::default();
        let ds = generate(&mut g, &cfg);
        let gt = covid_graph_type();
        let violations = validate_graph(&g, &gt);
        assert_eq!(violations, vec![], "schema violations in generated data");
        assert_eq!(ds.regions.len(), cfg.regions);
        assert_eq!(ds.hospitals.len(), cfg.regions * cfg.hospitals_per_region);
        assert_eq!(ds.sequences.len(), cfg.sequences);
        assert_eq!(ds.patients.len(), cfg.patients);
    }

    #[test]
    fn sacco_and_meyer_exist() {
        let mut g = Graph::new();
        let ds = generate(&mut g, &GeneratorConfig::default());
        assert_eq!(name_of(&g, ds.hospitals[ds.sacco]), "Sacco");
        assert_eq!(name_of(&g, ds.hospitals[ds.meyer]), "Meyer");
        // Sacco is in Lombardy
        let sacco = ds.hospitals[ds.sacco];
        let rels = g.rels_of(sacco, pg_graph::Direction::Out);
        let region = rels
            .iter()
            .filter_map(|&r| {
                let rec = g.rel(r)?;
                (rec.rel_type == "LocatedIn").then_some(rec.dst)
            })
            .next()
            .unwrap();
        assert_eq!(g.node_prop(region, "name"), Some(Value::str("Lombardy")));
    }

    #[test]
    fn deterministic_per_seed() {
        let mut g1 = Graph::new();
        let mut g2 = Graph::new();
        let cfg = GeneratorConfig::default();
        generate(&mut g1, &cfg);
        generate(&mut g2, &cfg);
        assert_eq!(g1.node_count(), g2.node_count());
        assert_eq!(g1.rel_count(), g2.rel_count());
        let mut cfg2 = cfg.clone();
        cfg2.seed = 7;
        let mut g3 = Graph::new();
        generate(&mut g3, &cfg2);
        // same cardinalities, very likely different wiring
        assert_eq!(g1.node_count(), g3.node_count());
    }

    #[test]
    fn bulk_load_then_rebuild_keeps_drift_bound() {
        // ROADMAP: "the incremental histogram drifts through bulk loads".
        // `generate` now ends with `rebuild_stats`, so an index that lived
        // through the load answers range estimates within the zero-drift
        // bound 2·depth (instead of 2·depth + total/8).
        use std::ops::Bound;
        let mut g = Graph::new();
        g.create_index("Patient", "severity");
        let cfg = GeneratorConfig {
            patients: 2000,
            ..GeneratorConfig::default()
        };
        generate(&mut g, &cfg);
        let exact = g
            .nodes_with_label("Patient")
            .iter()
            .filter(|&&id| matches!(g.node_prop(id, "severity"), Some(Value::Int(v)) if v < 50))
            .count();
        let est = g
            .count_nodes_in_prop_range(
                "Patient",
                "severity",
                Bound::Unbounded,
                Bound::Excluded(&Value::Int(50)),
            )
            .unwrap();
        let depth = cfg.patients.div_ceil(32);
        assert!(
            est.abs_diff(exact) <= 2 * depth,
            "estimate {est} vs exact {exact} outside the zero-drift bound {}",
            2 * depth
        );
    }

    #[test]
    fn critical_fraction_respected_roughly() {
        let mut g = Graph::new();
        let cfg = GeneratorConfig {
            mutations: 200,
            critical_fraction: 0.5,
            ..GeneratorConfig::default()
        };
        generate(&mut g, &cfg);
        let risky = g.rels_with_type("Risk").len();
        assert!((60..=140).contains(&risky), "risky = {risky}");
    }
}
