//! Thread-count invariance over the §6 COVID scenario.
//!
//! The morsel-driven parallel executor's contract is that the worker
//! ceiling is pure scheduling: the morselize-or-not decision, the morsel
//! boundaries, and every row (order included) are identical whether a
//! query runs on one thread or eight. This file checks that contract on
//! the paper's own workload, two ways:
//!
//! 1. the **whole reactive scenario** — triggers, relocations, alerts —
//!    replayed under `PG_THREADS` ∈ {1, 2, 8} must produce identical
//!    reports and identical panel rows (this is the env-var path real
//!    deployments use);
//! 2. a **forced-morselization panel** over the finished scenario graph:
//!    the estimated-rows threshold is dropped to 0 so every multi-seed
//!    `MATCH` group actually morselizes, and the rows must equal the
//!    reference (serial DFS) executor's rows in order at every ceiling.
//!
//! This file holds exactly one `PG_THREADS`-mutating test so the env
//! writes cannot race another test in the same process.

use pg_covid::{GeneratorConfig, Scenario, ScenarioConfig, ScenarioReport};
use pg_cypher::{parse_query, Executor, MatchMode, Params, Target};
use pg_graph::Value;

fn cfg() -> ScenarioConfig {
    ScenarioConfig {
        generator: GeneratorConfig {
            regions: 2,
            hospitals_per_region: 2,
            icu_beds_per_hospital: 10,
            labs_per_region: 1,
            mutations: 10,
            critical_fraction: 0.3,
            effects: 3,
            lineages: 4,
            designated_fraction: 0.8,
            sequences: 20,
            max_mutations_per_sequence: 2,
            patients: 20,
            seed: 1,
        },
        waves: 3,
        admissions_per_wave: 6,
        discoveries: 2,
        redesignations: 1,
        indexed: true,
    }
}

/// Order-sensitive panel over the finished scenario: multi-seed
/// pipelines (the batched executor's grouping shape) plus ordered
/// projections, so a scheduling bug shows up as a row-order diff.
const PANEL: [&str; 4] = [
    "MATCH (h:Hospital) MATCH (p:IcuPatient)-[:TreatedAt]->(h2:Hospital) \
     WHERE h2.name = h.name RETURN h.name AS h, count(p) AS n",
    "MATCH (l:Lineage) MATCH (s:Sequence)-[:BelongsTo]->(l) \
     RETURN l.name AS l, count(s) AS n",
    "MATCH (m:Mutation) OPTIONAL MATCH (m)-[:FoundIn]->(s:Sequence) \
     RETURN m.name AS m, count(s) AS n ORDER BY m",
    "MATCH (p:IcuPatient)-[:TreatedAt]-(h:Hospital) \
     RETURN h.name AS h, count(DISTINCT p) AS n ORDER BY n DESC, h",
];

fn run_scenario() -> (ScenarioReport, Vec<Vec<Vec<Value>>>) {
    let mut sc = Scenario::new(cfg());
    let report = sc.run().expect("scenario");
    let rows = PANEL
        .iter()
        .map(|q| sc.session.run(q).expect("panel query").rows)
        .collect();
    (report, rows)
}

#[test]
fn scenario_is_invariant_under_pg_threads() {
    let baseline = run_scenario();
    for threads in ["1", "2", "8"] {
        std::env::set_var("PG_THREADS", threads);
        let run = run_scenario();
        assert_eq!(
            run, baseline,
            "scenario diverged under PG_THREADS={threads}"
        );
    }
    std::env::remove_var("PG_THREADS");
}

#[test]
fn forced_morselization_matches_reference_on_scenario_graph() {
    let mut sc = Scenario::new(cfg());
    sc.run().expect("scenario");
    let params = Params::new();
    let g = sc.session.graph();
    for q in PANEL {
        let query = parse_query(q).expect(q);
        let reference = Executor::new(Target::Read(g), &params, 0)
            .with_match_mode(MatchMode::Reference)
            .run(&query, Vec::new())
            .expect(q)
            .rows;
        assert!(!reference.is_empty(), "vacuous panel query: {q}");
        for threads in [1usize, 2, 8] {
            // explicit limit wins over PG_THREADS, so this test is
            // env-independent; threshold 0 forces every eligible group
            // through the morsel queue.
            let parallel = Executor::new(Target::Read(g), &params, 0)
                .with_match_mode(MatchMode::Batched)
                .with_thread_limit(threads)
                .with_parallel_threshold(0.0)
                .run(&query, Vec::new())
                .expect(q)
                .rows;
            assert_eq!(
                parallel, reference,
                "morselized ({threads} threads) diverged from reference for {q}"
            );
        }
    }
}
