//! Crash recovery over the §6 COVID scenario: the paper's own workload
//! run durably, killed, and recovered.
//!
//! The baseline population is bulk-loaded unlogged and made durable by
//! the checkpoint inside [`Scenario::new_durable`]; every scenario event
//! after that (mutation discoveries, redesignations, admission waves —
//! cascades, relocations and all) commits through the WAL. A crash at
//! any point must recover to a state whose records and query panels are
//! exactly what the live session saw, with zero trigger re-firings —
//! alert timestamps included, because recovery replays committed effects
//! instead of re-running `DATETIME()`-bearing trigger bodies.

use pg_covid::{install_paper_triggers, GeneratorConfig, Scenario, ScenarioConfig};
use pg_graph::Graph;
use pg_triggers::{EngineConfig, Session, SyncPolicy, WalOptions};
use pg_wal::WAL_FILE;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

struct TempDir(PathBuf);

impl TempDir {
    fn new(tag: &str) -> TempDir {
        static COUNTER: AtomicU64 = AtomicU64::new(0);
        let path = std::env::temp_dir().join(format!(
            "pg_covid_{tag}_{}_{}",
            std::process::id(),
            COUNTER.fetch_add(1, Ordering::SeqCst)
        ));
        let _ = std::fs::remove_dir_all(&path);
        std::fs::create_dir_all(&path).unwrap();
        TempDir(path)
    }

    fn path(&self) -> &Path {
        &self.0
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

fn cfg() -> ScenarioConfig {
    ScenarioConfig {
        generator: GeneratorConfig {
            regions: 2,
            hospitals_per_region: 2,
            icu_beds_per_hospital: 10,
            labs_per_region: 1,
            mutations: 10,
            critical_fraction: 0.3,
            effects: 3,
            lineages: 4,
            designated_fraction: 0.8,
            sequences: 20,
            max_mutations_per_sequence: 2,
            patients: 20,
            seed: 1,
        },
        waves: 3,
        admissions_per_wave: 6,
        discoveries: 2,
        redesignations: 1,
        indexed: true,
    }
}

fn wal_opts() -> WalOptions {
    WalOptions {
        sync: SyncPolicy::Always,
        group_bytes: 32 * 1024,
    }
}

/// Every observable the paper's report derives from, each with a total
/// order so row equality is deterministic.
const PANEL: [&str; 6] = [
    "MATCH (a:Alert) RETURN a.desc AS d, count(*) AS n ORDER BY d",
    "MATCH (m:Mutation) RETURN count(*) AS n",
    "MATCH (s:Sequence)-[:BelongsTo]->(l:Lineage) RETURN l.name AS l, count(s) AS n ORDER BY l",
    "MATCH (p:IcuPatient)-[:TreatedAt]-(h:Hospital) RETURN h.name AS h, count(DISTINCT p) AS n \
     ORDER BY h",
    "MATCH (l:Lineage) WHERE l.whoDesignation IS NOT NULL \
     RETURN l.name AS l, l.whoDesignation AS w ORDER BY l, w",
    "MATCH (m:Mutation)-[:Risk]->(e:CriticalEffect) RETURN count(*) AS n",
];

fn panel_rows(s: &mut Session) -> Vec<Vec<Vec<pg_graph::Value>>> {
    PANEL
        .iter()
        .map(|q| s.run(q).expect("panel query").rows)
        .collect()
}

/// Sorted record dump (ids included; watermarks excluded — the snapshot
/// may persist allocator state ahead of the last committed frame).
fn dump(g: &Graph) -> Vec<String> {
    let mut records: Vec<String> = g.nodes().map(|n| format!("{n:?}")).collect();
    records.extend(g.rels().map(|r| format!("{r:?}")));
    records.sort();
    records
}

#[test]
fn full_scenario_survives_a_crash_with_zero_refirings() {
    let tmp = TempDir::new("full");
    let mut sc = Scenario::new_durable(cfg(), tmp.path(), wal_opts()).unwrap();
    let report = sc.run().unwrap();
    assert!(report.total_alerts() > 0, "scenario must alert: {report:?}");
    assert!(report.triggers_fired > 0);
    let live_dump = dump(sc.session.graph());
    let live_panel = panel_rows(&mut sc.session);
    let k = sc.session.wal_seq();
    assert!(k > 0, "scenario events must have committed through the WAL");
    sc.session.wal_flush().unwrap();
    drop(sc); // crash: no clean close, no final checkpoint

    let (mut recovered, rec_report) =
        Session::open_durable(tmp.path(), EngineConfig::default(), wal_opts()).unwrap();
    install_paper_triggers(&mut recovered).unwrap();

    assert!(
        rec_report.snapshot_nodes > 0,
        "baseline must arrive via the checkpoint snapshot: {rec_report:?}"
    );
    assert!(rec_report.commits_replayed > 0, "{rec_report:?}");
    assert_eq!(rec_report.last_seq, k);
    assert_eq!(dump(recovered.graph()), live_dump);
    assert_eq!(panel_rows(&mut recovered), live_panel);
    assert_eq!(
        recovered.stats().fired,
        0,
        "recovery must not re-run the paper triggers"
    );

    // The recovered store keeps reacting: a fresh critical discovery
    // must raise a fresh alert on top of the recovered ones.
    let alerts_before = recovered
        .run("MATCH (a:Alert) RETURN count(*) AS n")
        .unwrap()
        .single()
        .and_then(|v| v.as_i64())
        .unwrap();
    recovered
        .run(
            "MATCH (e:CriticalEffect) WITH e LIMIT 1 \
             CREATE (:Mutation {name: 'Spike:PostCrash', protein: 'Spike'})-[:Risk]->(e)",
        )
        .unwrap();
    let alerts_after = recovered
        .run("MATCH (a:Alert) RETURN count(*) AS n")
        .unwrap()
        .single()
        .and_then(|v| v.as_i64())
        .unwrap();
    assert_eq!(alerts_after, alerts_before + 1);
    assert_eq!(recovered.wal_seq(), k + 1, "WAL resumes where it left off");
}

#[test]
fn kill_points_across_the_scenario_log_recover_monotonic_prefixes() {
    // Soak the whole WAL byte range: cut the scenario's log at a spread
    // of offsets (including mid-frame) and recover each image. Every cut
    // must recover cleanly, alert counts must be monotone in the cut
    // position, and full-length cuts must reproduce the live state.
    let tmp = TempDir::new("cuts");
    let live_dir = tmp.path().join("live");
    let mut sc = Scenario::new_durable(cfg(), &live_dir, wal_opts()).unwrap();
    sc.run().unwrap();
    let live_alerts = sc
        .session
        .run("MATCH (a:Alert) RETURN count(*) AS n")
        .unwrap()
        .single()
        .and_then(|v| v.as_i64())
        .unwrap();
    let live_dump = dump(sc.session.graph());
    sc.session.wal_flush().unwrap();
    drop(sc);

    let wal_bytes = std::fs::read(live_dir.join(WAL_FILE)).unwrap();
    let snapshot = std::fs::read(live_dir.join(pg_wal::SNAPSHOT_FILE)).unwrap();
    let mut last_alerts = -1i64;
    let mut last_seq = 0u64;
    let cuts: Vec<usize> = (0..=8).map(|i| wal_bytes.len() * i / 8).collect();
    for cut in cuts {
        let crash = tmp.path().join(format!("crash_{cut}"));
        std::fs::create_dir_all(&crash).unwrap();
        std::fs::write(crash.join(pg_wal::SNAPSHOT_FILE), &snapshot).unwrap();
        std::fs::write(crash.join(WAL_FILE), &wal_bytes[..cut]).unwrap();

        let (mut recovered, report) =
            Session::open_durable(&crash, EngineConfig::default(), wal_opts())
                .unwrap_or_else(|e| panic!("cut {cut}: recovery failed: {e}"));
        let alerts = recovered
            .run("MATCH (a:Alert) RETURN count(*) AS n")
            .unwrap()
            .single()
            .and_then(|v| v.as_i64())
            .unwrap();
        assert!(
            alerts >= last_alerts,
            "cut {cut}: alerts went backwards ({alerts} < {last_alerts})"
        );
        assert!(
            report.last_seq >= last_seq,
            "cut {cut}: seq went backwards ({} < {last_seq})",
            report.last_seq
        );
        last_alerts = alerts;
        last_seq = report.last_seq;
        if cut == wal_bytes.len() {
            assert_eq!(alerts, live_alerts, "full log must recover every alert");
            assert_eq!(dump(recovered.graph()), live_dump);
        }
        assert_eq!(recovered.stats().fired, 0, "cut {cut}");
    }
}
