//! Regenerate the paper's tables and figures.
//!
//! ```text
//! cargo run -p pg-bench --bin paper_tables -- all
//! cargo run -p pg-bench --bin paper_tables -- table1 figure2
//! cargo run -p pg-bench --bin paper_tables -- --json all > artifacts.json
//! ```

use pg_bench::tables;
use std::io::Write;

/// Write a line to stdout; `false` means the reader hung up (e.g. piped
/// into `head`), in which case the caller should stop quietly instead of
/// panicking on the broken pipe. Any other write failure (ENOSPC, I/O
/// error) is fatal: truncated artifacts must not look like success.
fn emit(line: &str) -> bool {
    let mut out = std::io::stdout().lock();
    match out
        .write_all(line.as_bytes())
        .and_then(|()| out.write_all(b"\n"))
    {
        Ok(()) => true,
        Err(e) if e.kind() == std::io::ErrorKind::BrokenPipe => false,
        Err(e) => {
            eprintln!("error writing artifact output: {e}");
            std::process::exit(1);
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let json_mode = args.iter().any(|a| a == "--json");
    let selected: Vec<&str> = args
        .iter()
        .filter(|a| !a.starts_with("--"))
        .map(|a| a.as_str())
        .collect();
    let want_all = selected.is_empty() || selected.contains(&"all");

    let artifacts = tables::all_artifacts();
    let chosen: Vec<_> = artifacts
        .iter()
        .filter(|a| want_all || selected.contains(&a.id))
        .collect();
    if chosen.is_empty() {
        eprintln!(
            "unknown artifact id(s); available: {}",
            artifacts
                .iter()
                .map(|a| a.id)
                .collect::<Vec<_>>()
                .join(", ")
        );
        std::process::exit(2);
    }

    if json_mode {
        let out: serde_json::Map<String, serde_json::Value> = chosen
            .iter()
            .map(|a| (a.id.to_string(), a.data.clone()))
            .collect();
        // a hung-up reader (emit == false) is fine; real errors exited above
        let _ = emit(&serde_json::to_string_pretty(&out).unwrap());
    } else {
        for a in chosen {
            let bar = "=".repeat(72);
            let ok = emit(&bar) && emit(a.title) && emit(&bar) && emit(&a.text) && emit("");
            if !ok {
                return;
            }
        }
    }
}
