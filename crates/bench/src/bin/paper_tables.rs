//! Regenerate the paper's tables and figures.
//!
//! ```text
//! cargo run -p pg-bench --bin paper_tables -- all
//! cargo run -p pg-bench --bin paper_tables -- table1 figure2
//! cargo run -p pg-bench --bin paper_tables -- --json all > artifacts.json
//! ```

use pg_bench::tables;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let json_mode = args.iter().any(|a| a == "--json");
    let selected: Vec<&str> = args
        .iter()
        .filter(|a| !a.starts_with("--"))
        .map(|a| a.as_str())
        .collect();
    let want_all = selected.is_empty() || selected.contains(&"all");

    let artifacts = tables::all_artifacts();
    let chosen: Vec<_> = artifacts
        .iter()
        .filter(|a| want_all || selected.contains(&a.id))
        .collect();
    if chosen.is_empty() {
        eprintln!(
            "unknown artifact id(s); available: {}",
            artifacts.iter().map(|a| a.id).collect::<Vec<_>>().join(", ")
        );
        std::process::exit(2);
    }

    if json_mode {
        let out: serde_json::Map<String, serde_json::Value> = chosen
            .iter()
            .map(|a| (a.id.to_string(), a.data.clone()))
            .collect();
        println!("{}", serde_json::to_string_pretty(&out).unwrap());
    } else {
        for a in chosen {
            println!("{}", "=".repeat(72));
            println!("{}", a.title);
            println!("{}", "=".repeat(72));
            println!("{}", a.text);
            println!();
        }
    }
}
