//! # pg-bench — paper-artifact regeneration and benchmark harness
//!
//! * [`tables`] regenerates every table and figure of the paper as a
//!   checkable artifact (see `EXPERIMENTS.md` for the index);
//! * [`workloads`] builds the shared benchmark fixtures;
//! * the `paper_tables` binary prints the artifacts
//!   (`cargo run -p pg-bench --bin paper_tables -- all`);
//! * `benches/` holds the Criterion performance experiments P1–P8.

pub mod tables;
pub mod workloads;
pub mod zipf;
