//! Regeneration of every table and figure in the paper.
//!
//! Each artifact function returns human-readable text plus a JSON value so
//! the integration tests can assert on the machine-readable form. See
//! `EXPERIMENTS.md` for the paper ↔ artifact index.

use pg_apoc::ApocDb;
use pg_covid::{Scenario, ScenarioConfig};
use pg_cypher::Row;
use pg_graph::{Delta, Graph, PreStateView, PropertyMap, Value};
use pg_memgraph::MemgraphDb;
use pg_triggers::{parse_trigger_ddl, DdlStatement, Session};
use serde_json::{json, Value as Json};

/// One regenerated artifact.
pub struct Artifact {
    pub id: &'static str,
    pub title: &'static str,
    pub text: String,
    pub data: Json,
}

// ---------------------------------------------------------------------
// Table 1 — comparison of graph databases on reactive support
// ---------------------------------------------------------------------

/// The static survey rows of paper Table 1 (§3): system, trigger support on
/// graph data (Tr-G), trigger support on relational data (Tr-R), event
/// listener (Ev-L).
pub const TABLE1_SURVEY: [(&str, &str, &str, &str); 15] = [
    ("Neo4j", "yes (APOC)", "-", "-"),
    ("Memgraph", "yes", "-", "-"),
    ("JanusGraph", "-", "-", "yes (JSBus)"),
    ("Dgraph", "-", "-", "yes (Lambda)"),
    ("Amazon Neptune", "-", "-", "yes (SNS)"),
    ("Stardog", "-", "-", "yes (Java)"),
    ("Nebula Graph", "-", "-", "-"),
    ("TigerGraph", "-", "-", "-"),
    ("GraphDB", "-", "-", "-"),
    ("Oracle Graph Database", "-", "yes", "-"),
    ("Virtuoso", "-", "yes", "-"),
    ("AgensGraph", "-", "yes", "-"),
    ("Microsoft Azure Cosmos DB", "-", "-", "yes (JS)"),
    ("OrientDB", "-", "-", "yes (Hooks)"),
    ("ArangoDB", "-", "-", "yes"),
];

/// Regenerate Table 1: the survey rows plus three *verified* rows probed
/// against our implementations (a trigger is installed and must fire).
pub fn table1() -> Artifact {
    // Probe 1: native PG-Triggers.
    let native_ok = {
        let mut s = Session::new();
        s.install(
            "CREATE TRIGGER probe AFTER CREATE ON 'P' FOR EACH NODE BEGIN CREATE (:Fired) END",
        )
        .unwrap();
        s.run("CREATE (:P)").unwrap();
        s.run("MATCH (f:Fired) RETURN count(*) AS n")
            .unwrap()
            .single()
            .and_then(|v| v.as_i64())
            == Some(1)
    };
    // Probe 2: APOC emulation.
    let apoc_ok = {
        let mut db = ApocDb::new();
        db.install(
            "neo4j",
            "probe",
            "UNWIND $createdNodes AS c CALL apoc.do.when(c:P, 'CREATE (:Fired)', '', {c: c}) YIELD value RETURN *",
            "afterAsync",
        )
        .unwrap();
        db.run_tx(&["CREATE (:P)"]).unwrap();
        db.query("MATCH (f:Fired) RETURN count(*) AS n")
            .unwrap()
            .single()
            .and_then(|v| v.as_i64())
            == Some(1)
    };
    // Probe 3: Memgraph emulation.
    let mg_ok = {
        let mut db = MemgraphDb::new();
        db.create_trigger(
            "CREATE TRIGGER probe ON () CREATE AFTER COMMIT EXECUTE \
             UNWIND createdVertices AS v WITH v WHERE 'P' IN labels(v) CREATE (:Fired)",
        )
        .unwrap();
        db.run_tx(&["CREATE (:P)"]).unwrap();
        db.query("MATCH (f:Fired) RETURN count(*) AS n")
            .unwrap()
            .single()
            .and_then(|v| v.as_i64())
            == Some(1)
    };

    let mut text = String::from(
        "Table 1 — reactive support in graph databases (survey rows from §3,\n\
         verified rows probed against this repository's engines)\n\n",
    );
    text.push_str(&format!(
        "{:<28} {:<12} {:<6} {:<14}\n",
        "System", "Tr-G", "Tr-R", "Ev-L"
    ));
    text.push_str(&format!("{}\n", "-".repeat(64)));
    let mut rows = Vec::new();
    for (sys, g, r, l) in TABLE1_SURVEY {
        text.push_str(&format!("{sys:<28} {g:<12} {r:<6} {l:<14}\n"));
        rows.push(json!({"system": sys, "tr_g": g, "tr_r": r, "ev_l": l, "verified": false}));
    }
    for (sys, ok) in [
        ("PG-Triggers (this crate)", native_ok),
        ("pg-apoc emulation", apoc_ok),
        ("pg-memgraph emulation", mg_ok),
    ] {
        let g = if ok { "yes [verified]" } else { "FAILED" };
        text.push_str(&format!("{sys:<28} {g:<12} {:<6} {:<14}\n", "-", "-"));
        rows.push(json!({"system": sys, "tr_g": g, "tr_r": "-", "ev_l": "-", "verified": ok}));
    }
    Artifact {
        id: "table1",
        title: "Table 1: reactive support comparison",
        text,
        data: json!({ "rows": rows, "all_probes_pass": native_ok && apoc_ok && mg_ok }),
    }
}

// ---------------------------------------------------------------------
// Figure 1 — the PG-Trigger grammar, exercised exhaustively
// ---------------------------------------------------------------------

/// Parse the full production matrix of the Figure 1 grammar:
/// `{BEFORE, AFTER, ONCOMMIT, DETACHED} × {CREATE, DELETE, SET, REMOVE} ×
/// {EACH, ALL} × {NODE, RELATIONSHIP} × {label, label.property}`, plus the
/// REFERENCING options.
pub fn figure1() -> Artifact {
    let times = ["BEFORE", "AFTER", "ONCOMMIT", "DETACHED"];
    let events = ["CREATE", "DELETE", "SET", "REMOVE"];
    let grans = ["EACH", "ALL"];
    let items = ["NODE", "RELATIONSHIP"];
    let props = ["", ".'p'"];
    let mut parsed = 0usize;
    let mut rejected = Vec::new();
    let mut total = 0usize;
    for time in times {
        for event in events {
            for gran in grans {
                for item in items {
                    for prop in props {
                        // property suffix only meaningful for SET/REMOVE
                        if !prop.is_empty() && event != "SET" && event != "REMOVE" {
                            continue;
                        }
                        total += 1;
                        let body = if time == "BEFORE" {
                            "SET NEW.x = 1"
                        } else {
                            "CREATE (:Log)"
                        };
                        let item_kw = if gran == "ALL" {
                            match item {
                                "NODE" => "NODES",
                                _ => "RELATIONSHIPS",
                            }
                        } else {
                            item
                        };
                        let refclause = match (gran, item, event) {
                            ("EACH", _, "CREATE") => "REFERENCING NEW AS fresh",
                            ("ALL", "NODE", "CREATE") => "REFERENCING NEWNODES AS batch",
                            ("ALL", "RELATIONSHIP", "CREATE") => "REFERENCING NEWRELS AS batch",
                            _ => "",
                        };
                        let src = format!(
                            "CREATE TRIGGER g {time} {event} ON 'L'{prop} {refclause} \
                             FOR {gran} {item_kw} WHEN 1 = 1 BEGIN {body} END"
                        );
                        match parse_trigger_ddl(&src) {
                            Ok(DdlStatement::CreateTrigger(_)) => parsed += 1,
                            Ok(_) => unreachable!(),
                            Err(e) => rejected.push(json!({
                                "combo": format!("{time} {event} {gran} {item}{prop}"),
                                "reason": e.to_string(),
                            })),
                        }
                    }
                }
            }
        }
    }
    let text = format!(
        "Figure 1 — PG-Trigger grammar coverage\n\n\
         CREATE TRIGGER <name> <time> <event>\n\
         ON <label>[.<property>]\n\
         [REFERENCING <alias for old or new>...]\n\
         FOR <granularity> <item>\n\
         [WHEN <condition>]\n\
         BEGIN <statement> END\n\n\
         productions exercised: {total}\n\
         parsed: {parsed}\n\
         rejected (semantic rules): {}\n\
         {}",
        rejected.len(),
        rejected
            .iter()
            .map(|r| format!(
                "  - {} : {}\n",
                r["combo"].as_str().unwrap(),
                r["reason"].as_str().unwrap()
            ))
            .collect::<String>()
    );
    Artifact {
        id: "figure1",
        title: "Figure 1: PG-Trigger syntax",
        text,
        data: json!({"total": total, "parsed": parsed, "rejected": rejected}),
    }
}

// ---------------------------------------------------------------------
// Table 2 / Table 3 — APOC transition metadata and the OLD/NEW scheme
// ---------------------------------------------------------------------

/// Build a delta exercising every action type once.
fn all_events_delta() -> (Graph, Delta, Vec<pg_graph::Op>) {
    let mut g = Graph::new();
    let doomed = g.create_node(["Doomed"], PropertyMap::new()).unwrap();
    let keep = g
        .create_node(
            ["Keep"],
            [
                ("p".to_string(), Value::Int(1)),
                ("gone".to_string(), Value::Int(0)),
            ]
            .into_iter()
            .collect::<PropertyMap>(),
        )
        .unwrap();
    let keep2 = g.create_node(["Keep"], PropertyMap::new()).unwrap();
    let doomed_rel = g
        .create_rel(keep, keep2, "DoomedRel", PropertyMap::new())
        .unwrap();
    let rel = g
        .create_rel(
            keep,
            keep2,
            "Rel",
            [
                ("w".to_string(), Value::Int(1)),
                ("gone".to_string(), Value::Int(0)),
            ]
            .into_iter()
            .collect::<PropertyMap>(),
        )
        .unwrap();
    g.begin().unwrap();
    let mark = g.mark();
    // every action type:
    g.create_node(["Created"], PropertyMap::new()).unwrap(); // node creation
    g.create_rel(keep, keep2, "CreatedRel", PropertyMap::new())
        .unwrap(); // rel creation
    g.detach_delete_node(doomed).unwrap(); // node deletion
    g.delete_rel(doomed_rel).unwrap(); // rel deletion
    g.set_label(keep, "Flagged").unwrap(); // label set
    g.remove_label(keep2, "Keep").unwrap(); // label removal
    g.set_node_prop(keep, "p", Value::Int(2)).unwrap(); // node prop set
    g.remove_node_prop(keep, "gone").unwrap(); // node prop removal
    g.set_rel_prop(rel, "w", Value::Int(9)).unwrap(); // rel prop set
    g.remove_rel_prop(rel, "gone").unwrap(); // rel prop removal
    let delta = g.delta_since(mark);
    let ops = g.ops_since(mark).to_vec();
    (g, delta, ops)
}

/// Table 2: the APOC utility structures, populated by one transaction
/// exercising all ten action types.
pub fn table2() -> Artifact {
    let (_g, delta, _ops) = all_events_delta();
    let params = pg_apoc::apoc_params(&delta);
    let describe: [(&str, &str); 10] = [
        ("createdNodes", "list of created nodes"),
        ("createdRelationships", "list of created relationships"),
        ("deletedNodes", "list of deleted nodes"),
        ("deletedRelationships", "list of deleted relationships"),
        ("assignedLabels", "set of new labels for an item"),
        ("removedLabels", "set of removed labels from an item"),
        (
            "assignedNodeProperties",
            "quadruple <target node, property name, old value, new value>",
        ),
        (
            "assignedRelProperties",
            "quadruple <target rel, property name, old value, new value>",
        ),
        (
            "removedNodeProperties",
            "triple <target node, property name, old value>",
        ),
        (
            "removedRelProperties",
            "triple <target rel, property name, old value>",
        ),
    ];
    let mut text = String::from("Table 2 — APOC trigger utility structures (populated counts)\n\n");
    text.push_str(&format!(
        "{:<26} {:<62} {}\n",
        "Statement", "Description", "count"
    ));
    text.push_str(&format!("{}\n", "-".repeat(96)));
    let mut rows = Vec::new();
    for (name, desc) in describe {
        let count = match &params[name] {
            Value::List(items) => items.len(),
            Value::Map(m) => m
                .values()
                .map(|v| v.as_list().map(|l| l.len()).unwrap_or(0))
                .sum(),
            _ => 0,
        };
        text.push_str(&format!("{name:<26} {desc:<62} {count}\n"));
        rows.push(json!({"statement": name, "description": desc, "count": count}));
    }
    let all_populated = rows.iter().all(|r| r["count"].as_u64().unwrap_or(0) > 0);
    text.push_str(&format!("\nall structures populated: {all_populated}\n"));
    Artifact {
        id: "table2",
        title: "Table 2: APOC trigger utility functions",
        text,
        data: json!({"rows": rows, "all_populated": all_populated}),
    }
}

/// Table 3: the OLD/NEW construction scheme — for each of the eight event
/// rows, verify which transition variables the engine binds.
pub fn table3() -> Artifact {
    let cases: [(&str, &str, &str); 8] = [
        // (row label, trigger middle, op description)
        (
            "Nodes / Create",
            "AFTER CREATE ON 'Created' FOR EACH NODE",
            "NEW",
        ),
        (
            "Nodes / Delete",
            "AFTER DELETE ON 'Doomed' FOR EACH NODE",
            "OLD",
        ),
        (
            "Relationships / Create",
            "AFTER CREATE ON 'CreatedRel' FOR EACH RELATIONSHIP",
            "NEW",
        ),
        (
            "Relationships / Delete",
            "AFTER DELETE ON 'DoomedRel' FOR EACH RELATIONSHIP",
            "OLD",
        ),
        (
            "Labels / Set",
            "AFTER SET ON 'Flagged' FOR EACH NODE",
            "NEW+OLD",
        ),
        (
            "Labels / Remove",
            "AFTER REMOVE ON 'Keep' FOR EACH NODE",
            "NEW+OLD",
        ),
        (
            "Node props / Set",
            "AFTER SET ON 'Flagged'.'p' FOR EACH NODE",
            "NEW+OLD",
        ),
        (
            "Node props / Remove",
            "AFTER REMOVE ON 'Flagged'.'gone' FOR EACH NODE",
            "NEW+OLD",
        ),
    ];
    let (g, delta, ops) = all_events_delta();
    let pre = PreStateView::new(&g, &ops);
    let mut text =
        String::from("Table 3 — OLD/NEW transition-variable scheme (engine-verified)\n\n");
    text.push_str(&format!("{:<24} {:<10} {:<10}\n", "Event", "OLD", "NEW"));
    text.push_str(&format!("{}\n", "-".repeat(46)));
    let mut rows = Vec::new();
    let mut all_match = true;
    for (label, middle, _expect) in cases {
        let ddl = format!("CREATE TRIGGER t {middle} BEGIN CREATE (:X) END");
        let spec = match parse_trigger_ddl(&ddl).unwrap() {
            DdlStatement::CreateTrigger(s) => s,
            _ => unreachable!(),
        };
        let affected = pg_triggers::binding::affected_items(&spec, &delta, &pre, &g);
        let seeds = pg_triggers::binding::seed_rows(&spec, &affected);
        let (has_old, has_new) = seeds
            .first()
            .map(|r: &Row| (r.contains("OLD"), r.contains("NEW")))
            .unwrap_or((false, false));
        if seeds.is_empty() {
            all_match = false;
        }
        text.push_str(&format!(
            "{label:<24} {:<10} {:<10}\n",
            if has_old { "bound" } else { "-" },
            if has_new { "bound" } else { "-" }
        ));
        rows.push(json!({
            "event": label,
            "old_bound": has_old,
            "new_bound": has_new,
            "activations": seeds.len(),
        }));
    }
    Artifact {
        id: "table3",
        title: "Table 3: OLD/NEW transition variables",
        text,
        data: json!({"rows": rows, "all_events_observed": all_match}),
    }
}

// ---------------------------------------------------------------------
// Figure 2 / Figure 3 — the syntax-directed translations
// ---------------------------------------------------------------------

/// Figure 2: the PG-Trigger → APOC translation of the paper's node-creation
/// example, plus the UNWIND source used for each of the ten event kinds.
pub fn figure2() -> Artifact {
    let spec = match parse_trigger_ddl(pg_covid::triggers::NEW_CRITICAL_MUTATION).unwrap() {
        DdlStatement::CreateTrigger(s) => s,
        _ => unreachable!(),
    };
    let install = pg_apoc::translate(&spec).unwrap();
    let mut text = format!(
        "Figure 2 — syntax-directed translation to APOC (node creation)\n\n\
         PG-Trigger:\n{}\n\n\
         apoc.trigger.install('databaseName', '{}', \"\n  {}\n\", {{phase:'{}'}})\n\n",
        pg_covid::triggers::NEW_CRITICAL_MUTATION.trim(),
        install.name,
        install.statement,
        install.phase.name(),
    );
    let kinds = [
        ("node creation", "AFTER CREATE ON 'L' FOR EACH NODE"),
        (
            "relationship creation",
            "AFTER CREATE ON 'L' FOR EACH RELATIONSHIP",
        ),
        ("node deletion", "AFTER DELETE ON 'L' FOR EACH NODE"),
        (
            "relationship deletion",
            "AFTER DELETE ON 'L' FOR EACH RELATIONSHIP",
        ),
        ("label set", "AFTER SET ON 'L' FOR EACH NODE"),
        ("label removal", "AFTER REMOVE ON 'L' FOR EACH NODE"),
        ("node-property set", "AFTER SET ON 'L'.'p' FOR EACH NODE"),
        (
            "node-property removal",
            "AFTER REMOVE ON 'L'.'p' FOR EACH NODE",
        ),
        (
            "rel-property set",
            "AFTER SET ON 'L'.'p' FOR EACH RELATIONSHIP",
        ),
        (
            "rel-property removal",
            "AFTER REMOVE ON 'L'.'p' FOR EACH RELATIONSHIP",
        ),
    ];
    text.push_str("Event-kind matrix (all ten kinds of §5.1):\n");
    let mut rows = Vec::new();
    for (kind, middle) in kinds {
        let ddl = format!("CREATE TRIGGER k {middle} BEGIN CREATE (:X) END");
        let spec = match parse_trigger_ddl(&ddl).unwrap() {
            DdlStatement::CreateTrigger(s) => s,
            _ => unreachable!(),
        };
        let t = pg_apoc::translate(&spec).unwrap();
        let source = t
            .statement
            .split_whitespace()
            .nth(1)
            .unwrap_or("")
            .to_string();
        text.push_str(&format!("  {kind:<26} → UNWIND {source}\n"));
        rows.push(json!({"kind": kind, "unwind_source": source}));
    }
    Artifact {
        id: "figure2",
        title: "Figure 2: PG-Trigger → APOC translation",
        text,
        data: json!({"example_statement": install.statement, "phase": install.phase.name(), "kinds": rows}),
    }
}

/// Table 4: Memgraph's predefined variables, populated by the all-events
/// transaction.
pub fn table4() -> Artifact {
    let (_g, delta, _ops) = all_events_delta();
    let row = pg_memgraph::memgraph_vars(&delta);
    let mut text = String::from("Table 4 — Memgraph predefined variables (populated counts)\n\n");
    text.push_str(&format!("{:<26} {}\n", "Variable", "count"));
    text.push_str(&format!("{}\n", "-".repeat(36)));
    let mut rows = Vec::new();
    for name in pg_memgraph::MEMGRAPH_VAR_NAMES {
        let count = row
            .get(name)
            .and_then(|v| v.as_list())
            .map(|l| l.len())
            .unwrap_or(0);
        text.push_str(&format!("{name:<26} {count}\n"));
        rows.push(json!({"variable": name, "count": count}));
    }
    let all_populated = rows.iter().all(|r| r["count"].as_u64().unwrap_or(0) > 0);
    text.push_str(&format!("\nall variables populated: {all_populated}\n"));
    Artifact {
        id: "table4",
        title: "Table 4: Memgraph predefined variables",
        text,
        data: json!({"rows": rows, "all_populated": all_populated}),
    }
}

/// Figure 3: the PG-Trigger → Memgraph translation of the node-creation
/// example, plus the variable used per event kind.
pub fn figure3() -> Artifact {
    let spec = match parse_trigger_ddl(pg_covid::triggers::NEW_CRITICAL_MUTATION).unwrap() {
        DdlStatement::CreateTrigger(s) => s,
        _ => unreachable!(),
    };
    let install = pg_memgraph::translate(&spec).unwrap();
    let mut text = format!(
        "Figure 3 — syntax-directed translation to Memgraph (node creation)\n\n{}\n\n",
        install.ddl
    );
    let kinds = [
        (
            "vertex creation",
            "AFTER CREATE ON 'L' FOR EACH NODE",
            "createdVertices",
        ),
        (
            "edge creation",
            "AFTER CREATE ON 'L' FOR EACH RELATIONSHIP",
            "createdEdges",
        ),
        (
            "vertex deletion",
            "AFTER DELETE ON 'L' FOR EACH NODE",
            "deletedVertices",
        ),
        (
            "edge deletion",
            "AFTER DELETE ON 'L' FOR EACH RELATIONSHIP",
            "deletedEdges",
        ),
        (
            "label set",
            "AFTER SET ON 'L' FOR EACH NODE",
            "setVertexLabels",
        ),
        (
            "label removal",
            "AFTER REMOVE ON 'L' FOR EACH NODE",
            "removedVertexLabels",
        ),
        (
            "vertex-property set",
            "AFTER SET ON 'L'.'p' FOR EACH NODE",
            "setVertexProperties",
        ),
        (
            "vertex-property removal",
            "AFTER REMOVE ON 'L'.'p' FOR EACH NODE",
            "removedVertexProperties",
        ),
        (
            "edge-property set",
            "AFTER SET ON 'L'.'p' FOR EACH RELATIONSHIP",
            "setEdgeProperties",
        ),
        (
            "edge-property removal",
            "AFTER REMOVE ON 'L'.'p' FOR EACH RELATIONSHIP",
            "removedEdgeProperties",
        ),
    ];
    text.push_str("Event-kind matrix:\n");
    let mut rows = Vec::new();
    let mut all_ok = true;
    for (kind, middle, expect) in kinds {
        let ddl = format!("CREATE TRIGGER k {middle} BEGIN CREATE (:X) END");
        let spec = match parse_trigger_ddl(&ddl).unwrap() {
            DdlStatement::CreateTrigger(s) => s,
            _ => unreachable!(),
        };
        let t = pg_memgraph::translate(&spec).unwrap();
        let ok = t.ddl.contains(expect);
        all_ok &= ok;
        text.push_str(&format!(
            "  {kind:<26} → {expect} [{}]\n",
            if ok { "ok" } else { "MISSING" }
        ));
        rows.push(json!({"kind": kind, "variable": expect, "ok": ok}));
    }
    Artifact {
        id: "figure3",
        title: "Figure 3: PG-Trigger → Memgraph translation",
        text,
        data: json!({"example_ddl": install.ddl, "kinds": rows, "all_ok": all_ok}),
    }
}

// ---------------------------------------------------------------------
// Figures 4–5 — the CoV2K PG-Schema
// ---------------------------------------------------------------------

/// Figures 4–5: the CoV2K schema, its structure, and validation of the
/// generated dataset (plus rejection of a corrupted graph).
pub fn figure45() -> Artifact {
    let gt = pg_covid::covid_graph_type();
    let mut g = Graph::new();
    let cfg = pg_covid::GeneratorConfig::default();
    pg_covid::generate(&mut g, &cfg);
    let violations = pg_schema::validate_graph(&g, &gt);

    // Corrupt a copy: a Patient with the wrong ssn type must be rejected.
    let mut bad = Graph::new();
    bad.create_node(
        ["Patient"],
        [("ssn".to_string(), Value::Int(1))]
            .into_iter()
            .collect::<PropertyMap>(),
    )
    .unwrap();
    let bad_violations = pg_schema::validate_graph(&bad, &gt);

    let text = format!(
        "Figures 4–5 — CoV2K PG-Schema\n\n{}\n\n\
         node types: {} | edge types: {} | STRICT: {}\n\
         IcuPatientType full labels: {:?}\n\
         generated dataset: {} nodes, {} rels → violations: {}\n\
         corrupted graph violations: {} (expected > 0)\n",
        pg_covid::COVID_SCHEMA_DDL.trim(),
        gt.node_types.len(),
        gt.edge_types.len(),
        gt.strict,
        gt.full_labels("IcuPatientType"),
        g.node_count(),
        g.rel_count(),
        violations.len(),
        bad_violations.len(),
    );
    Artifact {
        id: "figure45",
        title: "Figures 4–5: CoV2K PG-Schema",
        text,
        data: json!({
            "node_types": gt.node_types.len(),
            "edge_types": gt.edge_types.len(),
            "strict": gt.strict,
            "generated_nodes": g.node_count(),
            "generated_rels": g.rel_count(),
            "violations": violations.len(),
            "corrupted_violations": bad_violations.len(),
        }),
    }
}

// ---------------------------------------------------------------------
// §6.2 — the running-example trigger suite
// ---------------------------------------------------------------------

/// §6.2: run the COVID scenario and report every trigger's observable
/// effects.
pub fn triggers62() -> Artifact {
    let mut scenario = Scenario::new(ScenarioConfig::default());
    let report = scenario.run().expect("scenario runs");
    let mut text = String::from("§6.2 — running-example triggers (scenario outcomes)\n\n");
    text.push_str(&format!("admissions: {}\n", report.admissions));
    text.push_str(&format!(
        "trigger statements fired: {}\n",
        report.triggers_fired
    ));
    text.push_str(&format!(
        "relocated patients: {}\n\nalerts:\n",
        report.relocated_patients
    ));
    for (desc, n) in &report.alerts {
        text.push_str(&format!("  {n:>4} × {desc}\n"));
    }
    let alerts: Json = report
        .alerts
        .iter()
        .map(|(k, v)| (k.clone(), json!(v)))
        .collect::<serde_json::Map<String, Json>>()
        .into();
    Artifact {
        id: "triggers62",
        title: "§6.2: running-example triggers",
        text,
        data: json!({
            "admissions": report.admissions,
            "fired": report.triggers_fired,
            "relocated": report.relocated_patients,
            "alerts": alerts,
        }),
    }
}

/// Every artifact, in paper order.
pub fn all_artifacts() -> Vec<Artifact> {
    vec![
        table1(),
        figure1(),
        table2(),
        table3(),
        figure2(),
        table4(),
        figure3(),
        figure45(),
        triggers62(),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_probes_pass() {
        let a = table1();
        assert_eq!(a.data["all_probes_pass"], json!(true));
        assert_eq!(a.data["rows"].as_array().unwrap().len(), 18);
    }

    #[test]
    fn figure1_covers_grammar() {
        let a = figure1();
        let total = a.data["total"].as_u64().unwrap();
        let parsed = a.data["parsed"].as_u64().unwrap();
        let rejected = a.data["rejected"].as_array().unwrap().len() as u64;
        assert_eq!(total, parsed + rejected);
        // the only rejections are the documented semantic rules
        // (rel label events, BEFORE body restrictions)
        assert!(parsed >= 80, "parsed = {parsed}");
        assert!(rejected <= 16, "rejected = {rejected}");
    }

    #[test]
    fn table2_and_4_fully_populated() {
        assert_eq!(table2().data["all_populated"], json!(true));
        assert_eq!(table4().data["all_populated"], json!(true));
    }

    #[test]
    fn table3_all_events_observed() {
        let a = table3();
        assert_eq!(a.data["all_events_observed"], json!(true));
        for row in a.data["rows"].as_array().unwrap() {
            assert!(row["activations"].as_u64().unwrap() >= 1, "{row}");
        }
    }

    #[test]
    fn figure2_translates_all_kinds() {
        let a = figure2();
        assert_eq!(a.data["kinds"].as_array().unwrap().len(), 10);
        assert!(a.data["example_statement"]
            .as_str()
            .unwrap()
            .contains("$createdNodes"));
    }

    #[test]
    fn figure3_translates_all_kinds() {
        let a = figure3();
        assert_eq!(a.data["all_ok"], json!(true));
    }

    #[test]
    fn figure45_validates() {
        let a = figure45();
        assert_eq!(a.data["violations"], json!(0));
        assert!(a.data["corrupted_violations"].as_u64().unwrap() > 0);
    }

    #[test]
    fn triggers62_produces_alerts() {
        let a = triggers62();
        assert!(a.data["fired"].as_u64().unwrap() > 0);
        assert!(!a.data["alerts"].as_object().unwrap().is_empty());
    }
}
