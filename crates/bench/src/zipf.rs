//! Shared Zipf-skewed follower-graph fixture.
//!
//! Used by the `join_planning` bench (batched-vs-reference executor and
//! estimate accuracy) and the `parallel_exec` bench (morsel-driven
//! scaling), so both measure the same workload shape: FOLLOWS targets
//! funnel into a few hub users, and hub users also author Zipf-many
//! `WROTE_Z` posts (skew-correlated second hop).

use pg_graph::{Graph, NodeId, PropertyMap, Value};

/// Integer Zipf(1.0) allocation: distribute `total` units over `n` ranks
/// proportionally to `1/(rank+1)`, deterministically (no sampling noise).
pub fn zipf_counts(n: usize, total: usize) -> Vec<usize> {
    let h: f64 = (0..n).map(|r| 1.0 / (r + 1) as f64).sum();
    let mut counts: Vec<usize> = (0..n)
        .map(|r| ((total as f64 / (r + 1) as f64) / h).floor() as usize)
        .collect();
    let mut assigned: usize = counts.iter().sum();
    let mut r = 0;
    while assigned < total {
        counts[r % n] += 1;
        assigned += 1;
        r += 1;
    }
    counts
}

/// `n` User nodes; FOLLOWS edges with Zipf-distributed targets (user 0
/// is the biggest hub); per user `w_uniform` WROTE posts; Zipf-many
/// WROTE_Z posts with author rank aligned to hub rank (correlated skew).
pub fn follower_graph(n: usize, follows: usize, w_uniform: usize, wz_total: usize) -> Graph {
    let mut g = Graph::new();
    let users: Vec<NodeId> = (0..n)
        .map(|i| {
            g.create_node(
                ["User"],
                [("id".to_string(), Value::Int(i as i64))]
                    .into_iter()
                    .collect(),
            )
            .unwrap()
        })
        .collect();
    for (rank, &count) in zipf_counts(n, follows).iter().enumerate() {
        // `count` followers follow the rank-`rank` user.
        for k in 0..count {
            let src = users[(rank + 1 + k * 7) % n];
            if src != users[rank] {
                g.create_rel(src, users[rank], "FOLLOWS", PropertyMap::new())
                    .unwrap();
            }
        }
    }
    for &u in &users {
        for _ in 0..w_uniform {
            let p = g.create_node(["Post"], PropertyMap::new()).unwrap();
            g.create_rel(u, p, "WROTE", PropertyMap::new()).unwrap();
        }
    }
    for (rank, &count) in zipf_counts(n, wz_total).iter().enumerate() {
        for _ in 0..count {
            let p = g.create_node(["Post"], PropertyMap::new()).unwrap();
            g.create_rel(users[rank], p, "WROTE_Z", PropertyMap::new())
                .unwrap();
        }
    }
    g
}
