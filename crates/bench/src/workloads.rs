//! Shared benchmark fixtures.

use pg_triggers::{EngineConfig, Session};

/// A session preloaded with `n` uniform `Item` nodes (bulk-loaded, no
/// trigger processing).
pub fn session_with_items(n: usize) -> Session {
    let mut s = Session::new();
    let g = s.graph_mut();
    for i in 0..n {
        let props: pg_graph::PropertyMap = [("k".to_string(), pg_graph::Value::Int(i as i64))]
            .into_iter()
            .collect();
        g.create_node(["Item"], props).unwrap();
    }
    s
}

/// Like [`session_with_items`], but each node also carries a zero-padded
/// string `name` (`item000042`) so prefix scans have a sortable target.
pub fn session_with_named_items(n: usize) -> Session {
    let mut s = Session::new();
    let g = s.graph_mut();
    for i in 0..n {
        let props: pg_graph::PropertyMap = [
            ("k".to_string(), pg_graph::Value::Int(i as i64)),
            (
                "name".to_string(),
                pg_graph::Value::str(format!("item{i:06}")),
            ),
        ]
        .into_iter()
        .collect();
        g.create_node(["Item"], props).unwrap();
    }
    s
}

/// Install `n` AFTER-CREATE triggers on distinct labels; when
/// `matching` is true they all monitor `Target`, otherwise none does.
pub fn install_n_triggers(s: &mut Session, n: usize, matching: bool) {
    for i in 0..n {
        let label = if matching {
            "Target".to_string()
        } else {
            format!("Other{i}")
        };
        s.install(&format!(
            "CREATE TRIGGER bench_t{i} AFTER CREATE ON '{label}' FOR EACH NODE
             BEGIN CREATE (:Fired {{by: {i}}}) END"
        ))
        .unwrap();
    }
}

/// A chain of `n` triggers: `CREATE (:L0)` cascades through `L1 … Ln`.
pub fn install_chain(s: &mut Session, n: usize) {
    for i in 0..n {
        s.install(&format!(
            "CREATE TRIGGER chain{i} AFTER CREATE ON 'L{i}' FOR EACH NODE
             BEGIN CREATE (:L{}) END",
            i + 1
        ))
        .unwrap();
    }
}

/// A session with cascading disabled (the APOC/Memgraph limitation mode).
pub fn session_no_cascade() -> Session {
    Session::with_config(EngineConfig {
        cascading_enabled: false,
        ..EngineConfig::default()
    })
}

/// A batched node-creation statement: `CREATE (:Target {i: 0}), …`.
pub fn batch_create(label: &str, n: usize, offset: usize) -> String {
    let parts: Vec<String> = (0..n)
        .map(|i| format!("(:{label} {{i: {}}})", offset + i))
        .collect();
    format!("CREATE {}", parts.join(", "))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixtures_work() {
        let mut s = session_with_items(10);
        assert_eq!(s.graph().node_count(), 10);
        install_n_triggers(&mut s, 3, true);
        s.run(&batch_create("Target", 2, 0)).unwrap();
        // 3 matching triggers × 2 nodes = 6 Fired nodes
        let fired = s
            .run("MATCH (f:Fired) RETURN count(*) AS n")
            .unwrap()
            .single()
            .and_then(|v| v.as_i64())
            .unwrap();
        assert_eq!(fired, 6);
    }

    #[test]
    fn chain_cascades_fully() {
        let mut s = Session::new();
        install_chain(&mut s, 5);
        s.run("CREATE (:L0)").unwrap();
        for i in 1..=5 {
            let n = s
                .run(&format!("MATCH (x:L{i}) RETURN count(*) AS n"))
                .unwrap()
                .single()
                .and_then(|v| v.as_i64())
                .unwrap();
            assert_eq!(n, 1, "L{i}");
        }
    }
}
