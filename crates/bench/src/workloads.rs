//! Shared benchmark fixtures.

use pg_triggers::{EngineConfig, Session};
use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};

/// A session preloaded with `n` uniform `Item` nodes (bulk-loaded, no
/// trigger processing).
pub fn session_with_items(n: usize) -> Session {
    let mut s = Session::new();
    let g = s.graph_mut();
    for i in 0..n {
        let props: pg_graph::PropertyMap = [("k".to_string(), pg_graph::Value::Int(i as i64))]
            .into_iter()
            .collect();
        g.create_node(["Item"], props).unwrap();
    }
    s
}

/// Like [`session_with_items`], but each node also carries a zero-padded
/// string `name` (`item000042`) so prefix scans have a sortable target.
pub fn session_with_named_items(n: usize) -> Session {
    let mut s = Session::new();
    let g = s.graph_mut();
    for i in 0..n {
        let props: pg_graph::PropertyMap = [
            ("k".to_string(), pg_graph::Value::Int(i as i64)),
            (
                "name".to_string(),
                pg_graph::Value::str(format!("item{i:06}")),
            ),
        ]
        .into_iter()
        .collect();
        g.create_node(["Item"], props).unwrap();
    }
    s
}

/// A session preloaded with `n` `Item` nodes carrying an independent
/// `(status, severity)` pair: `status` cycles through `statuses` string
/// values, `severity` through `severities` integers, wired so the two
/// keys are uncorrelated. The conjunctive predicate `status = s AND
/// severity = v` matches `n / (statuses · severities)` nodes while each
/// single key alone matches `n / statuses` resp. `n / severities` — the
/// composite-vs-single-key benchmark shape.
pub fn session_with_pairs(n: usize, statuses: usize, severities: usize) -> Session {
    let mut s = Session::new();
    let g = s.graph_mut();
    for i in 0..n {
        let props: pg_graph::PropertyMap = [
            (
                "status".to_string(),
                pg_graph::Value::str(format!("s{}", (i / severities) % statuses)),
            ),
            (
                "severity".to_string(),
                pg_graph::Value::Int((i % severities) as i64),
            ),
        ]
        .into_iter()
        .collect();
        g.create_node(["Item"], props).unwrap();
    }
    s
}

/// Draw Zipf-distributed ranks in `0..m` with exponent `s` (inverse-CDF
/// sampling over precomputed cumulative weights). Rank 0 is the hottest
/// value; `s ≈ 1.0` gives the classic heavy head.
pub struct ZipfSampler {
    /// Cumulative weights, `cdf[r]` = Σ_{i≤r} 1/(i+1)^s.
    cdf: Vec<f64>,
    rng: StdRng,
}

impl ZipfSampler {
    pub fn new(m: usize, s: f64, seed: u64) -> ZipfSampler {
        assert!(m > 0, "Zipf support must be non-empty");
        let mut cdf = Vec::with_capacity(m);
        let mut acc = 0.0f64;
        for r in 0..m {
            acc += 1.0 / ((r + 1) as f64).powf(s);
            cdf.push(acc);
        }
        ZipfSampler {
            cdf,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// The next rank in `0..m`.
    pub fn sample(&mut self) -> usize {
        // 53 high bits → uniform f64 in [0, 1)
        let u = ((self.rng.next_u64() >> 11) as f64) * (1.0 / (1u64 << 53) as f64);
        let target = u * self.cdf[self.cdf.len() - 1];
        self.cdf
            .partition_point(|c| *c < target)
            .min(self.cdf.len() - 1)
    }
}

/// A session preloaded with `n` `Item` nodes whose integer `k` follows a
/// Zipf-like distribution over `m` distinct values (exponent `s`). Skewed
/// counterpart of [`session_with_items`]: histogram-based selectivity
/// estimates are only interesting when the data is *not* uniform.
pub fn session_with_zipf_items(n: usize, m: usize, s: f64, seed: u64) -> Session {
    let mut sampler = ZipfSampler::new(m, s, seed);
    let mut session = Session::new();
    let g = session.graph_mut();
    for _ in 0..n {
        let k = sampler.sample() as i64;
        let props: pg_graph::PropertyMap = [("k".to_string(), pg_graph::Value::Int(k))]
            .into_iter()
            .collect();
        g.create_node(["Item"], props).unwrap();
    }
    session
}

/// Install `n` AFTER-CREATE triggers on distinct labels; when
/// `matching` is true they all monitor `Target`, otherwise none does.
pub fn install_n_triggers(s: &mut Session, n: usize, matching: bool) {
    for i in 0..n {
        let label = if matching {
            "Target".to_string()
        } else {
            format!("Other{i}")
        };
        s.install(&format!(
            "CREATE TRIGGER bench_t{i} AFTER CREATE ON '{label}' FOR EACH NODE
             BEGIN CREATE (:Fired {{by: {i}}}) END"
        ))
        .unwrap();
    }
}

/// A chain of `n` triggers: `CREATE (:L0)` cascades through `L1 … Ln`.
pub fn install_chain(s: &mut Session, n: usize) {
    for i in 0..n {
        s.install(&format!(
            "CREATE TRIGGER chain{i} AFTER CREATE ON 'L{i}' FOR EACH NODE
             BEGIN CREATE (:L{}) END",
            i + 1
        ))
        .unwrap();
    }
}

/// A session with cascading disabled (the APOC/Memgraph limitation mode).
pub fn session_no_cascade() -> Session {
    Session::with_config(EngineConfig {
        cascading_enabled: false,
        ..EngineConfig::default()
    })
}

/// A batched node-creation statement: `CREATE (:Target {i: 0}), …`.
pub fn batch_create(label: &str, n: usize, offset: usize) -> String {
    let parts: Vec<String> = (0..n)
        .map(|i| format!("(:{label} {{i: {}}})", offset + i))
        .collect();
    format!("CREATE {}", parts.join(", "))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixtures_work() {
        let mut s = session_with_items(10);
        assert_eq!(s.graph().node_count(), 10);
        install_n_triggers(&mut s, 3, true);
        s.run(&batch_create("Target", 2, 0)).unwrap();
        // 3 matching triggers × 2 nodes = 6 Fired nodes
        let fired = s
            .run("MATCH (f:Fired) RETURN count(*) AS n")
            .unwrap()
            .single()
            .and_then(|v| v.as_i64())
            .unwrap();
        assert_eq!(fired, 6);
    }

    #[test]
    fn zipf_sampler_is_skewed_and_deterministic() {
        let mut a = ZipfSampler::new(100, 1.1, 42);
        let mut b = ZipfSampler::new(100, 1.1, 42);
        let draws_a: Vec<usize> = (0..2000).map(|_| a.sample()).collect();
        let draws_b: Vec<usize> = (0..2000).map(|_| b.sample()).collect();
        assert_eq!(draws_a, draws_b, "same seed, same stream");
        let head = draws_a.iter().filter(|r| **r == 0).count();
        let tail = draws_a.iter().filter(|r| **r == 99).count();
        assert!(head > 10 * tail.max(1), "head {head} vs tail {tail}");
        assert!(draws_a.iter().all(|r| *r < 100));
    }

    #[test]
    fn zipf_session_builds() {
        let mut s = session_with_zipf_items(500, 20, 1.0, 7);
        assert_eq!(s.graph().node_count(), 500);
        let distinct = s
            .run("MATCH (i:Item) RETURN count(DISTINCT i.k) AS n")
            .unwrap()
            .single()
            .and_then(|v| v.as_i64())
            .unwrap();
        assert!(distinct > 1 && distinct <= 20);
    }

    #[test]
    fn chain_cascades_fully() {
        let mut s = Session::new();
        install_chain(&mut s, 5);
        s.run("CREATE (:L0)").unwrap();
        for i in 1..=5 {
            let n = s
                .run(&format!("MATCH (x:L{i}) RETURN count(*) AS n"))
                .unwrap()
                .single()
                .and_then(|v| v.as_i64())
                .unwrap();
            assert_eq!(n, 1, "L{i}");
        }
    }
}
