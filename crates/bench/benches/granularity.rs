//! P3 — FOR EACH vs FOR ALL granularity over growing batch sizes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pg_bench::workloads::batch_create;
use pg_triggers::Session;

fn session_with(granularity: &str) -> Session {
    let mut s = Session::new();
    let (var, item) = match granularity {
        "each" => ("NEW", "EACH NODE"),
        _ => ("NEWNODES", "ALL NODES"),
    };
    let body = if granularity == "each" {
        format!("CREATE (:Log {{of: {var}.i}})")
    } else {
        format!("CREATE (:Log {{n: size({var})}})")
    };
    s.install(&format!(
        "CREATE TRIGGER g AFTER CREATE ON 'Target' FOR {item} BEGIN {body} END"
    ))
    .unwrap();
    s
}

fn bench_granularity(c: &mut Criterion) {
    let mut group = c.benchmark_group("p3_granularity");
    group.sample_size(20);
    for &batch in &[1usize, 10, 100, 1000] {
        for gran in ["each", "all"] {
            group.bench_with_input(BenchmarkId::new(gran, batch), &batch, |b, &n| {
                b.iter_batched(
                    || session_with(gran),
                    |mut s| {
                        s.run(&batch_create("Target", n, 0)).unwrap();
                        s
                    },
                    criterion::BatchSize::SmallInput,
                )
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_granularity);
criterion_main!(benches);
