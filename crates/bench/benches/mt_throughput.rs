//! Multi-threaded throughput: N snapshot readers against a live,
//! trigger-firing writer.
//!
//! Three measurements, emitted as `BENCH_mt_throughput.json` in the
//! working directory (the repo's benchmark-artifact trajectory):
//!
//! 1. **Writer, exclusive mode** — no reader handle ever created, so the
//!    store root stays unshared and copy-on-write never copies.
//! 2. **Writer, publishing mode** — a reader handle exists, so every
//!    commit publishes its epoch and first-touch mutations path-copy.
//!    The copy-on-write tax is paid once per *commit boundary* (the first
//!    touch of each store path after a publication re-shares the trees),
//!    so it amortizes over transaction size. Both granularities are
//!    measured and reported: realistic ingest transactions
//!    (`TX_BATCH` statements per commit — the degradation bar of ≤ 20%
//!    versus exclusive mode applies here) and the single-statement
//!    auto-commit floor, where every statement pays the full tax
//!    (`autocommit_degradation_pct`, same ≤ 20% bar — held by the
//!    tail-buffered extent sets, which turn the per-statement label/
//!    type-index spine copies into an `Arc<Vec>` insert).
//! 3. **Reader scaling** — 1 reader vs 8 readers running indexed range
//!    counts over pinned snapshots (re-pinning every query) while the
//!    writer fires an `AFTER` trigger cascade per statement. The bar is
//!    ≥ 6× aggregate throughput at 8 readers — asserted only when the
//!    machine actually has that many cores; the JSON records the
//!    measured ratio and core count either way.
//!
//! Quick mode for CI smoke: `cargo bench --bench mt_throughput -- --test`
//! shrinks sizes and skips the acceptance assertions (noise-proof);
//! the `concurrency` CI job runs the full mode and archives the JSON.

use pg_triggers::{ReadSession, Session};
use serde_json::json;
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::{Duration, Instant};

fn quick_mode() -> bool {
    std::env::args().any(|a| a == "--test" || a == "--quick")
}

/// A session with `preload` indexed `Item` nodes and an AFTER cascade on
/// every `:Job` insert — the writer's per-statement trigger work.
fn trigger_session(preload: usize) -> Session {
    let mut s = Session::new();
    s.install(
        "CREATE TRIGGER audit AFTER CREATE ON 'Job' FOR EACH NODE
         BEGIN CREATE (:Audit {of: NEW.i}) END",
    )
    .unwrap();
    s.create_index("Item", "k").unwrap();
    let g = s.graph_mut();
    for i in 0..preload {
        let props: pg_graph::PropertyMap = [("k".to_string(), pg_graph::Value::Int(i as i64))]
            .into_iter()
            .collect();
        g.create_node(["Item"], props).unwrap();
    }
    s
}

/// A realistic multi-property ingest statement (each fires the `audit`
/// cascade).
fn ingest_stmt(i: usize) -> String {
    format!("CREATE (:Job {{i: {i}, src: 'loader', prio: {}}})", i % 7)
}

/// Statements per ingest transaction for the transactional writer shape.
const TX_BATCH: usize = 8;

/// One timed burst: `statements` trigger-firing inserts against a fresh
/// session (each statement = 1 `:Job` insert + 1 cascaded `:Audit`
/// insert), in exclusive or publishing mode. `batch` = 1 auto-commits
/// every statement; `batch` > 1 groups that many statements per explicit
/// transaction.
fn writer_burst(preload: usize, statements: usize, batch: usize, publish: bool) -> f64 {
    let mut s = trigger_session(preload);
    let _handle = publish.then(|| s.reader_handle());
    let t0 = Instant::now();
    for i in 0..statements {
        if batch > 1 && i.is_multiple_of(batch) {
            s.begin().unwrap();
        }
        s.run(&ingest_stmt(i)).unwrap();
        if batch > 1 && (i + 1).is_multiple_of(batch) {
            s.commit().unwrap();
        }
    }
    if batch > 1 && !statements.is_multiple_of(batch) {
        s.commit().unwrap();
    }
    statements as f64 / t0.elapsed().as_secs_f64()
}

/// Writer throughput (statements/second) as `(exclusive, publishing)`.
/// The two modes are interleaved burst-by-burst so scheduler noise hits
/// both alike, and each reports its best burst — on a loaded shared box
/// the best window is the least-perturbed measurement.
fn writer_stmts_per_s(
    preload: usize,
    statements: usize,
    batch: usize,
    repeats: usize,
) -> (f64, f64) {
    let (mut exclusive, mut publishing) = (0.0f64, 0.0f64);
    for _ in 0..repeats {
        exclusive = exclusive.max(writer_burst(preload, statements, batch, false));
        publishing = publishing.max(writer_burst(preload, statements, batch, true));
    }
    (exclusive, publishing)
}

/// `readers` threads hammering pinned snapshots (re-pinned per query)
/// while this thread's writer fires trigger cascades for `duration`.
/// Returns (aggregate reader queries/s, writer statements/s).
fn mixed_load(preload: usize, readers: usize, duration: Duration) -> (f64, f64) {
    let mut s = trigger_session(preload);
    let handle = s.reader_handle();
    let lo = (preload / 4) as i64;
    let hi = (preload / 2) as i64;
    let query = format!("MATCH (i:Item) WHERE i.k >= {lo} AND i.k < {hi} RETURN count(*) AS n");
    let expect = hi - lo;

    let stop = AtomicBool::new(false);
    std::thread::scope(|scope| {
        let joins: Vec<_> = (0..readers)
            .map(|_| {
                let h = handle.clone();
                let stop = &stop;
                let query = query.as_str();
                scope.spawn(move || {
                    let mut reader = ReadSession::new(h);
                    let mut queries = 0u64;
                    while !stop.load(Ordering::Relaxed) {
                        reader.refresh();
                        let n = reader
                            .run(query)
                            .unwrap()
                            .single()
                            .and_then(|v| v.as_i64())
                            .unwrap();
                        assert_eq!(n, expect, "snapshot read returned a wrong count");
                        queries += 1;
                    }
                    queries
                })
            })
            .collect();

        let t0 = Instant::now();
        let mut stmts = 0u64;
        while t0.elapsed() < duration {
            s.run(&ingest_stmt(stmts as usize)).unwrap();
            stmts += 1;
        }
        stop.store(true, Ordering::Relaxed);
        let elapsed = t0.elapsed().as_secs_f64();
        let total: u64 = joins.into_iter().map(|j| j.join().unwrap()).sum();
        (total as f64 / elapsed, stmts as f64 / elapsed)
    })
}

fn main() {
    let quick = quick_mode();
    // Bursts must be long enough that a ~1ms scheduler hiccup cannot
    // move the exclusive/publishing ratio by a percentage point: 6000
    // statements ≈ 60ms per burst at the measured rates.
    let (preload, statements, repeats, dur, readers_hi) = if quick {
        (2_000, 200, 1, Duration::from_millis(150), 4)
    } else {
        (100_000, 6_000, 7, Duration::from_millis(1500), 8)
    };
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());

    let (exclusive, publishing) = writer_stmts_per_s(preload, statements, TX_BATCH, repeats);
    let degradation_pct = (1.0 - publishing / exclusive) * 100.0;
    let (ac_exclusive, ac_publishing) = writer_stmts_per_s(preload, statements, 1, repeats);
    let ac_degradation_pct = (1.0 - ac_publishing / ac_exclusive) * 100.0;

    let (single_qps, writer_during_single) = mixed_load(preload, 1, dur);
    let (multi_qps, writer_during_multi) = mixed_load(preload, readers_hi, dur);
    let scaling = multi_qps / single_qps;
    // The scaling bar needs real parallelism: readers plus the writer
    // each want a core.
    let scaling_measurable = cores > readers_hi;

    let writer_report = json!({
        "tx_batch": TX_BATCH,
        "exclusive_stmts_per_s": exclusive,
        "publishing_stmts_per_s": publishing,
        "degradation_pct": degradation_pct,
        "bar_degradation_pct_max": 20.0,
        "autocommit_exclusive_stmts_per_s": ac_exclusive,
        "autocommit_publishing_stmts_per_s": ac_publishing,
        "autocommit_degradation_pct": ac_degradation_pct,
        "bar_autocommit_degradation_pct_max": 20.0,
    });
    let reader_report = json!({
        "single_reader_qps": single_qps,
        "multi_reader_qps": multi_qps,
        "multi_readers": readers_hi,
        "scaling_x": scaling,
        "bar_scaling_x_min": 6.0,
        "scaling_measurable": scaling_measurable,
        "writer_stmts_per_s_during_single": writer_during_single,
        "writer_stmts_per_s_during_multi": writer_during_multi,
    });
    let report = json!({
        "bench": "mt_throughput",
        "mode": if quick { "quick" } else { "full" },
        "cores": cores,
        "preload_items": preload,
        "writer": writer_report,
        "readers": reader_report,
    });
    let rendered = serde_json::to_string_pretty(&report).unwrap();
    println!("{rendered}");
    // Manifest-relative so the artifact lands at the repo root (where CI
    // archives it) regardless of the bench binary's working directory.
    let out = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../BENCH_mt_throughput.json"
    );
    std::fs::write(out, rendered + "\n").unwrap();

    if !quick {
        assert!(
            degradation_pct <= 20.0,
            "publishing-mode writer degraded {degradation_pct:.1}% (> 20% bar): \
             {publishing:.0} vs {exclusive:.0} stmts/s in {TX_BATCH}-statement transactions"
        );
        assert!(
            ac_degradation_pct <= 20.0,
            "auto-commit writer degraded {ac_degradation_pct:.1}% (> 20% bar): \
             {ac_publishing:.0} vs {ac_exclusive:.0} stmts/s single-statement"
        );
        if scaling_measurable {
            assert!(
                scaling >= 6.0,
                "{readers_hi} readers scaled only {scaling:.2}x (>= 6x bar) on {cores} cores"
            );
        } else {
            eprintln!(
                "note: scaling bar not asserted — {cores} core(s) < {} needed",
                readers_hi + 1
            );
        }
    }
}
