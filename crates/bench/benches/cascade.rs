//! P2 — cascading: chain depth scaling, native cascading vs the
//! APOC/Memgraph-style no-cascade mode (§5.1 limitation).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pg_bench::workloads::{install_chain, session_no_cascade};
use pg_triggers::{EngineConfig, Session};

fn bench_cascade(c: &mut Criterion) {
    let mut group = c.benchmark_group("p2_cascade");
    group.sample_size(20);
    for &depth in &[1usize, 4, 8, 16, 32] {
        group.bench_with_input(BenchmarkId::new("native", depth), &depth, |b, &d| {
            b.iter_batched(
                || {
                    let mut s = Session::with_config(EngineConfig {
                        max_cascade_depth: d + 4,
                        ..EngineConfig::default()
                    });
                    install_chain(&mut s, d);
                    s
                },
                |mut s| {
                    s.run("CREATE (:L0)").unwrap();
                    s
                },
                criterion::BatchSize::SmallInput,
            )
        });
        group.bench_with_input(BenchmarkId::new("no_cascade", depth), &depth, |b, &d| {
            b.iter_batched(
                || {
                    let mut s = session_no_cascade();
                    install_chain(&mut s, d);
                    s
                },
                |mut s: Session| {
                    s.run("CREATE (:L0)").unwrap();
                    s
                },
                criterion::BatchSize::SmallInput,
            )
        });
    }
    group.finish();
}

criterion_group!(benches, bench_cascade);
criterion_main!(benches);
