//! Morsel-driven parallel execution scaling on the Zipf two-hop join.
//!
//! The same skew-correlated workload as `join_planning` — `MATCH
//! (u:User) MATCH (u)-[:FOLLOWS]->(h:User)-[:WROTE_Z]->(p:Post)` over a
//! follower graph with Zipf-distributed hubs — run through the batched
//! executor at worker-thread ceilings 1..=4 (plus the machine's
//! available parallelism when higher). The first `MATCH` feeds every
//! user as a seed row into the second, which is exactly the plan-equal
//! group shape the executor splits into 64-seed morsels.
//!
//! Emitted as `BENCH_parallel_exec.json`:
//!
//! * per-ceiling best-of-N wall times and speedups over the 1-thread
//!   run (which still morselizes — same chunk boundaries — but drains
//!   the queue inline, so the comparison isolates scheduling);
//! * a correctness cross-check: every ceiling must reproduce the
//!   reference executor's row count;
//! * the acceptance bar: ≥ 2× speedup at 4 threads **when the machine
//!   has ≥ 4 cores**. On smaller boxes scaling is not measurable —
//!   threads time-slice one core — so the report says
//!   `"scaling_measurable": false` with the core count instead of
//!   asserting a number the hardware cannot produce.
//!
//! Quick mode (`-- --test`): shrunk graph, threshold forced to 0 so the
//! morsel machinery is exercised even below the 4096-row floor, no
//! acceptance assertion.

use pg_bench::zipf::follower_graph;
use pg_cypher::{parse_query, Executor, MatchMode, Params, Target};
use pg_graph::Graph;
use serde_json::json;
use std::time::Instant;

fn quick_mode() -> bool {
    std::env::args().any(|a| a == "--test" || a == "--quick")
}

const QUERY: &str = "MATCH (u:User) MATCH (u)-[:FOLLOWS]->(h:User)-[:WROTE_Z]->(p:Post) \
                     RETURN count(*) AS n";

/// Best-of-`iters` wall time at a fixed worker ceiling.
fn timed_run(g: &Graph, threads: usize, threshold: Option<f64>, iters: usize) -> (usize, f64) {
    let query = parse_query(QUERY).unwrap();
    let params = Params::new();
    let mut rows = 0;
    let mut best = f64::INFINITY;
    for _ in 0..iters {
        let t = Instant::now();
        let mut exec = Executor::new(Target::Read(g), &params, 0)
            .with_match_mode(MatchMode::Batched)
            .with_thread_limit(threads);
        if let Some(th) = threshold {
            exec = exec.with_parallel_threshold(th);
        }
        let out = exec.run(&query, Vec::new()).unwrap();
        best = best.min(t.elapsed().as_secs_f64());
        rows = out.single().and_then(|v| v.as_i64()).expect("count query") as usize;
    }
    (rows, best)
}

fn main() {
    let quick = quick_mode();
    let (n, follows, wz_total, iters) = if quick {
        (60, 240, 120, 2)
    } else {
        (1200, 9600, 4800, 5)
    };
    // Quick mode's graph is below the 4096-row morselization floor;
    // force the threshold to 0 there so CI still drives the morsel
    // queue end-to-end.
    let threshold = quick.then_some(0.0);
    let g = follower_graph(n, follows, 0, wz_total);

    let cores = std::thread::available_parallelism()
        .map(|c| c.get())
        .unwrap_or(1);
    let mut ceilings = vec![1usize, 2, 4];
    if cores > 4 {
        ceilings.push(cores);
    }

    let reference = {
        let query = parse_query(QUERY).unwrap();
        let params = Params::new();
        Executor::new(Target::Read(&g), &params, 0)
            .with_match_mode(MatchMode::Reference)
            .run(&query, Vec::new())
            .unwrap()
            .single()
            .and_then(|v| v.as_i64())
            .expect("count query") as usize
    };

    let mut serial_s = f64::NAN;
    let mut speedup_4x = f64::NAN;
    let runs: Vec<_> = ceilings
        .iter()
        .map(|&t| {
            let (rows, secs) = timed_run(&g, t, threshold, iters);
            assert_eq!(
                rows, reference,
                "parallel run at {t} threads disagrees with the reference executor"
            );
            if t == 1 {
                serial_s = secs;
            }
            let speedup = serial_s / secs;
            if t == 4 {
                speedup_4x = speedup;
            }
            json!({
                "threads": t,
                "best_s": secs,
                "speedup_x": speedup,
            })
        })
        .collect();

    // A 4-thread speedup needs 4 cores to mean anything.
    let scaling_measurable = cores >= 4;
    let report = json!({
        "bench": "parallel_exec",
        "mode": if quick { "quick" } else { "full" },
        "users": n,
        "follows_edges": follows,
        "wrote_z_edges": wz_total,
        "output_rows": reference,
        "cores": cores,
        "scaling_measurable": scaling_measurable,
        "scaling_note": if scaling_measurable {
            "speedup bar enforced at 4 threads".to_string()
        } else {
            format!("{cores} core(s) < 4 needed: threads time-slice, speedup bar not applicable")
        },
        "runs": runs,
        "bar_speedup_min_x_at_4_threads": 2.0,
    });
    let rendered = serde_json::to_string_pretty(&report).unwrap();
    println!("{rendered}");
    let out = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../BENCH_parallel_exec.json"
    );
    std::fs::write(out, rendered + "\n").unwrap();

    if !quick && scaling_measurable {
        assert!(
            speedup_4x >= 2.0,
            "morsel-driven execution must scale ≥2x at 4 threads \
             (got {speedup_4x:.3}x)"
        );
    }
}
