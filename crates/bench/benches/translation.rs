//! P5 — DDL parse and translation throughput (Figures 1–3 machinery).

use criterion::{criterion_group, criterion_main, Criterion};
use pg_triggers::{parse_trigger_ddl, DdlStatement};

fn bench_translation(c: &mut Criterion) {
    let ddl = pg_covid::triggers::MOVE_TO_NEAR_HOSPITAL;
    let spec = match parse_trigger_ddl(ddl).unwrap() {
        DdlStatement::CreateTrigger(s) => s,
        _ => unreachable!(),
    };
    let simple = match parse_trigger_ddl(pg_covid::triggers::NEW_CRITICAL_MUTATION).unwrap() {
        DdlStatement::CreateTrigger(s) => s,
        _ => unreachable!(),
    };

    let mut group = c.benchmark_group("p5_translation");
    group.bench_function("parse_ddl_complex", |b| {
        b.iter(|| parse_trigger_ddl(std::hint::black_box(ddl)).unwrap())
    });
    group.bench_function("translate_apoc", |b| {
        b.iter(|| pg_apoc::translate(std::hint::black_box(&simple)).unwrap())
    });
    group.bench_function("translate_memgraph", |b| {
        b.iter(|| pg_memgraph::translate(std::hint::black_box(&simple)).unwrap())
    });
    group.bench_function("termination_analysis_of_spec", |b| {
        b.iter(|| pg_triggers::termination::generated_events(std::hint::black_box(&spec)))
    });
    group.finish();
}

criterion_group!(benches, bench_translation);
criterion_main!(benches);
