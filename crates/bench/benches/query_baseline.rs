//! P7 — query-engine baseline (no triggers): MATCH patterns and CREATE
//! batches, the substrate costs the trigger numbers sit on.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pg_bench::workloads::{batch_create, session_with_items};

fn bench_baseline(c: &mut Criterion) {
    let mut group = c.benchmark_group("p7_query_baseline");
    group.sample_size(20);
    for &n in &[100usize, 1000, 10000] {
        group.bench_with_input(BenchmarkId::new("match_filter", n), &n, |b, &n| {
            let mut s = session_with_items(n);
            b.iter(|| {
                s.run("MATCH (i:Item) WHERE i.k % 7 = 0 RETURN count(*) AS n")
                    .unwrap()
            })
        });
    }
    for &n in &[10usize, 100, 1000] {
        group.bench_with_input(BenchmarkId::new("create_batch", n), &n, |b, &n| {
            b.iter_batched(
                || session_with_items(0),
                |mut s| {
                    s.run(&batch_create("Item", n, 0)).unwrap();
                    s
                },
                criterion::BatchSize::SmallInput,
            )
        });
    }
    group.bench_function("two_hop_pattern", |b| {
        let mut s = session_with_items(0);
        s.run("FOREACH (i IN range(0, 99) | CREATE (:A {i: i})-[:R]->(:B {i: i}))")
            .unwrap();
        s.run("MATCH (a:A), (b:B) WHERE a.i = b.i - 1 CREATE (b)-[:S]->(a)")
            .unwrap();
        b.iter(|| {
            s.run("MATCH (a:A)-[:R]->(b:B)-[:S]->(c:A) RETURN count(*) AS n")
                .unwrap()
        })
    });
    group.finish();
}

criterion_group!(benches, bench_baseline);
criterion_main!(benches);
