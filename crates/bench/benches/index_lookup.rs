//! Index-backed vs. full-scan equality matching — the access path the
//! candidate planner chooses for trigger-condition hot loops.
//!
//! `indexed/*` runs against a session with `CREATE INDEX ON :Item(k)`;
//! `scan/*` runs the identical query without the index (label-extent scan
//! with a post-hoc property filter). At the default 100k nodes the indexed
//! path must be orders of magnitude faster (the acceptance bar is 10×).
//!
//! Quick mode for CI: `cargo bench --bench index_lookup -- --test` shrinks
//! the graph and sample counts so the bench doubles as a smoke test.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pg_bench::workloads::session_with_items;
use pg_triggers::Session;

fn quick_mode() -> bool {
    std::env::args().any(|a| a == "--test" || a == "--quick")
}

fn checked_count(s: &mut Session, query: &str, expect: i64) {
    let n = s.run(query).unwrap().single().and_then(|v| v.as_i64());
    assert_eq!(n, Some(expect), "{query}");
}

fn bench_index_lookup(c: &mut Criterion) {
    let (n, samples) = if quick_mode() {
        (5_000, 5)
    } else {
        (100_000, 30)
    };
    let needle = (n - 1) as i64; // worst case for an ordered scan
    let inline = format!("MATCH (i:Item {{k: {needle}}}) RETURN count(*) AS n");
    let where_eq = format!("MATCH (i:Item) WHERE i.k = {needle} RETURN count(*) AS n");

    let mut indexed = session_with_items(n);
    indexed.create_index("Item", "k").unwrap();
    let mut scan = session_with_items(n);

    // Both paths must agree before we time anything.
    checked_count(&mut indexed, &inline, 1);
    checked_count(&mut scan, &inline, 1);

    let mut group = c.benchmark_group("index_lookup");
    group.sample_size(samples);
    group.bench_with_input(BenchmarkId::new("indexed_inline_prop", n), &n, |b, _| {
        b.iter(|| indexed.run(&inline).unwrap())
    });
    group.bench_with_input(BenchmarkId::new("indexed_where_eq", n), &n, |b, _| {
        b.iter(|| indexed.run(&where_eq).unwrap())
    });
    group.bench_with_input(BenchmarkId::new("scan_inline_prop", n), &n, |b, _| {
        b.iter(|| scan.run(&inline).unwrap())
    });
    group.bench_with_input(BenchmarkId::new("scan_where_eq", n), &n, |b, _| {
        b.iter(|| scan.run(&where_eq).unwrap())
    });
    group.finish();

    // Trigger-condition shape: an AFTER trigger whose condition is an
    // indexed equality match over the big extent.
    let mut group = c.benchmark_group("indexed_trigger_condition");
    group.sample_size(samples);
    for (tag, with_index) in [("indexed", true), ("scan", false)] {
        let mut s = session_with_items(n);
        if with_index {
            s.create_index("Item", "k").unwrap();
        }
        s.install(&format!(
            "CREATE TRIGGER probe AFTER CREATE ON 'Probe' FOR EACH NODE
             WHEN MATCH (i:Item {{k: {needle}}}) WHERE i.k = NEW.k
             BEGIN CREATE (:Hit) END"
        ))
        .unwrap();
        group.bench_with_input(BenchmarkId::new(tag, n), &n, |b, _| {
            b.iter(|| s.run(&format!("CREATE (:Probe {{k: {needle}}})")).unwrap())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_index_lookup);
criterion_main!(benches);
