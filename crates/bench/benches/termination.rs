//! P8 — termination analysis: triggering-graph construction and cycle
//! detection vs catalog size.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pg_triggers::{analyze, Session};

fn catalog_of(n: usize) -> Session {
    let mut s = Session::new();
    for i in 0..n {
        // a chain with a deliberate cycle at the end
        let target = if i + 1 == n {
            "L0".to_string()
        } else {
            format!("L{}", i + 1)
        };
        s.install(&format!(
            "CREATE TRIGGER t{i} AFTER CREATE ON 'L{i}' FOR EACH NODE BEGIN CREATE (:{target}) END"
        ))
        .unwrap();
    }
    s
}

fn bench_termination(c: &mut Criterion) {
    let mut group = c.benchmark_group("p8_termination");
    for &n in &[4usize, 16, 64, 256] {
        let s = catalog_of(n);
        group.bench_with_input(BenchmarkId::new("analyze", n), &n, |b, _| {
            b.iter(|| {
                let report = analyze(s.catalog());
                assert!(!report.is_acyclic());
                report
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_termination);
criterion_main!(benches);
