//! P1 — trigger firing overhead: per-statement cost of create operations
//! with 0/1/4/16/64 installed triggers, matching vs non-matching labels.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pg_bench::workloads::{batch_create, install_n_triggers};
use pg_triggers::Session;

fn bench_overhead(c: &mut Criterion) {
    let mut group = c.benchmark_group("p1_trigger_overhead");
    group.sample_size(20);
    for &n_triggers in &[0usize, 1, 4, 16, 64] {
        for &matching in &[true, false] {
            let label = format!(
                "{n_triggers}_{}",
                if matching { "match" } else { "nomatch" }
            );
            group.bench_with_input(
                BenchmarkId::new("create10", &label),
                &(n_triggers, matching),
                |b, &(n, m)| {
                    b.iter_batched(
                        || {
                            let mut s = Session::new();
                            if n > 0 {
                                install_n_triggers(&mut s, n, m);
                            }
                            s
                        },
                        |mut s| {
                            s.run(&batch_create("Target", 10, 0)).unwrap();
                            s
                        },
                        criterion::BatchSize::SmallInput,
                    )
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_overhead);
criterion_main!(benches);
