//! Composite (multi-key) index vs. the best single-key plan vs. full scan
//! on a conjunctive predicate — the §6 `{status} AND severity` shape.
//!
//! 100k `Item` nodes carry independent `(status, severity)` pairs
//! (20 statuses × 100 severities), so the conjunction matches 50 nodes
//! while the best single key (severity) still matches 1 000: the
//! composite path must be ≥ 10× faster than the best single-key plan
//! (the acceptance bar), and orders of magnitude over the scan.
//!
//! * `composite/*` — `CREATE INDEX ON :Item(status, severity)`
//! * `single_key/*` — both single-key indexes, planner intersects/filters
//! * `scan/*` — no indexes at all
//!
//! Quick mode for CI: `cargo bench --bench composite_lookup -- --test`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pg_bench::workloads::session_with_pairs;
use pg_triggers::Session;

fn quick_mode() -> bool {
    std::env::args().any(|a| a == "--test" || a == "--quick")
}

fn checked_count(s: &mut Session, query: &str, expect: i64) {
    let n = s.run(query).unwrap().single().and_then(|v| v.as_i64());
    assert_eq!(n, Some(expect), "{query}");
}

fn bench_composite_lookup(c: &mut Criterion) {
    let (n, statuses, severities, samples) = if quick_mode() {
        (5_000, 10, 50, 5)
    } else {
        (100_000, 20, 100, 30)
    };
    let status = format!("s{}", statuses - 1);
    let severity = (severities - 1) as i64;
    let eq_pair = format!(
        "MATCH (i:Item) WHERE i.status = '{status}' AND i.severity = {severity} \
         RETURN count(*) AS n"
    );
    let eq_range = format!(
        "MATCH (i:Item {{status: '{status}'}}) WHERE i.severity >= {} RETURN count(*) AS n",
        severity - 4
    );
    let expect_pair = (n / (statuses * severities)) as i64;
    let expect_range = 5 * expect_pair;

    let cols = ["status".to_string(), "severity".to_string()];
    let mut composite = session_with_pairs(n, statuses, severities);
    composite.create_composite_index("Item", &cols).unwrap();
    let mut single = session_with_pairs(n, statuses, severities);
    single.create_index("Item", "status").unwrap();
    single.create_index("Item", "severity").unwrap();
    let mut scan = session_with_pairs(n, statuses, severities);

    // All three plans must agree before we time anything.
    for s in [&mut composite, &mut single, &mut scan] {
        checked_count(s, &eq_pair, expect_pair);
        checked_count(s, &eq_range, expect_range);
    }

    let mut group = c.benchmark_group("composite_lookup");
    group.sample_size(samples);
    for (tag, session) in [
        ("composite", &mut composite),
        ("single_key", &mut single),
        ("scan", &mut scan),
    ] {
        group.bench_with_input(BenchmarkId::new(format!("{tag}_eq_pair"), n), &n, |b, _| {
            b.iter(|| session.run(&eq_pair).unwrap())
        });
    }
    for (tag, session) in [
        ("composite", &mut composite),
        ("single_key", &mut single),
        ("scan", &mut scan),
    ] {
        group.bench_with_input(
            BenchmarkId::new(format!("{tag}_eq_range"), n),
            &n,
            |b, _| b.iter(|| session.run(&eq_range).unwrap()),
        );
    }
    group.finish();

    // Pinned composite top-k: `{status} … ORDER BY severity LIMIT 1`
    // against the heap path of the single-key sessions.
    let topk = format!(
        "MATCH (i:Item {{status: '{status}'}}) \
         WITH i ORDER BY i.severity LIMIT 1 RETURN i.severity AS s"
    );
    let mut group = c.benchmark_group("composite_pinned_topk");
    group.sample_size(samples);
    for (tag, session) in [("composite", &mut composite), ("single_key", &mut single)] {
        group.bench_with_input(BenchmarkId::new(tag, n), &n, |b, _| {
            b.iter(|| session.run(&topk).unwrap())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_composite_lookup);
criterion_main!(benches);
