//! Durability cost and recovery speed, emitted as `BENCH_recovery.json`.
//!
//! Three measurements:
//!
//! 1. **WAL overhead** — trigger-firing ingest throughput in-memory vs
//!    durable under each fsync policy (`never`, `group`, `always`). The
//!    `never`/`group` policies only serialize frames into the OS page
//!    cache on the commit path, so their overhead bar is ≤ 35% versus
//!    the in-memory session; `always` pays a real disk round-trip per
//!    commit and is reported without a bar (it measures the disk, not
//!    the engine).
//! 2. **Recovery time vs log length** — replaying a pure-WAL store of
//!    N committed transactions, reported as recoveries/second and
//!    commits replayed/second at several log lengths.
//! 3. **Snapshot compaction win** — the same store recovered from a
//!    checkpoint snapshot plus an empty log suffix, reported as the
//!    speedup over full-log replay (bar: ≥ 1.5× at the largest size; the
//!    snapshot loads records instead of re-applying per-op history).
//!
//! Quick mode for CI smoke: `cargo bench --bench recovery -- --test`
//! shrinks sizes and skips the acceptance assertions (noise-proof); the
//! `recovery-fuzz` CI job runs quick mode per push and the full mode is
//! a nightly artifact.

use pg_triggers::{EngineConfig, Session, SyncPolicy, WalOptions};
use serde_json::json;
use std::path::{Path, PathBuf};
use std::time::Instant;

fn quick_mode() -> bool {
    std::env::args().any(|a| a == "--test" || a == "--quick")
}

struct TempDir(PathBuf);

impl TempDir {
    fn new(tag: &str) -> TempDir {
        static COUNTER: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
        let path = std::env::temp_dir().join(format!(
            "pg_bench_recovery_{tag}_{}_{}",
            std::process::id(),
            COUNTER.fetch_add(1, std::sync::atomic::Ordering::SeqCst)
        ));
        let _ = std::fs::remove_dir_all(&path);
        std::fs::create_dir_all(&path).unwrap();
        TempDir(path)
    }

    fn path(&self) -> &Path {
        &self.0
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

fn opts(sync: SyncPolicy) -> WalOptions {
    WalOptions {
        sync,
        group_bytes: 32 * 1024,
    }
}

fn trigger_session(dir: Option<(&Path, SyncPolicy)>) -> Session {
    let mut s = match dir {
        Some((d, sync)) => {
            Session::open_durable(d, EngineConfig::default(), opts(sync))
                .expect("open durable bench session")
                .0
        }
        None => Session::new(),
    };
    s.install(
        "CREATE TRIGGER audit AFTER CREATE ON 'Job' FOR EACH NODE
         BEGIN CREATE (:Audit {of: NEW.i}) END",
    )
    .unwrap();
    s
}

/// One timed burst of trigger-firing ingest statements (auto-commit: one
/// WAL frame per statement on durable sessions). Returns statements/s.
fn ingest_burst(s: &mut Session, statements: usize) -> f64 {
    let t0 = Instant::now();
    for i in 0..statements {
        s.run(&format!("CREATE (:Job {{i: {i}, src: 'loader'}})"))
            .unwrap();
    }
    s.wal_flush().unwrap();
    statements as f64 / t0.elapsed().as_secs_f64()
}

/// Best-of-`repeats` ingest throughput for one durability configuration.
fn ingest_stmts_per_s(statements: usize, repeats: usize, durable: Option<SyncPolicy>) -> f64 {
    let mut best = 0.0f64;
    for _ in 0..repeats {
        let tmp = TempDir::new("ingest");
        let mut s = trigger_session(durable.map(|sync| (tmp.path(), sync)));
        best = best.max(ingest_burst(&mut s, statements));
    }
    best
}

/// Build a durable store of `commits` trigger-firing transactions; when
/// `compacted`, finish with a checkpoint so recovery loads the snapshot
/// instead of replaying the log.
fn build_store(commits: usize, compacted: bool) -> TempDir {
    let tmp = TempDir::new(if compacted { "snap" } else { "wal" });
    let mut s = trigger_session(Some((tmp.path(), SyncPolicy::Never)));
    for i in 0..commits {
        s.run(&format!("CREATE (:Job {{i: {i}, src: 'loader'}})"))
            .unwrap();
    }
    if compacted {
        s.checkpoint().unwrap();
    }
    s.wal_flush().unwrap();
    tmp
}

/// Time one recovery of the store at `dir`. Returns (seconds, last_seq).
fn recover_once(dir: &Path) -> (f64, u64) {
    let t0 = Instant::now();
    let (_s, report) = Session::open_durable(dir, EngineConfig::default(), opts(SyncPolicy::Never))
        .expect("bench recovery");
    (t0.elapsed().as_secs_f64(), report.last_seq)
}

/// Best-of-`repeats` recovery time for a prebuilt store.
fn recovery_secs(dir: &Path, repeats: usize) -> (f64, u64) {
    let mut best = f64::INFINITY;
    let mut seq = 0;
    for _ in 0..repeats {
        let (secs, last_seq) = recover_once(dir);
        best = best.min(secs);
        seq = last_seq;
    }
    (best, seq)
}

fn main() {
    let quick = quick_mode();
    let (statements, repeats, log_lens) = if quick {
        (300, 1, vec![200usize, 800])
    } else {
        (4_000, 5, vec![1_000usize, 4_000, 16_000])
    };

    // 1. WAL overhead per fsync policy.
    let memory = ingest_stmts_per_s(statements, repeats, None);
    let never = ingest_stmts_per_s(statements, repeats, Some(SyncPolicy::Never));
    let group = ingest_stmts_per_s(statements, repeats, Some(SyncPolicy::Group));
    let always = ingest_stmts_per_s(statements, repeats, Some(SyncPolicy::Always));
    let never_overhead_pct = (1.0 - never / memory) * 100.0;
    let group_overhead_pct = (1.0 - group / memory) * 100.0;

    // 2. Recovery time vs log length, and 3. the snapshot-compaction win.
    let mut replay_report = Vec::new();
    let mut final_speedup = 0.0f64;
    for &commits in &log_lens {
        let wal_store = build_store(commits, false);
        let snap_store = build_store(commits, true);
        let (replay_secs, last_seq) = recovery_secs(wal_store.path(), repeats);
        let (snap_secs, snap_seq) = recovery_secs(snap_store.path(), repeats);
        assert_eq!(last_seq as usize, commits);
        assert_eq!(snap_seq as usize, commits);
        let speedup = replay_secs / snap_secs;
        final_speedup = speedup;
        replay_report.push(json!({
            "commits": commits,
            "replay_secs": replay_secs,
            "replay_commits_per_s": commits as f64 / replay_secs,
            "snapshot_secs": snap_secs,
            "snapshot_speedup_x": speedup,
        }));
    }

    let ingest_report = json!({
        "statements": statements,
        "memory_stmts_per_s": memory,
        "wal_never_stmts_per_s": never,
        "wal_group_stmts_per_s": group,
        "wal_always_stmts_per_s": always,
        "never_overhead_pct": never_overhead_pct,
        "group_overhead_pct": group_overhead_pct,
        "bar_buffered_overhead_pct_max": 35.0,
    });
    let report = json!({
        "bench": "recovery",
        "mode": if quick { "quick" } else { "full" },
        "ingest": ingest_report,
        "recovery": replay_report,
        "bar_snapshot_speedup_x_min": 1.5,
    });
    let rendered = serde_json::to_string_pretty(&report).unwrap();
    println!("{rendered}");
    // Manifest-relative so the artifact lands at the repo root (where CI
    // archives it) regardless of the bench binary's working directory.
    let out = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_recovery.json");
    std::fs::write(out, rendered + "\n").unwrap();

    if !quick {
        assert!(
            never_overhead_pct <= 35.0,
            "unsynced WAL costs {never_overhead_pct:.1}% (> 35% bar): \
             {never:.0} vs {memory:.0} stmts/s"
        );
        assert!(
            group_overhead_pct <= 35.0,
            "group-commit WAL costs {group_overhead_pct:.1}% (> 35% bar): \
             {group:.0} vs {memory:.0} stmts/s"
        );
        assert!(
            final_speedup >= 1.5,
            "snapshot recovery only {final_speedup:.2}x faster than full replay \
             at {} commits (>= 1.5x bar)",
            log_lens.last().unwrap()
        );
    }
}
