//! Ablation benches for the design choices DESIGN.md calls out:
//! * activation-order policy (creation time — the paper's choice — vs
//!   PostgreSQL-style name order): ordering itself must be cost-free;
//! * ONCOMMIT fixpoint rounds: cost of derived-data chains at commit vs
//!   the same chain as cascading AFTER triggers;
//! * BEFORE pre-state views: the overhead of building PreStateView
//!   overlays per statement as statements grow.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pg_bench::workloads::batch_create;
use pg_triggers::{EngineConfig, OrderPolicy, Session};

fn bench_order_policy(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_order_policy");
    group.sample_size(20);
    for (name, order) in [
        ("creation_time", OrderPolicy::CreationTime),
        ("name", OrderPolicy::Name),
    ] {
        group.bench_with_input(BenchmarkId::new("policy", name), &order, |b, &o| {
            b.iter_batched(
                || {
                    let mut s = Session::with_config(EngineConfig {
                        order: o,
                        ..EngineConfig::default()
                    });
                    for i in 0..32 {
                        s.install(&format!(
                            "CREATE TRIGGER t{:02} AFTER CREATE ON 'Target' FOR ALL NODES \
                             BEGIN CREATE (:Fired) END",
                            31 - i // reverse-alphabetical install order
                        ))
                        .unwrap();
                    }
                    s
                },
                |mut s| {
                    s.run(&batch_create("Target", 5, 0)).unwrap();
                    s
                },
                criterion::BatchSize::SmallInput,
            )
        });
    }
    group.finish();
}

fn bench_oncommit_vs_after_chain(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_commit_chain");
    group.sample_size(20);
    for &depth in &[2usize, 8] {
        group.bench_with_input(BenchmarkId::new("after_cascade", depth), &depth, |b, &d| {
            b.iter_batched(
                || {
                    let mut s = Session::new();
                    for i in 0..d {
                        s.install(&format!(
                            "CREATE TRIGGER a{i} AFTER CREATE ON 'L{i}' FOR EACH NODE BEGIN CREATE (:L{}) END",
                            i + 1
                        ))
                        .unwrap();
                    }
                    s
                },
                |mut s| {
                    s.run("CREATE (:L0)").unwrap();
                    s
                },
                criterion::BatchSize::SmallInput,
            )
        });
        group.bench_with_input(BenchmarkId::new("oncommit_fixpoint", depth), &depth, |b, &d| {
            b.iter_batched(
                || {
                    let mut s = Session::with_config(EngineConfig {
                        max_commit_rounds: d + 4,
                        ..EngineConfig::default()
                    });
                    for i in 0..d {
                        s.install(&format!(
                            "CREATE TRIGGER o{i} ONCOMMIT CREATE ON 'L{i}' FOR EACH NODE BEGIN CREATE (:L{}) END",
                            i + 1
                        ))
                        .unwrap();
                    }
                    s
                },
                |mut s| {
                    s.run("CREATE (:L0)").unwrap();
                    s
                },
                criterion::BatchSize::SmallInput,
            )
        });
    }
    group.finish();
}

fn bench_before_prestate_overhead(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_before_prestate");
    group.sample_size(20);
    for &batch in &[10usize, 100] {
        for time in ["BEFORE", "AFTER"] {
            group.bench_with_input(
                BenchmarkId::new(time, batch),
                &batch,
                |b, &n| {
                    b.iter_batched(
                        || {
                            let mut s = Session::new();
                            let body = if time == "BEFORE" {
                                "SET NEW.audited = true"
                            } else {
                                "MATCH (x:Target) WHERE x = NEW SET x.audited = true"
                            };
                            s.install(&format!(
                                "CREATE TRIGGER t {time} CREATE ON 'Target' FOR EACH NODE BEGIN {body} END"
                            ))
                            .unwrap();
                            s
                        },
                        |mut s| {
                            s.run(&batch_create("Target", n, 0)).unwrap();
                            s
                        },
                        criterion::BatchSize::SmallInput,
                    )
                },
            );
        }
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_order_policy,
    bench_oncommit_vs_after_chain,
    bench_before_prestate_overhead
);
criterion_main!(benches);
