//! P4 — action-time comparison: the per-statement cost of one trigger at
//! each of the four action times (§4.2).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pg_triggers::Session;

fn bench_action_time(c: &mut Criterion) {
    let mut group = c.benchmark_group("p4_action_time");
    group.sample_size(30);
    for time in ["BEFORE", "AFTER", "ONCOMMIT", "DETACHED"] {
        group.bench_with_input(BenchmarkId::new("time", time), &time, |b, &t| {
            b.iter_batched(
                || {
                    let mut s = Session::new();
                    let body = if t == "BEFORE" {
                        "SET NEW.audited = true"
                    } else {
                        "CREATE (:Log)"
                    };
                    s.install(&format!(
                        "CREATE TRIGGER t {t} CREATE ON 'Target' FOR EACH NODE BEGIN {body} END"
                    ))
                    .unwrap();
                    s
                },
                |mut s| {
                    s.run("CREATE (:Target {i: 1})").unwrap();
                    s
                },
                criterion::BatchSize::SmallInput,
            )
        });
    }
    group.finish();
}

criterion_group!(benches, bench_action_time);
criterion_main!(benches);
