//! Index-served `ORDER BY … LIMIT` (top-k) vs the full-sort path it
//! replaces — the paper's §6.2.3 relocation shape
//! (`WITH ct, c, hc, pn ORDER BY ct.distance LIMIT 1`).
//!
//! `indexed/*` runs against a session whose order key is indexed, so the
//! executor fuses MATCH + `ORDER BY i.k LIMIT 1` into an O(log n + k)
//! ordered index walk; `sort/*` runs the identical query without the
//! index (full enumeration + bounded-heap selection). The acceptance bar
//! at 100k nodes is **≥100×**.
//!
//! A relationship-keyed group replays the exact §6.2.3 trigger shape over
//! `ConnectedTo.distance`.
//!
//! Quick mode for CI: `cargo bench --bench top_k -- --test` shrinks the
//! graph and sample counts so the bench doubles as a smoke test.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pg_bench::workloads::session_with_items;
use pg_triggers::Session;

fn quick_mode() -> bool {
    std::env::args().any(|a| a == "--test" || a == "--quick")
}

fn checked_min(s: &mut Session, query: &str, expect: i64) {
    let out = s.run(query).unwrap();
    let got = out.rows.first().and_then(|r| r.first()).cloned();
    assert_eq!(got, Some(pg_graph::Value::Int(expect)), "{query}");
}

fn bench_top_k(c: &mut Criterion) {
    let (n, samples) = if quick_mode() {
        (5_000, 5)
    } else {
        (100_000, 30)
    };
    let q = "MATCH (i:Item) WITH i ORDER BY i.k LIMIT 1 RETURN i.k AS k";
    let q_desc = "MATCH (i:Item) WITH i ORDER BY i.k DESC LIMIT 1 RETURN i.k AS k";

    let mut indexed = session_with_items(n);
    indexed.create_index("Item", "k").unwrap();
    let mut sort = session_with_items(n);

    // Both paths must agree before we time anything.
    checked_min(&mut indexed, q, 0);
    checked_min(&mut sort, q, 0);
    checked_min(&mut indexed, q_desc, (n - 1) as i64);
    checked_min(&mut sort, q_desc, (n - 1) as i64);

    let mut group = c.benchmark_group("top_k");
    group.sample_size(samples);
    group.bench_with_input(BenchmarkId::new("indexed_limit1", n), &n, |b, _| {
        b.iter(|| indexed.run(q).unwrap())
    });
    group.bench_with_input(BenchmarkId::new("indexed_limit1_desc", n), &n, |b, _| {
        b.iter(|| indexed.run(q_desc).unwrap())
    });
    group.bench_with_input(BenchmarkId::new("sort_limit1", n), &n, |b, _| {
        b.iter(|| sort.run(q).unwrap())
    });
    group.finish();

    // The §6.2.3 relocation shape: one overloaded hospital, n/2 candidate
    // transfer targets, pick the nearest by relationship property.
    let mut group = c.benchmark_group("top_k_rel_6_2_3");
    group.sample_size(samples);
    let m = n / 2;
    for (tag, with_index) in [("indexed", true), ("sort", false)] {
        let mut s = Session::new();
        {
            let g = s.graph_mut();
            let h = g
                .create_node(
                    ["Hospital"],
                    [("name".to_string(), pg_graph::Value::str("Sacco"))]
                        .into_iter()
                        .collect(),
                )
                .unwrap();
            for i in 0..m {
                let other = g
                    .create_node(
                        ["Hospital"],
                        [("name".to_string(), pg_graph::Value::str(format!("H{i}")))]
                            .into_iter()
                            .collect(),
                    )
                    .unwrap();
                g.create_rel(
                    h,
                    other,
                    "ConnectedTo",
                    [(
                        "distance".to_string(),
                        pg_graph::Value::Int(((i * 7919) % m) as i64 + 1),
                    )]
                    .into_iter()
                    .collect(),
                )
                .unwrap();
            }
        }
        if with_index {
            s.graph_mut().create_rel_index("ConnectedTo", "distance");
        }
        let q = "MATCH (h:Hospital {name: 'Sacco'})-[ct:ConnectedTo]-(hc:Hospital) \
                 WITH ct, hc ORDER BY ct.distance LIMIT 1 \
                 RETURN ct.distance AS d";
        checked_min(&mut s, q, 1);
        group.bench_with_input(BenchmarkId::new(tag, m), &m, |b, _| {
            b.iter(|| s.run(q).unwrap())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_top_k);
criterion_main!(benches);
