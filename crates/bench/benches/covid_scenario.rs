//! P6 — the COVID scenario end-to-end: admission waves with the full §6.2
//! trigger suite at growing scales.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pg_covid::{GeneratorConfig, Scenario, ScenarioConfig};

fn cfg(patients: usize, admissions: usize, indexed: bool) -> ScenarioConfig {
    ScenarioConfig {
        generator: GeneratorConfig {
            patients,
            sequences: patients / 2,
            ..GeneratorConfig::default()
        },
        waves: 3,
        admissions_per_wave: admissions,
        discoveries: 2,
        redesignations: 1,
        indexed,
    }
}

fn bench_scenario(c: &mut Criterion) {
    let mut group = c.benchmark_group("p6_covid_scenario");
    group.sample_size(10);
    for &(patients, admissions) in &[(100usize, 5usize), (500, 10), (2000, 20)] {
        for indexed in [false, true] {
            let tag = if indexed { "run_indexed" } else { "run" };
            group.bench_with_input(
                BenchmarkId::new(tag, format!("{patients}p_{admissions}a")),
                &(patients, admissions),
                |b, &(p, a)| {
                    b.iter_batched(
                        || Scenario::new(cfg(p, a, indexed)),
                        |mut sc| sc.run().unwrap(),
                        criterion::BatchSize::SmallInput,
                    )
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_scenario);
criterion_main!(benches);
