//! Planning cost under cardinality statistics (planner v3).
//!
//! Before v3, costing an access path materialized the index candidate
//! vector (`nodes_with_prop(...).len()`), so *planning* an indexed-eq
//! trigger condition was O(candidates) — pathological when the predicate
//! value is hot (many matches) even if execution never touches them. With
//! count-only probes, planning is O(log n) regardless of selectivity:
//! `planning_eq/hot` (the predicate value matches *every* node) must sit
//! in the same ballpark as `planning_eq/cold` (it matches one node), not
//! ~n× above it. The probe counters assert the invariant outright: the
//! planning rounds of a run perform counting probes only.
//!
//! `histogram_estimate` compares the histogram's range selectivity
//! estimate against the exact count on a Zipf-skewed distribution — the
//! case uniform-assumption estimators get wrong.
//!
//! Quick mode for CI: `cargo bench --bench stats_probe -- --test`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pg_bench::workloads::session_with_zipf_items;
use pg_graph::{GraphView, Value};
use pg_triggers::Session;
use std::ops::Bound;

fn quick_mode() -> bool {
    std::env::args().any(|a| a == "--test" || a == "--quick")
}

/// A session where every one of `n` Item nodes carries `k = 7` (the "hot"
/// case: an eq probe hits all of them) plus one `Tiny` node wired to one
/// Item — the pattern anchor the planner should prefer.
fn hot_session(n: usize, hot: bool) -> Session {
    let mut s = Session::new();
    {
        let g = s.graph_mut();
        let mut anchor = None;
        for i in 0..n {
            let k = if hot { 7 } else { i as i64 };
            let id = g
                .create_node(
                    ["Item"],
                    [("k".to_string(), Value::Int(k))].into_iter().collect(),
                )
                .unwrap();
            if i == 7 {
                anchor = Some(id); // k == 7 in both the hot and cold layout
            }
        }
        let t = g
            .create_node(["Tiny"], pg_graph::PropertyMap::new())
            .unwrap();
        g.create_rel(anchor.unwrap(), t, "R", pg_graph::PropertyMap::new())
            .unwrap();
    }
    s.create_index("Item", "k").unwrap();
    s
}

fn bench_stats_probe(c: &mut Criterion) {
    let (n, samples) = if quick_mode() {
        (5_000, 10)
    } else {
        (100_000, 30)
    };

    // Planning an indexed-eq condition: the Tiny anchor wins either way;
    // v2 materialized the (possibly huge) eq candidate vector just to
    // learn its size, v3 count-probes it.
    let q = "MATCH (i:Item {k: 7})-[:R]->(t:Tiny) RETURN count(*) AS c";
    let mut group = c.benchmark_group("planning_eq");
    group.sample_size(samples);
    for (tag, hot) in [("hot", true), ("cold", false)] {
        let mut s = hot_session(n, hot);
        let out = s.run(q).unwrap();
        assert_eq!(
            out.rows[0][0],
            Value::Int(1),
            "{tag}: exactly the wired pair matches"
        );
        group.bench_with_input(BenchmarkId::new(tag, n), &n, |b, _| {
            b.iter(|| s.run(q).unwrap())
        });
    }
    group.finish();

    // The invariant itself, outside the timed loops: a run over indexed
    // predicates plans through counting probes; the only materializing
    // lookups are the chosen execution access paths (≤ a handful, never
    // O(candidates) planning rounds).
    let mut s = hot_session(n, true);
    s.run(q).unwrap(); // warm
    s.graph().reset_index_probes();
    s.run(q).unwrap();
    let probes = s.graph().index_probes();
    assert!(
        probes.counting > 0,
        "planning must use count-only probes: {probes:?}"
    );
    assert!(
        probes.materializing <= 4,
        "execution materializes at most its chosen access paths: {probes:?}"
    );

    // Histogram selectivity on skewed data: estimate vs exact over the
    // hot head and the cold tail of a Zipf distribution.
    let mut zipf = session_with_zipf_items(n, 1000, 1.05, 42);
    zipf.create_index("Item", "k").unwrap();
    let g = zipf.graph();
    for (tag, lo, hi) in [("head", 0i64, 10i64), ("tail", 500, 1000)] {
        let est = g
            .count_nodes_in_prop_range(
                "Item",
                "k",
                Bound::Included(&Value::Int(lo)),
                Bound::Excluded(&Value::Int(hi)),
            )
            .expect("indexed range estimate");
        let exact = g
            .nodes_in_prop_range(
                "Item",
                "k",
                Bound::Included(&Value::Int(lo)),
                Bound::Excluded(&Value::Int(hi)),
            )
            .expect("indexed range scan")
            .len();
        // documented bound: 2·depth + drift allowance
        let (total, _) = g.node_prop_stats("Item", "k").unwrap();
        let bound = 2 * total.div_ceil(32) + 16.max(total / 8);
        assert!(
            est.abs_diff(exact) <= bound,
            "{tag}: estimate {est} vs exact {exact} (bound {bound})"
        );
        println!("histogram_estimate/{tag}: est {est} exact {exact}");
    }

    // And the probe itself is cheap: O(#buckets), independent of matches.
    let mut group = c.benchmark_group("histogram_estimate");
    group.sample_size(samples);
    group.bench_with_input(BenchmarkId::new("range_probe", n), &n, |b, _| {
        b.iter(|| {
            zipf.graph()
                .count_nodes_in_prop_range(
                    "Item",
                    "k",
                    Bound::Included(&Value::Int(0)),
                    Bound::Excluded(&Value::Int(10)),
                )
                .unwrap()
        })
    });
    group.finish();
}

criterion_group!(benches, bench_stats_probe);
criterion_main!(benches);
