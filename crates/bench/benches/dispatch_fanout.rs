//! Trigger dispatch under fan-out: the per-statement cost of triggers that
//! can never fire.
//!
//! A realistic catalog holds many triggers monitoring disjoint labels; the
//! event-keyed dispatch pre-filter must make an activating statement pay
//! (close to) nothing for the irrelevant ones — no `TriggerSpec` clones, no
//! `PreStateView` builds, no `affected_items` walks. The acceptance bar:
//! a hot write with 100 installed-but-irrelevant triggers stays within ~2×
//! of the zero-trigger baseline.
//!
//! Quick mode for CI: `cargo bench --bench dispatch_fanout -- --test`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pg_bench::workloads::install_n_triggers;
use pg_triggers::Session;

fn quick_mode() -> bool {
    std::env::args().any(|a| a == "--test" || a == "--quick")
}

fn bench_dispatch_fanout(c: &mut Criterion) {
    let samples = if quick_mode() { 10 } else { 50 };
    let mut group = c.benchmark_group("dispatch_fanout");
    group.sample_size(samples);

    // zero triggers — the floor
    let mut baseline = Session::new();
    group.bench_with_input(BenchmarkId::new("triggers", 0), &0, |b, _| {
        b.iter(|| baseline.run("CREATE (:Target {i: 1})").unwrap())
    });

    // 100 triggers on labels the statement never touches
    let mut irrelevant = Session::new();
    install_n_triggers(&mut irrelevant, 100, false);
    group.bench_with_input(
        BenchmarkId::new("irrelevant_triggers", 100),
        &100,
        |b, _| b.iter(|| irrelevant.run("CREATE (:Target {i: 1})").unwrap()),
    );

    // 100 irrelevant + 1 matching: the pre-filter must not break real
    // dispatch, and the marginal cost should be the one firing trigger.
    let mut mixed = Session::new();
    install_n_triggers(&mut mixed, 100, false);
    mixed
        .install(
            "CREATE TRIGGER hot AFTER CREATE ON 'Target' FOR EACH NODE
             BEGIN CREATE (:Fired) END",
        )
        .unwrap();
    group.bench_with_input(
        BenchmarkId::new("irrelevant_plus_one_matching", 101),
        &101,
        |b, _| b.iter(|| mixed.run("CREATE (:Target {i: 1})").unwrap()),
    );
    group.finish();

    // Sanity outside the timed loops: the matching trigger really fired.
    let fired = mixed
        .run("MATCH (f:Fired) RETURN count(*) AS n")
        .unwrap()
        .single()
        .and_then(|v| v.as_i64())
        .unwrap();
    assert!(
        fired > 0,
        "matching trigger must fire through the pre-filter"
    );
    let stray = irrelevant
        .run("MATCH (f:Fired) RETURN count(*) AS n")
        .unwrap()
        .single()
        .and_then(|v| v.as_i64())
        .unwrap();
    assert_eq!(stray, 0, "irrelevant triggers must not fire");
}

criterion_group!(benches, bench_dispatch_fanout);
criterion_main!(benches);
