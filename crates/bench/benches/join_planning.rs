//! Join planning under Zipf skew: batched vs row-at-a-time execution,
//! and degree-statistics join-output estimates vs actual cardinalities.
//!
//! Emitted as `BENCH_join_planning.json`:
//!
//! 1. **Executor comparison** — a two-hop join pipeline
//!    (`MATCH (u:User) MATCH (u)-[:FOLLOWS]->(h:User)-[:WROTE]->(p)`)
//!    over a follower graph whose FOLLOWS targets are Zipf-distributed:
//!    most intermediate rows funnel into a few hub users, so the batched
//!    executor's per-source-node hop memoization pays off while the
//!    reference executor re-scans each hub's adjacency once per incoming
//!    row. Full mode asserts batched beats row-at-a-time.
//! 2. **Estimate accuracy** — `estimated match rows` from the physical
//!    plan (product of per-hop average fanouts from the degree
//!    statistics) against the true row count, for two second hops:
//!    a *uniform* one (every user wrote exactly the same number of
//!    posts), where the average-fanout model is exact, and a *skew-
//!    correlated* one (hub users also author Zipf-many posts), where
//!    independence is violated and the model underestimates. Full mode
//!    asserts the uniform error is ≈ 0 and the skewed estimate stays
//!    within a 10× documented bound.
//! 3. **EXPLAIN smoke** — the report for the join renders end-to-end and
//!    names the access path, fanouts and both row counts.
//!
//! Quick mode (`-- --test`): shrunk sizes, no acceptance assertions.

use pg_bench::zipf::follower_graph;
use pg_cypher::{explain_query, parse_query, Executor, MatchMode, Params, Target};
use pg_graph::Graph;
use serde_json::json;
use std::time::Instant;

fn quick_mode() -> bool {
    std::env::args().any(|a| a == "--test" || a == "--quick")
}

/// Run `q` under the given match mode, returning (rows, seconds).
fn timed_run(g: &Graph, q: &str, mode: MatchMode, iters: usize) -> (usize, f64) {
    let query = parse_query(q).unwrap();
    let params = Params::new();
    let mut rows = 0;
    let mut best = f64::INFINITY;
    for _ in 0..iters {
        let t = Instant::now();
        let out = Executor::new(Target::Read(g), &params, 0)
            .with_match_mode(mode)
            .run(&query, Vec::new())
            .unwrap();
        best = best.min(t.elapsed().as_secs_f64());
        rows = out.single().and_then(|v| v.as_i64()).expect("count query") as usize;
    }
    (rows, best)
}

/// Estimated match rows of `q`'s physical plan (product over planned
/// paths of their join-output estimates).
fn estimated_rows(g: &Graph, q: &str) -> f64 {
    let query = parse_query(q).unwrap();
    let params = Params::new();
    let ctx = pg_cypher::expr::EvalCtx::new(g, &params, 0);
    let (_, phys) = pg_cypher::lower_query(&ctx, &query).unwrap();
    phys.iter().map(|p| p.est_rows()).product()
}

fn main() {
    let quick = quick_mode();
    let (n, follows, w_uniform, wz_total, iters) = if quick {
        (60, 240, 2, 120, 2)
    } else {
        (1200, 9600, 4, 4800, 5)
    };
    let g = follower_graph(n, follows, w_uniform, wz_total);

    let q_uniform = "MATCH (u:User) MATCH (u)-[:FOLLOWS]->(h:User)-[:WROTE]->(p:Post) \
                     RETURN count(*) AS n";
    let q_skew = "MATCH (u:User) MATCH (u)-[:FOLLOWS]->(h:User)-[:WROTE_Z]->(p:Post) \
                  RETURN count(*) AS n";

    // 1. Batched vs row-at-a-time on the skew-correlated join.
    let (rows_b, secs_batched) = timed_run(&g, q_skew, MatchMode::Batched, iters);
    let (rows_r, secs_reference) = timed_run(&g, q_skew, MatchMode::Reference, iters);
    assert_eq!(rows_b, rows_r, "executors disagree");
    let speedup = secs_reference / secs_batched;

    // 2. Estimated vs actual join-output rows. The first clause
    //    (`MATCH (u:User)`) estimates the label extent; the second
    //    clause's plan sees `u` as bound (`BoundVar`, est 1) with its
    //    declared label feeding the fanout lookups, so the product over
    //    the two paths is label card × fanout(FOLLOWS) × fanout(WROTE*).
    let est_uniform = estimated_rows(&g, q_uniform);
    let (actual_uniform, _) = timed_run(&g, q_uniform, MatchMode::Batched, 1);
    let est_skew = estimated_rows(&g, q_skew);
    let actual_skew = rows_b;
    let rel_err = |est: f64, actual: usize| {
        if actual == 0 {
            0.0
        } else {
            (est - actual as f64).abs() / actual as f64
        }
    };
    let err_uniform = rel_err(est_uniform, actual_uniform);
    let err_skew = rel_err(est_skew, actual_skew);

    // 3. EXPLAIN smoke: the report renders and carries the plan shape.
    let explain = explain_query(&g, q_skew, &Params::new(), 0).unwrap();
    assert!(explain.contains("fanout="), "{explain}");
    assert!(explain.contains("estimated match rows:"), "{explain}");
    assert!(explain.contains("actual rows: 1"), "{explain}");

    let executor = json!({
        "query": q_skew,
        "output_rows": rows_b,
        "batched_s": secs_batched,
        "reference_s": secs_reference,
        "batched_speedup_x": speedup,
        "bar_speedup_min_x": 1.05,
    });
    let uniform = json!({
        "estimated": est_uniform,
        "actual": actual_uniform,
        "rel_error": err_uniform,
        "bar_rel_error_max": 0.01,
    });
    // Independence between hub in-degree and author out-degree is
    // violated by construction; the documented bound for the average-
    // fanout model under Zipf(1.0) correlation at this scale is one
    // order of magnitude.
    let skew_correlated = json!({
        "estimated": est_skew,
        "actual": actual_skew,
        "rel_error": err_skew,
        "bar_rel_error_max": 10.0,
    });
    let estimates = json!({
        "uniform": uniform,
        "skew_correlated": skew_correlated,
    });
    let report = json!({
        "bench": "join_planning",
        "mode": if quick { "quick" } else { "full" },
        "users": n,
        "follows_edges": follows,
        "executor": executor,
        "estimates": estimates,
    });
    let rendered = serde_json::to_string_pretty(&report).unwrap();
    println!("{rendered}");
    let out = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../BENCH_join_planning.json"
    );
    std::fs::write(out, rendered + "\n").unwrap();

    if !quick {
        assert!(
            speedup >= 1.05,
            "batched executor must beat row-at-a-time on the skewed join \
             (got {speedup:.3}x)"
        );
        assert!(
            err_uniform <= 0.01,
            "uniform-fanout estimate must be near-exact (err {err_uniform:.4})"
        );
        assert!(
            err_skew <= 10.0,
            "skew-correlated estimate outside the documented bound \
             (err {err_skew:.2})"
        );
    }
}
