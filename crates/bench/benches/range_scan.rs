//! Ordered range and prefix scans vs. full scans — the access paths
//! planner v2 adds for the paper's §6 range-shaped trigger conditions
//! (`occupancy >= 0.95`, `count >= threshold`, name-prefix lookups).
//!
//! `indexed/*` runs against a session with `CREATE INDEX ON :Item(k)` /
//! `:Item(name)`; `scan/*` runs the identical queries without indexes
//! (label-extent scan with a post-hoc WHERE filter). At the default 100k
//! nodes a selective range must be orders of magnitude faster (the
//! acceptance bar is 100×).
//!
//! Quick mode for CI: `cargo bench --bench range_scan -- --test` shrinks
//! the graph and sample counts so the bench doubles as a smoke test.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pg_bench::workloads::session_with_named_items;
use pg_triggers::Session;

fn quick_mode() -> bool {
    std::env::args().any(|a| a == "--test" || a == "--quick")
}

fn checked_count(s: &mut Session, query: &str, expect: i64) {
    let n = s.run(query).unwrap().single().and_then(|v| v.as_i64());
    assert_eq!(n, Some(expect), "{query}");
}

fn bench_range_scan(c: &mut Criterion) {
    let (n, samples) = if quick_mode() {
        (5_000, 5)
    } else {
        (100_000, 30)
    };
    // 100 matches at the top of the ordered key space (worst case for an
    // early-exit scan), 10 matches for the prefix.
    let lo = (n - 100) as i64;
    let range_q = format!("MATCH (i:Item) WHERE i.k >= {lo} AND i.k < {n} RETURN count(*) AS c");
    let prefix = format!("item{:05}", (n - 10) / 10);
    let prefix_q =
        format!("MATCH (i:Item) WHERE i.name STARTS WITH '{prefix}' RETURN count(*) AS c");

    let mut indexed = session_with_named_items(n);
    indexed.create_index("Item", "k").unwrap();
    indexed.create_index("Item", "name").unwrap();
    let mut scan = session_with_named_items(n);

    // Both paths must agree before we time anything.
    checked_count(&mut indexed, &range_q, 100);
    checked_count(&mut scan, &range_q, 100);
    checked_count(&mut indexed, &prefix_q, 10);
    checked_count(&mut scan, &prefix_q, 10);

    let mut group = c.benchmark_group("range_scan");
    group.sample_size(samples);
    group.bench_with_input(BenchmarkId::new("indexed_range", n), &n, |b, _| {
        b.iter(|| indexed.run(&range_q).unwrap())
    });
    group.bench_with_input(BenchmarkId::new("indexed_prefix", n), &n, |b, _| {
        b.iter(|| indexed.run(&prefix_q).unwrap())
    });
    group.bench_with_input(BenchmarkId::new("scan_range", n), &n, |b, _| {
        b.iter(|| scan.run(&range_q).unwrap())
    });
    group.bench_with_input(BenchmarkId::new("scan_prefix", n), &n, |b, _| {
        b.iter(|| scan.run(&prefix_q).unwrap())
    });
    group.finish();

    // Trigger-condition shape (§6): an AFTER trigger whose condition is a
    // range match over the big extent, activated by a hot write.
    let mut group = c.benchmark_group("range_trigger_condition");
    group.sample_size(samples);
    for (tag, with_index) in [("indexed", true), ("scan", false)] {
        let mut s = session_with_named_items(n);
        if with_index {
            s.create_index("Item", "k").unwrap();
        }
        s.install(&format!(
            "CREATE TRIGGER probe AFTER CREATE ON 'Probe' FOR EACH NODE
             WHEN MATCH (i:Item) WHERE i.k >= {lo} AND i.k < {n} AND i.k = NEW.k
             BEGIN CREATE (:Hit) END"
        ))
        .unwrap();
        group.bench_with_input(BenchmarkId::new(tag, n), &n, |b, _| {
            b.iter(|| s.run(&format!("CREATE (:Probe {{k: {lo}}})")).unwrap())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_range_scan);
criterion_main!(benches);
