//! # pg-triggers-suite — umbrella crate
//!
//! Re-exports the whole PG-Triggers reproduction for the examples under
//! `examples/` and the cross-crate integration tests under `tests/`.
//! See the individual crates for the real APIs:
//!
//! * [`pg_triggers`] — the PG-Trigger engine (the paper's contribution);
//! * [`pg_graph`] / [`pg_cypher`] / [`pg_schema`] — the substrates;
//! * [`pg_apoc`] / [`pg_memgraph`] — target-system emulations + translators;
//! * [`pg_covid`] — the §6 running example;
//! * [`pg_server`] — the wire-protocol server, client, and load harness.
//!
//! The repository README is included below verbatim; its quickstart code
//! block runs as a doctest of this crate, so a drifting README fails
//! `cargo test`.
#![doc = include_str!("../README.md")]

pub use pg_apoc;
pub use pg_covid;
pub use pg_cypher;
pub use pg_graph;
pub use pg_memgraph;
pub use pg_schema;
pub use pg_server;
pub use pg_triggers;
