//! # pg-triggers-suite — umbrella crate
//!
//! Re-exports the whole PG-Triggers reproduction for the examples under
//! `examples/` and the cross-crate integration tests under `tests/`.
//! See the individual crates for the real APIs:
//!
//! * [`pg_triggers`] — the PG-Trigger engine (the paper's contribution);
//! * [`pg_graph`] / [`pg_cypher`] / [`pg_schema`] — the substrates;
//! * [`pg_apoc`] / [`pg_memgraph`] — target-system emulations + translators;
//! * [`pg_covid`] — the §6 running example.

pub use pg_apoc;
pub use pg_covid;
pub use pg_cypher;
pub use pg_graph;
pub use pg_memgraph;
pub use pg_schema;
pub use pg_triggers;
